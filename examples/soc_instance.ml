(* Load a user instance file and run the full flow, comparing the MILP
   floorplanner against the slicing baseline on it.

     dune exec examples/soc_instance.exe [FILE]

   Defaults to instances/soc12.fp (relative to the repo root). *)

module Netlist = Fp_netlist.Netlist
module Parser = Fp_netlist.Parser
open Fp_core

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "instances/soc12.fp"
  in
  match Parser.of_file path with
  | Error e ->
    Printf.eprintf "cannot load %s: %s\n" path e;
    exit Degradation.exit_error
  | Ok nl ->
    Format.printf "%a@.@." Netlist.pp_summary nl;
    (* MILP successive augmentation. *)
    let res = Augment.run nl in
    let milp = Compact.vertical res.Augment.placement in
    let milp, _ = Topology.optimize nl milp in
    Printf.printf "MILP      : %.1f x %.1f (area %.0f), util %.1f%%, HPWL %.0f\n"
      milp.Placement.chip_width milp.Placement.height
      (Placement.chip_area milp)
      (100. *. Metrics.utilization nl milp)
      (Metrics.hpwl nl milp);
    (* Slicing baseline at the same chip width. *)
    let sa_cfg =
      { Fp_slicing.Anneal.default_config with
        Fp_slicing.Anneal.outline =
          Fp_core.Outline.Max_width milp.Placement.chip_width;
        wire_weight = 0.5 }
    in
    let sa, stats = Fp_slicing.Anneal.run ~config:sa_cfg nl in
    Printf.printf "slicing SA: %.1f x %.1f (area %.0f), util %.1f%%, HPWL %.0f \
                   (%d moves, %.2f s)\n"
      sa.Placement.chip_width sa.Placement.height (Placement.chip_area sa)
      (100. *. Metrics.utilization nl sa)
      (Metrics.hpwl nl sa) stats.Fp_slicing.Anneal.iterations
      stats.Fp_slicing.Anneal.elapsed;
    print_newline ();
    print_string (Fp_viz.Ascii.render_with_title ~cols:64 ~title:"MILP floorplan" milp)
