(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic choice in the repository — random instances, random
    augmentation orderings — draws from this generator with an explicit
    seed, so instances and experiment tables are bit-reproducible across
    runs and machines.  SplitMix64 is tiny, fast, and passes BigCrush for
    the purposes of workload generation.

    {b Domain discipline.}  A [t] is a single mutable cell with no
    internal locking; two domains drawing from the same [t] race (and,
    worse, silently correlate).  Every parallel code path must instead
    derive one stream per domain up front with {!split} / {!split_n} —
    derivation advances the parent deterministically, so the overall run
    stays reproducible regardless of how the children are later
    scheduled.  (Audit note: every generator in this repository is
    created locally from an explicit seed — [Fp_netlist.Generator],
    [Fp_netlist.Ordering.random], [Fp_slicing.Anneal], [Fp_data.Ami33] —
    so there is no shared global stream to protect; the rule exists so
    the parallel solve layer, {!Pool}, can never introduce one.) *)

type t

val create : int -> t
(** [create seed] builds an independent stream. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val range : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val split : t -> t
(** Derive an independent child stream (advances the parent). *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent child streams — one per domain
    of a parallel section.  Advances the parent [n] times; the children
    are safe to move to other domains as long as each is then used by
    one domain only.
    @raise Invalid_argument on a negative [n]. *)
