exception Injected of string

(* Canonical site catalogue.  The single source of truth for every fault
   site shipped with the solve stack: instrumented modules register these
   names at load time, the CLI [--faults] help text renders this table,
   docs/robustness.md documents exactly these rows, and the SA007 source
   lint cross-checks all of them against each other.  Adding a site means
   adding it here first. *)
let builtin =
  [
    ( "augment.candidate_milp",
      "candidate-group MILP evaluation dies; surviving candidates, retry \
       ladder or raw warm packing decide the step" );
    ( "augment.hook",
      "inspection hook raises; contained, the run continues" );
    ( "basis.singular_lu",
      "singular LU while factorizing a warm basis; cold re-solve" );
    ( "branch_bound.budget",
      "node/time budget exhausted; retry ladder, then warm fallback" );
    ( "branch_bound.task_loss",
      "parallel frontier task lost; inline re-run, bit-identical result" );
    ( "pool.worker_exn",
      "worker domain crashes mid-task; candidate evaluation falls back to \
       sequential" );
    ( "revised.iteration_limit",
      "stalled simplex on a node LP; parent-bound retreat" );
  ]

type spec = {
  site : string;
  after : int;
  count : int;
  prob : float option;
  seed : int;
}

let spec ?(after = 0) ?(count = 1) ?prob ?(seed = 0) site =
  if after < 0 then invalid_arg "Fault.spec: after < 0";
  if count < 1 then invalid_arg "Fault.spec: count < 1";
  (match prob with
  | Some p when not (p >= 0. && p <= 1.) ->
    invalid_arg "Fault.spec: prob outside [0, 1]"
  | _ -> ());
  { site; after; count; prob; seed }

let parse s =
  let site, rest =
    match String.index_opt s '@' with
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (
      (* Allow SITExCOUNT with no @AFTER; the site itself may contain an
         'x', so only split on a final 'x' followed by digits or star. *)
      match String.rindex_opt s 'x' with
      | Some i
        when i < String.length s - 1
             && (let tail = String.sub s (i + 1) (String.length s - i - 1) in
                 tail = "*" || String.for_all (fun c -> c >= '0' && c <= '9') tail)
        -> (String.sub s 0 i, Some ("0x" ^ String.sub s (i + 1) (String.length s - i - 1)))
      | _ -> (s, None))
  in
  if site = "" then Error "empty fault site"
  else
    match rest with
    | None -> Ok (spec site)
    | Some r -> (
      let after_s, count_s =
        match String.index_opt r 'x' with
        | Some i ->
          (String.sub r 0 i, Some (String.sub r (i + 1) (String.length r - i - 1)))
        | None -> (r, None)
      in
      match int_of_string_opt after_s with
      | None -> Error (Printf.sprintf "bad fault AFTER %S" after_s)
      | Some after when after < 0 -> Error "fault AFTER < 0"
      | Some after -> (
        match count_s with
        | None -> Ok (spec ~after site)
        | Some "*" -> Ok (spec ~after ~count:max_int site)
        | Some c -> (
          match int_of_string_opt c with
          | Some count when count >= 1 -> Ok (spec ~after ~count site)
          | _ -> Error (Printf.sprintf "bad fault COUNT %S" c))))

let to_string sp =
  let base =
    let count = if sp.count = max_int then "*" else string_of_int sp.count in
    if sp.after = 0 && sp.count = 1 then sp.site
    else if sp.count = 1 then Printf.sprintf "%s@%d" sp.site sp.after
    else if sp.after = 0 then Printf.sprintf "%sx%s" sp.site count
    else Printf.sprintf "%s@%dx%s" sp.site sp.after count
  in
  match sp.prob with
  | None -> base
  | Some p -> Printf.sprintf "%s~%g:%d" base p sp.seed

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type armed_site = {
  sp : spec;
  mutable a_hits : int;
  mutable a_injections : int;
  rng : Rng.t option;  (* for probabilistic specs *)
}

let registry : (string, unit) Hashtbl.t = Hashtbl.create 16
let table : (string, armed_site) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* Fast path: number of currently armed sites.  [fire] on a fully
   disarmed harness is one atomic load. *)
let n_armed = Atomic.make 0

let register site =
  Mutex.lock lock;
  if not (Hashtbl.mem registry site) then Hashtbl.add registry site ();
  Mutex.unlock lock;
  site

let sites () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun s () acc -> s :: acc) registry [] in
  Mutex.unlock lock;
  List.sort compare all

let arm sp =
  Mutex.lock lock;
  if not (Hashtbl.mem table sp.site) then Atomic.incr n_armed;
  Hashtbl.replace table sp.site
    { sp; a_hits = 0; a_injections = 0;
      rng = Option.map (fun _ -> Rng.create sp.seed) sp.prob };
  Mutex.unlock lock

let disarm site =
  Mutex.lock lock;
  if Hashtbl.mem table site then begin
    Hashtbl.remove table site;
    Atomic.decr n_armed
  end;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Atomic.set n_armed 0;
  Mutex.unlock lock

let armed () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun _ a acc -> a.sp :: acc) table [] in
  Mutex.unlock lock;
  List.sort compare l

let fire site =
  if Atomic.get n_armed = 0 then false
  else begin
    Mutex.lock lock;
    let result =
      match Hashtbl.find_opt table site with
      | None -> false
      | Some a ->
        a.a_hits <- a.a_hits + 1;
        if a.a_hits <= a.sp.after || a.a_injections >= a.sp.count then false
        else begin
          let go =
            match (a.sp.prob, a.rng) with
            | Some p, Some rng -> Rng.float rng 1. < p
            | _ -> true
          in
          if go then a.a_injections <- a.a_injections + 1;
          go
        end
    in
    Mutex.unlock lock;
    result
  end

let trip site = if fire site then raise (Injected site)

let stat_of f site =
  Mutex.lock lock;
  let v = match Hashtbl.find_opt table site with None -> 0 | Some a -> f a in
  Mutex.unlock lock;
  v

let hits = stat_of (fun a -> a.a_hits)
let injections = stat_of (fun a -> a.a_injections)
