(* Work-stealing deque (Chase–Lev shape, fixed capacity).

   The pool's batches are fully seeded before any worker is released and
   tasks never push follow-up work, so the hard parts of the published
   algorithm (growth, bottom/buffer races on concurrent push) do not
   arise: [push] runs only during the single-threaded seeding phase,
   [pop] only in the owner, [steal] in any domain.  [top] only ever
   increases and [bottom] only decreases (owner pops), which keeps the
   empty test [top >= bottom] conservative for thieves. *)
module Deque = struct
  type 'a t = {
    buf : 'a option array;
    top : int Atomic.t;     (* next index to steal *)
    bottom : int Atomic.t;  (* one past the last pushed index *)
  }

  let create cap =
    { buf = Array.make (Int.max 1 cap) None;
      top = Atomic.make 0;
      bottom = Atomic.make 0 }

  (* Seeding phase only — not safe concurrently with [pop]/[steal]. *)
  let push d x =
    let b = Atomic.get d.bottom in
    d.buf.(b) <- Some x;
    Atomic.set d.bottom (b + 1)

  (* Owner end (LIFO). *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      (* Deque was empty; undo. *)
      Atomic.set d.bottom t;
      None
    end
    else if b > t then d.buf.(b)
    else begin
      (* Single element left: race the thieves for it. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then d.buf.(b) else None
    end

  (* Thief end (FIFO).  Retries internally on a lost CAS so [None]
     really means empty-at-some-point, which suffices because no task is
     pushed after the batch is released. *)
  let rec steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let x = d.buf.(t) in
      if Atomic.compare_and_set d.top t (t + 1) then x else steal d
    end
end

(* Fault site: a worker raising out of its task (the exception surfaces
   from [run] at the caller, like any task exception).  Sits in the pool
   wrapper, not in user tasks, so callers that catch their own task
   exceptions still see a pool-level worker failure as distinct. *)
let site_worker_exn = Fault.register "pool.worker_exn"

type batch = {
  deques : (worker:int -> unit) Deque.t array;
  abort : Abort.t option;  (* skip not-yet-started tasks once signalled *)
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work_cv : Condition.t;   (* workers wait here for a new epoch *)
  done_cv : Condition.t;   (* the caller waits here for the batch to end *)
  mutable epoch : int;
  mutable batch : batch option;
  mutable active : int;            (* spawned workers still in the batch *)
  mutable pending_exn : exn option;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let jobs t = t.n_jobs

(* Drain the batch from worker [w]'s point of view: own deque first, then
   steal round-robin.  Returns when a full scan finds every deque empty —
   final because tasks never add work.  When the batch carries an abort
   flag, tasks that have not started by the time it is signalled are
   popped and dropped unexecuted (the deques still must empty so the
   batch terminates); tasks already running observe the flag
   themselves. *)
let drain t b w =
  let j = Array.length b.deques in
  let rec next_task scanned i =
    if scanned >= j then None
    else
      match Deque.steal b.deques.((w + i) mod j) with
      | Some _ as task -> task
      | None -> next_task (scanned + 1) (i + 1)
  in
  let rec go () =
    let task =
      match Deque.pop b.deques.(w) with
      | Some _ as task -> task
      | None -> next_task 1 1
    in
    match task with
    | None -> ()
    | Some f ->
      let skip =
        match b.abort with Some a -> Abort.is_set a | None -> false
      in
      if not skip then
        (try f ~worker:w with
        | exn ->
          Mutex.lock t.mutex;
          if t.pending_exn = None then t.pending_exn <- Some exn;
          Mutex.unlock t.mutex);
      go ()
  in
  go ()

let worker_loop t w () =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.closed) && t.epoch = !my_epoch do
      Condition.wait t.work_cv t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      my_epoch := t.epoch;
      let b = Option.get t.batch in
      Mutex.unlock t.mutex;
      drain t b w;
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.mutex
    end
  done

let create ~jobs =
  let n_jobs = Int.max 1 (Int.min 64 jobs) in
  let t =
    { n_jobs;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      epoch = 0; batch = None; active = 0; pending_exn = None;
      closed = false; domains = [||] }
  in
  t.domains <- Array.init (n_jobs - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
  t

let run ?abort t ~n f =
  if t.closed then invalid_arg "Pool.run: pool is shut down";
  if n > 0 then begin
    if t.n_jobs = 1 then
      for i = 0 to n - 1 do
        let skip =
          match abort with Some a -> Abort.is_set a | None -> false
        in
        if not skip then begin
          Fault.trip site_worker_exn;
          f ~worker:0 i
        end
      done
    else begin
      (* Deal tasks round-robin; deque j holds indices j, j + jobs, ... *)
      let cap = ((n - 1) / t.n_jobs) + 1 in
      let deques = Array.init t.n_jobs (fun _ -> Deque.create cap) in
      for i = 0 to n - 1 do
        Deque.push deques.(i mod t.n_jobs) (fun ~worker ->
            Fault.trip site_worker_exn;
            f ~worker i)
      done;
      let b = { deques; abort } in
      Mutex.lock t.mutex;
      t.batch <- Some b;
      t.pending_exn <- None;
      t.epoch <- t.epoch + 1;
      t.active <- t.n_jobs - 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.mutex;
      drain t b 0;
      Mutex.lock t.mutex;
      while t.active > 0 do
        Condition.wait t.done_cv t.mutex
      done;
      t.batch <- None;
      let exn = t.pending_exn in
      t.pending_exn <- None;
      Mutex.unlock t.mutex;
      match exn with Some e -> raise e | None -> ()
    end
  end

let map t ~n f =
  let out = Array.make n None in
  run t ~n (fun ~worker i -> out.(i) <- Some (f ~worker i));
  Array.map Option.get out

let shutdown t =
  if not t.closed then begin
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
