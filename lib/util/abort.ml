type t = bool Atomic.t

exception Abort

let create () = Atomic.make false
let signal t = Atomic.set t true
let is_set t = Atomic.get t
let check t = if Atomic.get t then raise Abort
