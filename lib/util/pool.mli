(** Fixed-size domain pool with per-worker work-stealing deques.

    One pool serves a whole floorplanning run: the branch-and-bound seeds
    it with independent subtree tasks, the augmentation layer with
    candidate-group MILPs.  Workers are OCaml 5 [Domain]s spawned once at
    {!create} and parked between batches, so per-batch overhead is a
    mutex handshake, not a domain spawn.

    Scheduling: a batch of [n] tasks is dealt round-robin into one
    Chase–Lev-style deque per worker.  Each worker drains its own deque
    LIFO and, when empty, steals FIFO from the other workers, so a skewed
    batch (one huge branch-and-bound subtree next to many trivial ones)
    still keeps every domain busy.  Tasks must not submit nested batches
    to the same pool — a worker blocking on a sub-batch would deadlock
    the pool; parallelize at one level only (see docs/parallel.md).

    The calling domain participates as worker [0], so [create ~jobs]
    spawns only [jobs - 1] new domains and [jobs = 1] spawns none
    (everything runs inline, no synchronization).

    Memory model: the batch handshake is mutex-protected, so writes a
    task makes before finishing happen-before the reads the caller makes
    after {!run} returns — tasks can fill slots of a result array without
    further synchronization, as long as no two tasks share a slot. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.  [jobs] is clamped
    to [1, 64].  Values above [Domain.recommended_domain_count ()]
    oversubscribe the machine — allowed (the scaling bench measures it)
    but not useful in production. *)

val jobs : t -> int
(** Number of workers, including the calling domain. *)

val run : ?abort:Abort.t -> t -> n:int -> (worker:int -> int -> unit) -> unit
(** [run t ~n f] executes [f ~worker i] for every [i] in [0, n),
    distributing tasks over all workers; [worker] is the index (in
    [0, jobs)) of the domain that actually executes the task, for
    per-domain scratch state.  Blocks until every task has finished.  If
    tasks raise, one of the exceptions is re-raised in the caller after
    the batch has drained (the rest are dropped).

    When [abort] is given, tasks that have not started by the time the
    flag is signalled are skipped (the batch still drains and [run]
    still returns normally); tasks already running are responsible for
    observing the flag at their own safe points.  Skipping is a
    best-effort fast-path for cancellation — determinism guarantees
    only hold for batches that run to completion unsignalled.

    Must be called from the domain that created the pool, and never
    reentrantly. *)

val map : t -> n:int -> (worker:int -> int -> 'a) -> 'a array
(** [map t ~n f] is {!run} collecting results: element [i] is
    [f ~worker i]. *)

val shutdown : t -> unit
(** Join all worker domains.  The pool must not be used afterwards.
    Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and always shuts it
    down, even if [f] raises. *)
