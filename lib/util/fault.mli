(** Deterministic, seeded fault injection.

    The resilience layer of this repository promises that every failure
    mode of the solve engine — a singular LU factorization, a stalled
    simplex, an exhausted branch-and-bound budget, a lost parallel task,
    a crashing worker or hook — degrades gracefully to a certified
    feasible floorplan.  A promise like that is only worth anything if
    every recovery path can be {e exercised on demand}, from tests and
    from the bench fault matrix.  This module is the switchboard: each
    instrumented module registers its fault {e sites} by name at load
    time, and a driver arms a site with a {!spec} before a run.  The
    instrumented code then asks {!fire} ("should this hit fail?") or
    calls {!trip} (raise {!Injected}) at the site.

    Nothing is armed by default, and the disarmed fast path is a single
    atomic load, so production runs pay (almost) nothing.

    {b Determinism.}  Count-based specs ([after] / [count]) fire on
    exact hit indices, so a sequential run injects identically every
    time.  Probabilistic specs draw from a private SplitMix64 stream
    seeded by [seed]; given the same hit order the decisions replay
    exactly.  Under multiple domains the global hit order depends on
    scheduling — the {e recovery} paths are engineered to keep the final
    floorplan deterministic anyway (see docs/robustness.md).

    {b Registry.}  Sites register themselves when their module is
    initialized; linking the solve stack therefore populates
    {!sites} before [main] runs.  The registry exists so drivers (the
    bench fault matrix, [--faults] CLI validation) can enumerate every
    site without hard-coding the list. *)

exception Injected of string
(** Raised by {!trip} (and by instrumented code that chooses to fail by
    exception) with the site name. *)

val builtin : (string * string) list
(** Canonical [(site, description)] catalogue of every fault site shipped
    with the solve stack, sorted by site name.  This list is the single
    source of truth: instrumented modules {!register} exactly these
    names, the CLI [--faults] help text is rendered from it,
    [docs/robustness.md] documents these rows, and the SA007 source lint
    ([bin/fp_lint]) fails the build when a registered literal, this
    catalogue, or the docs drift apart.  {!register} stays permissive
    (tests register scratch sites), so the lint — not the runtime — is
    the enforcement point. *)

type spec = {
  site : string;
  after : int;  (** hits to let through before the fault becomes eligible
                    (default [0]: eligible from the first hit) *)
  count : int;  (** injections before the site self-disarms; [max_int]
                    never disarms (default [1]) *)
  prob : float option;
      (** when set, each eligible hit fires with this probability instead
          of unconditionally — drawn from a stream seeded by [seed] *)
  seed : int;  (** seed for the probabilistic stream (default [0]) *)
}

val spec : ?after:int -> ?count:int -> ?prob:float -> ?seed:int -> string -> spec

val parse : string -> (spec, string) result
(** Parse a CLI fault spec: [SITE], [SITE\@AFTER], [SITE\@AFTERxCOUNT],
    [SITExCOUNT] — [COUNT] may be [*] for "never disarm".  Examples:
    ["revised.iteration_limit"], ["branch_bound.budget\@3"],
    ["pool.worker_exnx*"]. Unknown sites parse fine (validation against
    {!sites} is the caller's choice — the registry depends on what is
    linked). *)

val to_string : spec -> string
(** Inverse of {!parse} (probabilistic specs render as [SITE~P:SEED],
    which {!parse} does not read back — they are API-only). *)

val register : string -> string
(** [register site] adds [site] to the registry (idempotent) and returns
    it, so instrumented modules can write
    [let site_x = Fault.register "m.x"]. *)

val sites : unit -> string list
(** Every registered site, sorted.  Complete once the instrumented
    modules are linked and initialized. *)

val arm : spec -> unit
(** Arm (or re-arm, resetting counters) the spec's site. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm every site and clear all counters.  Tests call this in
    setup/teardown. *)

val armed : unit -> spec list

val fire : string -> bool
(** Called at a fault site: records a hit and returns [true] when the
    site is armed and this hit should fail.  Thread-safe; the disarmed
    fast path does not take the lock. *)

val trip : string -> unit
(** [trip site] raises [Injected site] when {!fire} says so. *)

val hits : string -> int
(** Hits observed at a site since it was last armed ([0] if never
    armed).  For tests. *)

val injections : string -> int
(** Injections performed at a site since it was last armed. *)
