type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t bound =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992. *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let range t ~lo ~hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let split t = { state = next_int64 t }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)
