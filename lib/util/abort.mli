(** Cooperative cancellation flag shared across domains.

    A [t] is a single atomic boolean: any domain may {!signal} it, any
    number of domains may poll it with {!is_set} / {!check}.  It is the
    cancellation primitive of the solver portfolio: the racer signals
    the flag when a winner emerges, every still-running engine polls it
    at its own safe points and winds down, and {!Pool.run} skips tasks
    that have not started yet.

    Signalling is one-way and idempotent — there is no reset.  A race
    that needs a fresh flag creates a fresh [t]; reusing a signalled
    flag would cancel the next batch before it starts. *)

type t

exception Abort
(** Raised by {!check}.  Engine code that catches exceptions below a
    pool task must re-raise this one (the SA011 lint checks it) — it is
    the cooperative-interrupt signal, not a failure. *)

val create : unit -> t
(** A fresh, unsignalled flag. *)

val signal : t -> unit
(** Set the flag.  Idempotent; safe from any domain. *)

val is_set : t -> bool
(** Poll without raising. *)

val check : t -> unit
(** @raise Abort when the flag is set; otherwise a no-op. *)
