module Tol = Fp_geometry.Tol

type side = Left | Right | Bottom | Top
type pin = { module_id : int; side : side }
type t = { name : string; pins : pin list; criticality : float }

let make ?(criticality = 0.) ~name pins =
  if List.length pins < 2 then
    invalid_arg (Printf.sprintf "Net.make %s: needs at least two pins" name);
  if Tol.lt criticality 0. || Tol.gt criticality 1. then
    invalid_arg
      (Printf.sprintf "Net.make %s: criticality %g outside [0,1]" name
         criticality);
  { name; pins; criticality }

let modules t =
  List.map (fun p -> p.module_id) t.pins |> List.sort_uniq compare

let degree t = List.length t.pins

let side_to_string = function
  | Left -> "L"
  | Right -> "R"
  | Bottom -> "B"
  | Top -> "T"

let side_of_string = function
  | "L" | "l" | "left" -> Some Left
  | "R" | "r" | "right" -> Some Right
  | "B" | "b" | "bottom" -> Some Bottom
  | "T" | "t" | "top" -> Some Top
  | _ -> None

let all_sides = [ Left; Right; Bottom; Top ]

let pp ppf t =
  Format.fprintf ppf "%s(" t.name;
  List.iteri
    (fun i p ->
      if i > 0 then Format.pp_print_string ppf " ";
      Format.fprintf ppf "%d:%s" p.module_id (side_to_string p.side))
    t.pins;
  Format.fprintf ppf ")"
