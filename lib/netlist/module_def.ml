module Tol = Fp_geometry.Tol

type shape =
  | Rigid of { w : float; h : float }
  | Flexible of { area : float; min_aspect : float; max_aspect : float }

type t = { id : int; name : string; shape : shape }

let rigid ~id ~name ~w ~h =
  if Tol.leq w 0. || Tol.leq h 0. then
    invalid_arg
      (Printf.sprintf "Module_def.rigid %s: non-positive dims %gx%g" name w h);
  { id; name; shape = Rigid { w; h } }

let flexible ~id ~name ~area ~min_aspect ~max_aspect =
  if Tol.leq area 0. then
    invalid_arg
      (Printf.sprintf "Module_def.flexible %s: non-positive area %g" name area);
  if Tol.leq min_aspect 0. || Tol.lt max_aspect min_aspect then
    invalid_arg
      (Printf.sprintf
         "Module_def.flexible %s: bad aspect interval [%g, %g]" name
         min_aspect max_aspect);
  { id; name; shape = Flexible { area; min_aspect; max_aspect } }

let area t =
  match t.shape with
  | Rigid { w; h } -> w *. h
  | Flexible { area; _ } -> area

let is_flexible t =
  match t.shape with Flexible _ -> true | Rigid _ -> false

let width_range t =
  match t.shape with
  | Rigid { w; _ } -> (w, w)
  | Flexible { area; min_aspect; max_aspect } ->
    (Float.sqrt (area *. min_aspect), Float.sqrt (area *. max_aspect))

let height_for_width t w =
  match t.shape with
  | Rigid { h; _ } -> h
  | Flexible { area; _ } ->
    if Tol.leq w 0. then invalid_arg "Module_def.height_for_width: w <= 0";
    area /. w

let pp ppf t =
  match t.shape with
  | Rigid { w; h } ->
    Format.fprintf ppf "%s[#%d rigid %gx%g]" t.name t.id w h
  | Flexible { area; min_aspect; max_aspect } ->
    Format.fprintf ppf "%s[#%d flex S=%g ar=%g..%g]" t.name t.id area
      min_aspect max_aspect
