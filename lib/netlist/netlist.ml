type t = {
  nname : string;
  mods : Module_def.t array;
  netl : Net.t list;
  conn : int array array;  (* K x K symmetric, zero diagonal *)
}

let build_connectivity k netl =
  let conn = Array.make_matrix k k 0 in
  List.iter
    (fun net ->
      let ms = Net.modules net in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i <> j then conn.(i).(j) <- conn.(i).(j) + 1)
            ms)
        ms)
    netl;
  conn

let create ~name mods netl =
  let mods = Array.of_list mods in
  let k = Array.length mods in
  Array.iteri
    (fun i m ->
      if m.Module_def.id <> i then
        invalid_arg
          (Printf.sprintf "Netlist.create: module %s has id %d, expected %d"
             m.Module_def.name m.Module_def.id i))
    mods;
  List.iter
    (fun net ->
      List.iter
        (fun p ->
          let id = p.Net.module_id in
          if id < 0 || id >= k then
            invalid_arg
              (Printf.sprintf "Netlist.create: net %s references module %d"
                 net.Net.name id))
        net.Net.pins)
    netl;
  { nname = name; mods; netl; conn = build_connectivity k netl }

let name t = t.nname
let num_modules t = Array.length t.mods
let modules t = t.mods

let module_at t i =
  if i < 0 || i >= Array.length t.mods then
    invalid_arg (Printf.sprintf "Netlist.module_at: %d" i);
  t.mods.(i)

let nets t = t.netl
let num_nets t = List.length t.netl

let total_area t =
  Array.fold_left (fun a m -> a +. Module_def.area m) 0. t.mods

let connectivity t i j = t.conn.(i).(j)

let connectivity_to_set t set i =
  List.fold_left (fun a j -> a + t.conn.(i).(j)) 0 set

let module_degree t i = Array.fold_left ( + ) 0 t.conn.(i)

let pins_per_side t i =
  let l = ref 0 and r = ref 0 and b = ref 0 and tp = ref 0 in
  List.iter
    (fun net ->
      List.iter
        (fun p ->
          if p.Net.module_id = i then
            match p.Net.side with
            | Net.Left -> incr l
            | Net.Right -> incr r
            | Net.Bottom -> incr b
            | Net.Top -> incr tp)
        net.Net.pins)
    t.netl;
  (!l, !r, !b, !tp)

let nets_between t i j =
  List.filter
    (fun net ->
      let ms = Net.modules net in
      List.mem i ms && List.mem j ms)
    t.netl

let validate t =
  let k = num_modules t in
  let problems = ref [] in
  Array.iter
    (fun m ->
      if Fp_geometry.Tol.leq (Module_def.area m) 0. then
        problems :=
          Printf.sprintf "module %s has non-positive area" m.Module_def.name
          :: !problems)
    t.mods;
  List.iter
    (fun net ->
      if Net.degree net < 2 then
        problems :=
          Printf.sprintf "net %s has fewer than two pins" net.Net.name
          :: !problems;
      List.iter
        (fun p ->
          if p.Net.module_id < 0 || p.Net.module_id >= k then
            problems :=
              Printf.sprintf "net %s references unknown module %d" net.Net.name
                p.Net.module_id
              :: !problems)
        net.Net.pins)
    t.netl;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

let pp_summary ppf t =
  let flex =
    Array.fold_left
      (fun a m -> if Module_def.is_flexible m then a + 1 else a)
      0 t.mods
  in
  Format.fprintf ppf
    "%s: %d modules (%d flexible), %d nets, total area %g" t.nname
    (num_modules t) flex (num_nets t) (total_area t)
