let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type accum = {
  mutable iname : string;
  mutable rmods : Module_def.t list; (* reversed *)
  mutable rnets : (string * float * (string * Net.side) list) list;
  by_name : (string, int) Hashtbl.t;
}

let parse_float ~line what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "line %d: bad %s %S" line what s)

let ( let* ) = Result.bind

let parse_module acc ~line = function
  | [ name; "rigid"; w; h ] ->
    let* w = parse_float ~line "width" w in
    let* h = parse_float ~line "height" h in
    if Hashtbl.mem acc.by_name name then
      Error (Printf.sprintf "line %d: duplicate module %s" line name)
    else begin
      let id = List.length acc.rmods in
      (try
         acc.rmods <- Module_def.rigid ~id ~name ~w ~h :: acc.rmods;
         Hashtbl.add acc.by_name name id;
         Ok ()
       with Invalid_argument m -> Error (Printf.sprintf "line %d: %s" line m))
    end
  | [ name; "flexible"; area; lo; hi ] ->
    let* area = parse_float ~line "area" area in
    let* lo = parse_float ~line "min aspect" lo in
    let* hi = parse_float ~line "max aspect" hi in
    if Hashtbl.mem acc.by_name name then
      Error (Printf.sprintf "line %d: duplicate module %s" line name)
    else begin
      let id = List.length acc.rmods in
      (try
         acc.rmods <-
           Module_def.flexible ~id ~name ~area ~min_aspect:lo ~max_aspect:hi
           :: acc.rmods;
         Hashtbl.add acc.by_name name id;
         Ok ()
       with Invalid_argument m -> Error (Printf.sprintf "line %d: %s" line m))
    end
  | _ ->
    Error
      (Printf.sprintf
         "line %d: expected 'module NAME rigid W H' or 'module NAME flexible \
          AREA MIN MAX'"
         line)

let parse_net acc ~line = function
  | name :: rest when rest <> [] ->
    let crit, pins_toks =
      match rest with
      | first :: others when String.length first > 5
                             && String.sub first 0 5 = "crit=" ->
        (String.sub first 5 (String.length first - 5), others)
      | _ -> ("0", rest)
    in
    let* crit = parse_float ~line "criticality" crit in
    let parse_pin tok =
      match String.split_on_char ':' tok with
      | [ m; s ] -> (
        match Net.side_of_string s with
        | Some side -> Ok (m, side)
        | None -> Error (Printf.sprintf "line %d: bad side %S" line s))
      | _ -> Error (Printf.sprintf "line %d: bad pin %S (want MOD:SIDE)" line tok)
    in
    let* pins =
      List.fold_left
        (fun acc tok ->
          let* acc = acc in
          let* p = parse_pin tok in
          Ok (p :: acc))
        (Ok []) pins_toks
    in
    acc.rnets <- (name, crit, List.rev pins) :: acc.rnets;
    Ok ()
  | _ -> Error (Printf.sprintf "line %d: expected 'net NAME PIN...'" line)

let of_string text =
  let acc =
    { iname = "instance"; rmods = []; rnets = []; by_name = Hashtbl.create 64 }
  in
  let lines = String.split_on_char '\n' text in
  let* () =
    List.fold_left
      (fun st (line_no, line) ->
        let* () = st in
        match tokenize line with
        | [] -> Ok ()
        | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> Ok ()
        | "instance" :: [ name ] ->
          acc.iname <- name;
          Ok ()
        | "module" :: rest -> parse_module acc ~line:line_no rest
        | "net" :: rest -> parse_net acc ~line:line_no rest
        | tok :: _ ->
          Error (Printf.sprintf "line %d: unknown directive %S" line_no tok))
      (Ok ())
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let* nets =
    List.fold_left
      (fun st (name, crit, pins) ->
        let* acc_nets = st in
        let* pins =
          List.fold_left
            (fun st (m, side) ->
              let* ps = st in
              match Hashtbl.find_opt acc.by_name m with
              | Some id -> Ok ({ Net.module_id = id; side } :: ps)
              | None -> Error (Printf.sprintf "net %s: unknown module %S" name m))
            (Ok []) pins
        in
        try Ok (Net.make ~criticality:crit ~name (List.rev pins) :: acc_nets)
        with Invalid_argument m -> Error m)
      (Ok [])
      (List.rev acc.rnets)
  in
  try Ok (Netlist.create ~name:acc.iname (List.rev acc.rmods) (List.rev nets))
  with Invalid_argument m -> Error m

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error m -> Error m

let to_string nl =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "instance %s\n" (Netlist.name nl));
  Array.iter
    (fun m ->
      match m.Module_def.shape with
      | Module_def.Rigid { w; h } ->
        Buffer.add_string buf
          (Printf.sprintf "module %s rigid %.12g %.12g\n" m.Module_def.name w h)
      | Module_def.Flexible { area; min_aspect; max_aspect } ->
        Buffer.add_string buf
          (Printf.sprintf "module %s flexible %.12g %.12g %.12g\n"
             m.Module_def.name area min_aspect max_aspect))
    (Netlist.modules nl);
  List.iter
    (fun net ->
      Buffer.add_string buf (Printf.sprintf "net %s" net.Net.name);
      if Fp_geometry.Tol.gt net.Net.criticality 0. then
        Buffer.add_string buf (Printf.sprintf " crit=%.12g" net.Net.criticality);
      List.iter
        (fun p ->
          let m = Netlist.module_at nl p.Net.module_id in
          Buffer.add_string buf
            (Printf.sprintf " %s:%s" m.Module_def.name
               (Net.side_to_string p.Net.side)))
        net.Net.pins;
      Buffer.add_char buf '\n')
    (Netlist.nets nl);
  Buffer.contents buf

let to_file path nl =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string nl))
