let default_context =
  { Rules.known_sites = List.map fst Fp_util.Fault.builtin }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match read_file path with
  | exception Sys_error m -> Error m
  | text -> (
    let lexbuf = Lexing.from_string text in
    Lexing.set_filename lexbuf path;
    match Parse.implementation lexbuf with
    | str -> Ok str
    | exception e -> Error (Printexc.to_string e))

let roots = [ "lib"; "bin"; "bench"; "examples" ]

(* Every .ml under [root]/[sub], as root-relative '/'-paths, sorted for
   deterministic output. *)
let ml_files root =
  let found = ref [] in
  let rec visit rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun name ->
          if name <> "" && name.[0] <> '.' && name <> "_build" then
            visit (rel ^ "/" ^ name))
        (Sys.readdir abs)
    else if Filename.check_suffix rel ".ml" then found := rel :: !found
  in
  List.iter (fun r -> if Sys.file_exists (Filename.concat root r) then visit r)
    roots;
  List.sort String.compare !found

(* The shared corpus: every source file parsed exactly once, with the
   call graph and both summary fixpoints built over those same parses.
   Each consumer — syntactic rules, Interproc, Typestate, the report
   modes — reads from here instead of re-walking the tree. *)
type corpus = {
  parses : (string * (Parsetree.structure, string) result) list;
  cg : Callgraph.t;
  effects : Effects.summaries;
  typestate : Typestate.t;
  timings : (string * float) list;  (* pass name, seconds, in run order *)
}

(* [clock] defaults to a constant so lib/lint itself never reads the
   wall clock (SA004); bin/fp_lint injects [Unix.gettimeofday] for the
   [--verbose] per-pass timing report. *)
let load_corpus ?(clock = fun () -> 0.) ~root () =
  let timings = ref [] in
  let timed name f =
    let t0 = clock () in
    let r = f () in
    timings := (name, clock () -. t0) :: !timings;
    r
  in
  let parses =
    timed "parse" (fun () ->
        List.map
          (fun rel -> (rel, parse_file (Filename.concat root rel)))
          (ml_files root))
  in
  let cg =
    timed "callgraph" (fun () ->
        Callgraph.of_sources
          (List.filter_map
             (fun (rel, p) ->
               match p with Ok str -> Some (rel, str) | Error _ -> None)
             parses))
  in
  let effects = timed "effects-infer" (fun () -> Effects.infer cg) in
  let typestate = timed "typestate-infer" (fun () -> Typestate.infer cg) in
  { parses; cg; effects; typestate; timings = List.rev !timings }

let check_one ~ctx ~corpus rel str =
  let role = Rules.role_of_path rel in
  let gate (f : Finding.t) = Rules.applies f.rule ~role ~path:rel in
  let syntactic = Rules.check_structure ~ctx ~path:rel ~role str in
  let interproc =
    List.filter gate
      (Interproc.check ~cg:corpus.cg ~summaries:corpus.effects ~file:rel)
  in
  let typestate =
    List.filter gate
      (Typestate.check ~cg:corpus.cg ~t:corpus.typestate ~file:rel)
  in
  syntactic @ interproc @ typestate

let lint_file ?(ctx = default_context) ?role ~root rel =
  let role = match role with Some r -> r | None -> Rules.role_of_path rel in
  let abs = Filename.concat root rel in
  match parse_file abs with
  | Error msg ->
    [ Finding.v ~file:rel ~line:1 Finding.SA000 ("unparseable: " ^ msg) ]
  | Ok str ->
    let cg = Callgraph.of_sources [ (rel, str) ] in
    let summaries = Effects.infer cg in
    let ts = Typestate.infer cg in
    let gate (f : Finding.t) = Rules.applies f.rule ~role ~path:rel in
    let syntactic = Rules.check_structure ~ctx ~path:rel ~role str in
    let interproc =
      List.filter gate (Interproc.check ~cg ~summaries ~file:rel)
    in
    let typestate = List.filter gate (Typestate.check ~cg ~t:ts ~file:rel) in
    Finding.dedupe (syntactic @ interproc @ typestate)

let docs_robustness = "docs/robustness.md"

let lint_corpus ?(ctx = default_context) corpus =
  let registered = ref [] in
  let findings =
    List.concat_map
      (fun (rel, p) ->
        match p with
        | Error msg ->
          [ Finding.v ~file:rel ~line:1 Finding.SA000 ("unparseable: " ^ msg) ]
        | Ok str ->
          List.iter
            (fun (site, line) -> registered := (site, rel, line) :: !registered)
            (Rules.registered_sites str);
          check_one ~ctx ~corpus rel str)
      corpus.parses
  in
  (* Global SA007: the catalogue, the registrations and the docs must
     agree.  Per-file SA007 already flagged literals outside the
     catalogue; here the other two directions. *)
  let fault_ml = "lib/util/fault.ml" in
  let unregistered =
    List.filter
      (fun site -> not (List.exists (fun (s, _, _) -> s = site) !registered))
      ctx.Rules.known_sites
  in
  let f_unreg =
    List.map
      (fun site ->
        Finding.v ~file:fault_ml ~line:1 Finding.SA007
          (Printf.sprintf
             "catalogue site %S is not registered by any instrumented \
              module (dead catalogue entry?)"
             site))
      unregistered
  in
  let root_has_sources =
    List.exists (fun (rel, _) -> rel <> "") corpus.parses
  in
  let f_docs ~root =
    let doc_path = Filename.concat root docs_robustness in
    if not (Sys.file_exists doc_path) then
      if root_has_sources && ctx.Rules.known_sites <> [] then
        [ Finding.v ~file:docs_robustness ~line:1 Finding.SA007
            "docs/robustness.md is missing — every catalogue fault site \
             must be documented there" ]
      else []
    else
      let text = read_file doc_path in
      let contains site =
        (* plain substring scan *)
        let n = String.length text and m = String.length site in
        let rec go i = i + m <= n && (String.sub text i m = site || go (i + 1)) in
        m = 0 || go 0
      in
      List.filter_map
        (fun site ->
          if contains site then None
          else
            Some
              (Finding.v ~file:docs_robustness ~line:1 Finding.SA007
                 (Printf.sprintf
                    "catalogue site %S is not documented in \
                     docs/robustness.md"
                    site)))
        ctx.Rules.known_sites
  in
  (findings, f_unreg, f_docs)

let lint_tree ?(ctx = default_context) ?corpus ~root () =
  let corpus =
    match corpus with Some c -> c | None -> load_corpus ~root ()
  in
  let findings, f_unreg, f_docs = lint_corpus ~ctx corpus in
  Finding.dedupe (findings @ f_unreg @ f_docs ~root)

let effects_report ?corpus ~root () =
  let c = match corpus with Some c -> c | None -> load_corpus ~root () in
  Effects.report c.cg c.effects

let typestate_report ?corpus ~root () =
  let c = match corpus with Some c -> c | None -> load_corpus ~root () in
  Typestate.report c.cg c.typestate

let callgraph_dot ?corpus ~root () =
  let c = match corpus with Some c -> c | None -> load_corpus ~root () in
  Callgraph.to_dot c.cg
