let default_context =
  { Rules.known_sites = List.map fst Fp_util.Fault.builtin }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_file path =
  match read_file path with
  | exception Sys_error m -> Error m
  | text -> (
    let lexbuf = Lexing.from_string text in
    Lexing.set_filename lexbuf path;
    match Parse.implementation lexbuf with
    | str -> Ok str
    | exception e -> Error (Printexc.to_string e))

let roots = [ "lib"; "bin"; "bench"; "examples" ]

(* Every .ml under [root]/[sub], as root-relative '/'-paths, sorted for
   deterministic output. *)
let ml_files root =
  let found = ref [] in
  let rec visit rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun name ->
          if name <> "" && name.[0] <> '.' && name <> "_build" then
            visit (rel ^ "/" ^ name))
        (Sys.readdir abs)
    else if Filename.check_suffix rel ".ml" then found := rel :: !found
  in
  List.iter (fun r -> if Sys.file_exists (Filename.concat root r) then visit r)
    roots;
  List.sort String.compare !found

(* Parse everything once; the same parses feed the syntactic rules, the
   call graph and the effect fixpoint. *)
let parse_tree ~root =
  let files = ml_files root in
  List.map (fun rel -> (rel, parse_file (Filename.concat root rel))) files

let graph_of_parses parses =
  let sources =
    List.filter_map
      (fun (rel, p) -> match p with Ok str -> Some (rel, str) | Error _ -> None)
      parses
  in
  let cg = Callgraph.of_sources sources in
  (cg, Effects.infer cg)

let check_one ~ctx ~cg ~summaries rel str =
  let role = Rules.role_of_path rel in
  let syntactic = Rules.check_structure ~ctx ~path:rel ~role str in
  let interproc =
    List.filter
      (fun (f : Finding.t) -> Rules.applies f.rule ~role ~path:rel)
      (Interproc.check ~cg ~summaries ~file:rel)
  in
  syntactic @ interproc

let lint_file ?(ctx = default_context) ?role ~root rel =
  let role = match role with Some r -> r | None -> Rules.role_of_path rel in
  let abs = Filename.concat root rel in
  match parse_file abs with
  | Error msg ->
    [ Finding.v ~file:rel ~line:1 Finding.SA000 ("unparseable: " ^ msg) ]
  | Ok str ->
    let cg = Callgraph.of_sources [ (rel, str) ] in
    let summaries = Effects.infer cg in
    let syntactic = Rules.check_structure ~ctx ~path:rel ~role str in
    let interproc =
      List.filter
        (fun (f : Finding.t) -> Rules.applies f.rule ~role ~path:rel)
        (Interproc.check ~cg ~summaries ~file:rel)
    in
    Finding.dedupe (syntactic @ interproc)

let docs_robustness = "docs/robustness.md"

let lint_tree ?(ctx = default_context) ~root () =
  let parses = parse_tree ~root in
  let cg, summaries = graph_of_parses parses in
  let registered = ref [] in
  let findings =
    List.concat_map
      (fun (rel, p) ->
        match p with
        | Error msg ->
          [ Finding.v ~file:rel ~line:1 Finding.SA000 ("unparseable: " ^ msg) ]
        | Ok str ->
          List.iter
            (fun (site, line) -> registered := (site, rel, line) :: !registered)
            (Rules.registered_sites str);
          check_one ~ctx ~cg ~summaries rel str)
      parses
  in
  (* Global SA007: the catalogue, the registrations and the docs must
     agree.  Per-file SA007 already flagged literals outside the
     catalogue; here the other two directions. *)
  let fault_ml = "lib/util/fault.ml" in
  let unregistered =
    List.filter
      (fun site -> not (List.exists (fun (s, _, _) -> s = site) !registered))
      ctx.Rules.known_sites
  in
  let f_unreg =
    List.map
      (fun site ->
        Finding.v ~file:fault_ml ~line:1 Finding.SA007
          (Printf.sprintf
             "catalogue site %S is not registered by any instrumented \
              module (dead catalogue entry?)"
             site))
      unregistered
  in
  let f_docs =
    let doc_path = Filename.concat root docs_robustness in
    if not (Sys.file_exists doc_path) then
      if List.exists (fun r -> Sys.file_exists (Filename.concat root r)) roots
         && ctx.Rules.known_sites <> []
      then
        [ Finding.v ~file:docs_robustness ~line:1 Finding.SA007
            "docs/robustness.md is missing — every catalogue fault site \
             must be documented there" ]
      else []
    else
      let text = read_file doc_path in
      let contains site =
        (* plain substring scan *)
        let n = String.length text and m = String.length site in
        let rec go i = i + m <= n && (String.sub text i m = site || go (i + 1)) in
        m = 0 || go 0
      in
      List.filter_map
        (fun site ->
          if contains site then None
          else
            Some
              (Finding.v ~file:docs_robustness ~line:1 Finding.SA007
                 (Printf.sprintf
                    "catalogue site %S is not documented in \
                     docs/robustness.md"
                    site)))
        ctx.Rules.known_sites
  in
  Finding.dedupe (findings @ f_unreg @ f_docs)

let effects_report ~root () =
  let cg, summaries = graph_of_parses (parse_tree ~root) in
  Effects.report cg summaries

let callgraph_dot ~root () =
  let cg, _ = graph_of_parses (parse_tree ~root) in
  Callgraph.to_dot cg
