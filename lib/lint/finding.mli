(** Source-level lint findings.

    One finding is one violation of a source invariant at a
    [file:line], tagged with the rule that produced it.  Rules carry
    SA ("source analysis") codes, mirroring the ML/FL/CT code scheme
    of {!Fp_check.Diagnostic} — the two layers are complementary:
    [Fp_check] certifies {e outputs} (models and floorplans), this
    library certifies the {e source} that produces them.  SA001–SA008
    are syntactic per-file rules ({!Rules}); SA010–SA012 are
    interprocedural, grounded on the {!Callgraph} and the {!Effects}
    fixpoint ({!Interproc}); SA013–SA017 are typestate/protocol rules
    over declared DFAs ({!Typestate}).  The full catalogue with
    examples lives in [docs/static-analysis.md]. *)

type rule =
  | SA000  (** the file could not be parsed — always fatal, never baselined *)
  | SA001  (** raw float comparison outside [lib/geometry/tol.ml] *)
  | SA002  (** [Stdlib.Random] outside [lib/util/rng.ml] *)
  | SA003  (** stdout/stderr write inside [lib/] *)
  | SA004  (** wall-clock read outside the sanctioned timing sites *)
  | SA005  (** closure given to [Pool.run]/[Pool.map] directly mutates
               captured mutable state without [Atomic]/[Mutex] *)
  | SA006  (** catch-all exception handler that can swallow
               [Augment.Abort] / [Fault.Injected] *)
  | SA007  (** fault-site literal not in the canonical
               {!Fp_util.Fault.builtin} catalogue (or catalogue/docs
               drift) *)
  | SA008  (** [exit] with an integer literal outside the
               {!Fp_core.Degradation} exit-code mapping *)
  | SA010  (** deterministic-replay code (pool task bodies, [Journal])
               transitively reaches ambient RNG / clock / IO *)
  | SA011  (** a swallowing catch-all on a call path below a pool task *)
  | SA012  (** captured mutable state escapes into a pool task through
               helpers (worker-id escape, mutated-parameter flow, or
               transitive module-state mutation) *)
  | SA013  (** pool lifecycle typestate: use-after-shutdown, double
               shutdown, missing or exception-skippable shutdown *)
  | SA014  (** channel/journal lifecycle typestate: write-after-close,
               double close, missing or exception-skippable close,
               checkpoint bypassing the atomic tmp+rename path *)
  | SA015  (** commit-like sink inside a pool task not dominated by an
               [Abort.check]/[Abort.is_set] poll *)
  | SA016  (** a parent [Rng.t] sampled after [split]/[split_n] derived
               children from it (silent replay divergence) *)
  | SA017  (** read-modify-write on an [Atomic.t] as separate
               [get]/[set] instead of a CAS/[fetch_and_add] loop *)

val all_rules : rule list
(** Every rule, in code order ([SA000] excluded — it is an infrastructure
    failure, not a lintable invariant). *)

val rule_name : rule -> string
(** ["SA001"], ... *)

val rule_of_string : string -> rule option
(** Inverse of {!rule_name} (case-insensitive). *)

val rule_doc : rule -> string
(** One-line description, used by [fp_lint --list-rules]. *)

val rule_index : rule -> int
(** Numeric code, for severity-independent ordering. *)

type t = {
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;     (** 1-based *)
  rule : rule;
  msg : string;
}

val v : file:string -> line:int -> rule -> string -> t

val to_string : t -> string
(** ["file:line SA00x message"] — the grep/CI-friendly rendering. *)

val compare : t -> t -> int
(** Order by file, then line, then rule code, then message. *)

val dedupe : t list -> t list
(** One source defect, one finding: at each [file:line], keep only the
    findings of the lowest-numbered rule (the interprocedural rules
    deliberately overlap the syntactic ones; the syntactic finding
    wins).  Several findings of that same rule at one line are all kept
    — the global SA007 checks legitimately report distinct drifts at a
    file's line 1.  Output is sorted by {!compare}. *)
