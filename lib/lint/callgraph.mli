(** Module-qualified call graph over a set of parsed [.ml] files.

    Nodes are top-level value bindings, qualified by the capitalized
    file basename (["Branch_bound.run_task"]); bindings in named
    submodules keep the submodule in the path (["Pool.Deque.pop"]).
    Nested [let]s attribute to the enclosing top-level binding.
    Resolution is name-based and handles [open], [module A = M]
    aliases, and [Fp_*] dune-wrapper prefixes; unresolved names (the
    stdlib, opam libraries) carry no edges and are classified directly
    by {!Effects.prim_effect}.  See docs/static-analysis.md for the
    precision envelope. *)

type arg_head =
  | Head of string  (** rooted in a plain identifier *)
  | Global          (** module-qualified lvalue: shared module state *)
  | Opaque          (** computed — no root identifier *)

type def = {
  qname : string;
  file : string;
  line : int;
  params : (Asttypes.arg_label * string option) list;
      (** leading [fun] chain, in order; [None] = non-variable pattern *)
  body : Parsetree.expression;
}

type call = {
  callee : string;  (** resolved qname *)
  line : int;
  args : (Asttypes.arg_label * arg_head) list;
      (** [[]] for bare (non-application) references *)
}

type t

val module_of_path : string -> string
(** ["lib/milp/branch_bound.ml"] -> ["Branch_bound"]. *)

val params_of :
  Parsetree.expression -> (Asttypes.arg_label * string option) list
(** The leading [fun] chain of an expression — what {!Interproc} uses
    to treat a local helper as a definition-shaped value. *)

val of_sources : (string * Parsetree.structure) list -> t
(** Build the graph.  Paths are repo-relative; duplicate top-level
    names keep their first binding (top-level shadowing is rare). *)

val find : t -> string -> def option

val defs_order : t -> string list
(** Every definition's qname, in deterministic (file, source) order. *)

val calls : t -> string -> call list
(** Resolved outgoing edges of a definition, deduplicated per
    (callee, line). *)

val defs_in_file : t -> string -> def list
(** Definitions of one file, in source order. *)

val resolve : t -> file:string -> string list -> string option
(** Resolve an identifier path in the context of [file]'s opens and
    aliases — what {!Interproc} uses for calls inside pool closures. *)

val arg_head_of : Parsetree.expression -> arg_head

val to_dot : t -> string
(** Graphviz rendering, one node per definition ([--callgraph-dot]). *)
