(** Justification-annotated lint baseline.

    The baseline is the explicit, reviewed list of findings the
    repository has decided to live with.  Every entry {e must} carry a
    written justification — an entry without one is a load error, so
    "just silence it" is not expressible.  Format, one entry per line:

    {v
    # comment
    lib/lp/basis.ml SA001 -- LU kernel: exact-zero sparsity tests
    lib/milp/branch_bound.ml:211 SA004 -- deadline enforcement reads the clock
    v}

    A [path:line RULE] entry suppresses findings of [RULE] at exactly
    that line; a [path RULE] entry suppresses the rule for the whole
    file.  Entries that no longer match anything are {e stale} and fail
    the run (the drift check): a fixed violation must leave the baseline
    in the same commit. *)

type entry = {
  e_file : string;
  e_line : int option;  (** [None] = whole-file entry *)
  e_rule : Finding.rule;
  e_just : string;      (** non-empty justification *)
  e_src_line : int;     (** line in the baseline file, for messages *)
}

val parse : path:string -> string -> (entry list, string) result
(** Parse baseline text ([path] only labels errors).  Fails on a
    malformed line, an unknown rule code, or a missing justification. *)

val load : string -> (entry list, string) result
(** [parse] the given file.  A missing or unreadable file is an
    [Error] — the explicit way to declare an empty baseline is an empty
    (or all-comment) file, so a typo'd path can never silently pass as
    "no accepted findings". *)

val render : Finding.t list -> string
(** Render findings as a fresh baseline (line-pinned entries with
    [TODO: justify] placeholders) for [fp_lint --update]. *)

type verdict = {
  unbaselined : Finding.t list;  (** findings no entry covers *)
  stale : entry list;            (** entries covering nothing *)
}

val apply : entry list -> Finding.t list -> verdict
(** Match findings against entries.  [SA000] findings are never
    baselineable and always come back in [unbaselined]. *)
