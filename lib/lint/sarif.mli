(** SARIF 2.1.0 rendering of lint findings ([fp_lint --sarif]).

    Hand-rolled JSON (no dependency), covering the subset GitHub code
    scanning consumes: the rule catalogue, one result per finding with
    a single physical location, and [suppressions] entries carrying the
    baseline justification for findings the repository has accepted —
    the SARIF report shows every finding, suppressed or not, while the
    exit code reflects only unbaselined ones. *)

val render : ?baseline:Baseline.entry list -> Finding.t list -> string
(** One complete SARIF document (trailing newline included).  Findings
    covered by a [baseline] entry are emitted with a suppression whose
    justification is the entry's text. *)
