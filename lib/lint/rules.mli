(** The syntactic SA rule implementations: one pass of {!Ast_iterator}
    over a parsed implementation file.

    The rules here are {e syntactic} — they run on the Parsetree,
    before any typing — so each is a conservative approximation of the
    semantic invariant it guards, documented per rule in
    [docs/static-analysis.md].  The interprocedural rules (SA010–SA012)
    live in {!Interproc}, on top of {!Callgraph} and {!Effects}.
    Known-intentional violations are carried by the
    justification-annotated baseline ({!Baseline}), not by loosening
    the rules. *)

type role =
  | Lib      (** [lib/] — the solver library; strictest rule set *)
  | Bin      (** [bin/] — CLI layer; printing and timing allowed *)
  | Bench    (** [bench/] — benchmark driver *)
  | Examples (** [examples/] *)
  | Other

val role_of_path : string -> role
(** Classify a repo-relative (['/']-separated) path by its first
    component. *)

type context = { known_sites : string list }
(** Cross-file facts a single-file pass needs: the canonical fault-site
    names ({!Fp_util.Fault.builtin}) for SA007.  The driver supplies
    them; corpus tests construct their own. *)

val applies : Finding.rule -> role:role -> path:string -> bool
(** Whether [rule] is in force for a file.  Encodes the scoping and the
    sanctioned-file exemptions: SA001/SA003/SA004/SA006/SA010 are
    [Lib]-only (with [lib/geometry/tol.ml], [lib/core/augment.ml] and
    [lib/core/degradation.ml] carved out of their respective rules);
    SA002/SA005/SA007/SA008/SA011/SA012 apply to every role.  The
    {!Interproc} findings are filtered through this same table by the
    driver. *)

val check_structure :
  ctx:context ->
  path:string ->
  role:role ->
  Parsetree.structure ->
  Finding.t list
(** Run every applicable rule over one parsed file.  [path] is the
    repo-relative path used both for findings and for the exemption
    table. *)

val registered_sites : Parsetree.structure -> (string * int) list
(** [(site, line)] for every string literal passed to [Fault.register]
    in the file — input to the driver's global SA007 registry/docs
    cross-check. *)
