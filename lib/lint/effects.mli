(** Fixpoint effect inference over the {!Callgraph}.

    Each definition gets a summary over the finite lattice
    [{rng, clock, io, mutation, domain-spawn, raises-Abort,
    raises-Injected, catches-all}] plus a per-parameter mutation set.
    Direct effects come from a syntactic pass over the body; the
    fixpoint propagates along resolved call edges with monotone set
    union, so it converges on any graph (mutual recursion included) —
    the lattice is a finite powerset and {!top} is its widening bound.
    Precision notes (lock trust, alias blindness) are documented in
    the implementation header and docs/static-analysis.md. *)

type eff =
  | Rng            (** ambient randomness: [Random], [Hashtbl.randomize] *)
  | Clock          (** wall clock: [Unix.gettimeofday]/[time], [Sys.time] *)
  | Io             (** console/channel I/O *)
  | Mutation       (** mutates module-level (non-local, non-parameter) state *)
  | Spawn          (** [Domain.spawn] / [Pool.create] *)
  | Raises_abort   (** can raise [Abort] ([raise] of the constructor) *)
  | Raises_injected(** can raise [Injected] (incl. [Fault.trip]) *)
  | Catches_all    (** contains a swallowing catch-all
                       ({!Ast_util.swallowing_catch_all}) *)

val all_effects : eff list
val eff_name : eff -> string

module Eff_set : Set.S with type elt = eff

val top : Eff_set.t
(** The lattice top — every effect. *)

type cause =
  | Prim of string * int     (** primitive name, line in the definition *)
  | Through of string * int  (** callee qname, call-site line *)

type summary = {
  effs : Eff_set.t;
  causes : (eff * cause) list;   (** first cause per acquired effect *)
  mut_params : int list;         (** sorted positional indices *)
  mut_causes : (int * cause) list;
}

val empty : summary
val has : eff -> summary -> bool
val equal : summary -> summary -> bool
(** Lattice-point equality (effects and mutated parameters). *)

val prim_effect : string list -> eff option
(** Classify an unresolved identifier path ([["Unix";"gettimeofday"]]).
    A strict superset of the SA002/SA003/SA004 primitive tables — the
    interprocedural rules see [Hashtbl.randomize] or [read_line] even
    though no syntactic rule covers them. *)

val direct : Callgraph.def -> summary
(** Intraprocedural extraction: primitives, module-state and parameter
    mutation, swallowing catch-alls, [raise Abort/Injected]. *)

type summaries = (string, summary) Hashtbl.t

val infer : Callgraph.t -> summaries
(** The fixpoint.  Deterministic: iteration follows
    {!Callgraph.defs_order}. *)

val summary_of : summaries -> string -> summary
(** Lookup with {!empty} as default for unknown names. *)

val chain : summaries -> string -> eff -> string list
(** Witness path from a definition to the primitive that introduced an
    effect: [["Branch_bound.run_task"; "Branch_bound.out_of_time";
    "Unix.gettimeofday"]]. *)

val mut_chain : summaries -> string -> int -> string list
(** Witness path for a mutated parameter. *)

val report : Callgraph.t -> summaries -> string
(** The [--effects] artifact: per-module summaries over [lib/],
    line-number-free and deterministic (committed as
    docs/effects-summary.md, drift-checked in CI). *)
