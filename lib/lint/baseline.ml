type entry = {
  e_file : string;
  e_line : int option;
  e_rule : Finding.rule;
  e_just : string;
  e_src_line : int;
}

let is_space c = c = ' ' || c = '\t'

let trim = String.trim

(* "path[:line] RULE -- justification" *)
let parse_line ~path ~lineno line =
  let line = trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let err fmt =
      Printf.ksprintf (fun m -> Error (Printf.sprintf "%s:%d: %s" path lineno m)) fmt
    in
    match String.index_opt line ' ' with
    | None -> err "expected 'path[:line] RULE -- justification'"
    | Some sp -> (
      let target = String.sub line 0 sp in
      let rest = trim (String.sub line sp (String.length line - sp)) in
      let rule_s, just =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some sp2 ->
          ( String.sub rest 0 sp2,
            trim (String.sub rest sp2 (String.length rest - sp2)) )
      in
      let just =
        if String.length just >= 2 && String.sub just 0 2 = "--" then
          trim (String.sub just 2 (String.length just - 2))
        else ""
      in
      match Finding.rule_of_string rule_s with
      | None -> err "unknown rule %S" rule_s
      | Some SA000 -> err "SA000 (parse failure) cannot be baselined"
      | Some rule ->
        if just = "" then
          err "entry for %s carries no justification ('-- why')" target
        else
          let file, line_no =
            match String.rindex_opt target ':' with
            | Some i -> (
              let tail =
                String.sub target (i + 1) (String.length target - i - 1)
              in
              match int_of_string_opt tail with
              | Some n when n >= 1 -> (String.sub target 0 i, Some n)
              | _ -> (target, None))
            | None -> (target, None)
          in
          if String.exists is_space file || file = "" then
            err "bad path %S" file
          else
            Ok
              (Some
                 { e_file = file; e_line = line_no; e_rule = rule;
                   e_just = just; e_src_line = lineno }))

let parse ~path text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_line ~path ~lineno l with
      | Error _ as e -> e
      | Ok None -> go acc (lineno + 1) rest
      | Ok (Some e) -> go (e :: acc) (lineno + 1) rest)
  in
  go [] 1 lines

(* A missing baseline is an error, not an empty baseline: silently
   treating it as empty turns a typo'd --baseline path (or a deleted
   file) into "every baselined finding now fails", or worse, into a
   clean run under --update.  The explicit empty baseline is an empty
   (or all-comment) file. *)
let load path =
  if not (Sys.file_exists path) then
    Error
      (Printf.sprintf
         "%s: baseline file not found (an intentionally empty baseline \
          must exist as an empty file; check --baseline/--root)"
         path)
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error m -> Error (path ^ ": unreadable baseline: " ^ m)
    | text -> parse ~path text

let render findings =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "# fp_lint baseline — every entry must carry a justification.\n\
     # Format: path[:line] RULE -- why this violation is intentional.\n\
     # A 'path RULE' entry (no line) covers the whole file.\n\
     # Stale entries (matching nothing) fail the lint: fixing a violation\n\
     # must shrink this file in the same commit.\n";
  List.iter
    (fun (f : Finding.t) ->
      if f.rule <> Finding.SA000 then
        Buffer.add_string b
          (Printf.sprintf "%s:%d %s -- TODO: justify (%s)\n" f.file f.line
             (Finding.rule_name f.rule) f.msg))
    (List.sort_uniq Finding.compare findings);
  Buffer.contents b

type verdict = { unbaselined : Finding.t list; stale : entry list }

let covers e (f : Finding.t) =
  e.e_rule = f.rule && e.e_file = f.file
  && match e.e_line with None -> true | Some l -> l = f.line

let apply entries findings =
  let used = Array.make (List.length entries) false in
  let unbaselined =
    List.filter
      (fun (f : Finding.t) ->
        if f.rule = Finding.SA000 then true
        else begin
          let matched = ref false in
          List.iteri
            (fun i e ->
              if covers e f then begin
                used.(i) <- true;
                matched := true
              end)
            entries;
          not !matched
        end)
      findings
  in
  let stale =
    List.filteri (fun i _ -> not used.(i)) entries
  in
  { unbaselined; stale }
