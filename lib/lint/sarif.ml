(* SARIF 2.1.0 rendering of lint findings.

   Hand-rolled JSON: the repository deliberately has no JSON
   dependency, and the subset SARIF needs (objects, arrays, strings,
   ints) is small.  The schema subset emitted here is what GitHub code
   scanning consumes via codeql-action/upload-sarif:

     runs[0].tool.driver        — name, rules (id + shortDescription)
     runs[0].results            — ruleId, level, message, one physical
                                  location (artifactLocation + region)
     results[i].suppressions    — findings matched by the justification
                                  baseline are uploaded as suppressed,
                                  with the justification text, instead
                                  of being dropped: the SARIF view shows
                                  the full truth, the exit code only
                                  reflects unbaselined findings. *)

let buf_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  buf_escaped b s;
  Buffer.add_char b '"';
  Buffer.contents b

(* SA000 is an infrastructure failure and SA001..8 guard invariants
   whose violation is always a defect, so everything maps to "error";
   the baseline expresses acceptance via suppressions, not severity. *)
let level_of (_ : Finding.rule) = "error"

let rule_json r =
  Printf.sprintf
    "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"helpUri\":%s}"
    (str (Finding.rule_name r))
    (str (Finding.rule_doc r))
    (str "https://example.invalid/docs/static-analysis.md")

let result_json ~justification (f : Finding.t) =
  let suppression =
    match justification with
    | None -> ""
    | Some j ->
      Printf.sprintf
        ",\"suppressions\":[{\"kind\":\"external\",\"justification\":%s}]"
        (str j)
  in
  Printf.sprintf
    "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s,\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":%d}}}]%s}"
    (str (Finding.rule_name f.Finding.rule))
    (str (level_of f.Finding.rule))
    (str f.Finding.msg) (str f.Finding.file) f.Finding.line suppression

(* The justification for a finding, when a baseline entry covers it —
   mirrors {!Baseline.apply}'s matching (same file and rule; the entry
   is either whole-file or pinned to the finding's line). *)
let justification_for entries (f : Finding.t) =
  if f.Finding.rule = Finding.SA000 then None
  else
    List.find_map
      (fun (e : Baseline.entry) ->
        if
          e.Baseline.e_file = f.Finding.file
          && e.Baseline.e_rule = f.Finding.rule
          && match e.Baseline.e_line with
             | None -> true
             | Some l -> l = f.Finding.line
        then Some e.Baseline.e_just
        else None)
      entries

let render ?(baseline = []) findings =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"fp_lint\",\"informationUri\":\"https://example.invalid/docs/static-analysis.md\",\"rules\":[";
  Buffer.add_string b
    (String.concat "," (List.map rule_json Finding.all_rules));
  Buffer.add_string b "]}},\"results\":[";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun f ->
            result_json ~justification:(justification_for baseline f) f)
          findings));
  Buffer.add_string b "]}]}";
  Buffer.add_char b '\n';
  Buffer.contents b
