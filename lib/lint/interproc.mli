(** The interprocedural rules: SA010 (transitive replay taint reaching
    pool task bodies and [Journal] code), SA011 (a swallowing catch-all
    below a pool task), SA012 (captured mutable state escaping into
    pool tasks through helpers, superseding SA005's syntactic
    worker-escape heuristics).  Direct in-closure mutation stays SA005,
    emitted here with the same messages as before so the baseline and
    corpus stay meaningful.

    Only depth >= 1 is reported: a primitive used directly in the task
    body is the syntactic rules' finding.  Role gating is the caller's
    job ({!Driver} filters through {!Rules.applies}). *)

val arg_expr_for :
  (Asttypes.arg_label * string option) list ->
  (Asttypes.arg_label * Parsetree.expression) list ->
  int ->
  Parsetree.expression option
(** The argument expression supplying parameter [j] of a definition
    with the given parameter list: labelled arguments match by label,
    unlabelled ones positionally among the unlabelled.  Shared with
    {!Typestate}, which uses it to map tracked values at a call site
    onto the callee's per-parameter protocol summaries. *)

val check :
  cg:Callgraph.t ->
  summaries:Effects.summaries ->
  file:string ->
  Finding.t list
(** All interprocedural findings for one file of the graph, sorted.
    Pool tasks are recognized as fun literals or let-bound local
    functions passed to [Pool.run]/[Pool.map]. *)
