(* Typestate / protocol abstract interpretation over the {!Callgraph}.

   Protocols are small DFAs: a state set, events keyed on
   module-qualified calls (resolved through the same open/alias
   machinery as the call graph, {!Callgraph.resolve}), and error
   transitions.  A flow-sensitive, path-insensitive-with-merge walk
   tracks the abstract state of each tracked value — let-bound
   resources, aliases of them, values escaping into closures — through
   sequencing, branches, loops and [Fun.protect].  The walk is made
   interprocedural by per-function protocol summaries computed in the
   same monotone-fixpoint style as {!Effects}: for every definition,
   every parameter and every protocol, the summary records the relation
   a call applies to a value passed in that parameter (per start state:
   the possible exit states, the errors reachable, or "escapes").

   Three value-lifecycle protocols ride this machinery:

   - SA013 pool lifecycle      live --use--> live, live --shutdown--> down,
                               down --use / shutdown--> ERROR; a created
                               pool still live at scope exit leaks.
   - SA014 channel lifecycle   open --write--> open, open --close--> closed,
                               closed --write / close--> ERROR (close_noerr
                               after close is sanctioned); plus the
                               journal-only atomic-rename check.
   - SA016 RNG stream          fresh --sample--> fresh, --split--> split,
                               split --split--> split, split --sample-->
                               ERROR (the parent advanced; replay diverges).

   Two protocols have bespoke walks in the same module:

   - SA015 abort-before-commit: inside pool task closures, every
     commit-like sink (Journal.write, [commit*], [update_incumbent])
     must be dominated by an [Abort.check]/[Abort.is_set] poll;
     interprocedural through per-function (polls-on-all-paths,
     may-reach-sink-unpolled) summaries.
   - SA017 Atomic protocol: [Atomic.set a e] where [e] derives from
     [Atomic.get a] of the same atomic (directly or through a let
     binding) and no [compare_and_set] consumes the read — the
     load–store RMW shape that races between domains.

   Findings carry DFA-trace witnesses — the event sequence that reached
   the error state, each event with its line — rendered like the
   {!Effects} witness chains.

   Precision envelope (documented in docs/static-analysis.md): tracking
   is by local name; a resource stored into a ref/field/container,
   returned, or passed where no summary applies is {e escaped} and
   stops being checked (conservatively quiet).  Teardown obligations
   are exception-aware through one blessed shape: a teardown in the
   [~finally] of [Fun.protect] discharges the obligation on both exits;
   a teardown on the normal path after uses of the resource, outside
   any [~finally], is flagged as skippable by an exception. *)

open Parsetree
open Ast_util

(* ------------------------------------------------------------------ *)
(* Protocol declarations                                                *)
(* ------------------------------------------------------------------ *)

type dfa = {
  pname : string;                 (* protocol id used in reports *)
  rule : Finding.rule;
  what : string;                  (* noun for messages *)
  creator : string list -> bool;  (* call path producing a fresh value *)
  event_of : string list -> string option;
  states : string list;           (* non-error states *)
  canonical : string;             (* assumed entry state of tracked params *)
  step : string -> string -> string option;  (* None = error transition *)
  err : string -> string -> string;          (* state -> event -> message *)
  live : string list;             (* states owing a teardown at scope exit *)
  teardown : string list;         (* events discharging the obligation *)
}

let l2 p = match last2 p with Some ab -> Some ab | None -> None

let pool_dfa =
  {
    pname = "pool";
    rule = Finding.SA013;
    what = "pool";
    creator = (fun p -> l2 p = Some ("Pool", "create"));
    event_of =
      (fun p ->
        match l2 p with
        | Some ("Pool", ("run" | "map" | "jobs")) -> Some "use"
        | Some ("Pool", "shutdown") -> Some "shutdown"
        | _ -> None);
    states = [ "live"; "down" ];
    canonical = "live";
    step =
      (fun st ev ->
        match (st, ev) with
        | "live", "use" -> Some "live"
        | "live", "shutdown" -> Some "down"
        | "down", _ -> None
        | _ -> Some st);
    err =
      (fun st ev ->
        match (st, ev) with
        | "down", "use" -> "pool used after Pool.shutdown"
        | "down", "shutdown" -> "pool shut down twice"
        | _ -> "pool protocol violation");
    live = [ "live" ];
    teardown = [ "shutdown" ];
  }

(* Both channel directions in one DFA: the events never overlap, and a
   finding names the primitive anyway. *)
let chan_dfa =
  let openers =
    [ "open_out"; "open_out_bin"; "open_out_gen"; "open_in"; "open_in_bin";
      "open_in_gen" ]
  and writers =
    [ "output_string"; "output_char"; "output_byte"; "output_bytes";
      "output_value"; "output_substring"; "flush"; "seek_out"; "pos_out" ]
  and readers =
    [ "input_line"; "input_char"; "input_byte"; "input_value";
      "really_input_string"; "in_channel_length"; "seek_in"; "pos_in";
      "input" ]
  in
  {
    pname = "chan";
    rule = Finding.SA014;
    what = "channel";
    creator = (fun p -> match p with [ x ] -> List.mem x openers | _ -> false);
    event_of =
      (fun p ->
        match p with
        | [ x ] when List.mem x writers || List.mem x readers -> Some "io"
        | [ ("close_out" | "close_in") ] -> Some "close"
        | [ ("close_out_noerr" | "close_in_noerr") ] -> Some "close_noerr"
        | [ "Printf"; "fprintf" ] -> Some "io"
        | _ -> None);
    states = [ "open"; "closed" ];
    canonical = "open";
    step =
      (fun st ev ->
        match (st, ev) with
        | "open", "io" -> Some "open"
        | "open", ("close" | "close_noerr") -> Some "closed"
        | "closed", "close_noerr" -> Some "closed"
        | "closed", ("io" | "close") -> None
        | _ -> Some st);
    err =
      (fun st ev ->
        match (st, ev) with
        | "closed", "io" -> "channel used after close"
        | "closed", "close" -> "channel closed twice"
        | _ -> "channel protocol violation");
    live = [ "open" ];
    teardown = [ "close"; "close_noerr" ];
  }

let rng_dfa =
  {
    pname = "rng";
    rule = Finding.SA016;
    what = "RNG stream";
    creator =
      (fun p ->
        match l2 p with
        | Some ("Rng", ("create" | "copy" | "split")) -> true
        | _ -> false);
    event_of =
      (fun p ->
        match l2 p with
        | Some ("Rng", ("split" | "split_n")) -> Some "split"
        | Some
            ( "Rng",
              ( "int" | "float" | "bool" | "range" | "next_int64" | "shuffle"
              | "shuffle_list" ) ) ->
          Some "sample"
        | _ -> None);
    states = [ "fresh"; "split" ];
    canonical = "fresh";
    step =
      (fun st ev ->
        match (st, ev) with
        | "fresh", "sample" -> Some "fresh"
        | _, "split" -> Some "split"
        | "split", "sample" -> None
        | _ -> Some st);
    err =
      (fun st ev ->
        match (st, ev) with
        | "split", "sample" ->
          "parent Rng.t sampled after split/split_n derived children from \
           it — the parent stream advanced, so replay silently diverges; \
           sample before splitting or use a dedicated child stream"
        | _ -> "RNG stream protocol violation");
    live = [];
    teardown = [];
  }

let dfas = [| pool_dfa; chan_dfa; rng_dfa |]
let n_dfas = Array.length dfas

(* ------------------------------------------------------------------ *)
(* Summaries                                                            *)
(* ------------------------------------------------------------------ *)

(* What a call does to a value passed in one parameter, per protocol.
   [errs] holds only errors reachable from a non-canonical start state:
   errors from the canonical state are the callee's own finding at its
   own line (the check pass emits them there), not the call site's. *)
type rel_entry = {
  from_ : string;
  exits : string list;                 (* sorted *)
  errs : (string * string list) list;  (* message, callee-side trace *)
}

(* Absence from the table means identity: the parameter never meets
   this protocol. *)
type action =
  | Rel of rel_entry list
  | Esc                   (* escapes inside the callee: stop tracking *)

type summaries = (string * int * int, action) Hashtbl.t
(* keyed by (qname, dfa index, param index) *)

(* SA015 per-function summary. *)
type abort_sum = {
  polls_all : bool;  (* every path through the body polls the abort flag *)
  unpolled_sink : (string * string list) option;
      (* a commit-like sink reachable with no poll before it: sink
         name, witness chain *)
}

(* ------------------------------------------------------------------ *)
(* The store: abstract state of tracked values                          *)
(* ------------------------------------------------------------------ *)

module SM = Map.Make (String)
module IM = Map.Make (Int)

type origin = Created | Param of int * string  (* index, start state *)

type conf = { o : origin; st : string; tr : string list (* reversed *) }

type cell = {
  dfa : int;
  confs : conf list;     (* deduped by (o, st); first trace wins *)
  escaped : bool;
  protected_ : bool;     (* teardown seen in a Fun.protect ~finally *)
  uses : int;            (* non-teardown events applied so far *)
  born : int;            (* creation line (0 for params) *)
}

let conf_mem c cs = List.exists (fun c' -> c'.o = c.o && c'.st = c.st) cs

let conf_union a b =
  List.fold_left (fun acc c -> if conf_mem c acc then acc else c :: acc) a b

let join_cell a b =
  {
    a with
    confs = conf_union a.confs b.confs;
    escaped = a.escaped || b.escaped;
    protected_ = a.protected_ || b.protected_;
    uses = Int.max a.uses b.uses;
  }

let join_store s1 s2 =
  IM.union (fun _ a b -> Some (join_cell a b)) s1 s2

(* ------------------------------------------------------------------ *)
(* The walk                                                             *)
(* ------------------------------------------------------------------ *)

type wctx = {
  cg : Callgraph.t;
  file : string;
  sums : summaries;
  emit : int -> Finding.rule -> string -> unit;  (* no-op in summary mode *)
  summary_mode : bool;
  errors : (int * int, (string * string * string list) list) Hashtbl.t;
      (* summary mode: (dfa, param) -> (start state, msg, trace) *)
}

let ev_label path line = String.concat "." path ^ ":" ^ string_of_int line

let render_trace tr = String.concat " -> " (List.rev tr)

(* The call path, both syntactically and resolved through the file's
   opens/aliases, so [shutdown t] inside pool.ml and
   [Fp_util.Pool.shutdown t] elsewhere both classify. *)
let call_paths ctx p =
  match Callgraph.resolve ctx.cg ~file:ctx.file p with
  | Some q -> [ p; String.split_on_char '.' q ]
  | None -> [ p ]

let classify_event ctx dfa p =
  List.find_map dfa.event_of (call_paths ctx p)

let classify_creator ctx dfa p =
  List.exists dfa.creator (call_paths ctx p)

(* Strip a [fun () -> e] / [fun _ -> e] thunk one level. *)
let strip_thunk e =
  match e.pexp_desc with Pexp_fun (_, _, _, b) -> b | _ -> e

(* Strip a definition's whole leading [fun] chain — the part
   {!Callgraph.params_of} turned into the parameter list.  Walking a
   def body must start below it: the chain's patterns are exactly the
   params {!bind_params} just bound, and the closure-shaped walk case
   would shadow them away again (and join the store as may-run). *)
let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> strip_params body
  | Pexp_constraint (body, _) -> strip_params body
  | _ -> e

let first_unlabelled args =
  List.find_map
    (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
    args

let labelled name args =
  List.find_map
    (fun (l, a) ->
      match l with
      | Asttypes.Labelled n | Asttypes.Optional n when n = name -> Some a
      | _ -> None)
    args

let tracked_ident env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> (
    match SM.find_opt s env with Some id -> Some (s, id) | None -> None)
  | _ -> None

let record_error ctx cell c msg tr =
  match c.o with
  | Param (j, s0) when ctx.summary_mode ->
    let key = (cell.dfa, j) in
    let prev = Option.value ~default:[] (Hashtbl.find_opt ctx.errors key) in
    if not (List.exists (fun (s, _, _) -> s = s0) prev) then
      Hashtbl.replace ctx.errors key ((s0, msg, tr) :: prev)
  | _ -> ()

(* Apply one event to a cell; returns the updated cell, emitting (or
   recording) error transitions.  After an error the cell stops being
   tracked — one witness per defect, no cascades. *)
let apply_event ctx line label id cell ev store =
  let dfa = dfas.(cell.dfa) in
  let errored = ref false in
  let confs =
    List.filter_map
      (fun c ->
        match dfa.step c.st ev with
        | Some st' ->
          Some { c with st = st'; tr = (label ^ ":" ^ string_of_int line) :: c.tr }
        | None ->
          errored := true;
          let tr = (label ^ ":" ^ string_of_int line) :: c.tr in
          let bare = dfa.err c.st ev in
          let full =
            Printf.sprintf "%s — protocol trace: %s" bare (render_trace tr)
          in
          (match c.o with
          | Created -> ctx.emit line dfa.rule full
          | Param (_, s0) ->
            if s0 = dfa.canonical && not ctx.summary_mode then
              ctx.emit line dfa.rule full
            else record_error ctx cell c bare (List.rev tr));
          None)
      cell.confs
  in
  (* Exception-safety of the teardown: closing after uses, outside any
     [~finally], leaks when a use raises. *)
  if
    List.mem ev dfa.teardown
    && (not ctx.summary_mode)
    && (not cell.protected_)
    && cell.uses > 0
    && List.exists (fun c -> List.mem c.st dfa.live) cell.confs
  then
    ctx.emit line dfa.rule
      (Printf.sprintf
         "%s %s here can be skipped if an earlier use raises — wrap the \
          uses in Fun.protect ~finally:(fun () -> %s ...)"
         dfa.what label label);
  let uses =
    if List.mem ev dfa.teardown then cell.uses else cell.uses + 1
  in
  (* In check mode an errored cell stops being tracked — one witness
     per defect, no cascades.  In summary mode only the erroring start
     state's conf is dropped (already filtered above): the other start
     states must keep accumulating their relation. *)
  let cell' =
    if !errored && not ctx.summary_mode then
      { cell with confs; uses; escaped = true }
    else { cell with confs; uses }
  in
  IM.add id cell' store

let escape id store =
  match IM.find_opt id store with
  | Some cell -> IM.add id { cell with escaped = true } store
  | None -> store

(* Apply a callee's summary action for (q, param j) to a tracked arg. *)
let apply_summary ctx line q id cell j store =
  match Hashtbl.find_opt ctx.sums (q, cell.dfa, j) with
  | None -> store
  | Some Esc -> escape id store
  | Some (Rel entries) ->
    let dfa = dfas.(cell.dfa) in
    let label = q ^ ":" ^ string_of_int line in
    let errored = ref false in
    let confs =
      List.concat_map
        (fun c ->
          match List.find_opt (fun e -> e.from_ = c.st) entries with
          | None -> [ c ]
          | Some e ->
            if e.errs <> [] && c.st <> dfa.canonical then begin
              errored := true;
              List.iter
                (fun (bare, sub) ->
                  let tr = List.rev_append (label :: c.tr) sub in
                  let full =
                    Printf.sprintf "%s — protocol trace: %s" bare
                      (String.concat " -> " tr)
                  in
                  match c.o with
                  | Created -> ctx.emit line dfa.rule full
                  | Param (_, s0) ->
                    if s0 = dfa.canonical && not ctx.summary_mode then
                      ctx.emit line dfa.rule full
                    else record_error ctx cell c bare tr)
                e.errs
            end;
            List.map (fun st -> { c with st; tr = label :: c.tr }) e.exits)
        cell.confs
    in
    let confs =
      List.fold_left
        (fun acc c -> if conf_mem c acc then acc else c :: acc)
        [] confs
    in
    let touched =
      List.exists
        (fun e -> e.exits <> [ e.from_ ] || e.errs <> [])
        entries
    in
    let cell' =
      {
        cell with
        confs;
        uses = (if touched then cell.uses + 1 else cell.uses);
        escaped =
          cell.escaped || (!errored && not ctx.summary_mode);
      }
    in
    IM.add id cell' store

(* Does [fin] apply a teardown event to the variable bound to [id]? *)
let finally_tears ctx env fin id =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply (f, args) -> (
            match ident_path f with
            | Some p -> (
              match tracked_ident env (Option.value (first_unlabelled args)
                                         ~default:ex) with
              | Some (_, id') when id' = id ->
                Array.iteri
                  (fun i dfa ->
                    ignore i;
                    match classify_event ctx dfa p with
                    | Some ev when List.mem ev dfa.teardown -> found := true
                    | _ -> ())
                  dfas
              | _ -> ())
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it fin;
  !found

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

(* The journal atomic-rename check: every [open_out*] in journal.ml
   must target the [.tmp] sibling that [Sys.rename] later moves into
   place. *)
let mentions_tmp_literal e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _))
            when String.length s >= 4
                 && String.sub s (String.length s - 4) 4 = ".tmp" ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let rec walk ctx ~in_finally env store e =
  let walk' = walk ctx ~in_finally in
  match e.pexp_desc with
  | Pexp_let (_, vbs, body) ->
    (* A plain [let y = x] alias must not be walked as an expression:
       the bare tracked ident would count as an escape.  Every other
       right-hand side is walked normally. *)
    let is_alias vb =
      match (pat_vars [] vb.pvb_pat, vb.pvb_expr.pexp_desc) with
      | [ _ ], Pexp_ident { txt = Longident.Lident m; _ } ->
        SM.mem m env
      | _ -> false
    in
    let store =
      List.fold_left
        (fun s vb -> if is_alias vb then s else walk' env s vb.pvb_expr)
        store vbs
    in
    let env', created, store =
      List.fold_left
        (fun (env', created, store) vb ->
          match pat_vars [] vb.pvb_pat with
          | [ n ] -> (
            let rhs =
              match vb.pvb_expr.pexp_desc with
              | Pexp_constraint (e', _) -> e'
              | _ -> vb.pvb_expr
            in
            match rhs.pexp_desc with
            | Pexp_apply (f, _) -> (
              match ident_path f with
              | Some p -> (
                let line = line_of vb.pvb_expr.pexp_loc in
                match
                  List.find_opt
                    (fun i -> classify_creator ctx dfas.(i) p)
                    (List.init n_dfas Fun.id)
                with
                | Some di ->
                  let id = fresh_id () in
                  let label = ev_label p line in
                  let cell =
                    {
                      dfa = di;
                      confs =
                        [ { o = Created;
                            st = dfas.(di).canonical;
                            tr = [ label ] } ];
                      escaped = false;
                      protected_ = false;
                      uses = 0;
                      born = line;
                    }
                  in
                  (SM.add n id env', (n, id) :: created, IM.add id cell store)
                | None -> (SM.remove n env', created, store))
              | None -> (SM.remove n env', created, store))
            | Pexp_ident { txt = Longident.Lident m; _ } -> (
              (* Alias: both names share the cell. *)
              match SM.find_opt m env with
              | Some id -> (SM.add n id env', created, store)
              | None -> (SM.remove n env', created, store))
            | _ -> (SM.remove n env', created, store))
          | vars ->
            (List.fold_left (fun e v -> SM.remove v e) env' vars, created,
             store))
        (env, [], store) vbs
    in
    let store = walk' env' store body in
    (* Scope exit: a created resource still owing its teardown leaks. *)
    if not ctx.summary_mode then
      List.iter
        (fun (_, id) ->
          match IM.find_opt id store with
          | Some cell when not cell.escaped ->
            let dfa = dfas.(cell.dfa) in
            let live_confs =
              List.filter (fun c -> List.mem c.st dfa.live) cell.confs
            in
            if live_confs <> [] && dfa.live <> [] then
              let all_live =
                List.for_all (fun c -> List.mem c.st dfa.live) cell.confs
              in
              let tear = String.concat "/" dfa.teardown in
              ctx.emit cell.born dfa.rule
                (Printf.sprintf
                   "%s created here is %s on %s path before going out of \
                    scope — protocol trace: %s"
                   dfa.what
                   (if all_live then "never " ^ tear else "not " ^ tear)
                   (if all_live then "any" else "every")
                   (render_trace (List.hd live_confs).tr))
          | _ -> ())
        created;
    store
  | Pexp_ident { txt = Longident.Lident s; _ } -> (
    match SM.find_opt s env with
    | Some id -> escape id store
    | None -> store)
  | Pexp_apply _ -> walk_apply ctx ~in_finally env store e
  | Pexp_sequence (a, b) ->
    let store = walk' env store a in
    walk' env store b
  | Pexp_ifthenelse (c, a, b) ->
    let store = walk' env store c in
    let s1 = walk' env store a in
    let s2 = match b with Some b -> walk' env store b | None -> store in
    join_store s1 s2
  | Pexp_match (scrut, cases) ->
    let store = walk' env store scrut in
    walk_cases ctx ~in_finally env store cases
  | Pexp_try (scrut, cases) ->
    let s0 = walk' env store scrut in
    (* Handlers can run from any prefix of the body: join pre/post. *)
    let s1 = walk_cases ctx ~in_finally env (join_store store s0) cases in
    join_store s0 s1
  | Pexp_function cases ->
    (* A closure value: its body may run zero or more times. *)
    join_store store (walk_cases ctx ~in_finally env store cases)
  | Pexp_fun (_, dflt, pat, body) ->
    let store =
      match dflt with Some d -> walk' env store d | None -> store
    in
    let env' =
      List.fold_left (fun e v -> SM.remove v e) env (pat_vars [] pat)
    in
    join_store store (walk ctx ~in_finally env' store body)
  | Pexp_while (c, body) ->
    let s0 = walk' env store c in
    let s1 = join_store s0 (walk' env s0 body) in
    join_store s1 (walk' env s1 body)
  | Pexp_for (pat, lo, hi, _, body) ->
    let store = walk' env store lo in
    let store = walk' env store hi in
    let env' =
      List.fold_left (fun e v -> SM.remove v e) env (pat_vars [] pat)
    in
    let s1 = join_store store (walk ctx ~in_finally env' store body) in
    join_store s1 (walk ctx ~in_finally env' s1 body)
  | _ ->
    List.fold_left (fun s e' -> walk' env s e') store (sub_exprs e)

and walk_cases ctx ~in_finally env store cases =
  match cases with
  | [] -> store
  | _ ->
    let branches =
      List.map
        (fun c ->
          let env' =
            List.fold_left
              (fun e v -> SM.remove v e)
              env
              (pat_vars [] c.pc_lhs)
          in
          let s =
            match c.pc_guard with
            | Some g -> walk ctx ~in_finally env' store g
            | None -> store
          in
          walk ctx ~in_finally env' s c.pc_rhs)
        cases
    in
    List.fold_left join_store (List.hd branches) (List.tl branches)

and walk_apply ctx ~in_finally env store e =
  (* Flatten [f x @@ y] / [y |> f x] into one application. *)
  let rec flat e extra =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ "@@" ] -> (
        match args with
        | [ (_, g); (_, x) ] -> flat g [ (Asttypes.Nolabel, x) ]
        | _ -> (f, args @ extra))
      | Some [ "|>" ] -> (
        match args with
        | [ (_, x); (_, g) ] -> flat g [ (Asttypes.Nolabel, x) ]
        | _ -> (f, args @ extra))
      | _ -> (f, args @ extra))
    | _ -> (e, extra)
  in
  let f, args = flat e [] in
  match ident_path f with
  | Some [ "Fun"; "protect" ] -> (
    let fin = labelled "finally" args in
    let body = first_unlabelled args in
    match (fin, body) with
    | Some fin, Some body ->
      (* The finally's teardowns are exception-safe: discharge the
         obligation before walking the protected body. *)
      let store =
        SM.fold
          (fun _ id s ->
            match IM.find_opt id s with
            | Some cell
              when (not cell.protected_) && finally_tears ctx env fin id ->
              IM.add id { cell with protected_ = true } s
            | _ -> s)
          env store
      in
      let store =
        walk ctx ~in_finally env store (strip_thunk body)
      in
      walk ctx ~in_finally:true env store (strip_thunk fin)
    | _ ->
      List.fold_left
        (fun s (_, a) -> walk ctx ~in_finally env s a)
        store args)
  | Some p ->
    let line = line_of e.pexp_loc in
    (* Which args does an event/summary consume (so they are not walked
       as escapes)? *)
    let consumed = ref [] in
    let store = ref store in
    (* 1. protocol events on a tracked first unlabelled argument *)
    (match first_unlabelled args with
    | Some a0 -> (
      match tracked_ident env a0 with
      | Some (_, id) -> (
        match IM.find_opt id !store with
        | Some cell when not cell.escaped -> (
          match classify_event ctx dfas.(cell.dfa) p with
          | Some ev ->
            consumed := a0 :: !consumed;
            let label =
              match l2 p with
              | Some (a, b) -> a ^ "." ^ b
              | None -> String.concat "." p
            in
            store := apply_event ctx line label id cell ev !store
          | None -> ())
        | _ -> ())
      | None -> ())
    | None -> ());
    (* 2. resolved calls: apply per-parameter summaries to tracked args *)
    (match Callgraph.resolve ctx.cg ~file:ctx.file p with
    | Some q -> (
      match Callgraph.find ctx.cg q with
      | Some d ->
        List.iteri
          (fun j _ ->
            match Interproc.arg_expr_for d.Callgraph.params args j with
            | Some a when not (List.memq a !consumed) -> (
              match tracked_ident env a with
              | Some (_, id) -> (
                match IM.find_opt id !store with
                | Some cell when not cell.escaped ->
                  consumed := a :: !consumed;
                  store := apply_summary ctx line q id cell j !store
                | _ -> ())
              | None -> ())
            | _ -> ())
          d.Callgraph.params
      | None -> ())
    | None -> ());
    List.fold_left
      (fun s (_, a) ->
        if List.memq a !consumed then s else walk ctx ~in_finally env s a)
      !store args
  | None ->
    let store = walk ctx ~in_finally env store f in
    List.fold_left
      (fun s (_, a) -> walk ctx ~in_finally env s a)
      store args

(* ------------------------------------------------------------------ *)
(* Per-definition driver                                                *)
(* ------------------------------------------------------------------ *)

(* Bind the named parameters of [d] as tracked values.  In summary mode
   every non-error state is a start; in check mode only the canonical
   one (what a caller should pass). *)
let bind_params ~summary_mode (d : Callgraph.def) di =
  let dfa = dfas.(di) in
  let states = if summary_mode then dfa.states else [ dfa.canonical ] in
  let env, store, ids =
    List.fold_left
      (fun (env, store, ids) (j, name) ->
        match name with
        | None -> (env, store, ids)
        | Some n ->
          let id = fresh_id () in
          let confs =
            List.map (fun s -> { o = Param (j, s); st = s; tr = [] }) states
          in
          ( SM.add n id env,
            IM.add id
              { dfa = di; confs; escaped = false; protected_ = false;
                uses = 0; born = d.Callgraph.line }
              store,
            (j, id) :: ids ))
      (SM.empty, IM.empty, [])
      (List.mapi (fun j (_, n) -> (j, n)) d.Callgraph.params)
  in
  (env, store, List.rev ids)

(* Does the body syntactically mention any event/creator of [dfa], or
   call a definition that already has a summary for it?  Cheap gate so
   the fixpoint only walks relevant definitions. *)
let relevant cg sums (d : Callgraph.def) di =
  let dfa = dfas.(di) in
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            let p = norm (flatten txt) in
            if dfa.creator p || dfa.event_of p <> None then found := true)
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it d.Callgraph.body;
  !found
  || List.exists
       (fun (c : Callgraph.call) ->
         Hashtbl.length sums > 0
         && List.exists
              (fun j -> Hashtbl.mem sums (c.Callgraph.callee, di, j))
              (List.init 8 Fun.id))
       (Callgraph.calls cg d.Callgraph.qname)

let summarize_def cg sums (d : Callgraph.def) di =
  let errors = Hashtbl.create 4 in
  let ctx =
    { cg; file = d.Callgraph.file; sums; emit = (fun _ _ _ -> ());
      summary_mode = true; errors }
  in
  let env, store, ids = bind_params ~summary_mode:true d di in
  if ids = [] then []
  else begin
    let store =
      walk ctx ~in_finally:false env store (strip_params d.Callgraph.body)
    in
    List.filter_map
      (fun (j, id) ->
        match IM.find_opt id store with
        | None -> None
        | Some cell ->
          if cell.escaped then Some (j, Esc)
          else
            let entries =
              List.map
                (fun s0 ->
                  let exits =
                    List.sort_uniq String.compare
                      (List.filter_map
                         (fun c ->
                           match c.o with
                           | Param (j', s) when j' = j && s = s0 -> Some c.st
                           | _ -> None)
                         cell.confs)
                  in
                  let errs =
                    match Hashtbl.find_opt errors (di, j) with
                    | None -> []
                    | Some l ->
                      List.filter_map
                        (fun (s, msg, tr) ->
                          if s = s0 then Some (msg, tr) else None)
                        l
                  in
                  { from_ = s0; exits; errs })
                dfas.(di).states
            in
            let identity =
              List.for_all
                (fun e -> e.exits = [ e.from_ ] && e.errs = [])
                entries
            in
            if identity then None else Some (j, Rel entries))
      ids
  end

let merge_action a b =
  match (a, b) with
  | Esc, _ | _, Esc -> Esc
  | Rel ea, Rel eb ->
    Rel
      (List.map
         (fun e ->
           match List.find_opt (fun e' -> e'.from_ = e.from_) eb with
           | None -> e
           | Some e' ->
             {
               e with
               exits = List.sort_uniq String.compare (e.exits @ e'.exits);
               errs =
                 e.errs
                 @ List.filter
                     (fun (m, _) ->
                       not (List.exists (fun (m', _) -> m' = m) e.errs))
                     e'.errs;
             })
         ea)

let action_equal a b =
  match (a, b) with
  | Esc, Esc -> true
  | Rel ea, Rel eb ->
    List.length ea = List.length eb
    && List.for_all2
         (fun x y ->
           x.from_ = y.from_ && x.exits = y.exits
           && List.length x.errs = List.length y.errs)
         ea eb
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SA015: abort-before-commit                                           *)
(* ------------------------------------------------------------------ *)

let sink_of ctx p =
  List.find_map
    (fun path ->
      match last2 path with
      | Some ("Journal", "write") -> Some "Journal.write"
      | _ -> (
        match List.rev path with
        | fn :: _
          when fn = "update_incumbent"
               || (String.length fn >= 6 && String.sub fn 0 6 = "commit") ->
          Some (String.concat "." path)
        | _ -> None))
    (call_paths ctx p)

let is_poll ctx p =
  List.exists
    (fun path ->
      match last2 path with
      | Some ("Abort", ("check" | "is_set")) -> true
      | _ -> false)
    (call_paths ctx p)

(* Walk a body threading the "abort polled" flag; [report] is called on
   each sink reached while unpolled.  Returns whether every exit path
   has polled. *)
let abort_walk ctx asums ~local_fns ~report e0 =
  let visited = Hashtbl.create 4 in
  let rec go checked e =
    match e.pexp_desc with
    | Pexp_sequence (a, b) -> go (go checked a) b
    | Pexp_let (_, vbs, body) ->
      let c = List.fold_left (fun c vb -> go c vb.pvb_expr) checked vbs in
      go c body
    | Pexp_ifthenelse (c, a, b) ->
      let c0 = go checked c in
      let ca = go c0 a in
      let cb = match b with Some b -> go c0 b | None -> c0 in
      ca && cb
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      (* Each branch resumes from the scrutinee's flag; the join is
         polled iff every branch is (a poll in the scrutinee makes each
         branch start — and therefore end — polled). *)
      let c0 = go checked s in
      List.fold_left
        (fun acc c ->
          let cg = match c.pc_guard with Some g -> go c0 g | None -> c0 in
          go cg c.pc_rhs && acc)
        (cases <> []) cases
      || c0
    | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
      ignore (go checked body);
      checked
    | Pexp_function cases ->
      List.iter (fun c -> ignore (go checked c.pc_rhs)) cases;
      checked
    | Pexp_while (c, b) | Pexp_for (_, c, b, _, _) ->
      let c0 = go checked c in
      ignore (go c0 b);
      c0
    | Pexp_apply (f, args) -> (
      let line = line_of e.pexp_loc in
      let checked' =
        List.fold_left (fun c (_, a) -> go c a) checked args
      in
      match ident_path f with
      | Some p ->
        if is_poll ctx p then true
        else begin
          (match sink_of ctx p with
          | Some name when not checked' -> report line name [ name ]
          | _ -> ());
          (match p with
          | [ g ] when List.mem_assoc g local_fns ->
            if not (Hashtbl.mem visited g) then begin
              Hashtbl.add visited g ();
              ignore
                (go_local checked' line g (List.assoc g local_fns))
            end
          | _ -> ());
          match Callgraph.resolve ctx.cg ~file:ctx.file p with
          | Some q -> (
            match Hashtbl.find_opt asums q with
            | Some s ->
              (if not checked' then
                 match s.unpolled_sink with
                 | Some (name, chain) ->
                   report line name ((q ^ ":" ^ string_of_int line) :: chain)
                 | None -> ());
              checked' || s.polls_all
            | None -> checked')
          | None -> checked'
        end
      | None -> checked')
    | _ ->
      List.fold_left (fun c e' -> go c e') checked (sub_exprs e)
  and go_local checked _line _g ge = go checked ge in
  go false e0

let abort_summarize cg asums (d : Callgraph.def) =
  let sink = ref None in
  let ctx =
    { cg; file = d.Callgraph.file; sums = Hashtbl.create 0;
      emit = (fun _ _ _ -> ()); summary_mode = true;
      errors = Hashtbl.create 0 }
  in
  let report _line name chain =
    if !sink = None then sink := Some (name, chain)
  in
  let polls_all =
    abort_walk ctx asums ~local_fns:[] ~report
      (strip_params d.Callgraph.body)
  in
  { polls_all; unpolled_sink = !sink }

let abort_sum_equal a b =
  a.polls_all = b.polls_all
  && (match (a.unpolled_sink, b.unpolled_sink) with
     | None, None -> true
     | Some (n, _), Some (n', _) -> n = n'
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* SA017: Atomic read-modify-write as separate get/set                  *)
(* ------------------------------------------------------------------ *)

(* Render the target of an Atomic op as a stable key: [x], [d.bottom],
   [sh.sh_best].  [None] for computed targets. *)
let rec atomic_key e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (norm (flatten txt)))
  | Pexp_field (e', { txt; _ }) -> (
    match (atomic_key e', List.rev (flatten txt)) with
    | Some base, fld :: _ -> Some (base ^ "." ^ fld)
    | _ -> None)
  | Pexp_constraint (e', _) -> atomic_key e'
  | _ -> None

(* Atomic.get applications inside [e], as (key, line). *)
let atomic_gets e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply (f, (_, tgt) :: _) -> (
            match ident_path f with
            | Some [ "Atomic"; "get" ] -> (
              match atomic_key tgt with
              | Some k -> acc := (k, line_of ex.pexp_loc) :: !acc
              | None -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !acc

let check_atomic_rmw ~emit (d : Callgraph.def) =
  (* var -> (key, get line) for let-bound expressions reading atomics *)
  let carriers : (string, string * int) Hashtbl.t = Hashtbl.create 4 in
  let discharged : (string * string, unit) Hashtbl.t = Hashtbl.create 4 in
  let sets = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                match pat_vars [] vb.pvb_pat with
                | [ n ] -> (
                  match atomic_gets vb.pvb_expr with
                  | (k, l) :: _ -> Hashtbl.replace carriers n (k, l)
                  | [] -> ())
                | _ -> ())
              vbs
          | Pexp_apply (f, args) -> (
            match (ident_path f, args) with
            | Some [ "Atomic"; "compare_and_set" ], (_, tgt) :: (_, old) :: _
              -> (
              match atomic_key tgt with
              | Some k ->
                Hashtbl.iter
                  (fun v (k', _) ->
                    if k' = k && mentions_name v old then
                      Hashtbl.replace discharged (v, k) ())
                  carriers
              | None -> ())
            | Some [ "Atomic"; "set" ], (_, tgt) :: (_, v) :: _ -> (
              match atomic_key tgt with
              | Some k -> sets := (k, v, line_of ex.pexp_loc) :: !sets
              | None -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it d.Callgraph.body;
  List.iter
    (fun (k, v, line) ->
      (* Inline: Atomic.set a (... Atomic.get a ...) *)
      match List.find_opt (fun (k', _) -> k' = k) (atomic_gets v) with
      | Some (_, gl) ->
        emit line Finding.SA017
          (Printf.sprintf
             "read-modify-write on Atomic %s as separate get/set — racy \
              between domains; use compare_and_set/fetch_and_add — \
              protocol trace: Atomic.get:%d -> Atomic.set:%d"
             k gl line)
      | None ->
        (* Through a let binding: let v = ... Atomic.get a ... in
           ... Atomic.set a (f v), with no CAS consuming v. *)
        Hashtbl.iter
          (fun var (k', gl) ->
            if
              k' = k
              && mentions_name var v
              && not (Hashtbl.mem discharged (var, k))
            then
              emit line Finding.SA017
                (Printf.sprintf
                   "read-modify-write on Atomic %s as separate get/set \
                    (read bound to %s) — racy between domains; use \
                    compare_and_set/fetch_and_add — protocol trace: \
                    Atomic.get:%d -> Atomic.set:%d"
                   k var gl line))
          carriers)
    (List.rev !sets)

(* ------------------------------------------------------------------ *)
(* Inference: the protocol-summary fixpoint                             *)
(* ------------------------------------------------------------------ *)

type t = { sums : summaries; asums : (string, abort_sum) Hashtbl.t }

let infer cg =
  let sums : summaries = Hashtbl.create 64 in
  let asums : (string, abort_sum) Hashtbl.t = Hashtbl.create 64 in
  let order = Callgraph.defs_order cg in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 20 do
    changed := false;
    incr rounds;
    List.iter
      (fun q ->
        match Callgraph.find cg q with
        | None -> ()
        | Some d ->
          for di = 0 to n_dfas - 1 do
            if relevant cg sums d di then
              List.iter
                (fun (j, act) ->
                  let key = (q, di, j) in
                  let merged =
                    match Hashtbl.find_opt sums key with
                    | None -> act
                    | Some old -> merge_action old act
                  in
                  match Hashtbl.find_opt sums key with
                  | Some old when action_equal old merged -> ()
                  | _ ->
                    Hashtbl.replace sums key merged;
                    changed := true)
                (summarize_def cg sums d di)
          done;
          let asum = abort_summarize cg asums d in
          (match Hashtbl.find_opt asums q with
          | Some old when abort_sum_equal old asum -> ()
          | _ ->
            Hashtbl.replace asums q asum;
            changed := true))
      order
  done;
  { sums; asums }

let equal a b =
  Hashtbl.length a.sums = Hashtbl.length b.sums
  && Hashtbl.fold
       (fun k v acc ->
         acc
         && match Hashtbl.find_opt b.sums k with
            | Some v' -> action_equal v v'
            | None -> false)
       a.sums true
  && Hashtbl.length a.asums = Hashtbl.length b.asums
  && Hashtbl.fold
       (fun k v acc ->
         acc
         && match Hashtbl.find_opt b.asums k with
            | Some v' -> abort_sum_equal v v'
            | None -> false)
       a.asums true

(* ------------------------------------------------------------------ *)
(* The check pass                                                       *)
(* ------------------------------------------------------------------ *)

let check ~cg ~t ~file =
  let out = ref [] in
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let emit line rule msg =
    let key = (line, Finding.rule_name rule) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := Finding.v ~file ~line rule msg :: !out
    end
  in
  let defs = Callgraph.defs_in_file cg file in
  (* Value-lifecycle protocols: one walk per definition per DFA, params
     bound at the canonical entry state, creators tracked. *)
  List.iter
    (fun (d : Callgraph.def) ->
      for di = 0 to n_dfas - 1 do
        if relevant cg t.sums d di then begin
          let ctx =
            { cg; file; sums = t.sums; emit; summary_mode = false;
              errors = Hashtbl.create 1 }
          in
          let env, store, _ids = bind_params ~summary_mode:false d di in
          ignore
            (walk ctx ~in_finally:false env store
               (strip_params d.Callgraph.body))
        end
      done;
      check_atomic_rmw ~emit d)
    defs;
  (* SA015: pool task closures. *)
  let actx =
    { cg; file; sums = t.sums; emit = (fun _ _ _ -> ());
      summary_mode = true; errors = Hashtbl.create 1 }
  in
  List.iter
    (fun (d : Callgraph.def) ->
      let rec scan local_fns e =
        match e.pexp_desc with
        | Pexp_let (_, vbs, body) ->
          let local_fns' =
            List.fold_left
              (fun acc vb ->
                match pat_vars [] vb.pvb_pat with
                | [ n ] when is_fun_literal vb.pvb_expr ->
                  (n, vb.pvb_expr) :: acc
                | _ -> acc)
              local_fns vbs
          in
          List.iter (fun vb -> scan local_fns vb.pvb_expr) vbs;
          scan local_fns' body
        | Pexp_apply (f, args) ->
          (match ident_path f with
          | Some p when pool_fn p <> None ->
            List.iter
              (fun (_, a) ->
                let task =
                  if is_fun_literal a then Some a
                  else
                    match a.pexp_desc with
                    | Pexp_ident { txt = Longident.Lident g; _ } ->
                      List.assoc_opt g local_fns
                    | _ -> None
                in
                match task with
                | Some closure ->
                  let report line name chain =
                    emit line Finding.SA015
                      (Printf.sprintf
                         "commit-like sink %s reached inside a %s task \
                          with no Abort.check/is_set poll before it (%s) \
                          — an aborted task must stop before publishing; \
                          poll the abort flag first or justify in the \
                          baseline"
                         name
                         (Option.get (pool_fn p))
                         (String.concat " -> " chain))
                  in
                  ignore
                    (abort_walk actx t.asums ~local_fns ~report closure)
                | None -> ())
              args
          | _ -> ());
          scan local_fns f;
          List.iter (fun (_, a) -> scan local_fns a) args
        | _ -> List.iter (scan local_fns) (sub_exprs e)
      in
      scan [] d.Callgraph.body)
    defs;
  (* SA014 journal discipline: checkpoints are written via tmp+rename. *)
  if Filename.basename file = "journal.ml" then
    List.iter
      (fun (d : Callgraph.def) ->
        (* let-bound names whose rhs mentions a ".tmp" literal *)
        let tmp_names = Hashtbl.create 4 in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self ex ->
                (match ex.pexp_desc with
                | Pexp_let (_, vbs, _) ->
                  List.iter
                    (fun vb ->
                      match pat_vars [] vb.pvb_pat with
                      | [ n ] when mentions_tmp_literal vb.pvb_expr ->
                        Hashtbl.replace tmp_names n ()
                      | _ -> ())
                    vbs
                | Pexp_apply (f, (_, a0) :: _) -> (
                  match ident_path f with
                  | Some [ ("open_out" | "open_out_bin" | "open_out_gen") ]
                    ->
                    let ok =
                      mentions_tmp_literal a0
                      ||
                      match a0.pexp_desc with
                      | Pexp_ident { txt = Longident.Lident n; _ } ->
                        Hashtbl.mem tmp_names n
                      | _ -> false
                    in
                    if not ok then
                      emit (line_of ex.pexp_loc) Finding.SA014
                        "journal checkpoint opened for writing without \
                         the atomic tmp+rename path — write to \
                         path^\".tmp\" and Sys.rename into place so \
                         readers never observe a torn checkpoint"
                  | _ -> ())
                | _ -> ());
                Ast_iterator.default_iterator.expr self ex);
          }
        in
        it.expr it d.Callgraph.body)
      defs;
  List.sort_uniq Finding.compare !out

(* ------------------------------------------------------------------ *)
(* The --typestate report                                               *)
(* ------------------------------------------------------------------ *)

let report cg t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# Typestate protocol summaries (lib/)\n\
     #\n\
     # Generated by `fp_lint --typestate`.  One line per definition\n\
     # with a non-trivial protocol action on some parameter:\n\
     #   proto(param j: start -> {exits}[, !err])   esc = escapes\n\n";
  List.iter
    (fun q ->
      match Callgraph.find cg q with
      | Some d
        when String.length d.Callgraph.file >= 4
             && String.sub d.Callgraph.file 0 4 = "lib/" ->
        let parts = ref [] in
        for di = n_dfas - 1 downto 0 do
          let dfa = dfas.(di) in
          let params = ref [] in
          for j = List.length d.Callgraph.params - 1 downto 0 do
            match Hashtbl.find_opt t.sums (q, di, j) with
            | None -> ()
            | Some Esc ->
              params := Printf.sprintf "param %d: esc" j :: !params
            | Some (Rel entries) ->
              let one e =
                Printf.sprintf "%s -> {%s}%s" e.from_
                  (String.concat "," e.exits)
                  (if e.errs = [] then "" else ", !err")
              in
              let shown =
                List.filter
                  (fun e -> e.exits <> [ e.from_ ] || e.errs <> [])
                  entries
              in
              if shown <> [] then
                params :=
                  Printf.sprintf "param %d: %s" j
                    (String.concat "; " (List.map one shown))
                  :: !params
          done;
          if !params <> [] then
            parts :=
              Printf.sprintf "%s(%s)" dfa.pname
                (String.concat "; " !params)
              :: !parts
        done;
        (match Hashtbl.find_opt t.asums q with
        | Some { polls_all = true; _ } -> parts := "polls-abort" :: !parts
        | Some { unpolled_sink = Some (name, _); _ } ->
          parts := Printf.sprintf "sink:%s" name :: !parts
        | _ -> ());
        if !parts <> [] then
          Buffer.add_string buf
            (Printf.sprintf "- %s: %s\n" q (String.concat "  " !parts))
      | _ -> ())
    (Callgraph.defs_order cg);
  Buffer.contents buf
