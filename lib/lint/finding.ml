type rule =
  | SA000
  | SA001
  | SA002
  | SA003
  | SA004
  | SA005
  | SA006
  | SA007
  | SA008
  | SA010
  | SA011
  | SA012
  | SA013
  | SA014
  | SA015
  | SA016
  | SA017

let all_rules =
  [ SA001; SA002; SA003; SA004; SA005; SA006; SA007; SA008; SA010; SA011;
    SA012; SA013; SA014; SA015; SA016; SA017 ]

let rule_name = function
  | SA000 -> "SA000"
  | SA001 -> "SA001"
  | SA002 -> "SA002"
  | SA003 -> "SA003"
  | SA004 -> "SA004"
  | SA005 -> "SA005"
  | SA006 -> "SA006"
  | SA007 -> "SA007"
  | SA008 -> "SA008"
  | SA010 -> "SA010"
  | SA011 -> "SA011"
  | SA012 -> "SA012"
  | SA013 -> "SA013"
  | SA014 -> "SA014"
  | SA015 -> "SA015"
  | SA016 -> "SA016"
  | SA017 -> "SA017"

let rule_of_string s =
  match String.uppercase_ascii s with
  | "SA000" -> Some SA000
  | "SA001" -> Some SA001
  | "SA002" -> Some SA002
  | "SA003" -> Some SA003
  | "SA004" -> Some SA004
  | "SA005" -> Some SA005
  | "SA006" -> Some SA006
  | "SA007" -> Some SA007
  | "SA008" -> Some SA008
  | "SA010" -> Some SA010
  | "SA011" -> Some SA011
  | "SA012" -> Some SA012
  | "SA013" -> Some SA013
  | "SA014" -> Some SA014
  | "SA015" -> Some SA015
  | "SA016" -> Some SA016
  | "SA017" -> Some SA017
  | _ -> None

let rule_doc = function
  | SA000 -> "file could not be parsed (infrastructure failure, never baselined)"
  | SA001 ->
    "raw float comparison (=, <>, <, <=, >, >=, compare) — use Fp_geometry.Tol"
  | SA002 -> "Stdlib.Random — all randomness must go through Fp_util.Rng"
  | SA003 ->
    "stdout/stderr write inside lib/ — log through Logs or return data; \
     printing belongs to the CLI/bench layer"
  | SA004 ->
    "wall-clock read (Unix.gettimeofday, Sys.time) outside the sanctioned \
     timing sites (Augment, CLI/bench layer)"
  | SA005 ->
    "closure submitted to Pool.run/Pool.map directly mutates captured \
     state without Atomic/Mutex (the disjoint-slot convention excepted)"
  | SA006 ->
    "catch-all exception handler can swallow Augment.Abort / Fault.Injected \
     — match concrete exceptions, re-raise, or record for a later re-raise"
  | SA007 ->
    "fault-site literal absent from the canonical Fault.builtin catalogue \
     (or catalogue, registrations and docs/robustness.md drifted apart)"
  | SA008 ->
    "exit with an integer literal — exit codes come from the \
     Fp_core.Degradation mapping"
  | SA010 ->
    "deterministic-replay code (pool task bodies, Journal) transitively \
     reaches ambient RNG / wall clock / console IO through its call graph"
  | SA011 ->
    "a swallowing catch-all sits on a call path below a pool task body — \
     Abort/Injected raised inside the task can vanish in a helper"
  | SA012 ->
    "captured mutable state flows into a pool task through helpers (a \
     callee mutates it), the worker id escapes into captured state that \
     is not an eager per-worker copy, or the task transitively mutates \
     module-level state"
  | SA013 ->
    "pool lifecycle protocol violation: use after Pool.shutdown, double \
     shutdown, a created pool not shut down on every path, or a shutdown \
     an exception can skip (wrap in Fun.protect)"
  | SA014 ->
    "channel/journal lifecycle protocol violation: write or read after \
     close, double close, a channel not closed on every path, a close an \
     exception can skip, or a journal checkpoint written without the \
     atomic tmp+rename path"
  | SA015 ->
    "commit-like sink (Journal.write, commit_*, update_incumbent) reached \
     inside a pool task with no Abort.check/is_set poll on the path — \
     aborted tasks must stop before publishing"
  | SA016 ->
    "RNG stream discipline: a parent Rng.t is sampled after split/split_n \
     derived children from it — the parent advanced, replay silently \
     diverges"
  | SA017 ->
    "read-modify-write on an Atomic.t as separate get/set — racy between \
     domains; use compare_and_set, fetch_and_add or exchange"

let rule_index = function
  | SA000 -> 0
  | SA001 -> 1
  | SA002 -> 2
  | SA003 -> 3
  | SA004 -> 4
  | SA005 -> 5
  | SA006 -> 6
  | SA007 -> 7
  | SA008 -> 8
  | SA010 -> 10
  | SA011 -> 11
  | SA012 -> 12
  | SA013 -> 13
  | SA014 -> 14
  | SA015 -> 15
  | SA016 -> 16
  | SA017 -> 17

type t = { file : string; line : int; rule : rule; msg : string }

let v ~file ~line rule msg = { file; line; rule; msg }

let to_string t =
  Printf.sprintf "%s:%d %s %s" t.file t.line (rule_name t.rule) t.msg

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare (rule_index a.rule) (rule_index b.rule) in
      if c <> 0 then c else String.compare a.msg b.msg

(* One source defect, one finding: when several rules fire at the same
   file:line (the interprocedural rules overlap the syntactic ones by
   design — SA010 sees every clock read SA004 sees, one call deeper),
   keep only the lowest-numbered rule at that location.  Findings of
   the same rule at one line are all kept: the global SA007 checks
   legitimately report several distinct drifts at a file's line 1.
   Output stays sorted by (file, line, rule, msg) for stable diffs. *)
let dedupe findings =
  let sorted = List.sort_uniq compare findings in
  let rec go = function
    | [] -> []
    | f :: _ as group ->
      let same, rest =
        List.partition (fun g -> g.file = f.file && g.line = f.line) group
      in
      let min_rule =
        List.fold_left
          (fun m g -> Int.min m (rule_index g.rule))
          max_int same
      in
      List.filter (fun g -> rule_index g.rule = min_rule) same @ go rest
  in
  go sorted
