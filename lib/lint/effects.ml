(* Fixpoint effect inference over the call graph.

   Each definition gets a summary over the finite lattice

     { rng, clock, io, mutation, domain-spawn,
       raises-Abort, raises-Injected, catches-all }

   plus a per-parameter mutation bitset.  Direct effects come from a
   syntactic pass over the definition body (primitive tables below);
   the fixpoint then propagates summaries along resolved call edges
   until nothing changes — the lattice is a finite powerset ordered by
   inclusion and the transfer is monotone set union, so convergence is
   guaranteed (mutual recursion included) and no widening beyond the
   lattice top is ever needed.

   Classification notes (the precision envelope, also documented in
   docs/static-analysis.md):

   - [mutation] means "mutates state that is neither local to the
     definition nor one of its parameters": module-level refs, tables
     and arrays.  Parameter mutation is tracked separately in
     [mut_params] and flows through call-site argument heads, so a
     solver that scribbles on a locally-created problem is clean while
     one handed shared state is not.
   - A body that takes a [Mutex.lock] is trusted: its own direct
     mutations are considered synchronized and recorded as neither
     [mutation] nor parameter mutation (the linter cannot see lock
     extents; [Fault.fire]'s counter updates are the canonical case).
   - [Atomic.*]/[Mutex.*] operations are never mutation.
   - Aliasing is invisible: mutating a local that aliases shared state
     escapes the analysis.  TSan is the dynamic complement.
   - [catches-all] uses exactly SA006's refined predicate
     ({!Ast_util.swallowing_catch_all}), so the syntactic rule and the
     interprocedural one cannot disagree about what a swallowing
     handler is. *)

open Parsetree
open Ast_util

type eff =
  | Rng
  | Clock
  | Io
  | Mutation
  | Spawn
  | Raises_abort
  | Raises_injected
  | Catches_all

let all_effects =
  [ Rng; Clock; Io; Mutation; Spawn; Raises_abort; Raises_injected;
    Catches_all ]

let eff_name = function
  | Rng -> "rng"
  | Clock -> "clock"
  | Io -> "io"
  | Mutation -> "mutation"
  | Spawn -> "domain-spawn"
  | Raises_abort -> "raises-Abort"
  | Raises_injected -> "raises-Injected"
  | Catches_all -> "catches-all"

module Eff_set = Set.Make (struct
  type t = eff

  let compare = Stdlib.compare
end)

let top = Eff_set.of_list all_effects

type cause =
  | Prim of string * int   (* primitive path rendered, line *)
  | Through of string * int (* callee qname, call-site line *)

type summary = {
  effs : Eff_set.t;
  causes : (eff * cause) list;      (* first cause per acquired effect *)
  mut_params : int list;            (* sorted positional indices *)
  mut_causes : (int * cause) list;
}

let empty =
  { effs = Eff_set.empty; causes = []; mut_params = []; mut_causes = [] }

let has e s = Eff_set.mem e s.effs

let add_eff e cause s =
  if has e s then s
  else { s with effs = Eff_set.add e s.effs; causes = (e, cause) :: s.causes }

let add_mut i cause s =
  if List.mem i s.mut_params then s
  else
    {
      s with
      mut_params = List.sort Int.compare (i :: s.mut_params);
      mut_causes = (i, cause) :: s.mut_causes;
    }

let equal a b =
  Eff_set.equal a.effs b.effs && a.mut_params = b.mut_params

(* ------------------------------------------------------------------ *)
(* Primitive tables                                                     *)
(* ------------------------------------------------------------------ *)

let io_idents =
  [ "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes"; "stdout"; "stderr"; "read_line";
    "read_int"; "read_int_opt"; "read_float"; "read_float_opt";
    "input_line"; "input_char"; "input_byte"; "input_value";
    "really_input_string"; "open_in"; "open_in_bin"; "open_in_gen";
    "open_out"; "open_out_bin"; "open_out_gen"; "output_string";
    "output_char"; "output_byte"; "output_bytes"; "output_value" ]

let prim_effect p =
  match p with
  | "Random" :: _ -> Some Rng
  | [ "Hashtbl"; ("randomize" | "is_randomized") ] -> Some Rng
  | [ "Unix"; ("gettimeofday" | "time" | "times" | "sleep" | "sleepf") ]
  | [ "Sys"; "time" ] ->
    Some Clock
  | [ s ] when List.mem s io_idents -> Some Io
  (* [fprintf] is deliberately absent: it writes to its {e argument}
     channel/formatter, console IO only when handed
     std_formatter/stderr — and those idents classify on their own. *)
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ "Format"; ("printf" | "eprintf" | "print_string"
                | "print_int" | "print_float" | "print_newline"
                | "print_flush" | "std_formatter" | "err_formatter") ]
  | "In_channel" :: _ | "Out_channel" :: _ ->
    Some Io
  | [ "Domain"; "spawn" ] -> Some Spawn
  | _ -> (
    match last2 p with
    | Some ("Pool", ("create" | "spawn")) -> Some Spawn
    | Some ("Fault", "trip") -> Some Raises_injected
    | _ -> None)

let raise_construct e =
  let rec constr e =
    match e.pexp_desc with
    | Pexp_construct ({ txt; _ }, _) -> (
      match List.rev (flatten txt) with c :: _ -> Some c | [] -> None)
    | Pexp_constraint (e, _) -> constr e
    | _ -> None
  in
  match constr e with
  | Some "Abort" -> Some Raises_abort
  | Some "Injected" -> Some Raises_injected
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Direct (intraprocedural) extraction                                  *)
(* ------------------------------------------------------------------ *)

let body_locks e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply (f, _) -> (
            match ident_path f with
            | Some [ "Mutex"; "lock" ] -> found := true
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let direct (d : Callgraph.def) =
  let param_index =
    let tbl = Hashtbl.create 8 in
    List.iteri
      (fun i (_, n) ->
        match n with Some n -> Hashtbl.replace tbl n i | None -> ())
      d.params;
    fun n -> Hashtbl.find_opt tbl n
  in
  let locked = body_locks d.body in
  let s = ref empty in
  let note e line = s := add_eff e (Prim (e |> eff_name, line)) !s in
  let note_prim e p line = s := add_eff e (Prim (String.concat "." p, line)) !s in
  (* Mutation of [target]: local -> nothing, parameter -> mut_params,
     anything else -> Mutation (module-level state).  Suppressed when
     the body takes a lock. *)
  let mutate locals target line =
    if not locked then
      match lvalue_head target with
      | Some x -> (
        (* Parameters first: the walker re-adds the leading [fun]
           chain's patterns as locals while descending, and a shadowed
           parameter mis-attributed as mutated only widens the summary
           (conservative). *)
        match param_index x with
        | Some i -> s := add_mut i (Prim ("mutates " ^ x, line)) !s
        | None ->
          if not (S.mem x locals) then
            (* Unqualified, unbound in the walk: a module-level binding
               of this file. *)
            note Mutation line)
      | None -> note Mutation line
  in
  let rec case locals c =
    let locals = S.union locals (S.of_list (pat_vars [] c.pc_lhs)) in
    Option.iter (walk locals) c.pc_guard;
    walk locals c.pc_rhs
  and walk locals e =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let bound = List.concat_map (fun vb -> pat_vars [] vb.pvb_pat) vbs in
      let locals' = S.union locals (S.of_list bound) in
      let rhs_env = if rf = Asttypes.Recursive then locals' else locals in
      List.iter (fun vb -> walk rhs_env vb.pvb_expr) vbs;
      walk locals' body
    | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (walk locals) dflt;
      walk (S.union locals (S.of_list (pat_vars [] pat))) body
    | Pexp_newtype (_, body) -> walk locals body
    | Pexp_function cases -> List.iter (case locals) cases
    | Pexp_match (scrut, cases) ->
      walk locals scrut;
      List.iter (case locals) cases
    | Pexp_try (scrut, cases) ->
      (match swallowing_catch_all cases with
      | Some ca -> note Catches_all (line_of ca.pc_lhs.ppat_loc)
      | None -> ());
      walk locals scrut;
      List.iter (case locals) cases
    | Pexp_for (pat, lo, hi, _, body) ->
      walk locals lo;
      walk locals hi;
      walk (S.union locals (S.of_list (pat_vars [] pat))) body
    | Pexp_setfield (tgt, _, v) ->
      mutate locals tgt (line_of e.pexp_loc);
      walk locals tgt;
      walk locals v
    | Pexp_apply (f, args) ->
      (match ident_path f with
      | Some p ->
        let line = line_of e.pexp_loc in
        (match prim_effect p with
        | Some e -> note_prim e p line
        | None -> ());
        (match List.rev p with
        | ("raise" | "raise_notrace") :: _ -> (
          match args with
          | (_, a) :: _ -> (
            match raise_construct a with
            | Some e -> note e line
            | None -> ())
          | [] -> ())
        | _ -> ());
        (match (p, args) with
        | ([ ":=" ] | [ "incr" ] | [ "decr" ]), (_, r) :: _ ->
          mutate locals r line
        | [ "Array"; ("set" | "unsafe_set") ], (_, arr) :: _ ->
          mutate locals arr line
        | _, (_, c) :: _ when container_mutator p -> mutate locals c line
        | _ -> ())
      | None -> ());
      walk locals f;
      List.iter (fun (_, a) -> walk locals a) args
    | _ -> List.iter (walk locals) (sub_exprs e)
  in
  walk S.empty d.body;
  !s

(* ------------------------------------------------------------------ *)
(* Call-site argument matching                                          *)
(* ------------------------------------------------------------------ *)

(* The argument supplying the callee's parameter [j]: labelled
   parameters match by label, unlabelled positionally among the
   unlabelled arguments. *)
let arg_for (callee : Callgraph.def) (args : (Asttypes.arg_label * Callgraph.arg_head) list) j =
  match List.nth_opt callee.params j with
  | None -> None
  | Some (Asttypes.Nolabel, _) ->
    let pos =
      List.length
        (List.filteri
           (fun i (l, _) -> i < j && l = Asttypes.Nolabel)
           callee.params)
    in
    let unlabelled = List.filter (fun (l, _) -> l = Asttypes.Nolabel) args in
    Option.map snd (List.nth_opt unlabelled pos)
  | Some ((Asttypes.Labelled l | Asttypes.Optional l), _) ->
    List.find_map
      (fun (al, h) ->
        match al with
        | Asttypes.Labelled l' | Asttypes.Optional l' when l' = l -> Some h
        | _ -> None)
      args

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                             *)
(* ------------------------------------------------------------------ *)

type summaries = (string, summary) Hashtbl.t

let infer (cg : Callgraph.t) : summaries =
  let order =
    List.filter_map
      (fun q -> Option.map (fun d -> (q, d)) (Callgraph.find cg q))
      (Callgraph.defs_order cg)
  in
  let tbl : summaries = Hashtbl.create 256 in
  List.iter (fun (q, d) -> Hashtbl.replace tbl q (direct d)) order;
  let param_index (d : Callgraph.def) name =
    let rec go i = function
      | [] -> None
      | (_, Some n) :: _ when n = name -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 d.params
  in
  let step (q, (d : Callgraph.def)) =
    let s0 = Hashtbl.find tbl q in
    let s =
      List.fold_left
        (fun s (c : Callgraph.call) ->
          match Hashtbl.find_opt tbl c.callee with
          | None -> s
          | Some cs ->
            (* Plain effects flow unconditionally along the edge. *)
            let s =
              Eff_set.fold
                (fun e s -> add_eff e (Through (c.callee, c.line)) s)
                cs.effs s
            in
            (* Parameter mutation flows through argument heads: if the
               callee mutates parameter [j] and we supplied one of our
               own parameters there, we mutate that parameter; if we
               supplied module-level state, that is a Mutation.  Local
               and opaque heads stay benign (a locally-created value
               handed to a mutator is the normal ownership pattern). *)
            if c.args = [] then s
            else
              match Callgraph.find cg c.callee with
              | None -> s
              | Some cd ->
                List.fold_left
                  (fun s j ->
                    match arg_for cd c.args j with
                    | Some (Callgraph.Head h) -> (
                      match param_index d h with
                      | Some i -> add_mut i (Through (c.callee, c.line)) s
                      | None -> s)
                    | Some Callgraph.Global ->
                      add_eff Mutation (Through (c.callee, c.line)) s
                    | Some Callgraph.Opaque | None -> s)
                  s cs.mut_params)
        s0 (Callgraph.calls cg q)
    in
    if equal s s0 then false
    else begin
      Hashtbl.replace tbl q s;
      true
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter (fun qd -> if step qd then changed := true) order
  done;
  tbl

let summary_of (tbl : summaries) q =
  Option.value ~default:empty (Hashtbl.find_opt tbl q)

(* ------------------------------------------------------------------ *)
(* Witness chains                                                       *)
(* ------------------------------------------------------------------ *)

(* Follow the recorded first-causes from [q] down to the primitive that
   introduced [e]: ["run_task"; "out_of_time"; "Unix.gettimeofday"]. *)
let chain (tbl : summaries) q e =
  let rec go acc q depth =
    if depth > 50 then List.rev ("..." :: acc)
    else
      match Hashtbl.find_opt tbl q with
      | None -> List.rev acc
      | Some s -> (
        match List.assoc_opt e s.causes with
        | Some (Prim (p, _)) -> List.rev (p :: acc)
        | Some (Through (callee, _)) -> go (callee :: acc) callee (depth + 1)
        | None -> List.rev acc)
  in
  go [ q ] q 0

let mut_chain (tbl : summaries) q j =
  let rec go acc q j depth =
    if depth > 50 then List.rev ("..." :: acc)
    else
      match Hashtbl.find_opt tbl q with
      | None -> List.rev acc
      | Some s -> (
        match List.assoc_opt j s.mut_causes with
        | Some (Prim (p, _)) -> List.rev (p :: acc)
        | Some (Through (callee, _)) -> (
          (* Find which of the callee's parameters continues the chain:
             the first mutated one — precise enough for a witness. *)
          match Hashtbl.find_opt tbl callee with
          | Some cs when cs.mut_params <> [] ->
            go (callee :: acc) callee (List.hd cs.mut_params) (depth + 1)
          | _ -> List.rev (callee :: acc))
        | None -> List.rev acc)
  in
  go [ q ] q j 0

(* ------------------------------------------------------------------ *)
(* The --effects report                                                 *)
(* ------------------------------------------------------------------ *)

let summary_line (d : Callgraph.def) s =
  let effs = List.filter (fun e -> Eff_set.mem e s.effs) all_effects in
  let muts =
    List.map
      (fun j ->
        let name =
          match List.nth_opt d.params j with
          | Some (_, Some n) -> n
          | _ -> "#" ^ string_of_int j
        in
        Printf.sprintf "mutates(%s)" name)
      s.mut_params
  in
  let parts = List.map eff_name effs @ muts in
  if parts = [] then None
  else
    let short =
      match String.index_opt d.qname '.' with
      | Some i -> String.sub d.qname (i + 1) (String.length d.qname - i - 1)
      | None -> d.qname
    in
    Some (Printf.sprintf "- `%s`: %s" short (String.concat ", " parts))

(* Per-module effect summaries for lib/ — the committed
   docs/effects-summary.md artifact, drift-checked in CI.  Only lib/
   is reported: the CLI/bench layers print and read clocks by design,
   so their summaries are all noise.  Deliberately line-number-free so
   unrelated edits do not churn the committed file. *)
let report (cg : Callgraph.t) (tbl : summaries) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "# Effect summaries (generated — do not edit)\n\
     \n\
     Per-function effect summaries over `lib/`, inferred by the\n\
     `Fp_lint` interprocedural fixpoint (see docs/static-analysis.md).\n\
     Regenerate with:\n\
     \n\
     ```sh\n\
     dune exec bin/fp_lint.exe -- --root . --effects > docs/effects-summary.md\n\
     ```\n\
     \n\
     CI diffs this file against the regenerated output, so a change in\n\
     any function's effect summary must be committed (and reviewed)\n\
     here.  Functions with the empty summary are omitted.\n";
  let files =
    List.sort_uniq String.compare
      (List.filter_map
         (fun q -> Option.map (fun (d : Callgraph.def) -> d.file)
             (Callgraph.find cg q))
         (Callgraph.defs_order cg))
  in
  List.iter
    (fun file ->
      if String.length file >= 4 && String.sub file 0 4 = "lib/" then begin
        let lines =
          List.filter_map
            (fun (d : Callgraph.def) -> summary_line d (summary_of tbl d.qname))
            (Callgraph.defs_in_file cg file)
        in
        if lines <> [] then begin
          let m = Callgraph.module_of_path file in
          Buffer.add_string b (Printf.sprintf "\n## %s (`%s`)\n\n" m file);
          List.iter (fun l -> Buffer.add_string b (l ^ "\n")) lines
        end
      end)
    files;
  Buffer.contents b
