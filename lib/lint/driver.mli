(** Repository walker: parse every implementation file once, run the
    syntactic rules ({!Rules}), build the call graph and effect
    summaries over the same parses, run the interprocedural rules
    ({!Interproc}), and add the global SA007 cross-checks.

    The driver is what [bin/fp_lint] and the [@lint] alias call; the
    corpus tests call {!lint_file} directly on fixture files with a
    forced role. *)

val default_context : Rules.context
(** [known_sites] seeded from {!Fp_util.Fault.builtin} — the canonical
    catalogue the linter itself links against, so the lint and the
    runtime can never disagree about the site list. *)

val parse_file : string -> (Parsetree.structure, string) result
(** Parse one [.ml] file with the compiler's own parser. *)

val lint_file :
  ?ctx:Rules.context ->
  ?role:Rules.role ->
  root:string ->
  string ->
  Finding.t list
(** Lint a single file.  The second argument is the path relative to
    [root] (also the path findings carry).  [role] defaults to
    {!Rules.role_of_path}; an unparseable file yields one [SA000]
    finding.  The interprocedural rules run over a single-file call
    graph, so cross-file taint is invisible here — that is tree mode's
    job — but same-file helper chains still resolve.  Findings come
    back deduplicated and sorted ({!Finding.dedupe}). *)

val lint_tree : ?ctx:Rules.context -> root:string -> unit -> Finding.t list
(** Walk [lib/], [bin/], [bench/] and [examples/] under [root], parse
    each [.ml] once, lint every file (syntactic + interprocedural over
    the whole-tree call graph), and run the global SA007 checks: every
    [Fault.register] literal must be in the canonical catalogue, every
    catalogue site must be registered somewhere in the tree, and
    [docs/robustness.md] must document every catalogue site.  Findings
    come back deduplicated and sorted ({!Finding.dedupe}). *)

val effects_report : root:string -> unit -> string
(** The [--effects] artifact: {!Effects.report} over the whole tree. *)

val callgraph_dot : root:string -> unit -> string
(** The [--callgraph-dot] artifact: {!Callgraph.to_dot} over the whole
    tree. *)
