(** Repository walker: parse every implementation file once into a
    shared {!type-corpus}, run the syntactic rules ({!Rules}), build the
    call graph and both summary fixpoints ({!Effects}, {!Typestate})
    over the same parses, run the interprocedural and typestate rules,
    and add the global SA007 cross-checks.

    The driver is what [bin/fp_lint] and the [@lint] alias call; the
    corpus tests call {!lint_file} directly on fixture files with a
    forced role. *)

val default_context : Rules.context
(** [known_sites] seeded from {!Fp_util.Fault.builtin} — the canonical
    catalogue the linter itself links against, so the lint and the
    runtime can never disagree about the site list. *)

val parse_file : string -> (Parsetree.structure, string) result
(** Parse one [.ml] file with the compiler's own parser. *)

type corpus = {
  parses : (string * (Parsetree.structure, string) result) list;
  cg : Callgraph.t;
  effects : Effects.summaries;
  typestate : Typestate.t;
  timings : (string * float) list;
      (** per-pass wall-clock seconds ([parse], [callgraph],
          [effects-infer], [typestate-infer]), in run order; all zero
          unless a [clock] was injected *)
}
(** Everything derived from one walk of the tree.  Build it once with
    {!load_corpus} and pass it to {!lint_tree} and the report modes —
    the report modes re-walk nothing. *)

val load_corpus :
  ?clock:(unit -> float) -> root:string -> unit -> corpus
(** Parse [lib/], [bin/], [bench/] and [examples/] once and run every
    whole-tree analysis over the shared parses.  [clock] defaults to a
    constant so this library never reads the wall clock itself (its own
    SA004 rule); [bin/fp_lint] injects [Unix.gettimeofday] for the
    [--verbose] timing report. *)

val lint_file :
  ?ctx:Rules.context ->
  ?role:Rules.role ->
  root:string ->
  string ->
  Finding.t list
(** Lint a single file.  The second argument is the path relative to
    [root] (also the path findings carry).  [role] defaults to
    {!Rules.role_of_path}; an unparseable file yields one [SA000]
    finding.  The interprocedural and typestate rules run over a
    single-file call graph, so cross-file taint is invisible here —
    that is tree mode's job — but same-file helper chains still
    resolve.  Findings come back deduplicated and sorted
    ({!Finding.dedupe}). *)

val lint_tree :
  ?ctx:Rules.context -> ?corpus:corpus -> root:string -> unit ->
  Finding.t list
(** Lint the whole tree: every file (syntactic + interprocedural +
    typestate over the whole-tree call graph) plus the global SA007
    checks — every [Fault.register] literal must be in the canonical
    catalogue, every catalogue site must be registered somewhere in
    the tree, and [docs/robustness.md] must document every catalogue
    site.  Pass [corpus] to reuse an existing {!load_corpus} result
    (the parses are shared; nothing is re-read except
    [docs/robustness.md]).  Findings come back deduplicated and sorted
    ({!Finding.dedupe}). *)

val effects_report : ?corpus:corpus -> root:string -> unit -> string
(** The [--effects] artifact: {!Effects.report} over the whole tree. *)

val typestate_report : ?corpus:corpus -> root:string -> unit -> string
(** The [--typestate] artifact: {!Typestate.report} over the whole
    tree. *)

val callgraph_dot : ?corpus:corpus -> root:string -> unit -> string
(** The [--callgraph-dot] artifact: {!Callgraph.to_dot} over the whole
    tree. *)
