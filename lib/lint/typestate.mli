(** Typestate / protocol abstract interpretation (rules SA013–SA017).

    Protocols are small DFAs — a state set, events keyed on
    module-qualified calls, error transitions — and a flow-sensitive,
    path-insensitive-with-merge walk tracks the abstract state of each
    tracked value (let-bound resources, aliases, tracked parameters)
    through sequencing, branches, loops, [try] and [Fun.protect].  The
    walk is interprocedural through per-function protocol summaries
    computed in the same monotone-fixpoint style as {!Effects}: for
    every definition, parameter and protocol, the summary is the
    relation a call applies to a value passed there (per start state:
    exit states, reachable errors, or "escapes").

    Shipped protocols: SA013 pool lifecycle, SA014 channel/journal
    lifecycle (plus the journal-only atomic tmp+rename check), SA015
    abort-before-commit inside pool tasks, SA016 RNG stream discipline
    after [split]/[split_n], SA017 Atomic read-modify-write as separate
    [get]/[set].  Findings carry DFA-trace witnesses (the event
    sequence reaching the error, each with its line), rendered like the
    {!Effects} witness chains.  DFA tables and the precision envelope
    live in docs/static-analysis.md ("Typestate protocols"). *)

type t
(** Protocol summaries for a whole call graph. *)

val infer : Callgraph.t -> t
(** The monotone fixpoint over {!Callgraph.defs_order}.  Deterministic;
    running it twice on the same graph yields {!equal} results. *)

val equal : t -> t -> bool
(** Summary equality, used by the idempotence test. *)

val check : cg:Callgraph.t -> t:t -> file:string -> Finding.t list
(** All typestate findings for one file of the graph, sorted.  Role
    gating is the caller's job ({!Driver} filters through
    {!Rules.applies}). *)

val report : Callgraph.t -> t -> string
(** The [--typestate] report: one line per [lib/] definition with a
    non-trivial protocol action on some parameter (line-number-free, so
    it is stable under unrelated edits). *)
