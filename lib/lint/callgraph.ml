(* Module-qualified call graph over a set of parsed implementation
   files.

   Nodes are top-level value bindings (functions and values),
   qualified by the capitalized file basename — [lib/milp/
   branch_bound.ml]'s [run_task] is ["Branch_bound.run_task"]; bindings
   inside a named submodule get the submodule in the path
   (["Pool.Deque.pop"]).  Nested [let]s attribute to their enclosing
   top-level binding: the graph is top-level-granular, which is the
   resolution the effect fixpoint ({!Effects}) and the interprocedural
   rules ({!Interproc}) need.

   Resolution is syntactic and name-based, with the ambiguities that
   implies (documented in docs/static-analysis.md):

   - a reference [M.f] resolves through the module map built from file
     basenames, after expanding [module A = M] aliases and dropping a
     leading [Fp_*] library wrapper ([Fp_util.Pool.run] = [Pool.run] —
     dune-wrapped library prefixes are invisible at the Parsetree
     level, so the wrapper is recognized by its [Fp_] spelling);
   - an unqualified [f] resolves to the current module's own [f] if it
     has one, else through the file's [open]s, most recent first;
   - a {e bare} reference to a known function (no application) is a
     conservative call edge — higher-order flow like
     [List.map helper xs] keeps [helper] reachable.  Bare references
     to parameterless bindings (plain values) are {e not} edges: a
     value's initializer ran at module init, not at reference time.

   Unresolved names (the stdlib, opam libraries) carry no edges; their
   effects are classified directly by {!Effects.prim_effect}. *)

open Parsetree
open Ast_util

type arg_head =
  | Head of string  (* rooted in a plain local/captured identifier *)
  | Global          (* module-qualified lvalue: shared module state *)
  | Opaque          (* computed — no root identifier *)

type def = {
  qname : string;
  file : string;
  line : int;
  params : (Asttypes.arg_label * string option) list;
  body : expression;
}

type call = {
  callee : string;
  line : int;
  args : (Asttypes.arg_label * arg_head) list;
      (* [] for bare (non-application) references *)
}

type env = {
  cur : string;                        (* current file's module name *)
  opens : string list list;           (* reverse order of appearance *)
  aliases : (string * string list) list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  order : string list;                 (* (file, line)-sorted qnames *)
  calls : (string, call list) Hashtbl.t;
  by_file : (string, string list) Hashtbl.t;
  envs : (string, env) Hashtbl.t;      (* file -> resolution env *)
  known : (string, string) Hashtbl.t;  (* module name -> file *)
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let rec params_of e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
    let name =
      match pat.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
        Some txt
      | _ -> None
    in
    (lbl, name) :: params_of body
  | Pexp_newtype (_, body) -> params_of body
  | _ -> []

let rec arg_head_of e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> Head s
  | Pexp_ident _ -> Global
  | Pexp_field (e, _) | Pexp_constraint (e, _) -> arg_head_of e
  | _ -> Opaque

(* ------------------------------------------------------------------ *)
(* Definition and open/alias collection                                 *)
(* ------------------------------------------------------------------ *)

let collect_file (path, str) =
  let modname = module_of_path path in
  let defs = ref [] and opens = ref [] and aliases = ref [] in
  let rec items prefix =
    List.iter (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb.pvb_pat with
              | Some n ->
                defs :=
                  {
                    qname = prefix ^ "." ^ n;
                    file = path;
                    line = line_of vb.pvb_loc;
                    params = params_of vb.pvb_expr;
                    body = vb.pvb_expr;
                  }
                  :: !defs
              | None -> ())
            vbs
        | Pstr_module
            {
              pmb_name = { txt = Some m; _ };
              pmb_expr = { pmod_desc = Pmod_structure sub; _ };
              _;
            } ->
          items (prefix ^ "." ^ m) sub
        | Pstr_module
            {
              pmb_name = { txt = Some m; _ };
              pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
              _;
            } ->
          aliases := (m, norm (flatten txt)) :: !aliases
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
          ->
          opens := norm (flatten txt) :: !opens
        | _ -> ())
  in
  items modname str;
  ( List.rev !defs,
    { cur = modname; opens = !opens; aliases = !aliases } )

(* ------------------------------------------------------------------ *)
(* Resolution                                                           *)
(* ------------------------------------------------------------------ *)

let is_wrapper m =
  String.length m > 3 && String.sub m 0 3 = "Fp_"

(* Strip a leading library wrapper when what follows is a module we
   know: [Fp_util.Pool.run] -> [Pool.run]. *)
let strip_wrapper known p =
  match p with
  | a :: (b :: _ as rest) when is_wrapper a && Hashtbl.mem known b -> rest
  | p -> p

let resolve_with ~defs ~known env p =
  let p = match p with
    | a :: rest -> (
      match List.assoc_opt a env.aliases with
      | Some tgt -> tgt @ rest
      | None -> p)
    | [] -> p
  in
  let p = strip_wrapper known p in
  let try_q q = if Hashtbl.mem defs q then Some q else None in
  let join = String.concat "." in
  match p with
  | [] -> None
  | [ x ] ->
    let local = try_q (env.cur ^ "." ^ x) in
    if local <> None then local
    else
      List.fold_left
        (fun acc o ->
          if acc <> None then acc
          else
            match strip_wrapper known o with
            | [ m ] when Hashtbl.mem known m -> try_q (m ^ "." ^ x)
            | [ _; m ] when Hashtbl.mem known m -> try_q (m ^ "." ^ x)
            | _ -> None)
        None env.opens
  | _ -> (
    match try_q (env.cur ^ "." ^ join p) with
    | Some _ as r -> r
    | None -> try_q (join p))

(* ------------------------------------------------------------------ *)
(* Edge collection                                                      *)
(* ------------------------------------------------------------------ *)

let calls_of ~defs ~known env body =
  let out = ref [] in
  let add callee line args = out := { callee; line; args } :: !out in
  let resolve = resolve_with ~defs ~known env in
  let is_function q =
    match Hashtbl.find_opt defs q with
    | Some d -> d.params <> []
    | None -> false
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
            match ident_path f with
            | Some p -> (
              match resolve p with
              | Some q ->
                add q (line_of e.pexp_loc)
                  (List.map (fun (l, a) -> (l, arg_head_of a)) args)
              | None -> ())
            | None -> ())
          | Pexp_ident { txt; _ } -> (
            (* Bare reference: a conservative higher-order edge, but
               only to functions — a value's initializer effects do not
               re-run at reference time. *)
            match resolve (norm (flatten txt)) with
            | Some q when is_function q -> add q (line_of e.pexp_loc) []
            | _ -> ())
          | _ -> ());
          (* An application's head identifier was handled above; the
             default iterator still visits it, which would add a second
             bare edge — harmless for reachability, so keep the simple
             recursion. *)
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  List.rev !out

(* A bare edge duplicated under an application edge to the same callee
   at the same line is noise; collapse, keeping application edges (they
   carry argument heads). *)
let dedupe_calls calls =
  let applied =
    List.filter (fun c -> c.args <> []) calls
  in
  let bare =
    List.filter
      (fun c ->
        c.args = []
        && not
             (List.exists
                (fun a -> a.callee = c.callee && a.line = c.line)
                applied))
      calls
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      let k = (c.callee, c.line, c.args = []) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (applied @ bare)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let of_sources sources =
  let sources =
    List.sort (fun (a, _) (b, _) -> String.compare a b) sources
  in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 256 in
  let known : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let envs : (string, env) Hashtbl.t = Hashtbl.create 64 in
  let by_file : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let per_file =
    List.map
      (fun (path, str) ->
        let file_defs, env = collect_file (path, str) in
        if not (Hashtbl.mem known env.cur) then
          Hashtbl.add known env.cur path;
        Hashtbl.replace envs path env;
        (path, file_defs, env))
      sources
  in
  let order = ref [] in
  List.iter
    (fun (path, file_defs, _) ->
      let names =
        List.map
          (fun d ->
            (* First binding of a name wins, mirroring shadowing being
               rare at top level; later duplicates are dropped. *)
            if not (Hashtbl.mem defs d.qname) then begin
              Hashtbl.add defs d.qname d;
              order := d.qname :: !order
            end;
            d.qname)
          file_defs
      in
      Hashtbl.replace by_file path (List.sort_uniq String.compare names))
    per_file;
  let order = List.rev !order in
  let calls : (string, call list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (_, file_defs, env) ->
      List.iter
        (fun d ->
          if Hashtbl.find_opt defs d.qname = Some d then
            Hashtbl.replace calls d.qname
              (dedupe_calls (calls_of ~defs ~known env d.body)))
        file_defs)
    per_file;
  { defs; order; calls; by_file; envs; known }

let find t q = Hashtbl.find_opt t.defs q

let defs_order t = t.order

let calls t q = Option.value ~default:[] (Hashtbl.find_opt t.calls q)

let defs_in_file t file =
  match Hashtbl.find_opt t.by_file file with
  | None -> []
  | Some names ->
    let ds = List.filter_map (find t) names in
    List.sort (fun (a : def) (b : def) -> Int.compare a.line b.line) ds

let resolve t ~file p =
  match Hashtbl.find_opt t.envs file with
  | None -> None
  | Some env -> resolve_with ~defs:t.defs ~known:t.known env p

let to_dot t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun q ->
      Buffer.add_string b (Printf.sprintf "  %S;\n" q))
    t.order;
  List.iter
    (fun q ->
      let seen = Hashtbl.create 4 in
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c.callee) then begin
            Hashtbl.add seen c.callee ();
            Buffer.add_string b (Printf.sprintf "  %S -> %S;\n" q c.callee)
          end)
        (calls t q))
    t.order;
  Buffer.add_string b "}\n";
  Buffer.contents b
