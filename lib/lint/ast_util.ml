(* Shared Parsetree helpers for the lint passes.

   Everything here is purely syntactic: the linter runs before typing,
   so these are the conservative building blocks the per-file rules
   ({!Rules}), the call graph ({!Callgraph}), the effect inference
   ({!Effects}) and the interprocedural rules ({!Interproc}) agree on. *)

open Parsetree
module S = Set.Make (String)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* Qualified names match modulo an explicit [Stdlib.] prefix. *)
let norm = function "Stdlib" :: rest -> rest | p -> p

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (norm (flatten txt))
  | _ -> None

let last2 p =
  match List.rev p with b :: a :: _ -> Some (a, b) | _ -> None

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p)) -> pat_vars acc p
  | Ppat_variant (_, Some p) -> pat_vars acc p
  | Ppat_record (fs, _) ->
    List.fold_left (fun acc (_, p) -> pat_vars acc p) acc fs
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
  | Ppat_exception p ->
    pat_vars acc p
  | _ -> acc

(* Direct sub-expressions of [e], via a non-recursing iterator hook. *)
let sub_exprs e =
  let acc = ref [] in
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ ex -> acc := ex :: !acc) }
  in
  Ast_iterator.default_iterator.expr it e;
  List.rev !acc

(* Does [e] contain a free occurrence of the plain identifier [name]?
   (Syntactic: rebinding inside [e] is not tracked — fine for the short
   index expressions this is used on.) *)
let mentions_name name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt = Longident.Lident s; _ } when s = name ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let mentions_any names e = S.exists (fun n -> mentions_name n e) names

(* The innermost identifier an lvalue expression roots in: [x], [x.f.g],
   [(x : t)].  [None] for module-qualified or computed targets — those
   are necessarily captured. *)
let rec lvalue_head e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
  | Pexp_field (e, _) | Pexp_constraint (e, _) -> lvalue_head e
  | _ -> None

let is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let pool_fn p =
  match last2 p with
  | Some ("Pool", (("run" | "map") as m)) -> Some ("Pool." ^ m)
  | _ -> None

let container_mutator = function
  | [ "Bytes"; ("set" | "unsafe_set" | "blit" | "blit_string" | "fill") ]
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear"
                 | "filter_map_inplace" ) ]
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ] ->
    true
  | "Buffer" :: (op :: _) when String.length op >= 4
                              && String.sub op 0 4 = "add_" ->
    true
  | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> true
  | _ -> false

let synchronized = function
  | ("Atomic" | "Mutex" | "Condition" | "Semaphore" | "Domain") :: _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Exception-flow shapes shared by SA006 and the Catches_all effect    *)
(* ------------------------------------------------------------------ *)

let rec pat_mentions_construct names p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
    (match List.rev (flatten txt) with
    | last :: _ when List.mem last names -> true
    | _ -> false)
    || (match arg with
       | Some (_, p) -> pat_mentions_construct names p
       | None -> false)
  | Ppat_or (a, b) ->
    pat_mentions_construct names a || pat_mentions_construct names b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_exception p
  | Ppat_lazy p | Ppat_open (_, p) ->
    pat_mentions_construct names p
  | _ -> false

let body_raises e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply (f, _) -> (
            match ident_path f with
            | Some p -> (
              match List.rev p with
              | ("raise" | "raise_notrace" | "reraise") :: _ -> found := true
              | _ -> ())
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let is_catch_all c =
  c.pc_guard = None
  &&
  match c.pc_lhs.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias ({ ppat_desc = Ppat_any; _ }, _) -> true
  | _ -> false

(* A catch-all that merely {e records} the caught exception for a later
   re-raise — the pool's drain pattern, [t.pending_exn <- Some exn] —
   is containment, not swallowing: the value is preserved, not dropped.
   Recognized shape: the catch variable flows into a ref/field/container
   store somewhere in the handler body. *)
let stores_caught c =
  let vars = S.of_list (pat_vars [] c.pc_lhs) in
  if S.is_empty vars then false
  else begin
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match ex.pexp_desc with
            | Pexp_setfield (_, _, v) -> if mentions_any vars v then found := true
            | Pexp_apply (f, args) -> (
              match ident_path f with
              | Some [ ":=" ] -> (
                match args with
                | _ :: (_, v) :: _ ->
                  if mentions_any vars v then found := true
                | _ -> ())
              | Some p when container_mutator p ->
                if List.exists (fun (_, a) -> mentions_any vars a) args then
                  found := true
              | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it c.pc_rhs;
    !found
  end

(* The swallowing catch-all of a handler list, if any.  [None] when the
   handlers are safe: no catch-all, a catch-all that re-raises, one that
   records the exception for a later re-raise ({!stores_caught}), or a
   sibling case that re-raises [Abort] (the sanctioned containment
   shape: everything {e but} the cooperative interrupt is absorbed). *)
let swallowing_catch_all cases =
  match List.find_opt is_catch_all cases with
  | None -> None
  | Some ca ->
    let contained =
      List.exists
        (fun c ->
          pat_mentions_construct [ "Abort" ] c.pc_lhs && body_raises c.pc_rhs)
        cases
    in
    if contained || body_raises ca.pc_rhs || stores_caught ca then None
    else Some ca
