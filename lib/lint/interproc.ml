(* Interprocedural rules, grounded on {!Callgraph} + {!Effects}:

   - SA010: deterministic-replay code (closures handed to
     [Pool.run]/[Pool.map], and the [Journal] module) transitively
     reaches ambient RNG / wall clock / console IO through its call
     graph.  Only depth >= 1 is reported — a primitive called directly
     in the replay code is SA002/SA003/SA004's finding at its own line;
     this rule reports what the syntactic rules cannot see, anchored at
     the call that starts the tainted path, with the witness chain in
     the message.
   - SA011: a swallowing catch-all ({!Ast_util.swallowing_catch_all})
     sits anywhere on a call path below a pool task body.  The handler
     itself is SA006's finding (in lib/); this rule flags the {e task}
     whose Abort/Injected can vanish, which matters even where SA006 is
     off (bench/bin pools).
   - SA012: escape analysis for captured mutable state, superseding
     SA005's purely syntactic worker-escape heuristics.  Three shapes:
     a captured value flowing into a callee parameter the effect
     summaries say is mutated (through any number of helpers); the
     worker id escaping into captured state that is {e not} an eager
     per-worker copy; and the task transitively mutating module-level
     state.  The blessed eager-copy pattern — [Array.init (Pool.jobs
     pool) ...] bound before the batch, read back at the worker index
     (directly or through a one-line accessor) — is recognized and not
     flagged, which is precision the old syntactic rule could not have.

   Direct mutation of captured state inside the closure body itself
   stays SA005 (same messages as before); SA012 owns everything that
   needs the call graph.  Local helpers (let-bound functions in the
   enclosing definition) are not call-graph nodes — they are analyzed
   by inlining: the walk recurses into their bodies, and their directly
   mutated parameters are classified at each call site. *)

open Parsetree
open Ast_util

type scope = {
  local_fns : (string * expression) list;
      (* let-bound fun literals of the enclosing definition *)
  eager : S.t;  (* names bound to [Array.init (Pool.jobs _) _] *)
}

let empty_scope = { local_fns = []; eager = S.empty }

let rec pat_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pat_name p
  | _ -> None

(* [Array.init (Pool.jobs pool) f]: the eager per-worker-copy shape
   from docs/parallel.md — one slot per worker, filled before the
   batch starts. *)
let is_eager_init e =
  match e.pexp_desc with
  | Pexp_apply (f, (_, n) :: _) -> (
    match ident_path f with
    | Some [ "Array"; "init" ] -> (
      match n.pexp_desc with
      | Pexp_apply (g, _) -> (
        match ident_path g with
        | Some gp -> last2 gp = Some ("Pool", "jobs")
        | None -> false)
      | _ -> false)
    | _ -> false)
  | _ -> false

(* A one-parameter accessor whose body is exactly an eager-array read
   at the parameter — [let state_of worker = states.(worker)].  Calling
   it on the worker id is the blessed addressing of per-worker copies. *)
let safe_worker_fn scope ge =
  match ge.pexp_desc with
  | Pexp_fun (_, None, pat, body) -> (
    match (pat_name pat, body.pexp_desc) with
    | Some p, Pexp_apply (f, [ (_, arr); (_, idx) ]) -> (
      match ident_path f with
      | Some [ "Array"; ("get" | "unsafe_get") ] -> (
        match (lvalue_head arr, ident_path idx) with
        | Some a, Some [ i ] -> S.mem a scope.eager && i = p
        | _ -> false)
      | _ -> false)
    | _ -> false)
  | _ -> false

let fake_def ~file name ge =
  {
    Callgraph.qname = "<local>." ^ name;
    file;
    line = line_of ge.pexp_loc;
    params = Callgraph.params_of ge;
    body = ge;
  }

let taints = [ Effects.Rng; Effects.Clock; Effects.Io ]

(* The argument expression supplying parameter [j]: labelled by label,
   unlabelled positionally among the unlabelled arguments. *)
let arg_expr_for (params : (Asttypes.arg_label * string option) list) args j =
  match List.nth_opt params j with
  | None -> None
  | Some (Asttypes.Nolabel, _) ->
    let pos =
      List.length
        (List.filteri (fun i (l, _) -> i < j && l = Asttypes.Nolabel) params)
    in
    let unlabelled = List.filter (fun (l, _) -> l = Asttypes.Nolabel) args in
    Option.map snd (List.nth_opt unlabelled pos)
  | Some ((Asttypes.Labelled l | Asttypes.Optional l), _) ->
    List.find_map
      (fun (al, a) ->
        match al with
        | Asttypes.Labelled l' | Asttypes.Optional l' when l' = l -> Some a
        | _ -> None)
      args

let describe a =
  match lvalue_head a with
  | Some s -> s
  | None -> (
    match ident_path a with
    | Some p -> String.concat "." p
    | None -> "state")

(* ------------------------------------------------------------------ *)
(* One pool task                                                        *)
(* ------------------------------------------------------------------ *)

let analyze_task ~cg ~summaries ~file ~emit ~scope ~fname closure =
  let escape_lines : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let taint_seen : (Effects.eff, unit) Hashtbl.t = Hashtbl.create 4 in
  let catch_seen = ref false in
  let mutglobal_seen = ref false in
  let mutparam_seen : (int * string * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let helper_mut_lines : (int * string, unit) Hashtbl.t = Hashtbl.create 4 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let helper_direct =
    let cache : (string, Effects.summary) Hashtbl.t = Hashtbl.create 4 in
    fun g ge ->
      match Hashtbl.find_opt cache g with
      | Some s -> s
      | None ->
        let s = Effects.direct (fake_def ~file g ge) in
        Hashtbl.add cache g s;
        s
  in
  let chain_str q e = String.concat " -> " (Effects.chain summaries q e) in
  let escape line what =
    if not (Hashtbl.mem escape_lines line) then begin
      Hashtbl.add escape_lines line ();
      emit line Finding.SA012
        (Printf.sprintf
           "closure given to %s %s — per-worker shared state must be \
            copied eagerly before the batch (docs/parallel.md); justify \
            in the baseline"
           fname what)
    end
  in
  let mutation ctx line what =
    match ctx with
    | `Closure ->
      emit line Finding.SA005
        (Printf.sprintf
           "closure given to %s %s without Atomic/Mutex — racy under \
            parallel execution and invisible to deterministic replay"
           fname what)
    | `Helper g ->
      if not (Hashtbl.mem helper_mut_lines (line, g)) then begin
        Hashtbl.add helper_mut_lines (line, g) ();
        emit line Finding.SA012
          (Printf.sprintf
             "local helper %s, reachable from a %s task, %s without \
              Atomic/Mutex — racy under parallel execution"
             g fname what)
      end
  in
  let eager_array arr =
    match lvalue_head arr with Some s -> S.mem s scope.eager | None -> false
  in
  (* An argument that carries the worker id (or shared state) but in a
     blessed form: an eager-array read, or an application of a safe
     per-worker accessor. *)
  let worker_blessed a =
    match a.pexp_desc with
    | Pexp_apply (f, [ (_, arr); _ ]) when
        (match ident_path f with
         | Some [ "Array"; ("get" | "unsafe_get") ] -> true
         | _ -> false) ->
      eager_array arr
    | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some [ g ] -> (
        match List.assoc_opt g scope.local_fns with
        | Some ge -> safe_worker_fn scope ge
        | None -> false)
      | _ -> false)
    | _ -> false
  in
  let local_head locals e =
    match lvalue_head e with Some s -> S.mem s locals | None -> false
  in
  (* Captured (closure-external) argument heads are the dangerous ones;
     task-locals, blessed per-worker handles, and computed values are
     not (a locally-created value handed to a mutator is the normal
     ownership pattern). *)
  let captured_arg locals a =
    if worker_blessed a then false
    else
      match a.pexp_desc with
      | Pexp_ident { txt = Longident.Lident s; _ } -> not (S.mem s locals)
      | Pexp_ident _ -> true
      | Pexp_field _ | Pexp_constraint _ -> (
        match lvalue_head a with
        | Some s -> not (S.mem s locals)
        | None -> true)
      | _ -> false
  in
  let resolved_call locals line q args =
    let sum = Effects.summary_of summaries q in
    List.iter
      (fun e ->
        if Effects.has e sum && not (Hashtbl.mem taint_seen e) then begin
          Hashtbl.add taint_seen e ();
          emit line Finding.SA010
            (Printf.sprintf
               "task given to %s transitively reaches %s (%s) — ambient \
                rng/clock/io breaks deterministic replay; hoist the \
                effect out of the task or justify in the baseline"
               fname (Effects.eff_name e) (chain_str q e))
        end)
      taints;
    if Effects.has Effects.Catches_all sum && not !catch_seen then begin
      catch_seen := true;
      emit line Finding.SA011
        (Printf.sprintf
           "call path from this %s task reaches a swallowing catch-all \
            (%s) — Abort/Injected raised inside the task can vanish in \
            a helper; match concrete exceptions, re-raise, or record \
            for a later re-raise"
           fname
           (chain_str q Effects.Catches_all))
    end;
    if Effects.has Effects.Mutation sum && not !mutglobal_seen then begin
      mutglobal_seen := true;
      emit line Finding.SA012
        (Printf.sprintf
           "task given to %s transitively mutates module-level state \
            (%s) — racy under parallel execution without Atomic/Mutex"
           fname
           (chain_str q Effects.Mutation))
    end;
    if args <> [] && sum.Effects.mut_params <> [] then
      match Callgraph.find cg q with
      | None -> ()
      | Some cd ->
        List.iter
          (fun j ->
            match arg_expr_for cd.Callgraph.params args j with
            | None -> ()
            | Some a ->
              if
                captured_arg locals a
                && not (Hashtbl.mem mutparam_seen (line, q, j))
              then begin
                Hashtbl.add mutparam_seen (line, q, j) ();
                emit line Finding.SA012
                  (Printf.sprintf
                     "captured %s flows into %s, which mutates it (%s) \
                      — copy eagerly per worker or synchronize"
                     (describe a) q
                     (String.concat " -> " (Effects.mut_chain summaries q j)))
              end)
          sum.Effects.mut_params
  in
  let helper_call locals line g ge args =
    let hsum = helper_direct g ge in
    let hparams = Callgraph.params_of ge in
    List.iter
      (fun j ->
        match arg_expr_for hparams args j with
        | None -> ()
        | Some a ->
          if
            captured_arg locals a
            && not (Hashtbl.mem mutparam_seen (line, g, j))
          then begin
            Hashtbl.add mutparam_seen (line, g, j) ();
            emit line Finding.SA012
              (Printf.sprintf
                 "captured %s flows into local helper %s, which mutates \
                  it — racy under parallel execution without Atomic/Mutex"
                 (describe a) g)
          end)
      hsum.Effects.mut_params
  in
  let rec entry ctx locals worker e =
    (* Walk through the leading fun chain, picking up the ~worker id. *)
    match e.pexp_desc with
    | Pexp_fun (lbl, dflt, pat, body) ->
      Option.iter (walk ctx locals worker) dflt;
      let locals = S.union locals (S.of_list (pat_vars [] pat)) in
      let worker =
        match (lbl, pat.ppat_desc) with
        | ( (Asttypes.Labelled "worker" | Asttypes.Optional "worker"),
            Ppat_var { txt; _ } ) ->
          Some txt
        | _ -> worker
      in
      entry ctx locals worker body
    | Pexp_newtype (_, body) -> entry ctx locals worker body
    | _ -> walk ctx locals worker e
  and helper_walk g ge =
    if not (Hashtbl.mem visited g) then begin
      Hashtbl.add visited g ();
      entry (`Helper g) S.empty None ge
    end
  and case ctx locals worker c =
    let locals = S.union locals (S.of_list (pat_vars [] c.pc_lhs)) in
    Option.iter (walk ctx locals worker) c.pc_guard;
    walk ctx locals worker c.pc_rhs
  and walk ctx locals worker e =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let bound = List.concat_map (fun vb -> pat_vars [] vb.pvb_pat) vbs in
      let locals' = S.union locals (S.of_list bound) in
      let rhs_env = if rf = Asttypes.Recursive then locals' else locals in
      List.iter (fun vb -> walk ctx rhs_env worker vb.pvb_expr) vbs;
      walk ctx locals' worker body
    | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (walk ctx locals worker) dflt;
      walk ctx (S.union locals (S.of_list (pat_vars [] pat))) worker body
    | Pexp_newtype (_, body) -> walk ctx locals worker body
    | Pexp_function cases -> List.iter (case ctx locals worker) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk ctx locals worker scrut;
      List.iter (case ctx locals worker) cases
    | Pexp_for (pat, lo, hi, _, body) ->
      walk ctx locals worker lo;
      walk ctx locals worker hi;
      walk ctx (S.union locals (S.of_list (pat_vars [] pat))) worker body
    | Pexp_setfield (tgt, _, v) ->
      if not (local_head locals tgt) then
        mutation ctx (line_of e.pexp_loc) "mutates a captured record field";
      walk ctx locals worker tgt;
      walk ctx locals worker v
    | Pexp_ident { txt; _ } -> (
      (* Bare reference: keeps higher-order flow reachable.  The same
         guard as the call graph — parameterless values carry no
         edge. *)
      let p = norm (flatten txt) in
      match p with
      | [ g ]
        when (not (S.mem g locals))
             && List.assoc_opt g scope.local_fns <> None ->
        let ge = List.assoc g scope.local_fns in
        if not (safe_worker_fn scope ge) then helper_walk g ge
      | _ -> (
        match Callgraph.resolve cg ~file p with
        | Some q -> (
          match Callgraph.find cg q with
          | Some d when d.Callgraph.params <> [] ->
            resolved_call locals (line_of e.pexp_loc) q []
          | _ -> ())
        | None -> ()))
    | Pexp_apply (f, args) ->
      (match ident_path f with
      | Some p -> (
        let line = line_of e.pexp_loc in
        match (p, args) with
        | ([ ":=" ] | [ "incr" ] | [ "decr" ]), (_, r) :: _ ->
          if not (local_head locals r) then
            mutation ctx line "mutates a captured ref cell"
        | [ "Array"; ("set" | "unsafe_set") ], (_, arr) :: (_, idx) :: _ ->
          if (not (local_head locals arr)) && not (mentions_any locals idx)
          then
            mutation ctx line
              "writes a captured array at a non-task-local index (the \
               disjoint-slot convention needs the index derived from the \
               task argument)"
        | [ "Array"; ("get" | "unsafe_get") ], (_, arr) :: (_, idx) :: _ -> (
          match worker with
          | Some w
            when (not (local_head locals arr))
                 && mentions_name w idx
                 && not (eager_array arr) ->
            escape line "reads a captured array at the worker index"
          | _ -> ())
        | _, (_, c0) :: _ when container_mutator p ->
          if not (local_head locals c0) then
            mutation ctx line
              (Printf.sprintf "mutates a captured %s" (List.hd p))
        | _, _ when synchronized p -> ()
        | [ g ], _
          when (not (S.mem g locals))
               && List.assoc_opt g scope.local_fns <> None -> (
          let ge = List.assoc g scope.local_fns in
          if not (safe_worker_fn scope ge) then begin
            helper_call locals line g ge args;
            (match worker with
            | Some w
              when List.exists
                     (fun (_, a) ->
                       mentions_name w a && not (worker_blessed a))
                     args ->
              escape line
                (Printf.sprintf
                   "passes the worker id into local helper %s (only the \
                    eager per-worker-copy accessor is exempt)"
                   g)
            | _ -> ());
            helper_walk g ge
          end)
        | _, _ -> (
          (match Callgraph.resolve cg ~file p with
          | Some q -> resolved_call locals line q args
          | None -> ());
          match worker with
          | Some w ->
            let captured =
              match p with
              | [ s ] -> not (S.mem s locals)
              | _ :: _ :: _ -> true
              | _ -> false
            in
            if
              captured
              && List.exists
                   (fun (_, a) -> mentions_name w a && not (worker_blessed a))
                   args
            then
              escape line
                (Printf.sprintf "passes the worker id into captured %s"
                   (String.concat "." p))
          | None -> ()))
      | None -> ());
      walk ctx locals worker f;
      List.iter (fun (_, a) -> walk ctx locals worker a) args
    | _ -> List.iter (walk ctx locals worker) (sub_exprs e)
  in
  entry `Closure S.empty None closure

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                    *)
(* ------------------------------------------------------------------ *)

(* Journal code is a deterministic-replay root with taint {rng, clock}:
   the journal's whole job is IO, but a digest or replay path that
   reaches ambient randomness or the wall clock cannot reproduce. *)
let journal_taints = [ Effects.Rng; Effects.Clock ]

let check ~cg ~summaries ~file =
  let out = ref [] in
  let emit line rule msg =
    out := Finding.v ~file ~line rule msg :: !out
  in
  let defs = Callgraph.defs_in_file cg file in
  List.iter
    (fun (d : Callgraph.def) ->
      let rec scan scope e =
        match e.pexp_desc with
        | Pexp_let (rf, vbs, body) ->
          let scope' =
            List.fold_left
              (fun sc vb ->
                match pat_name vb.pvb_pat with
                | Some n when is_fun_literal vb.pvb_expr ->
                  { sc with local_fns = (n, vb.pvb_expr) :: sc.local_fns }
                | Some n when is_eager_init vb.pvb_expr ->
                  { sc with eager = S.add n sc.eager }
                | _ -> sc)
              scope vbs
          in
          let rhs_scope = if rf = Asttypes.Recursive then scope' else scope in
          List.iter (fun vb -> scan rhs_scope vb.pvb_expr) vbs;
          scan scope' body
        | Pexp_apply (f, args) -> (
          (match ident_path f with
          | Some p -> (
            match pool_fn p with
            | Some fname ->
              List.iter
                (fun (_, a) ->
                  let task =
                    if is_fun_literal a then Some a
                    else
                      match a.pexp_desc with
                      | Pexp_ident { txt = Longident.Lident g; _ } ->
                        List.assoc_opt g scope.local_fns
                      | _ -> None
                  in
                  match task with
                  | Some closure ->
                    analyze_task ~cg ~summaries ~file ~emit ~scope ~fname
                      closure
                  | None -> ())
                args
            | None -> ())
          | None -> ());
          scan scope f;
          List.iter (fun (_, a) -> scan scope a) args)
        | _ -> List.iter (scan scope) (sub_exprs e)
      in
      scan empty_scope d.body)
    defs;
  if Filename.basename file = "journal.ml" then
    List.iter
      (fun (d : Callgraph.def) ->
        let seen : (Effects.eff, unit) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (fun (c : Callgraph.call) ->
            let sum = Effects.summary_of summaries c.Callgraph.callee in
            List.iter
              (fun e ->
                if Effects.has e sum && not (Hashtbl.mem seen e) then begin
                  Hashtbl.add seen e ();
                  emit c.Callgraph.line Finding.SA010
                    (Printf.sprintf
                       "journal code transitively reaches %s (%s) — \
                        replay digests and journal playback must be \
                        deterministic"
                       (Effects.eff_name e)
                       (String.concat " -> "
                          (Effects.chain summaries c.Callgraph.callee e)))
                end)
              journal_taints)
          (Callgraph.calls cg d.Callgraph.qname))
      defs;
  List.sort_uniq Finding.compare !out
