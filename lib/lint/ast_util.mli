(** Shared Parsetree helpers for the lint passes: identifier paths,
    pattern variables, lvalue roots, and the exception-flow shapes that
    both the syntactic SA006 rule and the [Catches_all] effect bit use.
    Everything is purely syntactic — the linter runs before typing. *)

module S : Set.S with type elt = string

val flatten : Longident.t -> string list
(** ["A.B.c"] as [["A"; "B"; "c"]]; [[]] for functor applications. *)

val norm : string list -> string list
(** Drop an explicit leading [Stdlib.]. *)

val ident_path : Parsetree.expression -> string list option
(** The normalized path of an identifier expression, [None] otherwise. *)

val last2 : string list -> (string * string) option
(** The last two components of a path: [last2 ["Fp_util"; "Pool"; "run"]
    = Some ("Pool", "run")]. *)

val line_of : Location.t -> int

val pat_vars : string list -> Parsetree.pattern -> string list
(** All variables bound by a pattern, prepended to the accumulator. *)

val sub_exprs : Parsetree.expression -> Parsetree.expression list
(** Direct sub-expressions, one iterator level deep. *)

val mentions_name : string -> Parsetree.expression -> bool
(** Free-occurrence check for a plain identifier (syntactic: rebinding
    inside the expression is not tracked). *)

val mentions_any : S.t -> Parsetree.expression -> bool

val lvalue_head : Parsetree.expression -> string option
(** The innermost plain identifier an lvalue roots in ([x], [x.f.g]);
    [None] for module-qualified or computed targets. *)

val is_fun_literal : Parsetree.expression -> bool

val pool_fn : string list -> string option
(** [Some "Pool.run"] / [Some "Pool.map"] when the path is a pool batch
    entry point (matched on the last two components, so both
    [Pool.run] and [Fp_util.Pool.run] qualify). *)

val container_mutator : string list -> bool
(** Paths that mutate their first container argument
    ([Hashtbl.replace], [Queue.push], [Buffer.add_*], ...). *)

val synchronized : string list -> bool
(** Paths rooted in the blessed synchronization modules
    ([Atomic], [Mutex], [Condition], [Semaphore], [Domain]). *)

val pat_mentions_construct : string list -> Parsetree.pattern -> bool
(** Does the pattern match any constructor whose last path component is
    in the list (e.g. [Abort], [Injected])? *)

val body_raises : Parsetree.expression -> bool
(** Does the expression contain a [raise]/[raise_notrace] application? *)

val is_catch_all : Parsetree.case -> bool
(** An unguarded [_]/variable handler. *)

val stores_caught : Parsetree.case -> bool
(** Does the handler body store the caught exception variable into a
    ref/field/container (the record-for-later-re-raise containment
    pattern, e.g. the pool drain's [t.pending_exn <- Some exn])? *)

val swallowing_catch_all : Parsetree.case list -> Parsetree.case option
(** The catch-all that can swallow [Abort]/[Injected], if the handler
    list has one that neither re-raises, nor records the exception
    ({!stores_caught}), nor sits beside an [Abort]-re-raising case. *)
