open Parsetree
module S = Set.Make (String)

type role = Lib | Bin | Bench | Examples | Other

let role_of_path path =
  let first =
    match String.index_opt path '/' with
    | Some i -> String.sub path 0 i
    | None -> ""
  in
  match first with
  | "lib" -> Lib
  | "bin" -> Bin
  | "bench" -> Bench
  | "examples" -> Examples
  | _ -> Other

type context = { known_sites : string list }

let applies rule ~role ~path =
  match (rule : Finding.rule) with
  | SA000 -> true
  | SA001 -> role = Lib && path <> "lib/geometry/tol.ml"
  | SA002 -> path <> "lib/util/rng.ml"
  | SA003 -> role = Lib
  | SA004 -> role = Lib && path <> "lib/core/augment.ml"
  | SA005 -> true
  | SA006 -> role = Lib
  | SA007 -> true
  | SA008 -> path <> "lib/core/degradation.ml"

(* ------------------------------------------------------------------ *)
(* Longident / AST helpers                                             *)
(* ------------------------------------------------------------------ *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* Qualified names match modulo an explicit [Stdlib.] prefix. *)
let norm = function "Stdlib" :: rest -> rest | p -> p

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (norm (flatten txt))
  | _ -> None

let last2 p =
  match List.rev p with b :: a :: _ -> Some (a, b) | _ -> None

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p)) -> pat_vars acc p
  | Ppat_variant (_, Some p) -> pat_vars acc p
  | Ppat_record (fs, _) ->
    List.fold_left (fun acc (_, p) -> pat_vars acc p) acc fs
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
  | Ppat_exception p ->
    pat_vars acc p
  | _ -> acc

(* Direct sub-expressions of [e], via a non-recursing iterator hook. *)
let sub_exprs e =
  let acc = ref [] in
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ ex -> acc := ex :: !acc) }
  in
  Ast_iterator.default_iterator.expr it e;
  List.rev !acc

(* Does [e] contain a free occurrence of the plain identifier [name]?
   (Syntactic: rebinding inside [e] is not tracked — fine for the short
   index expressions this is used on.) *)
let mentions_name name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt = Longident.Lident s; _ } when s = name ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let mentions_any names e = S.exists (fun n -> mentions_name n e) names

(* The innermost identifier an lvalue expression roots in: [x], [x.f.g],
   [(x : t)].  [None] for module-qualified or computed targets — those
   are necessarily captured. *)
let rec lvalue_head e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
  | Pexp_field (e, _) | Pexp_constraint (e, _) -> lvalue_head e
  | _ -> None

(* ------------------------------------------------------------------ *)
(* SA001: raw float comparisons                                        *)
(* ------------------------------------------------------------------ *)

let cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "compare" ]

let float_arith =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "abs_float"; "sqrt"; "float_of_int";
    "float_of_string" ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float" ]

(* Syntactically-float: a float literal, float arithmetic, a [Float.]
   producer, or a float-annotated expression.  A conservative
   approximation of "this comparison is on floats" that needs no type
   information. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e', ty) -> (
    match ty.ptyp_desc with
    | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
    | _ -> floatish e')
  | Pexp_ident { txt; _ } -> (
    match norm (flatten txt) with
    | [ s ] -> List.mem s float_consts
    | [ "Float"; ("pi" | "infinity" | "neg_infinity" | "nan" | "epsilon"
                 | "max_float" | "min_float") ] ->
      true
    | _ -> false)
  | Pexp_apply (f, _) -> (
    match ident_path f with
    | Some [ s ] -> List.mem s float_arith
    | Some [ "Float"; op ] ->
      not
        (List.mem op
           [ "to_int"; "compare"; "equal"; "to_string"; "is_nan";
             "is_finite"; "is_integer"; "sign_bit" ])
    | _ -> false)
  | Pexp_ifthenelse (_, a, Some b) -> floatish a || floatish b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SA003 / SA004: forbidden identifiers                                 *)
(* ------------------------------------------------------------------ *)

let sa003_ident = function
  | [ ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" | "prerr_string"
      | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int"
      | "prerr_float" | "prerr_bytes" | "stdout" | "stderr" ) ] ->
    true
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format";
      ( "printf" | "eprintf" | "print_string" | "print_int" | "print_float"
      | "print_char" | "print_newline" | "print_space" | "print_cut"
      | "print_flush" | "open_box" | "close_box" | "std_formatter"
      | "err_formatter" ) ] ->
    true
  | _ -> false

let sa004_ident = function
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SA006: catch-all handlers                                            *)
(* ------------------------------------------------------------------ *)

let rec pat_mentions_construct names p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
    (match List.rev (flatten txt) with
    | last :: _ when List.mem last names -> true
    | _ -> false)
    || (match arg with
       | Some (_, p) -> pat_mentions_construct names p
       | None -> false)
  | Ppat_or (a, b) ->
    pat_mentions_construct names a || pat_mentions_construct names b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_exception p
  | Ppat_lazy p | Ppat_open (_, p) ->
    pat_mentions_construct names p
  | _ -> false

let body_raises e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply (f, _) -> (
            match ident_path f with
            | Some p -> (
              match List.rev p with
              | ("raise" | "raise_notrace" | "reraise") :: _ -> found := true
              | _ -> ())
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let is_catch_all c =
  c.pc_guard = None
  &&
  match c.pc_lhs.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias ({ ppat_desc = Ppat_any; _ }, _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SA005: domain-safety of Pool closures                                *)
(* ------------------------------------------------------------------ *)

let pool_fn p =
  match last2 p with
  | Some ("Pool", (("run" | "map") as m)) -> Some ("Pool." ^ m)
  | _ -> None

let is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let container_mutator = function
  | [ "Bytes"; ("set" | "unsafe_set" | "blit" | "blit_string" | "fill") ]
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear"
                 | "filter_map_inplace" ) ]
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ] ->
    true
  | "Buffer" :: (op :: _) when String.length op >= 4
                              && String.sub op 0 4 = "add_" ->
    true
  | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> true
  | _ -> false

let synchronized = function
  | ("Atomic" | "Mutex" | "Condition" | "Semaphore" | "Domain") :: _ -> true
  | _ -> false

(* Walk a closure literal handed to [Pool.run]/[Pool.map], tracking the
   set of names bound inside the closure.  Two families of findings:

   - mutation of captured (closure-external) mutable state without
     [Atomic]/[Mutex] — the data race the deterministic replay cannot
     survive.  The one blessed shape is the disjoint-slot convention
     from the [Pool] doc: writing a captured array at an index derived
     from a task-local binding;

   - routing the [~worker] id into captured state (worker-indexed array
     reads, or captured functions applied to [worker]) — the eager
     per-worker-copy pattern.  Correct uses exist (that is how the
     per-worker LP copies are addressed) but each must carry a baseline
     justification, because taking the copy lazily inside the task is
     exactly the race PR 3 fixed. *)
let analyze_closure ~emit ~fname closure =
  let escape_lines : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let escape loc what =
    let l = line_of loc in
    if not (Hashtbl.mem escape_lines l) then begin
      Hashtbl.add escape_lines l ();
      emit loc
        (Printf.sprintf
           "closure given to %s %s — per-worker shared state must be \
            copied eagerly before the batch (docs/parallel.md); justify \
            in the baseline"
           fname what)
    end
  in
  let mutation loc what =
    emit loc
      (Printf.sprintf
         "closure given to %s %s without Atomic/Mutex — racy under \
          parallel execution and invisible to deterministic replay"
         fname what)
  in
  let local_head locals e =
    match lvalue_head e with Some s -> S.mem s locals | None -> false
  in
  let rec params locals worker e =
    match e.pexp_desc with
    | Pexp_fun (lbl, dflt, pat, body) ->
      Option.iter (walk locals worker) dflt;
      let locals = S.union locals (S.of_list (pat_vars [] pat)) in
      let worker =
        match (lbl, pat.ppat_desc) with
        | (Asttypes.Labelled "worker" | Asttypes.Optional "worker"),
          Ppat_var { txt; _ } ->
          Some txt
        | _ -> worker
      in
      params locals worker body
    | Pexp_newtype (_, body) -> params locals worker body
    | _ -> walk locals worker e
  and case locals worker c =
    let locals = S.union locals (S.of_list (pat_vars [] c.pc_lhs)) in
    Option.iter (walk locals worker) c.pc_guard;
    walk locals worker c.pc_rhs
  and walk locals worker e =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let bound = List.concat_map (fun vb -> pat_vars [] vb.pvb_pat) vbs in
      let locals' = S.union locals (S.of_list bound) in
      let rhs_env = if rf = Asttypes.Recursive then locals' else locals in
      List.iter (fun vb -> walk rhs_env worker vb.pvb_expr) vbs;
      walk locals' worker body
    | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (walk locals worker) dflt;
      walk (S.union locals (S.of_list (pat_vars [] pat))) worker body
    | Pexp_newtype (_, body) -> walk locals worker body
    | Pexp_function cases -> List.iter (case locals worker) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk locals worker scrut;
      List.iter (case locals worker) cases
    | Pexp_for (pat, lo, hi, _, body) ->
      walk locals worker lo;
      walk locals worker hi;
      walk (S.union locals (S.of_list (pat_vars [] pat))) worker body
    | Pexp_setfield (tgt, _, v) ->
      if not (local_head locals tgt) then
        mutation e.pexp_loc "mutates a captured record field";
      walk locals worker tgt;
      walk locals worker v
    | Pexp_apply (f, args) ->
      (match ident_path f with
      | Some p -> (
        match (p, args) with
        | ([ ":=" ] | [ "incr" ] | [ "decr" ]), (_, r) :: _ ->
          if not (local_head locals r) then
            mutation e.pexp_loc "mutates a captured ref cell"
        | [ "Array"; ("set" | "unsafe_set") ], (_, arr) :: (_, idx) :: _ ->
          if not (local_head locals arr) && not (mentions_any locals idx)
          then
            mutation e.pexp_loc
              "writes a captured array at a non-task-local index (the \
               disjoint-slot convention needs the index derived from the \
               task argument)"
        | [ "Array"; ("get" | "unsafe_get") ], (_, arr) :: (_, idx) :: _ ->
          (match worker with
          | Some w when (not (local_head locals arr)) && mentions_name w idx
            ->
            escape e.pexp_loc "reads a captured array at the worker index"
          | _ -> ())
        | _, (_, c) :: _ when container_mutator p ->
          if not (local_head locals c) then
            mutation e.pexp_loc
              (Printf.sprintf "mutates a captured %s" (List.hd p))
        | _, _ when synchronized p -> ()
        | _, _ -> (
          match (worker, p) with
          | Some w, _ ->
            let captured =
              match p with
              | [ s ] -> not (S.mem s locals)
              | _ :: _ :: _ -> true
              | _ -> false
            in
            if captured && List.exists (fun (_, a) -> mentions_name w a) args
            then
              escape e.pexp_loc
                (Printf.sprintf "passes the worker id into captured %s"
                   (String.concat "." p))
          | None, _ -> ()))
      | None -> ());
      walk locals worker f;
      List.iter (fun (_, a) -> walk locals worker a) args
    | _ -> List.iter (walk locals worker) (sub_exprs e)
  in
  params S.empty None closure

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                    *)
(* ------------------------------------------------------------------ *)

let fault_meths = [ "register"; "fire"; "trip"; "spec"; "arm"; "disarm" ]

let check_structure ~ctx ~path ~role str =
  let out = ref [] in
  let emit rule loc msg =
    if applies rule ~role ~path then
      out := Finding.v ~file:path ~line:(line_of loc) rule msg :: !out
  in
  let on_ident loc p =
    (match p with
    | "Random" :: _ ->
      emit SA002 loc "Stdlib.Random — all randomness must go through \
                      Fp_util.Rng (explicit seeds, split_n per domain)"
    | _ -> ());
    if sa003_ident p then
      emit SA003 loc
        (Printf.sprintf
           "%s writes to stdout/stderr from lib/ — log through Logs or \
            return data; printing belongs to the CLI/bench layer"
           (String.concat "." p));
    if sa004_ident p then
      emit SA004 loc
        (Printf.sprintf
           "%s — wall-clock reads are sanctioned only in Augment and the \
            CLI/bench layer (deterministic replay)"
           (String.concat "." p))
  in
  let on_apply loc f args =
    (match ident_path f with
    | Some [ op ] when List.mem op cmp_ops && List.length args >= 2 ->
      if List.exists (fun (_, a) -> floatish a) args then
        emit SA001 loc
          (Printf.sprintf
             "raw float comparison (%s) — use Fp_geometry.Tol" op)
    | Some [ "Float"; (("compare" | "equal") as op) ]
      when List.length args >= 2 ->
      emit SA001 loc
        (Printf.sprintf "raw float comparison (Float.%s) — use \
                         Fp_geometry.Tol" op)
    | Some [ "exit" ] -> (
      match args with
      | [ (Asttypes.Nolabel, { pexp_desc = Pexp_constant (Pconst_integer _);
                               _ }) ] ->
        emit SA008 loc
          "exit with an integer literal — exit codes come from the \
           Fp_core.Degradation mapping"
      | _ -> ())
    | _ -> ());
    (match ident_path f with
    | Some p -> (
      match last2 p with
      | Some ("Fault", meth) when List.mem meth fault_meths ->
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) ->
              if not (List.mem s ctx.known_sites) then
                emit SA007 a.pexp_loc
                  (Printf.sprintf
                     "fault site %S is not in the canonical Fault.builtin \
                      catalogue (lib/util/fault.ml)"
                     s)
            | _ -> ())
          args
      | _ -> ())
    | None -> ());
    match ident_path f with
    | Some p -> (
      match pool_fn p with
      | Some fname ->
        List.iter
          (fun (_, a) ->
            if is_fun_literal a then
              analyze_closure ~emit:(fun l m -> emit SA005 l m) ~fname a)
          args
      | None -> ())
    | None -> ()
  in
  let on_try loc cases =
    match List.find_opt is_catch_all cases with
    | None -> ()
    | Some ca ->
      (* [Abort] is the cooperative-interrupt signal with sanctioned
         pass-through; a handler that re-raises it may deliberately
         contain everything else (that is how hook/candidate failures
         are absorbed, Fault.Injected included). *)
      let contained =
        List.exists
          (fun c ->
            pat_mentions_construct [ "Abort" ] c.pc_lhs
            && body_raises c.pc_rhs)
          cases
      in
      if (not contained) && not (body_raises ca.pc_rhs) then
        emit SA006 loc
          "catch-all exception handler can swallow Augment.Abort / \
           Fault.Injected — match concrete exceptions, or re-raise the \
           containment exceptions first"
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> on_ident e.pexp_loc (norm (flatten txt))
          | Pexp_apply (f, args) -> on_apply e.pexp_loc f args
          | Pexp_try (_, cases) ->
            (match List.find_opt is_catch_all cases with
            | Some ca -> on_try ca.pc_lhs.ppat_loc cases
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.sort_uniq Finding.compare !out

let registered_sites str =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
            match ident_path f with
            | Some p -> (
              match last2 p with
              | Some ("Fault", "register") ->
                List.iter
                  (fun (_, a) ->
                    match a.pexp_desc with
                    | Pexp_constant (Pconst_string (s, _, _)) ->
                      acc := (s, line_of a.pexp_loc) :: !acc
                    | _ -> ())
                  args
              | _ -> ())
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.rev !acc
