open Parsetree
open Ast_util

type role = Lib | Bin | Bench | Examples | Other

let role_of_path path =
  let first =
    match String.index_opt path '/' with
    | Some i -> String.sub path 0 i
    | None -> ""
  in
  match first with
  | "lib" -> Lib
  | "bin" -> Bin
  | "bench" -> Bench
  | "examples" -> Examples
  | _ -> Other

type context = { known_sites : string list }

let applies rule ~role ~path =
  match (rule : Finding.rule) with
  | SA000 -> true
  | SA001 -> role = Lib && path <> "lib/geometry/tol.ml"
  | SA002 -> path <> "lib/util/rng.ml"
  | SA003 -> role = Lib
  | SA004 -> role = Lib && path <> "lib/core/augment.ml"
  | SA005 -> true
  | SA006 -> role = Lib
  | SA007 -> true
  | SA008 -> path <> "lib/core/degradation.ml"
  (* Deterministic replay is a library concern; the CLI/bench layers
     read clocks and print by design.  Exception flow below pool tasks
     and captured-state escapes are wrong in every role. *)
  | SA010 -> role = Lib
  | SA011 -> true
  | SA012 -> true
  (* Protocol violations (lifecycles, abort ordering, Atomic RMW) are
     wrong wherever the resource lives — CLI and bench code leaks
     channels and races atomics just as well as lib/ does.  The one
     exemption mirrors SA002: rng.ml itself implements split, so the
     parent-advances property SA016 polices is its own definition. *)
  | SA013 -> true
  | SA014 -> true
  | SA015 -> true
  | SA016 -> path <> "lib/util/rng.ml"
  | SA017 -> true

(* ------------------------------------------------------------------ *)
(* SA001: raw float comparisons                                        *)
(* ------------------------------------------------------------------ *)

let cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "compare" ]

let float_arith =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "abs_float"; "sqrt"; "float_of_int";
    "float_of_string" ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float" ]

(* Syntactically-float: a float literal, float arithmetic, a [Float.]
   producer, or a float-annotated expression.  A conservative
   approximation of "this comparison is on floats" that needs no type
   information. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e', ty) -> (
    match ty.ptyp_desc with
    | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
    | _ -> floatish e')
  | Pexp_ident { txt; _ } -> (
    match norm (flatten txt) with
    | [ s ] -> List.mem s float_consts
    | [ "Float"; ("pi" | "infinity" | "neg_infinity" | "nan" | "epsilon"
                 | "max_float" | "min_float") ] ->
      true
    | _ -> false)
  | Pexp_apply (f, _) -> (
    match ident_path f with
    | Some [ s ] -> List.mem s float_arith
    | Some [ "Float"; op ] ->
      not
        (List.mem op
           [ "to_int"; "compare"; "equal"; "to_string"; "is_nan";
             "is_finite"; "is_integer"; "sign_bit" ])
    | _ -> false)
  | Pexp_ifthenelse (_, a, Some b) -> floatish a || floatish b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SA003 / SA004: forbidden identifiers                                 *)
(* ------------------------------------------------------------------ *)

let sa003_ident = function
  | [ ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" | "prerr_string"
      | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int"
      | "prerr_float" | "prerr_bytes" | "stdout" | "stderr" ) ] ->
    true
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format";
      ( "printf" | "eprintf" | "print_string" | "print_int" | "print_float"
      | "print_char" | "print_newline" | "print_space" | "print_cut"
      | "print_flush" | "open_box" | "close_box" | "std_formatter"
      | "err_formatter" ) ] ->
    true
  | _ -> false

let sa004_ident = function
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SA005: direct mutation inside Pool closures                          *)
(* ------------------------------------------------------------------ *)

(* The closure walk itself lives in {!Interproc.analyze_task}: direct
   mutation of captured state stays SA005 there, while everything the
   syntactic heuristics used to guess at (worker-id escapes, mutation
   through helpers) is SA012, grounded on the call graph and the effect
   summaries. *)

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                    *)
(* ------------------------------------------------------------------ *)

let fault_meths = [ "register"; "fire"; "trip"; "spec"; "arm"; "disarm" ]

let check_structure ~ctx ~path ~role str =
  let out = ref [] in
  let emit rule loc msg =
    if applies rule ~role ~path then
      out := Finding.v ~file:path ~line:(line_of loc) rule msg :: !out
  in
  let on_ident loc p =
    (match p with
    | "Random" :: _ ->
      emit SA002 loc "Stdlib.Random — all randomness must go through \
                      Fp_util.Rng (explicit seeds, split_n per domain)"
    | _ -> ());
    if sa003_ident p then
      emit SA003 loc
        (Printf.sprintf
           "%s writes to stdout/stderr from lib/ — log through Logs or \
            return data; printing belongs to the CLI/bench layer"
           (String.concat "." p));
    if sa004_ident p then
      emit SA004 loc
        (Printf.sprintf
           "%s — wall-clock reads are sanctioned only in Augment and the \
            CLI/bench layer (deterministic replay)"
           (String.concat "." p))
  in
  let on_apply loc f args =
    (match ident_path f with
    | Some [ op ] when List.mem op cmp_ops && List.length args >= 2 ->
      if List.exists (fun (_, a) -> floatish a) args then
        emit SA001 loc
          (Printf.sprintf
             "raw float comparison (%s) — use Fp_geometry.Tol" op)
    | Some [ "Float"; (("compare" | "equal") as op) ]
      when List.length args >= 2 ->
      emit SA001 loc
        (Printf.sprintf "raw float comparison (Float.%s) — use \
                         Fp_geometry.Tol" op)
    | Some [ "exit" ] -> (
      match args with
      | [ (Asttypes.Nolabel, { pexp_desc = Pexp_constant (Pconst_integer _);
                               _ }) ] ->
        emit SA008 loc
          "exit with an integer literal — exit codes come from the \
           Fp_core.Degradation mapping"
      | _ -> ())
    | _ -> ());
    match ident_path f with
    | Some p -> (
      match last2 p with
      | Some ("Fault", meth) when List.mem meth fault_meths ->
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) ->
              if not (List.mem s ctx.known_sites) then
                emit SA007 a.pexp_loc
                  (Printf.sprintf
                     "fault site %S is not in the canonical Fault.builtin \
                      catalogue (lib/util/fault.ml)"
                     s)
            | _ -> ())
          args
      | _ -> ())
    | None -> ()
  in
  let on_try cases =
    (* [Abort] is the cooperative-interrupt signal with sanctioned
       pass-through; a handler that re-raises it may deliberately
       contain everything else (that is how hook/candidate failures are
       absorbed, Fault.Injected included).  A catch-all that records
       the exception for a later re-raise is containment too — the
       refined predicate is shared with the [catches-all] effect, so
       SA006 and SA011 cannot disagree about what swallowing means. *)
    match swallowing_catch_all cases with
    | None -> ()
    | Some ca ->
      emit SA006 ca.pc_lhs.ppat_loc
        "catch-all exception handler can swallow Augment.Abort / \
         Fault.Injected — match concrete exceptions, re-raise the \
         containment exceptions first, or record for a later re-raise"
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> on_ident e.pexp_loc (norm (flatten txt))
          | Pexp_apply (f, args) -> on_apply e.pexp_loc f args
          | Pexp_try (_, cases) -> on_try cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.sort_uniq Finding.compare !out

let registered_sites str =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
            match ident_path f with
            | Some p -> (
              match last2 p with
              | Some ("Fault", "register") ->
                List.iter
                  (fun (_, a) ->
                    match a.pexp_desc with
                    | Pexp_constant (Pconst_string (s, _, _)) ->
                      acc := (s, line_of a.pexp_loc) :: !acc
                    | _ -> ())
                  args
              | _ -> ())
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.rev !acc
