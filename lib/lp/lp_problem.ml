type var = int
type sense = Minimize | Maximize
type cmp = Le | Ge | Eq
type term = float * var

type constr = {
  cname : string;
  terms : term list;
  cmp : cmp;
  rhs : float;
}

type vinfo = {
  vname : string;
  mutable lb : float;
  mutable ub : float;
  mutable obj : float;
}

type t = {
  pname : string;
  mutable vars : vinfo array;
  mutable nvars : int;
  mutable rows : constr array;
  mutable nrows : int;
  mutable psense : sense;
}

let create ?(name = "lp") () =
  { pname = name; vars = [||]; nvars = 0; rows = [||]; nrows = 0;
    psense = Minimize }

let name t = t.pname

(* Rows are immutable records, so sharing them is safe; vinfo records are
   mutable and must be duplicated. *)
let copy t =
  {
    t with
    vars = Array.map (fun vi -> { vi with vname = vi.vname }) t.vars;
    rows = Array.copy t.rows;
  }

let grow_vars t =
  let cap = Array.length t.vars in
  if t.nvars >= cap then begin
    let bigger =
      Array.make (Int.max 8 (2 * cap))
        { vname = ""; lb = 0.; ub = 0.; obj = 0. }
    in
    Array.blit t.vars 0 bigger 0 t.nvars;
    t.vars <- bigger
  end

let grow_rows t =
  let cap = Array.length t.rows in
  if t.nrows >= cap then begin
    let bigger =
      Array.make (Int.max 8 (2 * cap))
        { cname = ""; terms = []; cmp = Le; rhs = 0. }
    in
    Array.blit t.rows 0 bigger 0 t.nrows;
    t.rows <- bigger
  end

let add_var t ?(lb = 0.) ?(ub = infinity) ?(obj = 0.) vname =
  if ub < lb then
    invalid_arg
      (Printf.sprintf "Lp_problem.add_var %s: ub (%g) < lb (%g)" vname ub lb);
  grow_vars t;
  t.vars.(t.nvars) <- { vname; lb; ub; obj };
  t.nvars <- t.nvars + 1;
  t.nvars - 1

let check_var t v fn =
  if v < 0 || v >= t.nvars then
    invalid_arg (Printf.sprintf "Lp_problem.%s: unknown variable %d" fn v)

(* Sum duplicate variable mentions so downstream consumers see each column
   at most once per row. *)
let collapse_terms terms =
  let tbl = Hashtbl.create (List.length terms) in
  let order = ref [] in
  List.iter
    (fun (c, v) ->
      match Hashtbl.find_opt tbl v with
      | Some acc -> Hashtbl.replace tbl v (acc +. c)
      | None ->
        Hashtbl.add tbl v c;
        order := v :: !order)
    terms;
  List.rev_map (fun v -> (Hashtbl.find tbl v, v)) !order

let add_constr t ?name terms cmp rhs =
  List.iter (fun (_, v) -> check_var t v "add_constr") terms;
  grow_rows t;
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" t.nrows
  in
  t.rows.(t.nrows) <- { cname; terms = collapse_terms terms; cmp; rhs };
  t.nrows <- t.nrows + 1

let check_row t i fn =
  if i < 0 || i >= t.nrows then
    invalid_arg (Printf.sprintf "Lp_problem.%s: unknown row %d" fn i)

let constr_at t i =
  check_row t i "constr_at";
  t.rows.(i)

let update_constr t i terms cmp rhs =
  check_row t i "update_constr";
  List.iter (fun (_, v) -> check_var t v "update_constr") terms;
  t.rows.(i) <- { (t.rows.(i)) with terms = collapse_terms terms; cmp; rhs }

let truncate_constrs t n =
  if n < 0 || n > t.nrows then
    invalid_arg (Printf.sprintf "Lp_problem.truncate_constrs: bad count %d" n);
  t.nrows <- n

let remove_constrs t idxs =
  match idxs with
  | [] -> ()
  | _ ->
    let keep = Array.make t.nrows true in
    List.iter
      (fun i ->
        check_row t i "remove_constrs";
        keep.(i) <- false)
      idxs;
    let j = ref 0 in
    for i = 0 to t.nrows - 1 do
      if keep.(i) then begin
        t.rows.(!j) <- t.rows.(i);
        incr j
      end
    done;
    t.nrows <- !j

let set_obj_coeff t v c =
  check_var t v "set_obj_coeff";
  t.vars.(v).obj <- c

let set_sense t s = t.psense <- s

let set_bounds t v ~lb ~ub =
  check_var t v "set_bounds";
  if ub < lb then
    invalid_arg
      (Printf.sprintf "Lp_problem.set_bounds %d: ub (%g) < lb (%g)" v ub lb);
  t.vars.(v).lb <- lb;
  t.vars.(v).ub <- ub

let tighten_bounds t v ~lb ~ub =
  check_var t v "tighten_bounds";
  let vi = t.vars.(v) in
  let nlb = Float.max vi.lb lb and nub = Float.min vi.ub ub in
  if nub < nlb then false
  else begin
    vi.lb <- nlb;
    vi.ub <- nub;
    true
  end

(* Row-driven interval propagation (feasibility-based bound tightening,
   the classic MIP presolve reduction).  For a row [sum a_i x_i <= b],
   every variable's contribution is bounded below by the other terms'
   interval minima, which caps it from above:

     a_k x_k <= b - min(sum_{i<>k} a_i x_i).

   [Ge] rows propagate through their negation and [Eq] rows through
   both.  Sweeps run in row order until a fixpoint or [max_sweeps] —
   deterministic, which the parallel branch-and-bound's replay relies
   on.  [integral v] lets the caller snap tightened bounds of integer
   variables to the enclosed integer range — on 0-1 variables that
   turns interval reasoning into implication propagation (a binary
   whose lower bound rises above 0 is fixed to 1), which is where most
   of the search-tree pruning comes from. *)
let propagate_bounds ?(max_sweeps = 16) ?(integral = fun _ -> false)
    ?(extra = [||]) t =
  let changed = ref [] in
  (* First-touch undo record per variable, so callers can restore. *)
  let touched = Hashtbl.create 16 in
  let infeasible = ref false in
  let note v =
    if not (Hashtbl.mem touched v) then begin
      Hashtbl.add touched v ();
      changed := (v, t.vars.(v).lb, t.vars.(v).ub) :: !changed
    end
  in
  (* Improvements below this are noise: applying them would churn the
     fixpoint loop without helping the LP. *)
  let min_gain = 1e-7 in
  let progress = ref true in
  let apply_lb v nlb =
    let vi = t.vars.(v) in
    let nlb = if integral v then Float.round (Float.ceil (nlb -. 1e-6)) else nlb in
    if nlb > vi.lb +. min_gain then begin
      note v;
      vi.lb <- nlb;
      progress := true;
      if nlb > vi.ub +. 1e-6 then infeasible := true
    end
  in
  let apply_ub v nub =
    let vi = t.vars.(v) in
    let nub = if integral v then Float.round (Float.floor (nub +. 1e-6)) else nub in
    if nub < vi.ub -. min_gain then begin
      note v;
      vi.ub <- nub;
      progress := true;
      if vi.lb > nub +. 1e-6 then infeasible := true
    end
  in
  (* One direction: [sum terms <= b]. *)
  let forward terms b =
    (* Interval minimum of the row, tracking how many contributions are
       infinite so a single unbounded term still lets the others
       propagate (inf - inf has no meaning; counting does). *)
    let finite_sum = ref 0. and n_inf = ref 0 in
    List.iter
      (fun (a, v) ->
        let m = if a > 0. then a *. t.vars.(v).lb else a *. t.vars.(v).ub in
        if Float.is_finite m then finite_sum := !finite_sum +. m
        else incr n_inf)
      terms;
    List.iter
      (fun (a, v) ->
        if a <> 0. then begin
          let own = if a > 0. then a *. t.vars.(v).lb else a *. t.vars.(v).ub in
          let rest =
            if !n_inf = 0 then Some (!finite_sum -. own)
            else if !n_inf = 1 && not (Float.is_finite own) then
              Some !finite_sum
            else None
          in
          match rest with
          | None -> ()
          | Some rest ->
            let limit = (b -. rest) /. a in
            if a > 0. then apply_ub v limit else apply_lb v limit
        end)
      terms
  in
  let sweep_row row =
    match row.cmp with
    | Le -> forward row.terms row.rhs
    | Ge -> forward (List.map (fun (a, v) -> (-.a, v)) row.terms) (-.row.rhs)
    | Eq ->
      forward row.terms row.rhs;
      forward (List.map (fun (a, v) -> (-.a, v)) row.terms) (-.row.rhs)
  in
  let sweeps = ref 0 in
  while !progress && not !infeasible && !sweeps < max_sweeps do
    progress := false;
    incr sweeps;
    let r = ref 0 in
    while not !infeasible && !r < t.nrows do
      sweep_row t.rows.(!r);
      incr r
    done;
    (* [extra] rows join the sweep but not the problem: the MILP layer
       passes its lazy cut pool here, so propagation sees the full
       strengthened formulation while the LP stays small. *)
    let r = ref 0 in
    while not !infeasible && !r < Array.length extra do
      sweep_row extra.(!r);
      incr r
    done
  done;
  if !infeasible then `Infeasible !changed else `Ok !changed

(* Interval of the objective over the current bound box — a valid lower
   bound on any feasible point's objective, used by the branch-and-bound
   to prune propagated nodes without an LP solve. *)
let objective_interval t =
  let lo = ref 0. and hi = ref 0. in
  for v = 0 to t.nvars - 1 do
    let vi = t.vars.(v) in
    if vi.obj > 0. then begin
      lo := !lo +. (vi.obj *. vi.lb);
      hi := !hi +. (vi.obj *. vi.ub)
    end
    else if vi.obj < 0. then begin
      lo := !lo +. (vi.obj *. vi.ub);
      hi := !hi +. (vi.obj *. vi.lb)
    end
  done;
  (!lo, !hi)

let num_vars t = t.nvars
let num_constrs t = t.nrows

let var_name t v = check_var t v "var_name"; t.vars.(v).vname
let var_lb t v = check_var t v "var_lb"; t.vars.(v).lb
let var_ub t v = check_var t v "var_ub"; t.vars.(v).ub
let obj_coeff t v = check_var t v "obj_coeff"; t.vars.(v).obj
let sense t = t.psense
let constraints t = Array.sub t.rows 0 t.nrows

let objective_value t x =
  let acc = ref 0. in
  for v = 0 to t.nvars - 1 do
    acc := !acc +. (t.vars.(v).obj *. x.(v))
  done;
  !acc

let constraint_violation t x =
  let worst = ref 0. in
  let note v = if v > !worst then worst := v in
  for v = 0 to t.nvars - 1 do
    note (t.vars.(v).lb -. x.(v));
    note (x.(v) -. t.vars.(v).ub)
  done;
  for i = 0 to t.nrows - 1 do
    let row = t.rows.(i) in
    let lhs = List.fold_left (fun a (c, v) -> a +. (c *. x.(v))) 0. row.terms in
    match row.cmp with
    | Le -> note (lhs -. row.rhs)
    | Ge -> note (row.rhs -. lhs)
    | Eq -> note (Float.abs (lhs -. row.rhs))
  done;
  !worst
