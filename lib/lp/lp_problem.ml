type var = int
type sense = Minimize | Maximize
type cmp = Le | Ge | Eq
type term = float * var

type constr = {
  cname : string;
  terms : term list;
  cmp : cmp;
  rhs : float;
}

type vinfo = {
  vname : string;
  mutable lb : float;
  mutable ub : float;
  mutable obj : float;
}

type t = {
  pname : string;
  mutable vars : vinfo array;
  mutable nvars : int;
  mutable rows : constr array;
  mutable nrows : int;
  mutable psense : sense;
}

let create ?(name = "lp") () =
  { pname = name; vars = [||]; nvars = 0; rows = [||]; nrows = 0;
    psense = Minimize }

let name t = t.pname

(* Rows are immutable records, so sharing them is safe; vinfo records are
   mutable and must be duplicated. *)
let copy t =
  {
    t with
    vars = Array.map (fun vi -> { vi with vname = vi.vname }) t.vars;
    rows = Array.copy t.rows;
  }

let grow_vars t =
  let cap = Array.length t.vars in
  if t.nvars >= cap then begin
    let bigger =
      Array.make (Int.max 8 (2 * cap))
        { vname = ""; lb = 0.; ub = 0.; obj = 0. }
    in
    Array.blit t.vars 0 bigger 0 t.nvars;
    t.vars <- bigger
  end

let grow_rows t =
  let cap = Array.length t.rows in
  if t.nrows >= cap then begin
    let bigger =
      Array.make (Int.max 8 (2 * cap))
        { cname = ""; terms = []; cmp = Le; rhs = 0. }
    in
    Array.blit t.rows 0 bigger 0 t.nrows;
    t.rows <- bigger
  end

let add_var t ?(lb = 0.) ?(ub = infinity) ?(obj = 0.) vname =
  if ub < lb then
    invalid_arg
      (Printf.sprintf "Lp_problem.add_var %s: ub (%g) < lb (%g)" vname ub lb);
  grow_vars t;
  t.vars.(t.nvars) <- { vname; lb; ub; obj };
  t.nvars <- t.nvars + 1;
  t.nvars - 1

let check_var t v fn =
  if v < 0 || v >= t.nvars then
    invalid_arg (Printf.sprintf "Lp_problem.%s: unknown variable %d" fn v)

(* Sum duplicate variable mentions so downstream consumers see each column
   at most once per row. *)
let collapse_terms terms =
  let tbl = Hashtbl.create (List.length terms) in
  let order = ref [] in
  List.iter
    (fun (c, v) ->
      match Hashtbl.find_opt tbl v with
      | Some acc -> Hashtbl.replace tbl v (acc +. c)
      | None ->
        Hashtbl.add tbl v c;
        order := v :: !order)
    terms;
  List.rev_map (fun v -> (Hashtbl.find tbl v, v)) !order

let add_constr t ?name terms cmp rhs =
  List.iter (fun (_, v) -> check_var t v "add_constr") terms;
  grow_rows t;
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" t.nrows
  in
  t.rows.(t.nrows) <- { cname; terms = collapse_terms terms; cmp; rhs };
  t.nrows <- t.nrows + 1

let set_obj_coeff t v c =
  check_var t v "set_obj_coeff";
  t.vars.(v).obj <- c

let set_sense t s = t.psense <- s

let set_bounds t v ~lb ~ub =
  check_var t v "set_bounds";
  if ub < lb then
    invalid_arg
      (Printf.sprintf "Lp_problem.set_bounds %d: ub (%g) < lb (%g)" v ub lb);
  t.vars.(v).lb <- lb;
  t.vars.(v).ub <- ub

let tighten_bounds t v ~lb ~ub =
  check_var t v "tighten_bounds";
  let vi = t.vars.(v) in
  let nlb = Float.max vi.lb lb and nub = Float.min vi.ub ub in
  if nub < nlb then false
  else begin
    vi.lb <- nlb;
    vi.ub <- nub;
    true
  end

let num_vars t = t.nvars
let num_constrs t = t.nrows

let var_name t v = check_var t v "var_name"; t.vars.(v).vname
let var_lb t v = check_var t v "var_lb"; t.vars.(v).lb
let var_ub t v = check_var t v "var_ub"; t.vars.(v).ub
let obj_coeff t v = check_var t v "obj_coeff"; t.vars.(v).obj
let sense t = t.psense
let constraints t = Array.sub t.rows 0 t.nrows

let objective_value t x =
  let acc = ref 0. in
  for v = 0 to t.nvars - 1 do
    acc := !acc +. (t.vars.(v).obj *. x.(v))
  done;
  !acc

let constraint_violation t x =
  let worst = ref 0. in
  let note v = if v > !worst then worst := v in
  for v = 0 to t.nvars - 1 do
    note (t.vars.(v).lb -. x.(v));
    note (x.(v) -. t.vars.(v).ub)
  done;
  for i = 0 to t.nrows - 1 do
    let row = t.rows.(i) in
    let lhs = List.fold_left (fun a (c, v) -> a +. (c *. x.(v))) 0. row.terms in
    match row.cmp with
    | Le -> note (lhs -. row.rhs)
    | Ge -> note (row.rhs -. lhs)
    | Eq -> note (Float.abs (lhs -. row.rhs))
  done;
  !worst
