(* Bounded-variable revised simplex over a factorized basis (Basis).

   Differences from the dense tableau solver (Simplex):
   - variable bounds are first class: no shift / mirror / split columns,
     the internal column space is exactly [structural + one logical per
     row], so a basis snapshot is meaningful across bound changes;
   - the basis inverse is an LU factorization plus a product-form eta
     file, refactorized periodically (Basis.refactor_every);
   - a dual simplex phase re-solves a problem whose bounds changed while
     the parent basis stays dual feasible — the branch-and-bound hot
     path. *)

module Fault = Fp_util.Fault

(* Fault sites (see Fp_util.Fault and docs/robustness.md): a stalled
   solve (forced Iteration_limit, exercising the branch-and-bound's
   parent-bound retreat) and a singular LU on the warm path (exercising
   the documented cold-solve fallback).  The singular site sits only on
   the warm path: a forced singularity on the cold path would turn into
   a spurious Infeasible answer, which no recovery could make honest. *)
let site_iteration_limit = Fault.register "revised.iteration_limit"
let site_singular_lu = Fault.register "basis.singular_lu"

type vstat = VBasic | VLower | VUpper | VFree

type snapshot = {
  sm : int;
  sn : int;
  sbasis : int array;
  sstat : vstat array;
}

type result =
  | Optimal of { x : float array; obj : float; basis : snapshot }
  | Infeasible
  | Unbounded
  | Iteration_limit

type stats = {
  primal_pivots : int;
  dual_pivots : int;
  refactorizations : int;
  warm : bool;
}

let feas_tol = 1e-7
let dual_tol = 1e-7
let warm_dual_tol = 1e-6
let ratio_tol = 1e-9
let degenerate_streak_limit = 60

(* ------------------------------------------------------------------ *)
(* Standardization                                                     *)
(* ------------------------------------------------------------------ *)

(* Structural columns first, then one logical column per row with
   bounds encoding the row sense:  Le -> [0, +inf), Ge -> (-inf, 0],
   Eq -> [0, 0].  Rows become  A x + s = b. *)
type std = {
  m : int;
  n : int;
  nstruct : int;
  mat : Basis.mat;
  lo : float array;
  up : float array;
  cost : float array;  (* minimization costs *)
  b : float array;
}

let standardize prob =
  let nstruct = Lp_problem.num_vars prob in
  let rows = Lp_problem.constraints prob in
  let m = Array.length rows in
  let n = nstruct + m in
  let acc = Array.make nstruct [] in
  Array.iteri
    (fun i row ->
      List.iter
        (fun (c, v) -> if c <> 0. then acc.(v) <- (i, c) :: acc.(v))
        row.Lp_problem.terms)
    rows;
  let cols = Array.make n [||] in
  for v = 0 to nstruct - 1 do
    cols.(v) <- Array.of_list (List.rev acc.(v))
  done;
  let lo = Array.make n 0. and up = Array.make n 0. in
  let cost = Array.make n 0. and b = Array.make m 0. in
  let sign =
    match Lp_problem.sense prob with
    | Lp_problem.Minimize -> 1.
    | Lp_problem.Maximize -> -1.
  in
  for v = 0 to nstruct - 1 do
    lo.(v) <- Lp_problem.var_lb prob v;
    up.(v) <- Lp_problem.var_ub prob v;
    cost.(v) <- sign *. Lp_problem.obj_coeff prob v
  done;
  Array.iteri
    (fun i row ->
      let j = nstruct + i in
      cols.(j) <- [| (i, 1.) |];
      b.(i) <- row.Lp_problem.rhs;
      match row.Lp_problem.cmp with
      | Lp_problem.Le ->
        lo.(j) <- 0.;
        up.(j) <- infinity
      | Lp_problem.Ge ->
        lo.(j) <- neg_infinity;
        up.(j) <- 0.
      | Lp_problem.Eq ->
        lo.(j) <- 0.;
        up.(j) <- 0.)
    rows;
  { m; n; nstruct; mat = { Basis.m; cols }; lo; up; cost; b }

(* ------------------------------------------------------------------ *)
(* Solver state                                                        *)
(* ------------------------------------------------------------------ *)

type state = {
  std : std;
  bas : Basis.t;
  stat : vstat array;  (* length n *)
  xb : float array;    (* length m, basic values by row position *)
  y : float array;     (* length m, scratch for duals *)
}

let nb_value st ~lo ~up j =
  match st.stat.(j) with
  | VLower -> lo.(j)
  | VUpper -> up.(j)
  | VFree -> 0.
  | VBasic -> assert false

(* Basic values from scratch: x_B = B^-1 (b - N x_N). *)
let compute_xb st ~lo ~up =
  let std = st.std in
  let cols = std.mat.Basis.cols in
  let rhs = Array.copy std.b in
  for j = 0 to std.n - 1 do
    if st.stat.(j) <> VBasic then begin
      let v = nb_value st ~lo ~up j in
      if v <> 0. then
        Array.iter (fun (i, c) -> rhs.(i) <- rhs.(i) -. (c *. v)) cols.(j)
    end
  done;
  Basis.ftran st.bas rhs;
  Array.blit rhs 0 st.xb 0 std.m

let compute_duals st ~cost =
  let basis = Basis.basis st.bas in
  for i = 0 to st.std.m - 1 do
    st.y.(i) <- cost.(basis.(i))
  done;
  Basis.btran st.bas st.y

let col_dot cols y j =
  Array.fold_left (fun a (i, c) -> a +. (c *. y.(i))) 0. cols.(j)

let primal_infeasibility st ~lo ~up =
  let basis = Basis.basis st.bas in
  let worst = ref 0. in
  for i = 0 to st.std.m - 1 do
    let k = basis.(i) in
    let v = st.xb.(i) in
    if lo.(k) -. v > !worst then worst := lo.(k) -. v;
    if v -. up.(k) > !worst then worst := v -. up.(k)
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Primal simplex                                                      *)
(* ------------------------------------------------------------------ *)

type phase = P_optimal | P_unbounded | P_iters | P_singular

(* Bounded primal simplex on the given cost vector and bounds (phase 1
   passes relaxed copies).  Assumes st.xb is NOT yet computed; leaves
   st.xb consistent on exit.  Dantzig pricing, Bland's rule after a
   degenerate streak. *)
let primal st ~cost ~lo ~up ~budget =
  let std = st.std in
  let cols = std.mat.Basis.cols in
  let d = Array.make std.m 0. in
  let iters = ref 0 and streak = ref 0 and bland = ref false in
  let outcome = ref P_optimal in
  let running = ref true in
  compute_xb st ~lo ~up;
  while !running do
    if !iters >= budget then begin
      outcome := P_iters;
      running := false
    end
    else begin
      compute_duals st ~cost;
      let best = ref (-1) and best_v = ref dual_tol and best_z = ref 0. in
      (try
         for j = 0 to std.n - 1 do
           if st.stat.(j) <> VBasic && up.(j) -. lo.(j) > ratio_tol then begin
             let z = cost.(j) -. col_dot cols st.y j in
             let a =
               match st.stat.(j) with
               | VLower -> -.z
               | VUpper -> z
               | VFree -> Float.abs z
               | VBasic -> 0.
             in
             if a > !best_v then begin
               best := j;
               best_v := a;
               best_z := z;
               if !bland then raise Exit
             end
           end
         done
       with Exit -> ());
      if !best < 0 then begin
        outcome := P_optimal;
        running := false
      end
      else begin
        let j = !best in
        let dir =
          match st.stat.(j) with
          | VLower -> 1.
          | VUpper -> -1.
          | VFree -> if !best_z <= 0. then 1. else -1.
          | VBasic -> assert false
        in
        Array.fill d 0 std.m 0.;
        Array.iter (fun (i, c) -> d.(i) <- c) cols.(j);
        Basis.ftran st.bas d;
        let basis = Basis.basis st.bas in
        let t_best = ref (up.(j) -. lo.(j)) in
        let leave = ref (-1) and leave_up = ref false in
        let consider i limit at_up =
          let better =
            limit < !t_best -. ratio_tol
            || (limit < !t_best +. ratio_tol
                && !leave >= 0
                &&
                if !bland then basis.(i) < basis.(!leave)
                else Float.abs d.(i) > Float.abs d.(!leave))
          in
          if better then begin
            t_best := Float.max 0. limit;
            leave := i;
            leave_up := at_up
          end
        in
        for i = 0 to std.m - 1 do
          let k = basis.(i) in
          let delta = dir *. d.(i) in
          if delta > ratio_tol then begin
            if lo.(k) > neg_infinity then
              consider i ((st.xb.(i) -. lo.(k)) /. delta) false
          end
          else if delta < -.ratio_tol then
            if up.(k) < infinity then
              consider i ((up.(k) -. st.xb.(i)) /. -.delta) true
        done;
        if !t_best = infinity then begin
          outcome := P_unbounded;
          running := false
        end
        else begin
          let step = Float.max 0. !t_best in
          let degen = step <= ratio_tol in
          (if !leave < 0 then begin
             (* Pure bound flip: no basis change. *)
             for i = 0 to std.m - 1 do
               st.xb.(i) <- st.xb.(i) -. (dir *. step *. d.(i))
             done;
             st.stat.(j) <-
               (match st.stat.(j) with VLower -> VUpper | _ -> VLower);
             incr iters
           end
           else begin
             let r = !leave in
             let k = basis.(r) in
             let enter_val = nb_value st ~lo ~up j +. (dir *. step) in
             match Basis.update st.bas ~row:r ~col:j ~d with
             | Error `Tiny_pivot | Error `Singular ->
               outcome := P_singular;
               running := false
             | Ok refreshed ->
               for i = 0 to std.m - 1 do
                 st.xb.(i) <- st.xb.(i) -. (dir *. step *. d.(i))
               done;
               st.xb.(r) <- enter_val;
               st.stat.(k) <- (if !leave_up then VUpper else VLower);
               st.stat.(j) <- VBasic;
               if refreshed = `Refactored then compute_xb st ~lo ~up;
               incr iters
           end);
          if !running then
            if degen then begin
              incr streak;
              if !streak > degenerate_streak_limit then bland := true
            end
            else begin
              streak := 0;
              bland := false
            end
        end
      end
    end
  done;
  (!outcome, !iters)

(* ------------------------------------------------------------------ *)
(* Primal phase 1 (composite objective)                                *)
(* ------------------------------------------------------------------ *)

(* Minimize the total bound violation of the basic variables with the
   classic composite objective: every variable keeps its true bounds,
   the phase-1 cost of a basic variable is -1 below its lower bound, +1
   above its upper bound, 0 inside, recomputed each iteration; the ratio
   test stops at the nearest bound breakpoint, which is where a violated
   variable re-enters its interval.  Nonbasic variables rest at true
   bounds throughout, so feasibility, once reached, is genuine. *)
let phase1 st ~budget =
  let std = st.std in
  let cols = std.mat.Basis.cols in
  let lo = std.lo and up = std.up in
  let d = Array.make std.m 0. in
  let iters = ref 0 and streak = ref 0 and bland = ref false in
  let outcome = ref `Feasible in
  let running = ref true in
  compute_xb st ~lo ~up;
  while !running do
    if !iters >= budget then begin
      outcome := `Iters;
      running := false
    end
    else begin
      let basis = Basis.basis st.bas in
      (* Composite costs live only on the basics, so c_B is built
         directly into the dual scratch vector. *)
      let nviol = ref 0 in
      for i = 0 to std.m - 1 do
        let k = basis.(i) in
        st.y.(i) <-
          (if st.xb.(i) < lo.(k) -. feas_tol then begin
             incr nviol;
             -1.
           end
           else if st.xb.(i) > up.(k) +. feas_tol then begin
             incr nviol;
             1.
           end
           else 0.)
      done;
      if !nviol = 0 then begin
        outcome := `Feasible;
        running := false
      end
      else begin
        Basis.btran st.bas st.y;
        let best = ref (-1) and best_v = ref dual_tol and best_z = ref 0. in
        (try
           for j = 0 to std.n - 1 do
             if st.stat.(j) <> VBasic && up.(j) -. lo.(j) > ratio_tol then begin
               let z = -.col_dot cols st.y j in
               let a =
                 match st.stat.(j) with
                 | VLower -> -.z
                 | VUpper -> z
                 | VFree -> Float.abs z
                 | VBasic -> 0.
               in
               if a > !best_v then begin
                 best := j;
                 best_v := a;
                 best_z := z;
                 if !bland then raise Exit
               end
             end
           done
         with Exit -> ());
        if !best < 0 then begin
          outcome := `Infeasible;
          running := false
        end
        else begin
          let j = !best in
          let dir =
            match st.stat.(j) with
            | VLower -> 1.
            | VUpper -> -1.
            | VFree -> if !best_z <= 0. then 1. else -1.
            | VBasic -> assert false
          in
          Array.fill d 0 std.m 0.;
          Array.iter (fun (i, c) -> d.(i) <- c) cols.(j);
          Basis.ftran st.bas d;
          let t_best = ref (up.(j) -. lo.(j)) in
          let leave = ref (-1) and leave_up = ref false in
          let consider i limit at_up =
            let better =
              limit < !t_best -. ratio_tol
              || (limit < !t_best +. ratio_tol
                  && !leave >= 0
                  &&
                  if !bland then basis.(i) < basis.(!leave)
                  else Float.abs d.(i) > Float.abs d.(!leave))
            in
            if better then begin
              t_best := Float.max 0. limit;
              leave := i;
              leave_up := at_up
            end
          in
          for i = 0 to std.m - 1 do
            let k = basis.(i) in
            let delta = dir *. d.(i) in
            let xi = st.xb.(i) in
            if delta > ratio_tol then begin
              (* Basic decreasing. *)
              if xi > up.(k) +. feas_tol then
                (* Violated above: breakpoint where it regains u_k. *)
                consider i ((xi -. up.(k)) /. delta) true
              else if lo.(k) > neg_infinity && xi >= lo.(k) -. feas_tol then
                consider i ((xi -. lo.(k)) /. delta) false
              (* Violated below and still decreasing: no block. *)
            end
            else if delta < -.ratio_tol then begin
              (* Basic increasing. *)
              if xi < lo.(k) -. feas_tol then
                consider i ((lo.(k) -. xi) /. -.delta) false
              else if up.(k) < infinity && xi <= up.(k) +. feas_tol then
                consider i ((up.(k) -. xi) /. -.delta) true
            end
          done;
          if !t_best = infinity then begin
            (* A strictly improving phase-1 ray with no breakpoint can
               only be numerical noise; report infeasible rather than
               looping. *)
            outcome := `Infeasible;
            running := false
          end
          else begin
            let step = Float.max 0. !t_best in
            let degen = step <= ratio_tol in
            (if !leave < 0 then begin
               for i = 0 to std.m - 1 do
                 st.xb.(i) <- st.xb.(i) -. (dir *. step *. d.(i))
               done;
               st.stat.(j) <-
                 (match st.stat.(j) with VLower -> VUpper | _ -> VLower);
               incr iters
             end
             else begin
               let r = !leave in
               let k = basis.(r) in
               let enter_val = nb_value st ~lo ~up j +. (dir *. step) in
               match Basis.update st.bas ~row:r ~col:j ~d with
               | Error `Tiny_pivot | Error `Singular ->
                 outcome := `Singular;
                 running := false
               | Ok refreshed ->
                 for i = 0 to std.m - 1 do
                   st.xb.(i) <- st.xb.(i) -. (dir *. step *. d.(i))
                 done;
                 st.xb.(r) <- enter_val;
                 st.stat.(k) <- (if !leave_up then VUpper else VLower);
                 st.stat.(j) <- VBasic;
                 if refreshed = `Refactored then compute_xb st ~lo ~up;
                 incr iters
             end);
            if !running then
              if degen then begin
                incr streak;
                if !streak > degenerate_streak_limit then bland := true
              end
              else begin
                streak := 0;
                bland := false
              end
          end
        end
      end
    end
  done;
  (!outcome, !iters)

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)
(* ------------------------------------------------------------------ *)

type dual_outcome = D_feasible | D_infeasible | D_iters | D_singular

(* Requires dual feasibility of the starting basis; drives out primal
   bound violations (the situation after a branch-and-bound bound
   change).  Short-step variant: the entering variable may overshoot its
   opposite bound and become the next leaving candidate. *)
let dual st ~budget =
  let std = st.std in
  let cols = std.mat.Basis.cols in
  let lo = std.lo and up = std.up in
  let rho = Array.make std.m 0. in
  let d = Array.make std.m 0. in
  let iters = ref 0 and streak = ref 0 and bland = ref false in
  let retries = ref 0 in
  let outcome = ref D_feasible in
  let running = ref true in
  compute_xb st ~lo ~up;
  while !running do
    if !iters >= budget then begin
      outcome := D_iters;
      running := false
    end
    else begin
      let basis = Basis.basis st.bas in
      let r = ref (-1) and worst = ref feas_tol in
      for i = 0 to std.m - 1 do
        let k = basis.(i) in
        let v = Float.max (lo.(k) -. st.xb.(i)) (st.xb.(i) -. up.(k)) in
        if v > !worst then begin
          worst := v;
          r := i
        end
      done;
      if !r < 0 then begin
        outcome := D_feasible;
        running := false
      end
      else begin
        let r = !r in
        let k = basis.(r) in
        let to_upper = st.xb.(r) > up.(k) in
        Array.fill rho 0 std.m 0.;
        rho.(r) <- 1.;
        Basis.btran st.bas rho;
        compute_duals st ~cost:std.cost;
        let best = ref (-1)
        and best_ratio = ref infinity
        and best_alpha = ref 0. in
        (try
           for j = 0 to std.n - 1 do
             if st.stat.(j) <> VBasic && up.(j) -. lo.(j) > ratio_tol then begin
               let alpha = col_dot cols rho j in
               let ok =
                 match (st.stat.(j), to_upper) with
                 | VLower, true | VUpper, false -> alpha > ratio_tol
                 | VUpper, true | VLower, false -> alpha < -.ratio_tol
                 | VFree, _ -> Float.abs alpha > ratio_tol
                 | VBasic, _ -> false
               in
               if ok then begin
                 let z = std.cost.(j) -. col_dot cols st.y j in
                 let ratio = Float.abs z /. Float.abs alpha in
                 let better =
                   if !bland then !best < 0
                   else
                     ratio < !best_ratio -. 1e-12
                     || (ratio < !best_ratio +. 1e-12
                        && Float.abs alpha > Float.abs !best_alpha)
                 in
                 if better then begin
                   best := j;
                   best_ratio := ratio;
                   best_alpha := alpha;
                   if !bland then raise Exit
                 end
               end
             end
           done
         with Exit -> ());
        if !best < 0 then begin
          outcome := D_infeasible;
          running := false
        end
        else begin
          let j = !best in
          Array.fill d 0 std.m 0.;
          Array.iter (fun (i, c) -> d.(i) <- c) cols.(j);
          Basis.ftran st.bas d;
          if Float.abs d.(r) <= ratio_tol then begin
            (* btran row and ftran column disagree: stale factors. *)
            incr retries;
            if !retries > 3 then begin
              outcome := D_singular;
              running := false
            end
            else
              match Basis.refactorize st.bas with
              | Ok () -> compute_xb st ~lo ~up
              | Error `Singular ->
                outcome := D_singular;
                running := false
          end
          else begin
            retries := 0;
            let bound_k = if to_upper then up.(k) else lo.(k) in
            let delta = (st.xb.(r) -. bound_k) /. d.(r) in
            let enter_val = nb_value st ~lo ~up j +. delta in
            match Basis.update st.bas ~row:r ~col:j ~d with
            | Error `Tiny_pivot | Error `Singular ->
              outcome := D_singular;
              running := false
            | Ok refreshed ->
              for i = 0 to std.m - 1 do
                st.xb.(i) <- st.xb.(i) -. (delta *. d.(i))
              done;
              st.xb.(r) <- enter_val;
              st.stat.(k) <- (if to_upper then VUpper else VLower);
              st.stat.(j) <- VBasic;
              if refreshed = `Refactored then compute_xb st ~lo ~up;
              incr iters;
              if !best_ratio <= 1e-9 then begin
                incr streak;
                if !streak > degenerate_streak_limit then bland := true
              end
              else begin
                streak := 0;
                bland := false
              end
          end
        end
      end
    end
  done;
  (!outcome, !iters)

(* ------------------------------------------------------------------ *)
(* Extraction and snapshots                                            *)
(* ------------------------------------------------------------------ *)

let extract st =
  let std = st.std in
  let x = Array.make std.nstruct 0. in
  for j = 0 to std.nstruct - 1 do
    if st.stat.(j) <> VBasic then x.(j) <- nb_value st ~lo:std.lo ~up:std.up j
  done;
  let basis = Basis.basis st.bas in
  for i = 0 to std.m - 1 do
    if basis.(i) < std.nstruct then x.(basis.(i)) <- st.xb.(i)
  done;
  x

let snapshot_of st =
  {
    sm = st.std.m;
    sn = st.std.n;
    sbasis = Array.copy (Basis.basis st.bas);
    sstat = Array.copy st.stat;
  }

(* Appending k rows to the problem appends k logical columns
   [nstruct + sm .. nstruct + sm + k - 1].  Making them basic keeps the
   extended basis nonsingular (the new block is an identity under a
   permutation, so the matrix is block triangular) and, because logicals
   carry zero cost, preserves dual feasibility: a violated appended row
   shows up as its basic logical below its lower bound, exactly the
   situation the dual simplex repairs.  This is what makes cut rounds a
   warm re-entry instead of a cold solve. *)
let extend_snapshot snap ~added =
  if added < 0 then invalid_arg "Revised.extend_snapshot: negative count";
  if added = 0 then snap
  else begin
    let nstruct = snap.sn - snap.sm in
    {
      sm = snap.sm + added;
      sn = snap.sn + added;
      sbasis =
        Array.append snap.sbasis
          (Array.init added (fun i -> nstruct + snap.sm + i));
      sstat = Array.append snap.sstat (Array.make added VBasic);
    }
  end

(* Removing a row is only basis-preserving when that row's logical is
   basic (true for any Le row slack at positive slack: a nonbasic Le
   logical rests at its lower bound 0).  Deleting the row and its unit
   logical column is then a cofactor expansion along a unit column, so
   the reduced basis stays nonsingular.  Returns [None] when any removed
   row's logical is nonbasic — the caller must keep those rows. *)
let shrink_snapshot snap ~removed_rows =
  match removed_rows with
  | [] -> Some snap
  | _ ->
    let nstruct = snap.sn - snap.sm in
    let gone = Array.make snap.sm false in
    List.iter
      (fun r ->
        if r < 0 || r >= snap.sm then
          invalid_arg "Revised.shrink_snapshot: row out of range";
        gone.(r) <- true)
      removed_rows;
    let k = Array.fold_left (fun a g -> if g then a + 1 else a) 0 gone in
    let removable = ref true in
    for r = 0 to snap.sm - 1 do
      if gone.(r) && snap.sstat.(nstruct + r) <> VBasic then removable := false
    done;
    if not !removable then None
    else begin
      (* shift.(r) = number of removed rows before r; a kept logical at
         column [nstruct + r] moves to [nstruct + r - shift r]. *)
      let shift = Array.make snap.sm 0 in
      let acc = ref 0 in
      for r = 0 to snap.sm - 1 do
        shift.(r) <- !acc;
        if gone.(r) then incr acc
      done;
      let sbasis =
        Array.of_list
          (List.filter_map
             (fun c ->
               if c >= nstruct then begin
                 let r = c - nstruct in
                 if gone.(r) then None else Some (c - shift.(r))
               end
               else Some c)
             (Array.to_list snap.sbasis))
      in
      if Array.length sbasis <> snap.sm - k then None
      else begin
        let sstat = Array.make (snap.sn - k) VLower in
        Array.blit snap.sstat 0 sstat 0 nstruct;
        let j = ref nstruct in
        for r = 0 to snap.sm - 1 do
          if not gone.(r) then begin
            sstat.(!j) <- snap.sstat.(nstruct + r);
            incr j
          end
        done;
        Some { sm = snap.sm - k; sn = snap.sn - k; sbasis; sstat }
      end
    end

let dual_feasible st =
  let std = st.std in
  let cols = std.mat.Basis.cols in
  compute_duals st ~cost:std.cost;
  let ok = ref true in
  for j = 0 to std.n - 1 do
    if !ok && st.stat.(j) <> VBasic && std.up.(j) -. std.lo.(j) > ratio_tol
    then begin
      let z = std.cost.(j) -. col_dot cols st.y j in
      match st.stat.(j) with
      | VLower -> if z < -.warm_dual_tol then ok := false
      | VUpper -> if z > warm_dual_tol then ok := false
      | VFree -> if Float.abs z > warm_dual_tol then ok := false
      | VBasic -> ()
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let default_budget std = (50 * (std.m + std.n)) + 2000

let fresh_state std bas stat =
  { std; bas; stat; xb = Array.make std.m 0.; y = Array.make std.m 0. }

(* Cold solve: logical basis, composite phase 1 when the starting point
   violates bounds, then phase 2 on the true costs. *)
let run_cold std ~budget =
  let stat = Array.make std.n VLower in
  for j = 0 to std.nstruct - 1 do
    stat.(j) <-
      (if std.lo.(j) > neg_infinity then VLower
       else if std.up.(j) < infinity then VUpper
       else VFree)
  done;
  let basis = Array.init std.m (fun i -> std.nstruct + i) in
  Array.iter (fun k -> stat.(k) <- VBasic) basis;
  match Basis.create std.mat basis with
  | Error `Singular ->
    (* The logical basis is an identity matrix; unreachable. *)
    (Infeasible, None, 0, 0)
  | Ok bas ->
    let st = fresh_state std bas stat in
    let p1_outcome, p1_iters = phase1 st ~budget in
    let refac () = Basis.refactorizations bas in
    (match p1_outcome with
    | `Infeasible -> (Infeasible, None, p1_iters, refac ())
    | `Iters | `Singular -> (Iteration_limit, None, p1_iters, refac ())
    | `Feasible ->
      let outcome, p2_iters =
        primal st ~cost:std.cost ~lo:std.lo ~up:std.up
          ~budget:(Int.max 0 (budget - p1_iters))
      in
      let total = p1_iters + p2_iters in
      (match outcome with
      | P_optimal ->
        ( Optimal { x = [||]; obj = 0.; basis = snapshot_of st },
          Some st,
          total,
          refac () )
      | P_unbounded -> (Unbounded, None, total, refac ())
      | P_iters | P_singular -> (Iteration_limit, None, total, refac ())))

let finish prob st result =
  match result with
  | Optimal _ ->
    let x = extract st in
    Optimal { x; obj = Lp_problem.objective_value prob x;
              basis = snapshot_of st }
  | r -> r

let solve ?max_iters prob =
  if Fault.fire site_iteration_limit then
    ( Iteration_limit,
      { primal_pivots = 0; dual_pivots = 0; refactorizations = 0;
        warm = false } )
  else begin
  let std = standardize prob in
  let budget = match max_iters with Some b -> b | None -> default_budget std in
  let result, st, pivots, refac = run_cold std ~budget in
  let result =
    match st with Some st -> finish prob st result | None -> result
  in
  ( result,
    { primal_pivots = pivots; dual_pivots = 0; refactorizations = refac;
      warm = false } )
  end

let valid_snapshot snap std =
  snap.sm = std.m && snap.sn = std.n
  && Array.for_all (fun e -> e >= 0 && e < std.n) snap.sbasis

let solve_from ?max_iters snap prob =
  if Fault.fire site_iteration_limit then
    ( Iteration_limit,
      { primal_pivots = 0; dual_pivots = 0; refactorizations = 0;
        warm = true } )
  else begin
  let std = standardize prob in
  let budget = match max_iters with Some b -> b | None -> default_budget std in
  let cold ~dual_pivots ~refac0 =
    let result, st, pivots, refac = run_cold std ~budget in
    let result =
      match st with Some st -> finish prob st result | None -> result
    in
    ( result,
      { primal_pivots = pivots; dual_pivots;
        refactorizations = refac0 + refac; warm = false } )
  in
  if not (valid_snapshot snap std) then cold ~dual_pivots:0 ~refac0:0
  else begin
    let stat = Array.copy snap.sstat in
    (* Legalize rest statuses against the current bounds (a branch may
       have removed the bound a variable was parked at). *)
    for j = 0 to std.n - 1 do
      match stat.(j) with
      | VBasic -> ()
      | VLower ->
        if std.lo.(j) = neg_infinity then
          stat.(j) <- (if std.up.(j) < infinity then VUpper else VFree)
      | VUpper ->
        if std.up.(j) = infinity then
          stat.(j) <- (if std.lo.(j) > neg_infinity then VLower else VFree)
      | VFree ->
        if std.lo.(j) > neg_infinity then stat.(j) <- VLower
        else if std.up.(j) < infinity then stat.(j) <- VUpper
    done;
    let created =
      if Fault.fire site_singular_lu then Error `Singular
      else Basis.create std.mat snap.sbasis
    in
    match created with
    | Error `Singular -> cold ~dual_pivots:0 ~refac0:0
    | Ok bas ->
      let st = fresh_state std bas stat in
      if dual_feasible st then begin
        let douts, diters = dual st ~budget in
        match douts with
        | D_feasible ->
          (* Dual feasible + primal feasible; the closing primal pass
             normally certifies optimality in zero pivots. *)
          let pouts, piters =
            primal st ~cost:std.cost ~lo:std.lo ~up:std.up
              ~budget:(Int.max 0 (budget - diters))
          in
          let refac = Basis.refactorizations bas in
          let mk r =
            ( finish prob st r,
              { primal_pivots = piters; dual_pivots = diters;
                refactorizations = refac; warm = true } )
          in
          (match pouts with
          | P_optimal -> mk (Optimal { x = [||]; obj = 0.; basis = snap })
          | P_unbounded -> mk Unbounded
          | P_iters -> mk Iteration_limit
          | P_singular ->
            cold ~dual_pivots:diters ~refac0:refac)
        | D_infeasible ->
          ( Infeasible,
            { primal_pivots = 0; dual_pivots = diters;
              refactorizations = Basis.refactorizations bas; warm = true } )
        | D_iters ->
          ( Iteration_limit,
            { primal_pivots = 0; dual_pivots = diters;
              refactorizations = Basis.refactorizations bas; warm = true } )
        | D_singular ->
          cold ~dual_pivots:diters ~refac0:(Basis.refactorizations bas)
      end
      else begin
        (* Costs changed or tolerance drift: if the snapshot is at least
           primal feasible, restart primal phase 2 from it. *)
        compute_xb st ~lo:std.lo ~up:std.up;
        if primal_infeasibility st ~lo:std.lo ~up:std.up <= feas_tol then begin
          let pouts, piters =
            primal st ~cost:std.cost ~lo:std.lo ~up:std.up ~budget
          in
          let refac = Basis.refactorizations bas in
          let mk r =
            ( finish prob st r,
              { primal_pivots = piters; dual_pivots = 0;
                refactorizations = refac; warm = true } )
          in
          match pouts with
          | P_optimal -> mk (Optimal { x = [||]; obj = 0.; basis = snap })
          | P_unbounded -> mk Unbounded
          | P_iters -> mk Iteration_limit
          | P_singular -> cold ~dual_pivots:0 ~refac0:refac
        end
        else cold ~dual_pivots:0 ~refac0:(Basis.refactorizations bas)
      end
  end
  end
