(** Factorized simplex basis.

    Holds a dense LU factorization (partial pivoting) of an [m x m] basis
    matrix drawn from the columns of a sparse constraint matrix, plus a
    product-form eta file for cheap rank-one column replacements.  After
    {!Basis.refactor_every} updates the eta file is discarded and the
    basis refactorized from scratch, bounding both memory and the
    accumulated floating-point error — the classic revised-simplex
    lifecycle.

    Used by {!Revised}; the dense tableau solver {!Simplex} does not need
    it. *)

type mat = {
  m : int;  (** number of rows *)
  cols : (int * float) array array;
      (** sparse columns as [(row, coefficient)] pairs *)
}

type t

val pivot_tol : float
(** Pivot elements at or below this magnitude are rejected ([1e-10]). *)

val refactor_every : int
(** Eta-file length that triggers a refactorization ([64]). *)

val create : mat -> int array -> (t, [ `Singular ]) result
(** [create mat basis] factorizes the matrix whose [j]-th column is
    [mat.cols.(basis.(j))].  The basis array is copied. *)

val basis : t -> int array
(** The live basis array: entry [i] is the column basic in row position
    [i].  Updated in place by {!update}; callers must not mutate it. *)

val refactorizations : t -> int
(** Refactorizations performed since {!create} (excluding the initial
    factorization). *)

val refactorize : t -> (unit, [ `Singular ]) result
(** Force a fresh factorization of the current basis, discarding the eta
    file. *)

val ftran : t -> float array -> unit
(** [ftran t v] solves [B x = v] in place (forward transformation). *)

val btran : t -> float array -> unit
(** [btran t v] solves [B^T x = v] in place (backward transformation). *)

val update :
  t ->
  row:int ->
  col:int ->
  d:float array ->
  ([ `Updated | `Refactored ], [ `Singular | `Tiny_pivot ]) result
(** [update t ~row ~col ~d] replaces the basic column in position [row]
    by [col], where [d = B^-1 a_col] is the transformed entering column
    (so [d.(row)] is the pivot element).  Appends an eta matrix, or
    refactorizes when the eta file is full.  [`Tiny_pivot] leaves the
    basis unchanged; [`Singular] can only arise from the embedded
    refactorization. *)
