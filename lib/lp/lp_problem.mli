(** Linear-program model builder.

    A thin, mutable builder for LPs of the shape

    {v min / max  c.x   s.t.   lb_i <= row_i . x  (cmp)  rhs_i,
                               lo_j <= x_j <= up_j v}

    Variables are identified by the integer handle returned from
    {!add_var}; handles are dense and index directly into the solution
    vector.  The builder is consumed by {!Simplex.solve} and written out by
    {!Lp_io.to_lp_format}. *)

type var = int

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type term = float * var
(** A single [coefficient * variable] product. *)

type constr = {
  cname : string;
  terms : term list;
  cmp : cmp;
  rhs : float;
}

type t

val create : ?name:string -> unit -> t

val copy : t -> t
(** Independent copy: mutating the copy's bounds, objective, or rows
    never affects the original.  Used by the parallel branch-and-bound to
    give each domain its own problem to re-bound during search. *)

val name : t -> string

val add_var :
  t -> ?lb:float -> ?ub:float -> ?obj:float -> string -> var
(** [add_var t name] registers a variable and returns its handle.
    Default bounds are [0, +inf); [obj] is the objective coefficient
    (default [0.]).  [lb] may be [neg_infinity] and [ub] [infinity]. *)

val add_constr : t -> ?name:string -> term list -> cmp -> float -> unit
(** Append the constraint [terms cmp rhs].  Terms mentioning the same
    variable repeatedly are summed.  @raise Invalid_argument on an unknown
    variable handle. *)

val constr_at : t -> int -> constr
(** Row at index [i] (insertion order), without the copying cost of
    {!constraints}.  @raise Invalid_argument out of range. *)

val update_constr : t -> int -> term list -> cmp -> float -> unit
(** Rewrite the row at index [i] in place, keeping its name.  Used by the
    formulation layer to re-tighten per-pair big-M coefficients after
    variable bounds have shrunk.  @raise Invalid_argument on an unknown
    row or variable handle. *)

val truncate_constrs : t -> int -> unit
(** Drop every row with index [>= n], restoring the row count to [n].
    The branch-and-bound cut loop uses this as its stack discipline: rows
    appended at a node are truncated when the node is left.
    @raise Invalid_argument when [n] is negative or above the current
    count. *)

val remove_constrs : t -> int list -> unit
(** Remove the rows at the given indices (any order, duplicates allowed)
    and compact the remaining rows, preserving their relative order.
    Indices refer to positions before any removal.  @raise
    Invalid_argument on an out-of-range index. *)

val set_obj_coeff : t -> var -> float -> unit
val set_sense : t -> sense -> unit
val set_bounds : t -> var -> lb:float -> ub:float -> unit

val tighten_bounds : t -> var -> lb:float -> ub:float -> bool
(** [tighten_bounds t v ~lb ~ub] intersects [v]'s interval with
    [[lb, ub]].  Returns [false] — leaving the variable untouched — when
    the intersection is empty, so callers can fall back to an explicit
    (infeasible) constraint row instead of raising. *)

val propagate_bounds :
  ?max_sweeps:int ->
  ?integral:(var -> bool) ->
  ?extra:constr array ->
  t ->
  [ `Ok of (var * float * float) list
  | `Infeasible of (var * float * float) list ]
(** Row-driven interval propagation (feasibility-based bound
    tightening): sweep every row in insertion order, shrinking each
    variable's interval to what the other terms' intervals leave
    possible, until a fixpoint or [max_sweeps] (default 16) sweeps.
    [integral v] (default: nobody) marks variables whose tightened
    bounds may be snapped to the enclosed integer range — on 0-1
    variables that turns the interval sweep into implication
    propagation.  [extra] rows (default none) participate in every
    sweep without being part of the problem — callers holding valid
    inequalities outside the LP (a lazy cut pool) get their pruning
    power without their pricing cost.  Deterministic: same bounds in,
    same bounds out.

    Returns the first-touch undo list [(v, old_lb, old_ub)] of every
    changed variable — apply it with {!set_bounds} to restore —
    tagged [`Infeasible] when some interval emptied (beyond tolerance),
    in which case no feasible point existed under the entry bounds.
    Bounds are left in their tightened (possibly crossed) state either
    way; restoring is the caller's choice. *)

val objective_interval : t -> float * float
(** Interval of the objective function over the current bound box —
    [(lo, hi)] such that every point within bounds has objective in the
    interval.  A valid objective bound for pruning without a solve. *)

val num_vars : t -> int
val num_constrs : t -> int

val var_name : t -> var -> string
val var_lb : t -> var -> float
val var_ub : t -> var -> float
val obj_coeff : t -> var -> float
val sense : t -> sense
val constraints : t -> constr array
(** Snapshot of the current rows, in insertion order. *)

val objective_value : t -> float array -> float
(** Evaluate the objective at a point (no feasibility check). *)

val constraint_violation : t -> float array -> float
(** Maximum violation of any row or bound at a point; [0.] when feasible.
    Used by tests and by the MILP layer to sanity-check solutions. *)
