(** Linear-program model builder.

    A thin, mutable builder for LPs of the shape

    {v min / max  c.x   s.t.   lb_i <= row_i . x  (cmp)  rhs_i,
                               lo_j <= x_j <= up_j v}

    Variables are identified by the integer handle returned from
    {!add_var}; handles are dense and index directly into the solution
    vector.  The builder is consumed by {!Simplex.solve} and written out by
    {!Lp_io.to_lp_format}. *)

type var = int

type sense = Minimize | Maximize

type cmp = Le | Ge | Eq

type term = float * var
(** A single [coefficient * variable] product. *)

type constr = {
  cname : string;
  terms : term list;
  cmp : cmp;
  rhs : float;
}

type t

val create : ?name:string -> unit -> t

val copy : t -> t
(** Independent copy: mutating the copy's bounds, objective, or rows
    never affects the original.  Used by the parallel branch-and-bound to
    give each domain its own problem to re-bound during search. *)

val name : t -> string

val add_var :
  t -> ?lb:float -> ?ub:float -> ?obj:float -> string -> var
(** [add_var t name] registers a variable and returns its handle.
    Default bounds are [0, +inf); [obj] is the objective coefficient
    (default [0.]).  [lb] may be [neg_infinity] and [ub] [infinity]. *)

val add_constr : t -> ?name:string -> term list -> cmp -> float -> unit
(** Append the constraint [terms cmp rhs].  Terms mentioning the same
    variable repeatedly are summed.  @raise Invalid_argument on an unknown
    variable handle. *)

val set_obj_coeff : t -> var -> float -> unit
val set_sense : t -> sense -> unit
val set_bounds : t -> var -> lb:float -> ub:float -> unit

val tighten_bounds : t -> var -> lb:float -> ub:float -> bool
(** [tighten_bounds t v ~lb ~ub] intersects [v]'s interval with
    [[lb, ub]].  Returns [false] — leaving the variable untouched — when
    the intersection is empty, so callers can fall back to an explicit
    (infeasible) constraint row instead of raising. *)

val num_vars : t -> int
val num_constrs : t -> int

val var_name : t -> var -> string
val var_lb : t -> var -> float
val var_ub : t -> var -> float
val obj_coeff : t -> var -> float
val sense : t -> sense
val constraints : t -> constr array
(** Snapshot of the current rows, in insertion order. *)

val objective_value : t -> float array -> float
(** Evaluate the objective at a point (no feasibility check). *)

val constraint_violation : t -> float array -> float
(** Maximum violation of any row or bound at a point; [0.] when feasible.
    Used by tests and by the MILP layer to sanity-check solutions. *)
