type mat = {
  m : int;
  cols : (int * float) array array;
}

let pivot_tol = 1e-10
let refactor_every = 64

(* Dense LU factors of the basis matrix at the last refactorization.
   [lu] holds L strictly below the diagonal (unit diagonal implied) and U
   on and above it; [perm] records the row permutation: row [i] of the
   factored matrix is row [perm.(i)] of the basis matrix. *)
type factors = {
  lu : float array array;
  perm : int array;
}

(* Product-form update: B_new = B_old with column [row] replaced, so
   B_new^-1 = E B_old^-1 where E is the identity with column [row]
   replaced by [col] (the eta column). *)
type eta = {
  erow : int;
  ecol : float array;
}

type t = {
  mat : mat;
  basis : int array;
  mutable factors : factors;
  mutable etas : eta array;
  mutable n_etas : int;
  mutable refactorizations : int;
}

let basis t = t.basis
let refactorizations t = t.refactorizations

(* LU with partial pivoting of the m x m basis matrix B[:,j] =
   A[:, basis.(j)].  Returns Error `Singular when a pivot column has no
   entry above [pivot_tol]. *)
let factorize mat basis =
  let m = mat.m in
  let a = Array.make_matrix m m 0. in
  Array.iteri
    (fun j bj -> Array.iter (fun (i, v) -> a.(i).(j) <- v) mat.cols.(bj))
    basis;
  let perm = Array.init m Fun.id in
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       let p = ref k in
       for i = k + 1 to m - 1 do
         if Float.abs a.(i).(k) > Float.abs a.(!p).(k) then p := i
       done;
       if Float.abs a.(!p).(k) <= pivot_tol then begin
         ok := false;
         raise Exit
       end;
       if !p <> k then begin
         let tmp = a.(k) in
         a.(k) <- a.(!p);
         a.(!p) <- tmp;
         let tp = perm.(k) in
         perm.(k) <- perm.(!p);
         perm.(!p) <- tp
       end;
       let row_k = a.(k) in
       let piv = row_k.(k) in
       for i = k + 1 to m - 1 do
         let row_i = a.(i) in
         let l = row_i.(k) /. piv in
         if l <> 0. then begin
           row_i.(k) <- l;
           for j = k + 1 to m - 1 do
             row_i.(j) <- row_i.(j) -. (l *. row_k.(j))
           done
         end
       done
     done
   with Exit -> ());
  if !ok then Ok { lu = a; perm } else Error `Singular

let create mat basis =
  match factorize mat basis with
  | Ok factors ->
    Ok
      {
        mat;
        basis = Array.copy basis;
        factors;
        etas = Array.make refactor_every { erow = 0; ecol = [||] };
        n_etas = 0;
        refactorizations = 0;
      }
  | Error `Singular -> Error `Singular

let refactorize t =
  match factorize t.mat t.basis with
  | Ok factors ->
    t.factors <- factors;
    t.n_etas <- 0;
    t.refactorizations <- t.refactorizations + 1;
    Ok ()
  | Error `Singular -> Error `Singular

(* Solve B x = v in place:  P B = L U, so x = U^-1 L^-1 P v, then the
   eta file applied oldest to newest. *)
let ftran t v =
  let m = t.mat.m in
  let { lu; perm } = t.factors in
  let w = Array.make m 0. in
  for i = 0 to m - 1 do
    w.(i) <- v.(perm.(i))
  done;
  for i = 0 to m - 1 do
    let row = lu.(i) in
    let acc = ref w.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (row.(j) *. w.(j))
    done;
    w.(i) <- !acc
  done;
  for i = m - 1 downto 0 do
    let row = lu.(i) in
    let acc = ref w.(i) in
    for j = i + 1 to m - 1 do
      acc := !acc -. (row.(j) *. w.(j))
    done;
    w.(i) <- !acc /. row.(i)
  done;
  Array.blit w 0 v 0 m;
  for k = 0 to t.n_etas - 1 do
    let { erow = r; ecol } = t.etas.(k) in
    let vr = v.(r) in
    if vr <> 0. then begin
      for i = 0 to m - 1 do
        v.(i) <- v.(i) +. (ecol.(i) *. vr)
      done;
      v.(r) <- ecol.(r) *. vr
    end
  done

(* Solve B^T x = v in place: apply eta transposes newest to oldest, then
   U^T z = v, L^T w = z, x = P^T w. *)
let btran t v =
  let m = t.mat.m in
  for k = t.n_etas - 1 downto 0 do
    let { erow = r; ecol } = t.etas.(k) in
    let acc = ref 0. in
    for i = 0 to m - 1 do
      acc := !acc +. (ecol.(i) *. v.(i))
    done;
    (* ecol.(r) already holds the diagonal entry of E. *)
    v.(r) <- !acc
  done;
  let { lu; perm } = t.factors in
  let z = Array.make m 0. in
  for i = 0 to m - 1 do
    let acc = ref v.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (lu.(j).(i) *. z.(j))
    done;
    z.(i) <- !acc /. lu.(i).(i)
  done;
  for i = m - 1 downto 0 do
    let acc = ref z.(i) in
    for j = i + 1 to m - 1 do
      acc := !acc -. (lu.(j).(i) *. z.(j))
    done;
    z.(i) <- !acc
  done;
  for i = 0 to m - 1 do
    v.(perm.(i)) <- z.(i)
  done

let update t ~row ~col ~d =
  let m = t.mat.m in
  let piv = d.(row) in
  if Float.abs piv <= pivot_tol then Error `Tiny_pivot
  else begin
    t.basis.(row) <- col;
    if t.n_etas >= refactor_every then
      match refactorize t with
      | Ok () -> Ok `Refactored
      | Error `Singular -> Error `Singular
    else begin
      let ecol = Array.make m 0. in
      for i = 0 to m - 1 do
        ecol.(i) <- -.d.(i) /. piv
      done;
      ecol.(row) <- 1. /. piv;
      t.etas.(t.n_etas) <- { erow = row; ecol };
      t.n_etas <- t.n_etas + 1;
      Ok `Updated
    end
  end
