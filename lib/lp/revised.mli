(** Bounded-variable revised simplex.

    Solves the same problems as {!Simplex} but treats variable bounds as
    first class (nonbasic variables rest at their lower or upper bound)
    and keeps the basis as an LU factorization with product-form eta
    updates ({!Basis}).  Because the internal column space is exactly
    [structural variables + one logical per row], an optimal basis can be
    re-used by {!solve_from} after the bounds change — the
    branch-and-bound warm-start path, served by a dual-simplex phase.

    Tolerances: primal feasibility [1e-7], dual feasibility [1e-7]
    ([1e-6] when screening a warm basis), ratio-test pivot threshold
    [1e-9]; Dantzig pricing falls back to Bland's rule after [60]
    consecutive degenerate pivots.

    Fault sites (for {!Fp_util.Fault}, exercised by the resilience
    tests): ["revised.iteration_limit"] forces {!solve} / {!solve_from}
    to report [Iteration_limit]; ["basis.singular_lu"] makes
    {!solve_from} treat the snapshot's LU factorization as singular,
    taking the documented cold-solve fallback. *)

type snapshot
(** An immutable basis snapshot: which column is basic in each row
    position plus the rest status (lower / upper / free) of every
    nonbasic column.  Valid for any problem with the same variable and
    row counts — in particular for bound-only modifications of the
    problem that produced it. *)

type result =
  | Optimal of { x : float array; obj : float; basis : snapshot }
  | Infeasible
  | Unbounded
  | Iteration_limit

type stats = {
  primal_pivots : int;
  dual_pivots : int;
  refactorizations : int;
  warm : bool;
      (** [true] when the result was reached from the supplied snapshot;
          [false] on a cold solve or after a fallback. *)
}

val extend_snapshot : snapshot -> added:int -> snapshot
(** Adapt a snapshot to a problem that gained [added] appended rows
    (e.g. cutting planes): the new rows' logicals enter the basis, which
    keeps the basis nonsingular and — logicals being costless — dual
    feasible, so {!solve_from} repairs a violated cut with dual-simplex
    pivots instead of a cold solve. *)

val shrink_snapshot : snapshot -> removed_rows:int list -> snapshot option
(** Adapt a snapshot to the removal of the given row indices (as passed
    to {!Lp_problem.remove_constrs}).  Succeeds only when every removed
    row's logical is basic — true for a [Le] cut with positive slack at
    the snapshot's solution — because only then does deleting the row
    and its unit column preserve basis nonsingularity.  Returns [None]
    otherwise; the caller must then keep the rows. *)

val solve : ?max_iters:int -> Lp_problem.t -> result * stats
(** Cold solve: logical starting basis, primal phase 1 (violated bound
    sides relaxed with unit costs) when needed, then primal phase 2.
    Default budget is [50 * (rows + cols) + 2000] pivots. *)

val solve_from : ?max_iters:int -> snapshot -> Lp_problem.t -> result * stats
(** Warm solve from a previous optimal basis.  When the snapshot is
    still dual feasible (always true after a bound-only change), runs
    the dual simplex to repair primal feasibility; otherwise restarts
    primal phase 2 from the snapshot if it is primal feasible.  Falls
    back to a cold {!solve} on dimension mismatch, singular basis, or
    numerical failure. *)
