module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Placement = Fp_core.Placement
module Heap = Fp_util.Heap
module Tol = Fp_geometry.Tol

type algorithm = Shortest_path | Weighted of { penalty : float }

type routed_net = {
  net : Net.t;
  edges : int list;
  wirelength : float;
}

type t = {
  graph : Channel_graph.t;
  routed : routed_net list;
  usage : float array;
  total_wirelength : float;
  overflow_total : float;
  max_overflow : float;
  num_failed : int;
}

let edge_cost algorithm usage (e : Channel_graph.edge) idx =
  match algorithm with
  | Shortest_path -> e.Channel_graph.length
  | Weighted { penalty } ->
    let after = usage.(idx) +. 1. in
    let over =
      if Tol.leq e.Channel_graph.capacity 0. then after
      else Float.max 0. (after -. e.Channel_graph.capacity)
           /. Float.max 1. e.Channel_graph.capacity
    in
    e.Channel_graph.length *. (1. +. (penalty *. over))

(* Dijkstra from a set of sources to the nearest target.  Returns the
   edge list of the path, or None when unreachable. *)
let shortest_path graph algorithm usage ~sources ~target =
  let n = Channel_graph.num_nodes graph in
  let dist = Array.make n infinity in
  let via = Array.make n (-1) in      (* edge used to arrive *)
  let from = Array.make n (-1) in     (* predecessor node *)
  let heap = Heap.create () in
  List.iter
    (fun s ->
      if Tol.gt dist.(s) 0. then begin
        dist.(s) <- 0.;
        Heap.push heap 0. s
      end)
    sources;
  let rec walk () =
    match Heap.pop heap with
    | None -> None
    | Some (d, u) ->
      if Tol.gt ~tol:1e-12 d dist.(u) then walk () (* stale entry *)
      else if u = target then Some u
      else begin
        List.iter
          (fun (v, ei) ->
            let e = Channel_graph.edge_at graph ei in
            let nd = d +. edge_cost algorithm usage e ei in
            if Tol.lt ~tol:1e-12 nd dist.(v) then begin
              dist.(v) <- nd;
              via.(v) <- ei;
              from.(v) <- u;
              Heap.push heap nd v
            end)
          (Channel_graph.neighbors graph u);
        walk ()
      end
  in
  match walk () with
  | None -> None
  | Some _ ->
    let rec collect u acc =
      if via.(u) < 0 then acc
      else collect from.(u) (via.(u) :: acc)
    in
    Some (collect target [])

(* Route one net as a tree: connect each pin to the partial tree via the
   cheapest path from any tree node. *)
let route_net graph algorithm usage pl net =
  let pins =
    List.filter_map
      (fun p ->
        Option.map
          (fun placed -> Channel_graph.pin_node graph placed p.Net.side)
          (Placement.find pl p.Net.module_id))
      net.Net.pins
    |> List.sort_uniq compare
  in
  match pins with
  | [] | [ _ ] -> Some { net; edges = []; wirelength = 0. }
  | first :: rest ->
    let tree_nodes = ref [ first ] in
    let tree_edges = ref [] in
    let ok = ref true in
    List.iter
      (fun target ->
        if !ok && not (List.mem target !tree_nodes) then
          match
            shortest_path graph algorithm usage ~sources:!tree_nodes ~target
          with
          | None -> ok := false
          | Some path ->
            List.iter
              (fun ei ->
                if not (List.mem ei !tree_edges) then begin
                  tree_edges := ei :: !tree_edges;
                  usage.(ei) <- usage.(ei) +. 1.;
                  let e = Channel_graph.edge_at graph ei in
                  tree_nodes := e.Channel_graph.a :: e.Channel_graph.b
                                :: !tree_nodes
                end)
              path;
            tree_nodes := target :: !tree_nodes)
      rest;
    if not !ok then None
    else
      let wirelength =
        List.fold_left
          (fun acc ei ->
            acc +. (Channel_graph.edge_at graph ei).Channel_graph.length)
          0. !tree_edges
      in
      Some { net; edges = !tree_edges; wirelength }

let route ?(algorithm = Shortest_path) ?(pitch_h = 1.0) ?(pitch_v = 1.0) nl pl =
  let graph = Channel_graph.build ~pitch_h ~pitch_v pl in
  let usage = Array.make (Channel_graph.num_edges graph) 0. in
  (* Timing-critical nets first (YOU89), then heavier nets. *)
  let nets =
    List.sort
      (fun a b ->
        match compare b.Net.criticality a.Net.criticality with
        | 0 -> (
          match compare (Net.degree b) (Net.degree a) with
          | 0 -> compare a.Net.name b.Net.name
          | c -> c)
        | c -> c)
      (Netlist.nets nl)
  in
  let routed = ref [] and failed = ref 0 in
  List.iter
    (fun net ->
      match route_net graph algorithm usage pl net with
      | Some r -> routed := r :: !routed
      | None -> incr failed)
    nets;
  let routed = List.rev !routed in
  let total_wirelength =
    List.fold_left (fun a r -> a +. r.wirelength) 0. routed
  in
  let overflow_total = ref 0. and max_overflow = ref 0. in
  Array.iteri
    (fun i u ->
      let e = Channel_graph.edge_at graph i in
      let over = Float.max 0. (u -. e.Channel_graph.capacity) in
      overflow_total := !overflow_total +. over;
      if over > !max_overflow then max_overflow := over)
    usage;
  {
    graph; routed; usage; total_wirelength;
    overflow_total = !overflow_total; max_overflow = !max_overflow;
    num_failed = !failed;
  }

let wirelength_of t = t.total_wirelength
