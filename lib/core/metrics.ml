module Netlist = Fp_netlist.Netlist
module Net = Fp_netlist.Net
module Module_def = Fp_netlist.Module_def
module Tol = Fp_geometry.Tol

let placed_area nl pl =
  List.fold_left
    (fun acc p ->
      acc +. Module_def.area (Netlist.module_at nl p.Placement.module_id))
    0. pl.Placement.placed

let utilization nl pl =
  let chip = Placement.chip_area pl in
  if Tol.leq chip 0. then 0. else placed_area nl pl /. chip

let utilization_bbox nl pl =
  let chip = Placement.bounding_area pl in
  if Tol.leq chip 0. then 0. else placed_area nl pl /. chip

let net_hpwl _nl pl net =
  let pins =
    List.map
      (fun p ->
        match Placement.find pl p.Net.module_id with
        | None -> None
        | Some _ ->
          Some (Placement.pin_position pl ~module_id:p.Net.module_id p.Net.side))
      net.Net.pins
  in
  if List.exists Option.is_none pins then None
  else
    let pts = List.filter_map Fun.id pins in
    let xs = List.map (fun (p : Fp_geometry.Point.t) -> p.x) pts in
    let ys = List.map (fun (p : Fp_geometry.Point.t) -> p.y) pts in
    let span vs =
      List.fold_left Float.max neg_infinity vs
      -. List.fold_left Float.min infinity vs
    in
    Some (span xs +. span ys)

let hpwl nl pl =
  List.fold_left
    (fun acc net ->
      match net_hpwl nl pl net with Some l -> acc +. l | None -> acc)
    0. (Netlist.nets nl)
