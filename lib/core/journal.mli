(** Checkpoint journal for successive augmentation.

    After each committed step the engine records everything needed to
    continue the run: the partial placement, the remaining group
    ordering, and digests binding the checkpoint to one configuration
    and one instance.  A resumed run replays exactly the steps the
    interrupted run had not committed, on exactly the state it left —
    the final floorplan is bit-identical to the uninterrupted run's
    (floats are serialized as hexadecimal literals, which round-trip
    exactly).

    The file is a line-oriented text format (see [docs/robustness.md])
    written atomically: the journal is built in a [.tmp] sibling and
    renamed over the target, so a crash mid-write leaves the previous
    checkpoint intact, never a truncated one. *)

type t = {
  config_digest : string;
      (** hex MD5 of the run configuration's canonical rendering —
          everything that affects the placement trajectory (notably NOT
          [jobs]: determinism holds across worker counts) *)
  instance_digest : string;  (** hex MD5 of the instance's text form *)
  chip_width : float;
  steps_done : int;          (** committed augmentation steps *)
  placement : Placement.t;
  remaining : int list list;
      (** module-id groups not yet placed, in commit order — captures
          the ordering (and hence any RNG draws behind it) explicitly *)
}

val digest_instance : Fp_netlist.Netlist.t -> string
(** Hex MD5 of {!Fp_netlist.Parser.to_string}. *)

val write : path:string -> t -> unit
(** Atomic write (tmp + rename).  @raise Sys_error on I/O failure. *)

val read : path:string -> (t, string) result
(** Parse a journal.  [Error] describes the first malformed line; digest
    mismatches are the {e caller's} job to check (it knows the live
    config and instance). *)
