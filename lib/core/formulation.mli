(** MILP formulation of one floorplanning (sub)problem — paper section 2.

    Builds the 0–1 mixed integer program for placing a group of {e items}
    (modules, possibly inflated into routing envelopes) into a chip strip
    of fixed width, around a set of {e fixed} rectangles (the covering
    rectangles of the partial floorplan).  Implements:

    - eq. (2)/(3): pairwise non-overlap via big-M disjunctions controlled
      by a 0–1 pair [(x_ij, y_ij)], chip bounds, minimized height [y];
    - eq. (4)/(5): optional 90° rotation of rigid modules via a 0–1 [z_i];
    - eq. (6)–(8): flexible modules with fixed area and linearized height
      [h_i = h_i(w_max) + Λ_i Δw_i] — tangent (the paper's Taylor
      expansion) or secant (conservative: the linearized height dominates
      the true hyperbola, so floorplans are overlap-free without a
      post-adjustment);
    - optional wirelength objective term: per-net half-perimeter bounding
      boxes over generalized pins (paper's "Chip Area + Wire Length"
      objective of Table 2);
    - a valid area cut [y >= occupied_area / W] that gives the LP
      relaxation a meaningful bound (big-M disjunctions alone relax to
      almost nothing);
    - geometric presolve of item-vs-fixed relations: relations that are
      impossible given the chip boundaries lose their integer variables
      (one relation left → no binaries at all, two → a single binary),
      which is what keeps subproblem integer counts low in practice. *)

module Rect = Fp_geometry.Rect
module Model = Fp_milp.Model
module Expr = Fp_milp.Expr
module Branch_bound = Fp_milp.Branch_bound

type linearization = Tangent | Secant

type mode = Basic | Tight | Cuts
(** Formulation-strengthening mode.

    - [Basic]: the paper's formulation verbatim — every big-M coefficient
      is the direction cap (chip width / height bound).  Bit-identical to
      the historical behavior; the default.
    - [Tight]: per-pair, per-direction big-M derived from variable bounds
      ({!retighten}), plus the whole static valid-inequality family
      (lower/upper pushes, stacking, clique inequalities) appended to the
      base LP.  Both strengthened modes also run interval bound
      propagation: once on the root problem here, and at every
      branch-and-bound node via [Branch_bound.params.propagate].
    - [Cuts]: per-pair big-M as in [Tight]; the push rows (which shape
      the LP vertex the search branches on) stay static, while the
      stacking / clique rows are compiled into a candidate pool and
      separated lazily at branch-and-bound nodes ({!separator}).  Pool
      rows also join node bound propagation before they are ever priced
      into the LP. *)

val mode_to_string : mode -> string
(** ["basic" | "tight" | "cuts"] — CLI / bench / digest spelling. *)

val mode_of_string : string -> mode option

type objective =
  | Min_height
  | Min_height_plus_wire of float
      (** [lambda]: minimize [y + lambda * total HPWL]. *)

type item = {
  def : Fp_netlist.Module_def.t;
  margins : float * float * float * float;
      (** (left, right, bottom, top) envelope margins; all zero when
          envelopes are off. *)
}

val plain_item : Fp_netlist.Module_def.t -> item
(** Item with zero margins. *)

type rel = Rel_left | Rel_right | Rel_below | Rel_above
(** Position of item [i] relative to the other object [j]. *)

type sep =
  | Fixed_rel of rel
  | Choice2 of { bin : Model.var; if0 : rel; if1 : rel }
  | Choice4 of { bx : Model.var; by : Model.var }

type other = Other_item of int | Other_fixed of int

type flex_info = {
  dw_var : Model.var;
  dw_ub : float;
  w_max_env : float;   (** envelope width at [dw = 0] *)
  h_base_env : float;  (** envelope height at [dw = 0] *)
  slope : float;       (** Λ_i of eq. (7), on the envelope *)
}

type net_info = {
  net : Fp_netlist.Net.t;
  lx : Model.var;
  rx : Model.var;
  ly : Model.var;
  ry : Model.var;
  pin_exprs : (Expr.t * Expr.t) list;
}

type sep_row = {
  sr_row : int;         (** row index in the underlying {!Fp_lp.Lp_problem} *)
  sr_lhs : Expr.t;      (** extent of the pushed object *)
  sr_rhs : Expr.t;      (** position of the blocking object *)
  sr_slack : Expr.t;    (** 0 when the relation is selected, >= 1 otherwise *)
  sr_cap : float;       (** direction cap: chip width or height bound *)
  mutable sr_m : float; (** current big-M coefficient; only ever shrinks *)
}
(** One recorded big-M separation row, [sr_lhs <= sr_rhs + sr_m * sr_slack],
    re-tightenable in place via {!retighten}.  Recorded only by the
    [Tight] / [Cuts] modes, and only when a real row was emitted (an M
    that collapses to 0 makes the relation unconditional and the row may
    fold into a variable bound instead). *)

type built = {
  model : Model.t;
  chip_width : float;
  height_bound : float;
  items : item array;
  x : Model.var array;
  y : Model.var array;
  rot : Model.var option array;
  flex : flex_info option array;
  w_expr : Expr.t array;  (** envelope width of each item *)
  h_expr : Expr.t array;  (** envelope height of each item *)
  height : Model.var;     (** chip height variable [y] *)
  seps : (int * other * sep) list;
  net_infos : net_info list;
  fixed : Rect.t list;
  linearization : linearization;
  formulation : mode;
  sep_rows : sep_row list;
      (** recorded big-M rows ([Tight] / [Cuts] modes; empty in [Basic]) *)
  cut_candidates : Branch_bound.cut list;
      (** precompiled separation pool ([Cuts] mode; empty otherwise) *)
}

val build :
  chip_width:float ->
  height_bound:float ->
  ?objective:objective ->
  ?allow_rotation:bool ->
  ?linearization:linearization ->
  ?fixed:Rect.t list ->
  ?formulation:mode ->
  ?wire_context:Fp_netlist.Netlist.t * Placement.t * int array ->
  ?net_length_bound:(Fp_netlist.Net.t -> float option) ->
  ?check:bool ->
  item list ->
  built
(** [build ~chip_width ~height_bound items] assembles the model.

    [formulation] (default [Basic]) selects the strengthening mode; see
    {!mode}.  [Basic] emits exactly the historical model.

    [wire_context = (netlist, partial_placement, module_ids)] supplies
    what the wirelength term needs: [module_ids.(k)] is the netlist id of
    item [k]; nets touching at least one item and one other placed-or-item
    pin contribute a bounding-box term.  Required when [objective] is
    [Min_height_plus_wire].

    [net_length_bound] implements the paper's "additional constraints on
    the length of critical nets" (section 2.2): when it returns [Some b]
    for a captured net, the constraint [HPWL(net) <= b] is added — the
    MILP then refuses placements that stretch that net, independent of
    the objective.  Requires [wire_context] to capture the nets.

    [check] (default [false]) runs {!self_check} on the result before
    returning it.

    @raise Invalid_argument if an item cannot fit the strip width, if
    [height_bound] is too small for any item, or if a wire objective is
    requested without [wire_context]. *)

val retighten : built -> int
(** Recompute every recorded per-pair big-M from the problem's current
    variable bounds and rewrite the rows in place
    ({!Fp_lp.Lp_problem.update_constr}).  Monotone: a coefficient only
    ever shrinks ([min] with its previous value), so repeated calls are
    sound as long as bounds have only tightened since emission.  Returns
    the number of rows that changed.  [build] calls it once at the end
    for the non-basic modes; exposed for the bound-tightening tests and
    for callers that shrink bounds after building. *)

val separator : built -> Branch_bound.cutter option
(** Separation callback for {!Fp_milp.Branch_bound.solve} over the
    precompiled candidate pool: violated candidates, most violated
    first, ties broken by compilation order — deterministic, so parallel
    searches replay bit-identically.  [None] unless the formulation is
    [Cuts] with a nonempty pool. *)

val self_check : built -> unit
(** Structural self-audit: every item pair and every item–fixed pair must
    carry a separation entry, every [Choice4] separation's binaries must
    be declared as a branching pair, and every fixed rectangle must lie
    inside the chip strip.  [build] establishes all of this by
    construction; the audit guards against refactors that silently drop a
    disjunction — the failure mode where the MILP happily overlaps
    modules.  @raise Failure on the first violation.  [Fp_check.Lint]
    reports the same conditions as structured diagnostics instead. *)

val item_min_width : ?allow_rotation:bool -> item -> float
(** Smallest feasible envelope width over rotation / flexing. *)

val item_min_height : ?allow_rotation:bool -> item -> float

val item_min_reserved_area : linearization:linearization -> item -> float
(** Smallest area the item's reserved envelope can take over rotation /
    flexing — a term of the valid cut [W * y >= occupied area]. *)

val rel_of_geometry :
  Rect.t -> Rect.t -> rel option
(** Relation of rectangle [a] to rectangle [b] if some non-overlap
    disjunct is satisfied (preference order: left, right, below, above);
    [None] when they overlap. *)

val assign_warm :
  built -> (int -> Rect.t) -> rotated:(int -> bool) -> float array
(** Build a full variable assignment from a concrete envelope placement
    of the items: [f k] is the placed envelope of item [k]; [rotated k]
    whether a rigid item was rotated.  Fills positions, rotation and
    flex variables, all separation binaries, net bounding boxes, and the
    chip height.  The result is suitable as a warm start for
    {!Fp_milp.Branch_bound.solve}.
    @raise Invalid_argument if some pair of placed envelopes overlaps. *)

val extract :
  built -> float array -> (Rect.t * Rect.t * bool) array
(** Per item: [(envelope, silicon, rotated)] decoded from a solution
    vector.  For tangent linearization the silicon of a flexible module
    may stick out of its reserved envelope; the returned envelope is then
    the hull of both (see DESIGN.md). *)
