module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering
module Tol = Fp_geometry.Tol
module Netlist = Fp_netlist.Netlist
module Branch_bound = Fp_milp.Branch_bound

type report = {
  rounds_attempted : int;
  rounds_improved : int;
  height_before : float;
  height_after : float;
}

let default_milp =
  {
    Branch_bound.default_params with
    Branch_bound.node_limit = 1500;
    time_limit = 5.;
    min_improvement = 1e-4;
  }

(* Envelope margins of a placed module, mapped back to the module's
   unrotated frame (extraction rotates (l,r,b,t) to (b,t,l,r)). *)
let unrotated_margins (p : Placement.placed) =
  let e = p.Placement.envelope and r = p.Placement.rect in
  let l = r.Rect.x -. e.Rect.x
  and rr = Rect.x_max e -. Rect.x_max r
  and b = r.Rect.y -. e.Rect.y
  and t = Rect.y_max e -. Rect.y_max r in
  if p.Placement.rotated then (b, t, l, rr) else (l, rr, b, t)

let without pl id =
  {
    pl with
    Placement.placed =
      List.filter (fun p -> p.Placement.module_id <> id) pl.Placement.placed;
    height =
      List.fold_left
        (fun acc p ->
          if p.Placement.module_id = id then acc
          else Float.max acc (Rect.y_max p.Placement.envelope))
        0. pl.Placement.placed;
  }

(* The module that pins the chip height; ties broken toward the larger
   envelope (moving it frees more skyline). *)
let top_module pl =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some q ->
        let tp = Rect.y_max p.Placement.envelope
        and tq = Rect.y_max q.Placement.envelope in
        if
          Tol.gt tp tq
          || (Tol.equal tp tq
              && Rect.area p.Placement.envelope > Rect.area q.Placement.envelope)
        then Some p
        else acc)
    None pl.Placement.placed

let reinsert_once ~milp ~linearization ~allow_rotation nl pl =
  match top_module pl with
  | None -> None
  | Some victim ->
    let id = victim.Placement.module_id in
    let rest = without pl id in
    let w = pl.Placement.chip_width in
    let sky = Skyline.of_rects ~width:w (Placement.envelopes rest) in
    let cover = Covering.of_skyline sky in
    let cover =
      if List.length cover > 10 then Covering.coarsen ~max_count:10 cover
      else cover
    in
    (* Coarsened covers may protrude above the module skyline; the warm
       placement must clear the obstacles actually used. *)
    let cover_sky =
      List.fold_left Skyline.add_rect (Skyline.create ~width:w) cover
    in
    let item =
      { Formulation.def = Netlist.module_at nl id;
        margins = unrotated_margins victim }
    in
    let warm =
      Warm_start.place_group ~skyline:cover_sky ~allow_rotation ~linearization
        [| item |]
    in
    let warm_top = Rect.y_max warm.(0).Warm_start.envelope in
    let height_bound =
      Float.max pl.Placement.height
        (Float.max warm_top (Skyline.max_height cover_sky))
      +. 1.
    in
    match
      Formulation.build ~chip_width:w ~height_bound ~allow_rotation
        ~linearization ~fixed:cover [ item ]
    with
    | exception Invalid_argument _ -> None
    | built ->
      let warm_sol =
        Formulation.assign_warm built
          (fun _ -> warm.(0).Warm_start.envelope)
          ~rotated:(fun _ -> warm.(0).Warm_start.rotated)
      in
      let outcome =
        Branch_bound.solve ~params:milp ~warm:warm_sol built.Formulation.model
      in
      let sol =
        match outcome.Branch_bound.best with
        | Some (x, _) -> x
        | None -> warm_sol
      in
      let envelope, silicon, rotated = (Formulation.extract built sol).(0) in
      let candidate =
        Placement.add rest
          { Placement.module_id = id; rect = silicon; envelope; rotated }
      in
      let candidate = Compact.vertical candidate in
      if
        Tol.lt candidate.Placement.height pl.Placement.height
        && Placement.valid candidate = Ok ()
      then Some candidate
      else None

let reinsert_top ?(max_rounds = 12) ?(milp = default_milp)
    ?(linearization = Formulation.Secant) ?(allow_rotation = true) nl pl =
  let height_before = pl.Placement.height in
  let rec go pl attempted improved =
    if attempted >= max_rounds then (pl, attempted, improved)
    else
      match reinsert_once ~milp ~linearization ~allow_rotation nl pl with
      | Some better -> go better (attempted + 1) (improved + 1)
      | None -> (pl, attempted + 1, improved)
  in
  let final, attempted, improved = go pl 0 0 in
  ( final,
    {
      rounds_attempted = attempted;
      rounds_improved = improved;
      height_before;
      height_after = final.Placement.height;
    } )
