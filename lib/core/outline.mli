(** Outline constraints on a floorplan's bounding box.

    The scenario layer describes the die with one of three shapes:
    no constraint at all, a width cap (the classic channel/row form the
    slicing annealer has always supported), or a full fixed outline
    [W x H] in the fixed-outline-floorplanning sense of the SNIPPETS.md
    exemplars — the plan must fit inside the rectangle, and anything
    taller degrades rather than fails.

    All engines receive the same [t] through the [Solver] scenario
    record; each maps it onto its native knobs ([Augment.height_limit],
    the annealer's realization width cap, the projection backend's
    half-space constraints). *)

type t =
  | Free  (** no outline constraint; minimize area freely *)
  | Max_width of float
      (** cap the bounding-box width; height is unconstrained *)
  | Fixed of { w : float; h : float }
      (** plan must fit in a [w x h] rectangle *)

val width_limit : t -> float option
(** The width cap, if any ([Max_width w] and [Fixed {w; _}]). *)

val height_limit : t -> float option
(** The height cap, if any ([Fixed {h; _}] only). *)

val excess : t -> w:float -> h:float -> float
(** [excess o ~w ~h] is how far a [w x h] bounding box overflows the
    outline: the largest of the per-axis overshoots, [0.] when the box
    fits (or the outline is [Free]).  Used both for degradation
    reporting and as a penalty term. *)

val fits : t -> w:float -> h:float -> bool
(** [fits o ~w ~h] is [excess o ~w ~h <= Tol.eps]. *)

val to_string : t -> string
(** Human-readable form for reports, e.g. ["fixed 32.0x28.0"]. *)
