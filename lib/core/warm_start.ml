module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Module_def = Fp_netlist.Module_def

type choice = { envelope : Rect.t; rotated : bool }

(* Candidate envelope shapes for an item: (w, h, rotated). *)
let shapes ~allow_rotation ~linearization (it : Formulation.item) =
  let l, r, b, t = it.Formulation.margins in
  match it.Formulation.def.Module_def.shape with
  | Module_def.Rigid { w; h } ->
    let we = w +. l +. r and he = h +. b +. t in
    if allow_rotation && not (Fp_geometry.Tol.equal we he) then
      [ (we, he, false); (he, we, true) ]
    else [ (we, he, false) ]
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min = Float.sqrt (area *. min_aspect)
    and w_max = Float.sqrt (area *. max_aspect) in
    let h_base = area /. w_max in
    let slope =
      match linearization with
      | Formulation.Tangent -> area /. (w_max *. w_max)
      | Formulation.Secant ->
        if Fp_geometry.Tol.leq w_max w_min then 0.
        else area /. (w_min *. w_max)
    in
    let at dw =
      (w_max +. l +. r -. dw, h_base +. b +. t +. (slope *. dw), false)
    in
    let dw_ub = Float.max 0. (w_max -. w_min) in
    if dw_ub <= Fp_geometry.Tol.eps then [ at 0. ]
    else [ at 0.; at (dw_ub /. 2.); at dw_ub ]

(* Place items in the given order; returns the choices and the resulting
   skyline height. *)
let place_in_order ~skyline ~allow_rotation ~linearization items order =
  let n = Array.length items in
  let result = Array.make n { envelope = Rect.make ~x:0. ~y:0. ~w:0. ~h:0.;
                              rotated = false } in
  let sky = ref skyline in
  List.iter
    (fun k ->
      let candidates = shapes ~allow_rotation ~linearization items.(k) in
      let best = ref None in
      List.iter
        (fun (w, h, rotated) ->
          match Skyline.best_position !sky ~w with
          | None -> ()
          | Some (px, py) ->
            let top = py +. h in
            let better =
              match !best with
              | None -> true
              | Some (_, _, _, _, best_top, best_area) ->
                Fp_geometry.Tol.lt top best_top
                || (Fp_geometry.Tol.equal top best_top
                    && Fp_geometry.Tol.lt (w *. h) best_area)
            in
            if better then begin
              best := Some (px, py, w, h, top, w *. h);
              result.(k) <-
                { envelope = Rect.make ~x:px ~y:py ~w ~h; rotated }
            end)
        candidates;
      match !best with
      | None ->
        invalid_arg
          (Printf.sprintf "Warm_start.place_group: item %d does not fit" k)
      | Some _ -> sky := Skyline.add_rect !sky result.(k).envelope)
    order;
  (result, Skyline.max_height !sky)

let place_group ~skyline ~allow_rotation ~linearization items =
  let n = Array.length items in
  let by cmp =
    List.sort cmp (List.init n (fun i -> i))
  in
  let area k = Module_def.area items.(k).Formulation.def in
  let min_w k = Formulation.item_min_width ~allow_rotation items.(k) in
  let min_h k = Formulation.item_min_height ~allow_rotation items.(k) in
  let max_dim k = Float.max (min_w k) (min_h k) in
  (* Several classic packing orders; keep the best outcome. *)
  let orders =
    [
      by (fun i j -> compare (area j) (area i));
      by (fun i j -> compare (max_dim j) (max_dim i));
      by (fun i j -> compare (min_w j) (min_w i));
      by (fun i j -> compare (min_h j) (min_h i));
    ]
  in
  let best = ref None in
  List.iter
    (fun order ->
      match
        place_in_order ~skyline ~allow_rotation ~linearization items order
      with
      | result, height -> (
        match !best with
        | Some (_, best_h) when Fp_geometry.Tol.leq best_h height -> ()
        | Some _ | None -> best := Some (result, height))
      | exception Invalid_argument _ -> ())
    orders;
  match !best with
  | Some (result, _) -> result
  | None ->
    (* Every order failed: re-raise the canonical order's error. *)
    fst
      (place_in_order ~skyline ~allow_rotation ~linearization items
         (List.init n (fun i -> i)))

let height_after ~skyline choices =
  Array.fold_left
    (fun acc c -> Float.max acc (Rect.y_max c.envelope))
    (Skyline.max_height skyline)
    choices
