(** Successive augmentation — the paper's solution method (section 3,
    Figure 3).

    The floorplan is built by repeatedly adding a small group of modules
    to the partial floorplan, each addition solved as a 0–1 MILP:

    {v
    (1) select a seed group;
    (2)-(3) solve its MILP;
    (4) while modules remain:
    (5)   select the next group (connectivity / random ordering);
    (7)   replace the partial floorplan by <= N covering rectangles;
    (8)-(9) formulate and solve the MILP for the group + covering rects;
    (12)-(13) (routing and adjustment live in Fp_route / Compact)
    v}

    The chip width is fixed and height is minimized, so the MILP count of
    integer variables stays roughly constant per step and total time
    grows roughly linearly in the number of groups — Table 1's claim.

    {2 Resilience}

    The engine is {e anytime}: every step commits some overlap-free
    placement of its group, and every way a step falls short of the
    clean optimizing path is recorded as a {!Degradation.t} in the
    step's {!step_stat} and in the run's {!result} — never only as a
    log line.  The ladder, top to bottom: solve the MILP; retry with
    escalated node/time budgets ([max_retries], [retry_escalation]) on
    budget-type failures; fall back to the step's warm bottom-left
    packing; commit the packing geometrically even when its MILP
    encoding is rejected.  A run-level deadline ([run_time_limit]) is
    apportioned over the remaining steps and, once expired, remaining
    groups are committed warm-only ([Deadline_truncated]).  With
    [checkpoint] set, a journal ({!Journal}) is written after every
    committed step; an interrupted run resumed from it ([?resume])
    reproduces the uninterrupted run's floorplan bit-for-bit.

    Fault sites (for {!Fp_util.Fault}): ["augment.hook"] makes an
    inspection hook fail (recorded as [Hook_failed], run continues);
    ["augment.candidate_milp"] kills one candidate evaluation (recorded
    as [Candidate_failed]; the step retries when no candidate
    survives).  See [docs/robustness.md]. *)

type envelope_config = {
  pitch_h : float;
      (** metal width + spacing of one horizontal routing track *)
  pitch_v : float;  (** same for vertical tracks *)
  share : float;
      (** fraction of a channel charged to each of the two modules
          flanking it; 0.5 by default *)
}

type step_stat = {
  group : int list;              (** module ids added this step *)
  num_integer_vars : int;
  num_constraints : int;
  num_cover_rects : int;
  milp_status : Fp_milp.Branch_bound.status;
  nodes : int;
  lp_solves : int;
  warm_hits : int;               (** node LPs answered from the parent basis *)
  cold_solves : int;             (** node LPs solved from scratch *)
  pivots : int;                  (** total simplex pivots (primal + dual) *)
  shadow_pivots : int;
      (** cold-engine pivots on the same node sequence; [0] unless
          {!Fp_milp.Branch_bound.params}[.shadow_cold] *)
  refactorizations : int;        (** basis refactorizations across node LPs *)
  cuts_added : int;
      (** cutting planes appended by separation rounds across all nodes;
          [0] unless the config's formulation mode is [Cuts] *)
  cuts_purged : int;
      (** appended cut rows removed again as slack before branching *)
  separation_time : float;       (** seconds spent separating cuts *)
  warm_height : float;           (** bottom-left incumbent height *)
  step_height : float;           (** chip height after this step *)
  step_time : float;             (** seconds, including rejected candidates
                                     and retries *)
  time_budget : float;
      (** MILP wall-clock budget the committed attempt ran under — the
          per-step cap, shrunk by run-deadline apportionment, grown by
          retry escalation; [0] for deadline-truncated steps *)
  candidates_evaluated : int;
      (** candidate groups whose MILPs were solved this step; the stats
          above describe only the committed one.  [0] for
          deadline-truncated steps (no MILP ran) *)
  retries : int;
      (** escalated re-attempts before this step committed; [0] on the
          clean path *)
  degradations : Degradation.t list;
      (** every way this step fell short of the clean optimizing path;
          empty on a healthy step *)
}

type inspect = {
  on_model : Formulation.built -> unit;
      (** Called with every {e committed} step's formulation — lint
          hook.  Rejected candidate formulations are not observed, and
          the call happens after candidate selection (hooks always run
          on the calling domain). *)
  on_step : step_stat -> Placement.t -> unit;
      (** Called after every augmentation step with the step's stats and
          the partial placement it produced — certification hook. *)
}
(** Observation hooks injected through {!config}.  [Fp_core] cannot
    depend on [Fp_check] (the checker certifies this library's output),
    so callers that want every model linted and every partial placement
    certified inject the checks here — see the [check] subcommand and
    [--lint] flag of [bin/floorplanner.ml].

    A hook that raises {!Abort} interrupts the run cooperatively: [run]
    returns the partial result (with [interrupted = true]) after the
    commit the hook observed — and after the checkpoint journal for
    that commit was written, so the run is resumable.  Any {e other}
    exception from a hook is contained and recorded as a [Hook_failed]
    degradation; hooks observe, they cannot kill the run. *)

type config = {
  chip_width : float option;
      (** [None]: use [sqrt total_reserved_area], clamped so the widest
          module fits *)
  height_limit : float option;
      (** fixed-outline mode (default [None]): cap each step's
          chip-height variable at this value, so the MILP optimizes
          {e within} the outline instead of merely minimizing height.
          The cap is floored at what keeps every step's model well-posed
          (tallest item minimum, obstacle tops); a step that cannot meet
          the outline degrades to its warm packing rather than failing.
          Whether the {e final} plan fits is the caller's check (see
          {!Outline.excess}).  Digested into checkpoints only when set,
          so journals from unconstrained runs stay valid. *)
  group_size : int;          (** modules added per augmentation step *)
  ordering : [ `Linear | `Random of int | `Area_desc ];
  objective : Formulation.objective;
  formulation : Formulation.mode;
      (** MILP strengthening mode for every step's model (default
          [Basic]; see {!Formulation.mode}).  [Cuts] additionally feeds
          {!Formulation.separator} to the branch-and-bound as its
          cutting-plane callback.  Digested into checkpoints only when
          not [Basic], so existing journals stay valid. *)
  allow_rotation : bool;
  linearization : Formulation.linearization;
  use_covering : bool;
      (** [false] keeps every placed module as its own obstacle — the
          ablation showing what Theorem 2 buys *)
  max_cover_rects : int option;
      (** coarsen the covering to at most this many rectangles *)
  envelope : envelope_config option;  (** around-the-cell routing mode *)
  compact_each_step : bool;
      (** run {!Compact.vertical} after every augmentation step (an
          extension beyond the paper's end-of-run adjustment; ablatable) *)
  critical_net_bound : (Fp_netlist.Net.t -> float option) option;
      (** per-net HPWL upper bounds (the paper's timing constraints on
          critical nets).  Enforced as hard constraints inside every MILP
          step that sees the net; {e best-effort across steps} — if an
          earlier group already stretched the net so far that a later
          step cannot satisfy the bound, that step falls back to its
          warm start rather than failing the run, and the step's
          {!step_stat} records a [Net_bound_dropped] degradation naming
          exactly the nets whose bound the committed placement newly
          exceeds *)
  milp : Fp_milp.Branch_bound.params;
  check : bool;
      (** run {!Formulation.self_check} on every step's model (raises on
          a structurally broken formulation) *)
  inspect : inspect option;  (** observation hooks; [None] by default *)
  jobs : int;
      (** worker domains for the whole run (default [1]).  One
          {!Fp_util.Pool} is created up front and shared by every step:
          with [candidates = 1] it parallelizes each step's MILP search
          (see {!Fp_milp.Branch_bound}); with [candidates > 1] it
          evaluates candidate groups concurrently, one per domain.  The
          result is identical for every [jobs] value as long as
          [milp.deterministic] is on (the default). *)
  candidates : int;
      (** candidate next groups evaluated per step (default [1]).  The
          first [candidates] groups of the remaining ordering are each
          formulated and solved against the same partial floorplan; the
          one yielding the lowest skyline is committed (ties go to the
          earliest in the ordering) and the rest return to the queue.
          Changes the greedy search — results differ from
          [candidates = 1] by construction — but stays deterministic for
          a fixed config. *)
  run_time_limit : float option;
      (** run-level wall-clock budget in seconds (default [None]).  The
          remaining budget is re-apportioned before every step —
          [share = time_left / steps_left] — and caps that step's MILP
          time limit; once the budget is spent, remaining groups are
          committed from their warm packings ([Deadline_truncated]).
          The run {e always} finishes with a full feasible placement. *)
  max_retries : int;
      (** escalated re-attempts for a step whose MILP found no solution
          or whose candidates all failed (default [2]) *)
  retry_escalation : float;
      (** node/time budget multiplier per retry (default [4.]); node
          budgets are capped at 10 million *)
  checkpoint : string option;
      (** journal path (default [None]).  When set, a {!Journal} is
          written atomically after {e every} committed step; pass the
          parsed journal back as [?resume] to continue an interrupted
          run.  See [docs/robustness.md] for the format. *)
}

val default_config : config
(** group size 4, linear ordering, area objective, rotation on, secant
    linearization, covering on, no envelopes, MILP budget 4000 nodes /
    20 s per step, no checks, no hooks, sequential ([jobs = 1],
    [candidates = 1]), no run deadline, 2 retries at 4x escalation, no
    checkpoint. *)

exception Abort
(** Cooperative interrupt: raised by an inspection hook to stop the run
    after the current commit.  [run] catches it and returns the partial
    result; every other hook exception is contained as a degradation. *)

type result = {
  placement : Placement.t;
  steps : step_stat list;
      (** stats of the steps {e this} run executed — a resumed run only
          reports the steps after the checkpoint *)
  total_time : float;
  config : config;
  degradations : (int * Degradation.t) list;
      (** run-level summary: every degradation with the 1-based global
          step number it occurred at (checkpoint offset included).
          Empty means the clean optimizing path was taken throughout —
          the condition for CLI exit code 0. *)
  interrupted : bool;
      (** [true] when a hook raised {!Abort}; the placement is partial *)
}

val config_digest : config -> string
(** Hex MD5 of the configuration fields that shape the placement
    trajectory.  Excludes [jobs] (and the MILP's worker fields) —
    determinism holds across worker counts, so a checkpoint taken at
    [--jobs 4] may be resumed at [--jobs 1] — and the observational
    fields ([check], [inspect], [checkpoint]); closures contribute
    presence only. *)

val run :
  ?config:config ->
  ?resume:Journal.t ->
  ?pool:Fp_util.Pool.t ->
  Fp_netlist.Netlist.t ->
  result
(** Run the full successive-augmentation floorplanner on an instance.
    Deterministic for a fixed config (without a [run_time_limit]; wall
    clock budgets are inherently timing-dependent).

    [resume], when given, must be a journal written by a run with the
    same {!config_digest} and the same instance; the run continues from
    the journaled partial placement and remaining ordering, and the
    final floorplan is bit-identical to the uninterrupted run's.

    [pool], when given, is used for the whole run instead of creating
    one from [config.jobs], and is {e not} shut down on return — the
    portfolio layer lends one pool to several engines.  The caller must
    respect the pool's no-nesting rule: [run] must then be called from
    the pool-owning domain, not from inside one of its tasks.

    @raise Invalid_argument on an instance with no modules, a chip
    width too small for some module, or a checkpoint/config/instance
    mismatch. *)

val items_of_group :
  config -> Fp_netlist.Netlist.t -> int list -> Formulation.item list
(** The formulation items (with envelope margins applied per the config)
    for a group of module ids — exposed for tests and the ablation
    bench. *)
