(** Successive augmentation — the paper's solution method (section 3,
    Figure 3).

    The floorplan is built by repeatedly adding a small group of modules
    to the partial floorplan, each addition solved as a 0–1 MILP:

    {v
    (1) select a seed group;
    (2)-(3) solve its MILP;
    (4) while modules remain:
    (5)   select the next group (connectivity / random ordering);
    (7)   replace the partial floorplan by <= N covering rectangles;
    (8)-(9) formulate and solve the MILP for the group + covering rects;
    (12)-(13) (routing and adjustment live in Fp_route / Compact)
    v}

    The chip width is fixed and height is minimized, so the MILP count of
    integer variables stays roughly constant per step and total time
    grows roughly linearly in the number of groups — Table 1's claim. *)

type envelope_config = {
  pitch_h : float;
      (** metal width + spacing of one horizontal routing track *)
  pitch_v : float;  (** same for vertical tracks *)
  share : float;
      (** fraction of a channel charged to each of the two modules
          flanking it; 0.5 by default *)
}

type step_stat = {
  group : int list;              (** module ids added this step *)
  num_integer_vars : int;
  num_constraints : int;
  num_cover_rects : int;
  milp_status : Fp_milp.Branch_bound.status;
  nodes : int;
  lp_solves : int;
  warm_hits : int;               (** node LPs answered from the parent basis *)
  cold_solves : int;             (** node LPs solved from scratch *)
  pivots : int;                  (** total simplex pivots (primal + dual) *)
  shadow_pivots : int;
      (** cold-engine pivots on the same node sequence; [0] unless
          {!Fp_milp.Branch_bound.params}[.shadow_cold] *)
  refactorizations : int;        (** basis refactorizations across node LPs *)
  warm_height : float;           (** bottom-left incumbent height *)
  step_height : float;           (** chip height after this step *)
  step_time : float;             (** seconds, including rejected candidates *)
  candidates_evaluated : int;
      (** candidate groups whose MILPs were solved this step; the stats
          above describe only the committed one *)
}

type inspect = {
  on_model : Formulation.built -> unit;
      (** Called with every {e committed} step's formulation — lint
          hook.  Rejected candidate formulations are not observed, and
          the call happens after candidate selection (hooks always run
          on the calling domain). *)
  on_step : step_stat -> Placement.t -> unit;
      (** Called after every augmentation step with the step's stats and
          the partial placement it produced — certification hook. *)
}
(** Observation hooks injected through {!config}.  [Fp_core] cannot
    depend on [Fp_check] (the checker certifies this library's output),
    so callers that want every model linted and every partial placement
    certified inject the checks here — see the [check] subcommand and
    [--lint] flag of [bin/floorplanner.ml].  Exceptions raised by a hook
    abort the run. *)

type config = {
  chip_width : float option;
      (** [None]: use [sqrt total_reserved_area], clamped so the widest
          module fits *)
  group_size : int;          (** modules added per augmentation step *)
  ordering : [ `Linear | `Random of int | `Area_desc ];
  objective : Formulation.objective;
  allow_rotation : bool;
  linearization : Formulation.linearization;
  use_covering : bool;
      (** [false] keeps every placed module as its own obstacle — the
          ablation showing what Theorem 2 buys *)
  max_cover_rects : int option;
      (** coarsen the covering to at most this many rectangles *)
  envelope : envelope_config option;  (** around-the-cell routing mode *)
  compact_each_step : bool;
      (** run {!Compact.vertical} after every augmentation step (an
          extension beyond the paper's end-of-run adjustment; ablatable) *)
  critical_net_bound : (Fp_netlist.Net.t -> float option) option;
      (** per-net HPWL upper bounds (the paper's timing constraints on
          critical nets).  Enforced as hard constraints inside every MILP
          step that sees the net; {e best-effort across steps} — if an
          earlier group already stretched the net so far that a later
          step cannot satisfy the bound, that step falls back to its
          warm start (and logs a warning) rather than failing the run *)
  milp : Fp_milp.Branch_bound.params;
  check : bool;
      (** run {!Formulation.self_check} on every step's model (raises on
          a structurally broken formulation) *)
  inspect : inspect option;  (** observation hooks; [None] by default *)
  jobs : int;
      (** worker domains for the whole run (default [1]).  One
          {!Fp_util.Pool} is created up front and shared by every step:
          with [candidates = 1] it parallelizes each step's MILP search
          (see {!Fp_milp.Branch_bound}); with [candidates > 1] it
          evaluates candidate groups concurrently, one per domain.  The
          result is identical for every [jobs] value as long as
          [milp.deterministic] is on (the default). *)
  candidates : int;
      (** candidate next groups evaluated per step (default [1]).  The
          first [candidates] groups of the remaining ordering are each
          formulated and solved against the same partial floorplan; the
          one yielding the lowest skyline is committed (ties go to the
          earliest in the ordering) and the rest return to the queue.
          Changes the greedy search — results differ from
          [candidates = 1] by construction — but stays deterministic for
          a fixed config. *)
}

val default_config : config
(** group size 4, linear ordering, area objective, rotation on, secant
    linearization, covering on, no envelopes, MILP budget 4000 nodes /
    20 s per step, no checks, no hooks, sequential ([jobs = 1],
    [candidates = 1]). *)

type result = {
  placement : Placement.t;
  steps : step_stat list;
  total_time : float;
  config : config;
}

val run : ?config:config -> Fp_netlist.Netlist.t -> result
(** Run the full successive-augmentation floorplanner on an instance.
    Deterministic for a fixed config.  @raise Invalid_argument on an
    instance with no modules or a chip width too small for some
    module. *)

val items_of_group :
  config -> Fp_netlist.Netlist.t -> int list -> Formulation.item list
(** The formulation items (with envelope margins applied per the config)
    for a group of module ids — exposed for tests and the ablation
    bench. *)
