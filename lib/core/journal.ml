module Rect = Fp_geometry.Rect

type t = {
  config_digest : string;
  instance_digest : string;
  chip_width : float;
  steps_done : int;
  placement : Placement.t;
  remaining : int list list;
}

let digest_instance nl =
  Digest.to_hex (Digest.string (Fp_netlist.Parser.to_string nl))

(* Floats as hexadecimal literals: [%h] round-trips exactly through
   [float_of_string], which is what makes resumed runs bit-identical. *)
let fl = Printf.sprintf "%h"

let write ~path t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "fpjournal 1";
  line "config %s" t.config_digest;
  line "instance %s" t.instance_digest;
  line "chip_width %s" (fl t.chip_width);
  line "steps %d" t.steps_done;
  List.iter
    (fun (p : Placement.placed) ->
      line "placed %d %s %s %s %s %s %s %s %s %d" p.module_id
        (fl p.rect.x) (fl p.rect.y) (fl p.rect.w) (fl p.rect.h)
        (fl p.envelope.x) (fl p.envelope.y) (fl p.envelope.w)
        (fl p.envelope.h)
        (if p.rotated then 1 else 0))
    t.placement.placed;
  List.iter
    (fun group ->
      line "group %s" (String.concat " " (List.map string_of_int group)))
    t.remaining;
  line "end";
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Buffer.contents buf);
      flush oc);
  Sys.rename tmp path

let read ~path =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let float_field name s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> fail "journal: bad float in %s: %S" name s
  in
  let int_field name s =
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> fail "journal: bad integer in %s: %S" name s
  in
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | exception Sys_error msg -> Error msg
  | lines -> (
    let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
    let expect tag = function
      | [] -> fail "journal: truncated before %S" tag
      | l :: rest -> (
        match words l with
        | t :: args when t = tag -> Ok (args, rest)
        | _ -> fail "journal: expected %S, got %S" tag l)
    in
    let* hdr, lines = expect "fpjournal" lines in
    let* () =
      if hdr = [ "1" ] then Ok ()
      else fail "journal: unsupported version %s" (String.concat " " hdr)
    in
    let* cfg, lines = expect "config" lines in
    let* inst, lines = expect "instance" lines in
    let* cw, lines = expect "chip_width" lines in
    let* st, lines = expect "steps" lines in
    let* config_digest =
      match cfg with [ d ] -> Ok d | _ -> fail "journal: bad config line"
    in
    let* instance_digest =
      match inst with [ d ] -> Ok d | _ -> fail "journal: bad instance line"
    in
    let* chip_width =
      match cw with
      | [ f ] -> float_field "chip_width" f
      | _ -> fail "journal: bad chip_width line"
    in
    let* steps_done =
      match st with
      | [ n ] -> int_field "steps" n
      | _ -> fail "journal: bad steps line"
    in
    let rec body placement groups_rev = function
      | [] -> fail "journal: truncated before \"end\""
      | l :: rest -> (
        match words l with
        | [ "end" ] ->
          Ok
            { config_digest; instance_digest; chip_width; steps_done;
              placement; remaining = List.rev groups_rev }
        | "placed" :: fields -> (
          match fields with
          | [ id; rx; ry; rw; rh; ex; ey; ew; eh; rot ] ->
            let* module_id = int_field "placed" id in
            let* rx = float_field "placed" rx in
            let* ry = float_field "placed" ry in
            let* rw = float_field "placed" rw in
            let* rh = float_field "placed" rh in
            let* ex = float_field "placed" ex in
            let* ey = float_field "placed" ey in
            let* ew = float_field "placed" ew in
            let* eh = float_field "placed" eh in
            let* rotated =
              match rot with
              | "0" -> Ok false
              | "1" -> Ok true
              | _ -> fail "journal: bad rotated flag %S" rot
            in
            let p =
              { Placement.module_id;
                rect = Rect.make ~x:rx ~y:ry ~w:rw ~h:rh;
                envelope = Rect.make ~x:ex ~y:ey ~w:ew ~h:eh;
                rotated }
            in
            let* placement =
              match Placement.add placement p with
              | pl -> Ok pl
              | exception Invalid_argument msg -> fail "journal: %s" msg
            in
            body placement groups_rev rest
          | _ -> fail "journal: malformed placed line %S" l)
        | "group" :: ids ->
          let* group =
            List.fold_left
              (fun acc id ->
                let* acc = acc in
                let* id = int_field "group" id in
                Ok (id :: acc))
              (Ok []) ids
          in
          body placement (List.rev group :: groups_rev) rest
        | _ -> fail "journal: unrecognized line %S" l)
    in
    body (Placement.empty ~chip_width) [] lines)
