(** Structured degradation taxonomy for the resilient solve engine.

    Successive augmentation is an anytime algorithm: every step commits
    {e some} certified-feasible placement of its group, but not always
    the one the MILP would have proven optimal.  Each way a step can
    fall short of the clean path is a [Degradation.t], recorded in the
    step's {!Augment.step_stat} and summarized across the run in
    {!Augment.result} — so a degraded answer is visible in the result
    value, the [check] verdict, and the CLI exit code, never only in a
    log line.  See [docs/robustness.md] for the full ladder. *)

type t =
  | Budget_exhausted_warm_fallback
      (** the step's MILP ran out of nodes or time and its best point
          was (or equalled) the warm-start packing — the group is placed
          by the skyline heuristic, not by optimization *)
  | Raw_warm_packing
      (** the MILP produced no usable point at all (solver failure or
          [Infeasible] under the linearized model); the warm packing was
          committed directly *)
  | Net_bound_dropped of string list
      (** the critical-net length bound was dropped to restore
          feasibility; the listed nets exceed the configured bound in
          the committed placement *)
  | Numerical_recovery of int
      (** the step's LP relaxations needed [n] recovery paths (warm
          basis fell back to cold, or an iteration-limited LP retreated
          to its parent bound); the answer stands, the numerics were
          stressed *)
  | Retry_escalated of int
      (** the step initially failed and succeeded only after [n]
          retries with escalated node/time budgets *)
  | Deadline_truncated
      (** the run-level time budget expired before this step; the group
          was committed from its warm packing without running a MILP *)
  | Hook_failed of string
      (** an inspection hook raised; the exception text is kept and the
          run continued (hooks observe, they must not kill the run) *)
  | Candidate_failed of string
      (** a candidate-group evaluation raised and was excluded from
          selection; the surviving candidates decided the step *)
  | Worker_failure of string
      (** the worker pool failed while evaluating candidates; the step
          fell back to sequential evaluation *)
  | Task_lost of int
      (** [n] branch-and-bound frontier tasks vanished and were re-run
          inline (see {!Fp_milp.Branch_bound.outcome.tasks_lost}) *)
  | Outline_exceeded of float
      (** the committed plan overflows the requested fixed outline by
          the given amount (the larger of the per-axis overshoots); the
          plan is still overlap-free and certified, the outline
          constraint was relaxed *)
  | Engine_failed of string
      (** a portfolio engine raised or produced no plan; the exception
          text is kept and the race continued with the remaining
          engines *)

val severity : t -> int
(** Coarse rank for sorting and for deciding a run's overall verdict:
    [0] — informational, result quality unaffected
    ([Numerical_recovery], [Task_lost], [Hook_failed],
    [Candidate_failed], [Worker_failure], [Retry_escalated],
    [Engine_failed]);
    [1] — quality degraded but constraints hold
    ([Budget_exhausted_warm_fallback], [Deadline_truncated]);
    [2] — a stated constraint was relaxed ([Net_bound_dropped],
    [Raw_warm_packing], [Outline_exceeded]). *)

val degrades_quality : t -> bool
(** [severity t >= 1] — the degradations that make a run
    "degraded-feasible" (CLI exit code 3) rather than clean. *)

val to_string : t -> string
(** Stable, machine-greppable rendering, e.g.
    ["budget_exhausted_warm_fallback"], ["net_bound_dropped(n3,n7)"],
    ["retry_escalated(2)"]. *)

val pp : Format.formatter -> t -> unit

(** {2 Process exit contract}

    The CLI, the bench driver and the examples all map run outcomes to
    process exit codes through these constants — the SA008 lint rejects
    raw [exit <int>] literals anywhere else — so the mapping below is
    definitional:

    - {!exit_clean} ([0]) — finished, no quality-degrading events;
    - {!exit_error} ([1]) — hard failure (bad input, solver error,
      failed certification);
    - {!exit_degraded} ([3]) — feasible but quality-degraded (warm
      fallbacks, dropped net bounds, deadline truncation).

    Exit code [2] is left to the runtimes/tools convention (usage
    errors; also what [bin/fp_lint] uses for baseline problems). *)

val exit_clean : int
val exit_error : int
val exit_degraded : int

val exit_code : t list -> int
(** [exit_code ds] is {!exit_degraded} when any degradation in [ds]
    {!degrades_quality}, else {!exit_clean}. *)
