module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Model = Fp_milp.Model
module Expr = Fp_milp.Expr
module Branch_bound = Fp_milp.Branch_bound
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist

type linearization = Tangent | Secant

type objective = Min_height | Min_height_plus_wire of float

type mode = Basic | Tight | Cuts

let mode_to_string = function
  | Basic -> "basic"
  | Tight -> "tight"
  | Cuts -> "cuts"

let mode_of_string = function
  | "basic" -> Some Basic
  | "tight" -> Some Tight
  | "cuts" -> Some Cuts
  | _ -> None

type item = {
  def : Module_def.t;
  margins : float * float * float * float;
}

let plain_item def = { def; margins = (0., 0., 0., 0.) }

type rel = Rel_left | Rel_right | Rel_below | Rel_above

type sep =
  | Fixed_rel of rel
  | Choice2 of { bin : Model.var; if0 : rel; if1 : rel }
  | Choice4 of { bx : Model.var; by : Model.var }

type other = Other_item of int | Other_fixed of int

type flex_info = {
  dw_var : Model.var;
  dw_ub : float;
  w_max_env : float;
  h_base_env : float;
  slope : float;
}

type net_info = {
  net : Net.t;
  lx : Model.var;
  rx : Model.var;
  ly : Model.var;
  ry : Model.var;
  pin_exprs : (Expr.t * Expr.t) list;
}

type sep_row = {
  sr_row : int;        (* row index in the underlying problem *)
  sr_lhs : Expr.t;     (* extent of the pushed object *)
  sr_rhs : Expr.t;     (* position of the blocking object *)
  sr_slack : Expr.t;   (* 0 when the relation is selected, >= 1 otherwise *)
  sr_cap : float;      (* direction cap: chip width or height bound *)
  mutable sr_m : float; (* current big-M coefficient (monotone nonincreasing) *)
}

type built = {
  model : Model.t;
  chip_width : float;
  height_bound : float;
  items : item array;
  x : Model.var array;
  y : Model.var array;
  rot : Model.var option array;
  flex : flex_info option array;
  w_expr : Expr.t array;
  h_expr : Expr.t array;
  height : Model.var;
  seps : (int * other * sep) list;
  net_infos : net_info list;
  fixed : Rect.t list;
  linearization : linearization;
  formulation : mode;
  sep_rows : sep_row list;
  cut_candidates : Branch_bound.cut list;
}

(* ------------------------------------------------------------------ *)
(* Item geometry helpers                                                *)
(* ------------------------------------------------------------------ *)

(* Flexible-width window [w_min, w_max] derived from the aspect bounds:
   w = sqrt (S * aspect) since h = S / w and aspect = w / h. *)
let flex_width_window area ~min_aspect ~max_aspect =
  (Float.sqrt (area *. min_aspect), Float.sqrt (area *. max_aspect))

let env_dims it =
  let l, r, b, t = it.margins in
  match it.def.Module_def.shape with
  | Module_def.Rigid { w; h } -> `Rigid (w +. l +. r, h +. b +. t)
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min, w_max = flex_width_window area ~min_aspect ~max_aspect in
    `Flexible (w_min +. l +. r, w_max +. l +. r, area /. w_max +. b +. t)

let item_min_width ?(allow_rotation = true) it =
  match env_dims it with
  | `Rigid (w, h) -> if allow_rotation then Float.min w h else w
  | `Flexible (w_min_env, _, _) -> w_min_env

let item_min_height ?(allow_rotation = true) it =
  match env_dims it with
  | `Rigid (w, h) -> if allow_rotation then Float.min w h else h
  | `Flexible (_, _, h_base_env) -> h_base_env

(* Smallest area the reserved envelope can take; used for the area cut
   W * y >= sum of occupied areas.  For flexible items the reserved area
   w_env(dw) * h_env(dw) is concave in dw, so the minimum over the window
   is attained at an endpoint. *)
let item_min_reserved_area ~linearization it =
  let l, r, b, t = it.margins in
  match it.def.Module_def.shape with
  | Module_def.Rigid { w; h } -> (w +. l +. r) *. (h +. b +. t)
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min, w_max = flex_width_window area ~min_aspect ~max_aspect in
    let h_base = area /. w_max in
    let slope =
      match linearization with
      | Tangent -> area /. (w_max *. w_max)
      | Secant ->
        if Tol.leq w_max w_min then 0.
        else area /. (w_min *. w_max)
    in
    let reserved dw =
      (w_max +. l +. r -. dw) *. (h_base +. b +. t +. (slope *. dw))
    in
    Float.min (reserved 0.) (reserved (w_max -. w_min))

(* ------------------------------------------------------------------ *)
(* Relations                                                            *)
(* ------------------------------------------------------------------ *)

let all_rels = [ Rel_left; Rel_right; Rel_below; Rel_above ]

let rels_satisfied a b =
  List.filter
    (fun r ->
      match r with
      | Rel_left -> Tol.leq (Rect.x_max a) b.Rect.x
      | Rel_right -> Tol.leq (Rect.x_max b) a.Rect.x
      | Rel_below -> Tol.leq (Rect.y_max a) b.Rect.y
      | Rel_above -> Tol.leq (Rect.y_max b) a.Rect.y)
    all_rels

let rel_of_geometry a b =
  match rels_satisfied a b with [] -> None | r :: _ -> Some r

(* The 0-1 combination that selects each relation in the paper's eq. (2):
   (x_ij, y_ij) = (0,0) left, (1,0) right, (0,1) below, (1,1) above. *)
let combo_of_rel = function
  | Rel_left -> (0, 0)
  | Rel_right -> (1, 0)
  | Rel_below -> (0, 1)
  | Rel_above -> (1, 1)

(* ------------------------------------------------------------------ *)
(* Model assembly                                                       *)
(* ------------------------------------------------------------------ *)

type obj_geom = {
  ox : Expr.t;  (* lower-left x *)
  oy : Expr.t;
  ow : Expr.t;  (* envelope width *)
  oh : Expr.t;
}

(* Interval of an affine expression under the problem's current variable
   bounds — the basis for per-pair big-M coefficients. *)
let expr_interval prob e =
  List.fold_left
    (fun (lo, hi) ((c, v) : Fp_lp.Lp_problem.term) ->
      let l = Fp_lp.Lp_problem.var_lb prob v
      and u = Fp_lp.Lp_problem.var_ub prob v in
      if Tol.lt c 0. then (lo +. (c *. u), hi +. (c *. l))
      else (lo +. (c *. l), hi +. (c *. u)))
    (Expr.constant e, Expr.constant e)
    (Expr.terms e)

(* Emit the active form of one separation constraint with an additional
   big-M slack expression (Expr.zero for an always-active constraint).
   Without [record] (the basic formulation) the coefficient is the
   direction cap itself — chip width or height bound, the paper's W.
   With [record] (tight / cuts) it is the per-pair, per-direction value

     M = max 0 (min cap (min (ub lhs) cap - lb rhs))

   from the current variable bounds; [ub lhs] is additionally capped by
   [cap] because the chip rows bound every extent by the strip, which
   makes M exact against fixed obstacles (M = W - r.x for "left of a
   rectangle at x = r.x").  Any feasible point has lhs <= cap and
   rhs >= lb rhs, so lhs - rhs <= M and the inactive row (slack >= 1)
   cuts nothing — validity is preserved per pair.  The emitted row is
   recorded for later monotone re-tightening ({!retighten}); when M
   collapses to 0 the relation is unconditional, the slack term
   vanishes, and the row may fold into a bound (nothing recorded). *)
let emit_rel model ~bigw ~bigh ?record gi gj rel slack =
  let open Expr in
  let emit lhs rhs cap =
    match record with
    | Some record when terms slack <> [] ->
      let prob = Model.problem model in
      let _, ub_l = expr_interval prob lhs in
      let lb_r, _ = expr_interval prob rhs in
      let m = Float.max 0. (Float.min cap (Float.min ub_l cap -. lb_r)) in
      let row = Model.num_constrs model in
      Model.add_constr_or_bound model lhs Model.Le (rhs + (m * slack));
      if Model.num_constrs model > row then
        record
          { sr_row = row; sr_lhs = lhs; sr_rhs = rhs; sr_slack = slack;
            sr_cap = cap; sr_m = m }
    | _ -> Model.add_constr_or_bound model lhs Model.Le (rhs + (cap * slack))
  in
  match rel with
  | Rel_left ->
    (* x_i + w_i <= x_j + slack * W *)
    emit (gi.ox + gi.ow) gj.ox bigw
  | Rel_right -> emit (gj.ox + gj.ow) gi.ox bigw
  | Rel_below -> emit (gi.oy + gi.oh) gj.oy bigh
  | Rel_above -> emit (gj.oy + gj.oh) gi.oy bigh

(* Non-overlap of objects i and j restricted to the geometrically
   possible relations.  Returns the separation encoding used. *)
let add_separation model ~bigw ~bigh ?record ~tag gi gj allowed =
  let open Expr in
  match allowed with
  | [] ->
    invalid_arg
      (Printf.sprintf "Formulation: no feasible relation for pair %s" tag)
  | [ r ] ->
    emit_rel model ~bigw ~bigh ?record gi gj r Expr.zero;
    Fixed_rel r
  | [ r0; r1 ] ->
    let bin = Model.add_binary model (Printf.sprintf "s_%s" tag) in
    emit_rel model ~bigw ~bigh ?record gi gj r0 (var bin);
    emit_rel model ~bigw ~bigh ?record gi gj r1 (const 1. - var bin);
    Choice2 { bin; if0 = r0; if1 = r1 }
  | _ ->
    let bx = Model.add_binary model (Printf.sprintf "px_%s" tag) in
    let by = Model.add_binary model (Printf.sprintf "py_%s" tag) in
    Model.declare_pair model bx by;
    (* Slack multipliers from the paper's eq. (2). *)
    emit_rel model ~bigw ~bigh ?record gi gj Rel_left (var bx + var by);
    emit_rel model ~bigw ~bigh ?record gi gj Rel_right (const 1. - var bx + var by);
    emit_rel model ~bigw ~bigh ?record gi gj Rel_below (const 1. + var bx - var by);
    emit_rel model ~bigw ~bigh ?record gi gj Rel_above (const 2. - var bx - var by);
    (* Cut off geometrically impossible combinations. *)
    List.iter
      (fun r ->
        if not (List.mem r allowed) then
          match combo_of_rel r with
          | 0, 0 -> Model.add_constr_or_bound model (var bx + var by) Model.Ge (const 1.)
          | 1, 0 -> Model.add_constr_or_bound model (var bx - var by) Model.Le (const 0.)
          | 0, 1 -> Model.add_constr_or_bound model (var by - var bx) Model.Le (const 0.)
          | _ -> Model.add_constr_or_bound model (var bx + var by) Model.Le (const 1.))
      all_rels;
    Choice4 { bx; by }

let pin_expr gx gy gw gh side =
  let open Expr in
  match side with
  | Net.Left -> (gx, gy + (0.5 * gh))
  | Net.Right -> (gx + gw, gy + (0.5 * gh))
  | Net.Bottom -> (gx + (0.5 * gw), gy)
  | Net.Top -> (gx + (0.5 * gw), gy + gh)

(* Structural self-audit of a freshly built formulation.  The builder is
   supposed to emit a separation for every pair of objects and to declare
   every Choice4 binary pair for 4-way branching; a refactor that drops
   one produces a model that solves happily and overlaps modules.  Pure
   fp_core (raises instead of returning diagnostics) so [build] can run
   it without depending on [Fp_check]; the library-level lint reports the
   same conditions as FL001-FL003 findings. *)
let self_check (b : built) =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = Array.length b.items in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (i, other, sep) ->
      (match other with
      | Other_item j ->
        Hashtbl.replace covered (`Item (Int.min i j, Int.max i j)) ()
      | Other_fixed fi -> Hashtbl.replace covered (`Fixed (i, fi)) ());
      match sep with
      | Choice4 { bx; by } ->
        let declared =
          List.exists
            (fun (a, c) -> (a = bx && c = by) || (a = by && c = bx))
            (Model.pairs b.model)
        in
        if not declared then
          fail "Formulation.self_check: Choice4 binaries of item %d not \
                declared as a branching pair" i
      | Fixed_rel _ | Choice2 _ -> ())
    b.seps;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Hashtbl.mem covered (`Item (i, j))) then
        fail "Formulation.self_check: no separation between items %d and %d"
          i j
    done
  done;
  List.iteri
    (fun fi r ->
      for i = 0 to n - 1 do
        if not (Hashtbl.mem covered (`Fixed (i, fi))) then
          fail
            "Formulation.self_check: no separation between item %d and \
             fixed rectangle %d"
            i fi
      done;
      if
        Tol.lt r.Rect.x 0.
        || Tol.lt b.chip_width (Rect.x_max r)
        || Tol.lt r.Rect.y 0.
        || Tol.lt b.height_bound (Rect.y_max r)
      then
        fail "Formulation.self_check: fixed rectangle %d (%s) outside the \
              chip strip"
          fi (Rect.to_string r))
    b.fixed

(* ------------------------------------------------------------------ *)
(* Formulation strengthening (tight / cuts modes)                       *)
(* ------------------------------------------------------------------ *)

(* Recompute every recorded big-M from the current variable bounds,
   monotonically shrinking it (never growing), and rewrite the row in
   place.  Returns the number of rows whose coefficient strictly
   decreased.  Sound whenever bounds have only tightened since the row
   was emitted — e.g. after later single-variable rows were folded into
   bounds by {!Model.add_constr_or_bound} / [Lp_problem.tighten_bounds].
   [build] runs it once at the end for the non-basic modes; the
   successive-augmentation driver gets the "after each commit" refresh
   for free because every augmentation step builds afresh against the
   committed placement. *)
let retighten b =
  let prob = Model.problem b.model in
  let changed = ref 0 in
  List.iter
    (fun sr ->
      let _, ub_l = expr_interval prob sr.sr_lhs in
      let lb_r, _ = expr_interval prob sr.sr_rhs in
      let m =
        Float.max 0. (Float.min sr.sr_m (Float.min ub_l sr.sr_cap -. lb_r))
      in
      if Tol.lt m sr.sr_m then begin
        let row = Expr.(sr.sr_lhs - sr.sr_rhs - (m * sr.sr_slack)) in
        Fp_lp.Lp_problem.update_constr prob sr.sr_row (Expr.terms row)
          Fp_lp.Lp_problem.Le (-.Expr.constant row);
        sr.sr_m <- m;
        incr changed
      end)
    b.sep_rows;
  !changed

(* Affine indicator of "relation [rel] is the selected disjunct": equals
   1 at every integer point selecting [rel] and is <= 0 at every other
   integer point.  The complement of the big-M slack multiplier. *)
let indicator sep rel =
  match sep with
  | Fixed_rel _ -> None
  | Choice2 { bin; if0; if1 } ->
    if rel = if0 then Some Expr.(const 1. - var bin)
    else if rel = if1 then Some (Expr.var bin)
    else None
  | Choice4 { bx; by } ->
    Some
      (match rel with
      | Rel_left -> Expr.(const 1. - var bx - var by)
      | Rel_right -> Expr.(var bx - var by)
      | Rel_below -> Expr.(var by - var bx)
      | Rel_above -> Expr.(var bx + var by - const 1.))

(* Affine 0-1 indicator of "this pair is separated vertically" (below or
   above), used by the clique inequalities. *)
let vertical_indicator sep =
  let vert = function Rel_below | Rel_above -> true | Rel_left | Rel_right -> false in
  match sep with
  | Fixed_rel r -> Expr.const (if vert r then 1. else 0.)
  | Choice2 { bin; if0; if1 } -> (
    match (vert if0, vert if1) with
    | true, true -> Expr.const 1.
    | false, false -> Expr.const 0.
    | true, false -> Expr.(const 1. - var bin)
    | false, true -> Expr.var bin)
  | Choice4 { by; _ } -> Expr.var by

let rel_tag = function
  | Rel_left -> "l"
  | Rel_right -> "r"
  | Rel_below -> "b"
  | Rel_above -> "a"

(* The Huchette-Dey-Vielma-style strengthening family, as named
   inequalities [expr <= 0] valid for every integer-feasible point:

   - lower-push: the blocking object's position is at least the pushed
     object's minimum extent whenever the relation is selected,
     [c * ind <= pos] with [c] the interval lower bound of the extent;
   - upper-push: the pushed object's extent clears the blocker's minimum
     size inside the strip, [extent + d * ind <= W] (horizontal) or
     [extent + d * ind <= height] (vertical, against the height
     variable — this is what propagates into the objective bound);
   - cliques: for item triples whose minimum widths cannot share the
     strip width, at least one of the three pairs must separate
     vertically ([1 - V_ij - V_ik - V_jk <= 0]); dually at most two may
     when the minimum heights cannot share the height bound.

   Inequalities vacuous under the current bounds are dropped, as are the
   fixed-partner variants that the per-pair big-M already encodes
   exactly (see {!emit_rel}).  Emission order is deterministic —
   separation in [Cuts] mode must replay bit-identically across
   domains. *)
let strengthening_inequalities b ~allow_rotation =
  let prob = Model.problem b.model in
  let lb e = fst (expr_interval prob e) and ub e = snd (expr_interval prob e) in
  let geom k =
    { ox = Expr.var b.x.(k); oy = Expr.var b.y.(k);
      ow = b.w_expr.(k); oh = b.h_expr.(k) }
  in
  let fixed_arr = Array.of_list b.fixed in
  let out = ref [] in
  let emit name e =
    (* Skip constant and interval-vacuous inequalities. *)
    if Expr.terms e <> [] && Tol.gt (ub e) 0. then out := (name, e) :: !out
  in
  List.iter
    (fun (i, other, s) ->
      let gi = geom i in
      let gj, tag, item_pair =
        match other with
        | Other_item j -> (geom j, Printf.sprintf "i%d_i%d" i j, true)
        | Other_fixed fi ->
          ( { ox = Expr.const fixed_arr.(fi).Rect.x;
              oy = Expr.const fixed_arr.(fi).Rect.y;
              ow = Expr.const fixed_arr.(fi).Rect.w;
              oh = Expr.const fixed_arr.(fi).Rect.h },
            Printf.sprintf "i%d_f%d" i fi, false )
      in
      List.iter
        (fun rel ->
          match indicator s rel with
          | None -> ()
          | Some ind ->
            let open Expr in
            if item_pair then begin
              let target, c =
                match rel with
                | Rel_left -> (gj.ox, lb (gi.ox + gi.ow))
                | Rel_right -> (gi.ox, lb (gj.ox + gj.ow))
                | Rel_below -> (gj.oy, lb (gi.oy + gi.oh))
                | Rel_above -> (gi.oy, lb (gj.oy + gj.oh))
              in
              if Tol.gt c 0. then
                emit
                  (Printf.sprintf "vi_lo_%s_%s" tag (rel_tag rel))
                  ((c * ind) - target)
            end;
            let upper =
              match rel with
              | Rel_left when item_pair ->
                let d = Float.max (lb gj.ow) (b.chip_width -. ub gj.ox) in
                Some (gi.ox + gi.ow, d, const b.chip_width)
              | Rel_right when item_pair ->
                let d = Float.max (lb gi.ow) (b.chip_width -. ub gi.ox) in
                Some (gj.ox + gj.ow, d, const b.chip_width)
              | Rel_below -> Some (gi.oy + gi.oh, lb gj.oh, var b.height)
              | Rel_above -> Some (gj.oy + gj.oh, lb gi.oh, var b.height)
              | Rel_left | Rel_right -> None
            in
            (match upper with
            | Some (extent, d, cap) when Tol.gt d 0. ->
              emit
                (Printf.sprintf "vi_hi_%s_%s" tag (rel_tag rel))
                (extent + (d * ind) - cap)
            | _ -> ()))
        all_rels)
    b.seps;
  (* Pairwise stacking and clique inequalities over the vertical
     indicators. *)
  let pair_sep = Hashtbl.create 16 in
  List.iter
    (fun (i, other, s) ->
      match other with
      | Other_item j -> Hashtbl.replace pair_sep (Int.min i j, Int.max i j) s
      | Other_fixed _ -> ())
    b.seps;
  let n = Array.length b.items in
  let wmin = Array.map (item_min_width ~allow_rotation) b.items in
  let hmin = Array.map (item_min_height ~allow_rotation) b.items in
  (* Stacking: a vertically separated pair occupies at least the sum of
     its minimum heights, [height >= maxh + (hmin_i + hmin_j - maxh) V].
     Valid at V = 0 because each item alone forces [height >= hmin]
     through its chip row, at V = 1 because the pair is stacked, and in
     between because the bound is affine in V.  This is the family that
     lifts the LP objective bound directly — the big-M disjunctions
     alone let fractional indicators collapse every stack. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match Hashtbl.find_opt pair_sep (i, j) with
      | None -> ()
      | Some s ->
        let maxh = Float.max hmin.(i) hmin.(j) in
        let lift = hmin.(i) +. hmin.(j) -. maxh in
        if Tol.gt lift 0. then
          emit
            (Printf.sprintf "vi_stk_i%d_i%d" i j)
            Expr.(
              const maxh + (lift * vertical_indicator s) - var b.height)
    done
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        match
          ( Hashtbl.find_opt pair_sep (i, j),
            Hashtbl.find_opt pair_sep (i, k),
            Hashtbl.find_opt pair_sep (j, k) )
        with
        | Some sij, Some sik, Some sjk ->
          let vsum =
            Expr.(
              vertical_indicator sij + vertical_indicator sik
              + vertical_indicator sjk)
          in
          if Tol.gt (wmin.(i) +. wmin.(j) +. wmin.(k)) b.chip_width then
            emit
              (Printf.sprintf "vi_clqw_i%d_i%d_i%d" i j k)
              Expr.(const 1. - vsum);
          if Tol.gt (hmin.(i) +. hmin.(j) +. hmin.(k)) b.height_bound then
            emit
              (Printf.sprintf "vi_clqh_i%d_i%d_i%d" i j k)
              Expr.(vsum - const 2.)
        | _ -> ()
      done
    done
  done;
  List.rev !out

(* How far a candidate must be violated before it is worth a row.  Kept
   above the simplex primal-feasibility tolerance so a cut already
   present in the LP (satisfied to 1e-7 by the relaxation point) is
   never re-separated. *)
let cut_violation_tol = 1e-6

(* Deterministic separation callback over the precompiled candidate
   pool: violated candidates, most violated first, ties broken by
   compilation order.  [None] unless the formulation is [Cuts] with a
   nonempty pool — the basic and tight modes run plain branch and
   bound. *)
let separator b =
  match (b.formulation, b.cut_candidates) with
  | (Basic | Tight), _ | _, [] -> None
  | Cuts, cands ->
    let cands = Array.of_list cands in
    Some
      (fun xpt ->
        let violated = ref [] in
        Array.iteri
          (fun idx (c : Branch_bound.cut) ->
            let lhs =
              List.fold_left
                (fun acc (co, v) -> acc +. (co *. xpt.(v)))
                0. c.Branch_bound.cut_terms
            in
            let v = lhs -. c.Branch_bound.cut_rhs in
            if Tol.gt ~tol:cut_violation_tol v 0. then
              violated := (v, idx) :: !violated)
          cands;
        !violated
        |> List.sort (fun (v1, i1) (v2, i2) ->
               match Float.compare v2 v1 with
               | 0 -> Int.compare i1 i2
               | c -> c)
        |> List.map (fun (_, idx) -> cands.(idx)))

let build ~chip_width ~height_bound ?(objective = Min_height)
    ?(allow_rotation = true) ?(linearization = Secant) ?(fixed = [])
    ?(formulation = Basic) ?wire_context
    ?(net_length_bound = fun _ -> None) ?(check = false) item_list =
  let items = Array.of_list item_list in
  let n = Array.length items in
  let model = Model.create ~name:"floorplan_step" () in
  (* Feasibility of each item inside the strip. *)
  Array.iteri
    (fun k it ->
      if Tol.gt (item_min_width ~allow_rotation it) chip_width then
        invalid_arg
          (Printf.sprintf
             "Formulation.build: item %d (%s) wider than the chip (%g > %g)" k
             it.def.Module_def.name
             (item_min_width ~allow_rotation it)
             chip_width);
      if Tol.gt (item_min_height ~allow_rotation it) height_bound then
        invalid_arg
          (Printf.sprintf
             "Formulation.build: item %d (%s) taller than the height bound" k
             it.def.Module_def.name))
    items;
  let x = Array.make n 0 and y = Array.make n 0 in
  let rot = Array.make n None and flex = Array.make n None in
  let w_expr = Array.make n Expr.zero and h_expr = Array.make n Expr.zero in
  (* Per-item variables and dimension expressions. *)
  Array.iteri
    (fun k it ->
      let name = it.def.Module_def.name in
      x.(k) <-
        Model.add_continuous model ~ub:chip_width (Printf.sprintf "x_%s" name);
      y.(k) <-
        Model.add_continuous model ~ub:height_bound (Printf.sprintf "y_%s" name);
      match env_dims it with
      | `Rigid (we, he) ->
        if allow_rotation && not (Tol.equal we he) then begin
          let z = Model.add_binary model (Printf.sprintf "z_%s" name) in
          rot.(k) <- Some z;
          (* eq. (4): w_i = (1 - z_i) w + z_i h. *)
          w_expr.(k) <- Expr.(const we + ((he -. we) * var z));
          h_expr.(k) <- Expr.(const he + ((we -. he) * var z))
        end
        else begin
          w_expr.(k) <- Expr.const we;
          h_expr.(k) <- Expr.const he
        end
      | `Flexible (w_min_env, w_max_env, h_base_env) -> (
        match it.def.Module_def.shape with
        | Module_def.Rigid _ -> assert false
        | Module_def.Flexible { area; min_aspect; max_aspect } ->
          let w_min, w_max =
            flex_width_window area ~min_aspect ~max_aspect
          in
          let dw_ub = Float.max 0. (w_max -. w_min) in
          let slope =
            match linearization with
            | Tangent -> area /. (w_max *. w_max)
            | Secant ->
              if dw_ub <= Tol.eps then 0. else area /. (w_min *. w_max)
          in
          let dw =
            Model.add_continuous model ~ub:dw_ub (Printf.sprintf "dw_%s" name)
          in
          flex.(k) <- Some { dw_var = dw; dw_ub; w_max_env; h_base_env; slope };
          ignore w_min_env;
          (* eq. (6)/(7): w = w_max - dw, h = h(w_max) + Λ dw. *)
          w_expr.(k) <- Expr.(const w_max_env - var dw);
          h_expr.(k) <- Expr.(const h_base_env + (slope * var dw))))
    items;
  let height =
    Model.add_continuous model ~ub:height_bound "chip_height"
  in
  let geom k = { ox = Expr.var x.(k); oy = Expr.var y.(k);
                 ow = w_expr.(k); oh = h_expr.(k) } in
  let fixed_arr = Array.of_list fixed in
  let fixed_geom (r : Rect.t) =
    { ox = Expr.const r.Rect.x; oy = Expr.const r.Rect.y;
      ow = Expr.const r.Rect.w; oh = Expr.const r.Rect.h }
  in
  (* Chip bounds and height definition (eq. (3)/(5)). *)
  Array.iteri
    (fun k _ ->
      Model.add_constr_or_bound model
        Expr.(var x.(k) + w_expr.(k))
        Model.Le (Expr.const chip_width);
      Model.add_constr_or_bound model
        Expr.(var y.(k) + h_expr.(k))
        Model.Le (Expr.var height))
    items;
  (* Separations: item-item pairs. *)
  let seps = ref [] in
  let sep_rows = ref [] in
  let record =
    match formulation with
    | Basic -> None
    | Tight | Cuts -> Some (fun sr -> sep_rows := sr :: !sep_rows)
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let wi = item_min_width ~allow_rotation items.(i)
      and wj = item_min_width ~allow_rotation items.(j)
      and hi = item_min_height ~allow_rotation items.(i)
      and hj = item_min_height ~allow_rotation items.(j) in
      let allowed =
        List.filter
          (fun r ->
            match r with
            | Rel_left | Rel_right -> Tol.leq (wi +. wj) chip_width
            | Rel_below | Rel_above -> Tol.leq (hi +. hj) height_bound)
          all_rels
      in
      let tag = Printf.sprintf "i%d_i%d" i j in
      let s =
        add_separation model ~bigw:chip_width ~bigh:height_bound ?record ~tag
          (geom i) (geom j) allowed
      in
      seps := (i, Other_item j, s) :: !seps
    done
  done;
  (* Separations: item vs fixed covering rectangle. *)
  Array.iteri
    (fun fi (r : Rect.t) ->
      for i = 0 to n - 1 do
        let wi = item_min_width ~allow_rotation items.(i)
        and hi = item_min_height ~allow_rotation items.(i) in
        let allowed =
          List.filter
            (fun rel ->
              match rel with
              | Rel_left -> Tol.leq wi r.Rect.x
              | Rel_right -> Tol.leq (Rect.x_max r +. wi) chip_width
              | Rel_below -> Tol.leq hi r.Rect.y
              | Rel_above -> Tol.leq (Rect.y_max r +. hi) height_bound)
            all_rels
        in
        let tag = Printf.sprintf "i%d_f%d" i fi in
        let s =
          add_separation model ~bigw:chip_width ~bigh:height_bound ?record ~tag
            (geom i) (fixed_geom r) allowed
        in
        seps := (i, Other_fixed fi, s) :: !seps
      done)
    fixed_arr;
  (* Lower bounds on the chip height: every fixed rectangle's top, and the
     area bound W * y >= occupied area. *)
  let fixed_top =
    Array.fold_left (fun a r -> Float.max a (Rect.y_max r)) 0. fixed_arr
  in
  let occupied =
    Array.fold_left (fun a r -> a +. Rect.area r) 0. fixed_arr
    +. Array.fold_left
         (fun a it -> a +. item_min_reserved_area ~linearization it)
         0. items
  in
  let height_lb =
    Float.max fixed_top (occupied /. chip_width) |> Float.min height_bound
  in
  Fp_lp.Lp_problem.set_bounds (Model.problem model) height ~lb:height_lb
    ~ub:height_bound;
  (* Wirelength bounding boxes. *)
  let net_infos = ref [] in
  let lambda =
    match objective with Min_height -> 0. | Min_height_plus_wire l -> l
  in
  (match (objective, wire_context) with
  | Min_height_plus_wire _, None ->
    invalid_arg "Formulation.build: wire objective requires ~wire_context"
  | Min_height, _ | Min_height_plus_wire _, Some _ -> ());
  (match wire_context with
  | None -> ()
  | Some (nl, partial, ids) ->
    if Array.length ids <> n then
      invalid_arg "Formulation.build: wire_context ids length mismatch";
    let item_of_module = Hashtbl.create n in
    Array.iteri (fun k id -> Hashtbl.replace item_of_module id k) ids;
    List.iteri
      (fun ni net ->
        let pins =
          List.filter_map
            (fun p ->
              let id = p.Net.module_id in
              match Hashtbl.find_opt item_of_module id with
              | Some k ->
                let gw = w_expr.(k) and gh = h_expr.(k) in
                Some
                  (`Item, pin_expr (Expr.var x.(k)) (Expr.var y.(k)) gw gh
                            p.Net.side)
              | None -> (
                match Placement.find partial id with
                | Some _ ->
                  let pt =
                    Placement.pin_position partial ~module_id:id p.Net.side
                  in
                  Some
                    (`Fixed,
                     (Expr.const pt.Fp_geometry.Point.x,
                      Expr.const pt.Fp_geometry.Point.y))
                | None -> None))
            net.Net.pins
        in
        let has_item = List.exists (fun (k, _) -> k = `Item) pins in
        if has_item && List.length pins >= 2 then begin
          let mk nm =
            Model.add_continuous model ~ub:(Float.max chip_width height_bound)
              (Printf.sprintf "%s_n%d" nm ni)
          in
          let lx = mk "lx" and rx = mk "rx" and ly = mk "ly" and ry = mk "ry" in
          let pin_exprs = List.map snd pins in
          List.iter
            (fun (px, py) ->
              Model.add_constr_or_bound model (Expr.var lx) Model.Le px;
              Model.add_constr_or_bound model px Model.Le (Expr.var rx);
              Model.add_constr_or_bound model (Expr.var ly) Model.Le py;
              Model.add_constr_or_bound model py Model.Le (Expr.var ry))
            pin_exprs;
          (* Critical-net length constraint (paper section 2.2). *)
          (match net_length_bound net with
          | Some bound ->
            Model.add_constr_or_bound model
              Expr.(var rx - var lx + var ry - var ly)
              Model.Le (Expr.const bound)
          | None -> ());
          net_infos := { net; lx; rx; ly; ry; pin_exprs } :: !net_infos
        end)
      (Netlist.nets nl));
  let net_infos = List.rev !net_infos in
  (* Objective: minimize height (area proxy for fixed W), plus the
     wirelength term when requested. *)
  let wire_term =
    Expr.sum
      (List.map
         (fun ni ->
           Expr.(
             var ni.rx - var ni.lx + var ni.ry - var ni.ly))
         net_infos)
  in
  Model.set_objective model `Minimize
    Expr.(var height + (lambda * wire_term));
  let b0 =
    {
      model; chip_width; height_bound; items; x; y; rot; flex; w_expr; h_expr;
      height; seps = List.rev !seps; net_infos; fixed; linearization;
      formulation; sep_rows = List.rev !sep_rows; cut_candidates = [];
    }
  in
  let b =
    match formulation with
    | Basic -> b0
    | Tight | Cuts -> (
      (* Root presolve: one interval-propagation pass over the finished
         rows shrinks variable boxes (every integer-feasible point
         survives; integer snapping may cut LP-only points, which only
         strengthens the relaxation), and the per-pair big-M refresh
         below then reads those smaller boxes.  Bounds may also have
         tightened since the separation rows were emitted (later
         single-variable rows fold into bounds); either way every
         per-pair M is recomputed against the final bounds before the
         strengthening family is derived from those same bounds. *)
      let prob = Model.problem model in
      let ints = Array.make (Fp_lp.Lp_problem.num_vars prob) false in
      List.iter (fun v -> ints.(v) <- true) (Model.integer_vars model);
      (match
         Fp_lp.Lp_problem.propagate_bounds
           ~integral:(fun v -> v < Array.length ints && ints.(v))
           prob
       with
      | `Ok _ -> ()
      | `Infeasible undo ->
        (* Propagation proved the step infeasible; restore so the MILP
           reports it through its normal (certified) path. *)
        List.iter
          (fun (v, lb, ub) -> Fp_lp.Lp_problem.set_bounds prob v ~lb ~ub)
          undo);
      ignore (retighten b0 : int);
      let ineqs = strengthening_inequalities b0 ~allow_rotation in
      match formulation with
      | Basic -> assert false
      | Tight ->
        (* Static strengthening: the family joins the base LP. *)
        List.iter
          (fun (name, e) ->
            Model.add_constr_or_bound model ~name e Model.Le Expr.zero)
          ineqs;
        b0
      | Cuts ->
        (* Split the family: the per-direction lower/upper pushes shape
           the LP vertex the search branches on, and their effect shows
           up even when the relaxation sits at an integral-but-unfixed
           point the separator cannot see past — so they join the base
           LP up front.  The stacking / clique rows, by contrast, are
           cheap to check against a point and mostly vacuous once the
           area bound dominates, which is exactly the profile that suits
           lazy separation: they become the cut pool for the
           branch-and-bound loop (and, vacuous or not, still join node
           bound propagation from there). *)
        let is_bound_lifting (name, _) =
          String.length name >= 6 && String.sub name 0 6 = "vi_stk"
          || String.length name >= 7 && String.sub name 0 7 = "vi_clqw"
          || String.length name >= 7 && String.sub name 0 7 = "vi_clqh"
        in
        let lazy_rows, static_rows = List.partition is_bound_lifting ineqs in
        List.iter
          (fun (name, e) ->
            Model.add_constr_or_bound model ~name e Model.Le Expr.zero)
          static_rows;
        { b0 with
          cut_candidates =
            List.map
              (fun (name, e) ->
                { Branch_bound.cut_name = name;
                  cut_terms = Expr.terms e;
                  cut_rhs = -.Expr.constant e })
              lazy_rows;
        })
  in
  if check then self_check b;
  b

(* ------------------------------------------------------------------ *)
(* Warm start                                                           *)
(* ------------------------------------------------------------------ *)

let assign_warm b env_of ~rotated =
  let nvars = Model.num_vars b.model in
  let sol = Array.make nvars 0. in
  let n = Array.length b.items in
  (* Position / rotation / flex variables. *)
  for k = 0 to n - 1 do
    let r = env_of k in
    sol.(b.x.(k)) <- r.Rect.x;
    sol.(b.y.(k)) <- r.Rect.y;
    (match b.rot.(k) with
    | Some z -> sol.(z) <- (if rotated k then 1. else 0.)
    | None -> ());
    match b.flex.(k) with
    | Some fi ->
      sol.(fi.dw_var) <- Tol.clamp ~lo:0. ~hi:fi.dw_ub (fi.w_max_env -. r.Rect.w)
    | None -> ()
  done;
  (* Chip height. *)
  let tops =
    List.init n (fun k -> Rect.y_max (env_of k))
    @ List.map Rect.y_max b.fixed
  in
  let height_val =
    List.fold_left Float.max
      (Fp_lp.Lp_problem.var_lb (Model.problem b.model) b.height)
      tops
  in
  sol.(b.height) <- height_val;
  (* Separation binaries, from the actual geometry. *)
  let rect_of_other = function
    | Other_item j -> env_of j
    | Other_fixed fi -> List.nth b.fixed fi
  in
  List.iter
    (fun (i, o, sep) ->
      let a = env_of i and c = rect_of_other o in
      let sat = rels_satisfied a c in
      if sat = [] then
        invalid_arg
          (Printf.sprintf
             "Formulation.assign_warm: item %d overlaps its neighbour" i);
      match sep with
      | Fixed_rel r ->
        if not (List.mem r sat) then
          invalid_arg "Formulation.assign_warm: fixed relation violated"
      | Choice2 { bin; if0; if1 } ->
        if List.mem if0 sat then sol.(bin) <- 0.
        else if List.mem if1 sat then sol.(bin) <- 1.
        else invalid_arg "Formulation.assign_warm: no encodable relation"
      | Choice4 { bx; by } ->
        let r = List.hd sat in
        let cx, cy = combo_of_rel r in
        sol.(bx) <- float_of_int cx;
        sol.(by) <- float_of_int cy)
    b.seps;
  (* Net bounding boxes from the pin expressions. *)
  List.iter
    (fun ni ->
      let xs = List.map (fun (px, _) -> Expr.eval px sol) ni.pin_exprs in
      let ys = List.map (fun (_, py) -> Expr.eval py sol) ni.pin_exprs in
      sol.(ni.lx) <- List.fold_left Float.min infinity xs;
      sol.(ni.rx) <- List.fold_left Float.max 0. xs;
      sol.(ni.ly) <- List.fold_left Float.min infinity ys;
      sol.(ni.ry) <- List.fold_left Float.max 0. ys)
    b.net_infos;
  sol

(* ------------------------------------------------------------------ *)
(* Extraction                                                           *)
(* ------------------------------------------------------------------ *)

let extract b sol =
  Array.mapi
    (fun k it ->
      let ex = sol.(b.x.(k)) and ey = sol.(b.y.(k)) in
      let ew = Expr.eval b.w_expr.(k) sol
      and eh = Expr.eval b.h_expr.(k) sol in
      let envelope = Rect.make ~x:ex ~y:ey ~w:ew ~h:eh in
      let rotated =
        match b.rot.(k) with Some z -> Tol.gt sol.(z) 0.5 | None -> false
      in
      let l, r, mb, mt = it.margins in
      match it.def.Module_def.shape with
      | Module_def.Rigid { w; h } ->
        let silicon =
          if rotated then
            (* Margins rotate with the module: (l,r,b,t) -> (b,t,l,r). *)
            Rect.make ~x:(ex +. mb) ~y:(ey +. l) ~w:h ~h:w
          else Rect.make ~x:(ex +. l) ~y:(ey +. mb) ~w ~h
        in
        ignore r;
        ignore mt;
        (envelope, silicon, rotated)
      | Module_def.Flexible { area; _ } ->
        let w_sil = Float.max Tol.eps (ew -. l -. r) in
        let h_sil = area /. w_sil in
        let silicon = Rect.make ~x:(ex +. l) ~y:(ey +. mb) ~w:w_sil ~h:h_sil in
        let envelope =
          (* Under tangent linearization the true height can exceed the
             reserved height; report the hull so downstream consumers see
             the real occupancy (the adjustment pass then legalizes). *)
          if Rect.contains_rect ~outer:envelope ~inner:silicon then envelope
          else Rect.hull envelope silicon
        in
        (envelope, silicon, rotated))
    b.items
