module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Model = Fp_milp.Model
module Expr = Fp_milp.Expr
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist

type linearization = Tangent | Secant

type objective = Min_height | Min_height_plus_wire of float

type item = {
  def : Module_def.t;
  margins : float * float * float * float;
}

let plain_item def = { def; margins = (0., 0., 0., 0.) }

type rel = Rel_left | Rel_right | Rel_below | Rel_above

type sep =
  | Fixed_rel of rel
  | Choice2 of { bin : Model.var; if0 : rel; if1 : rel }
  | Choice4 of { bx : Model.var; by : Model.var }

type other = Other_item of int | Other_fixed of int

type flex_info = {
  dw_var : Model.var;
  dw_ub : float;
  w_max_env : float;
  h_base_env : float;
  slope : float;
}

type net_info = {
  net : Net.t;
  lx : Model.var;
  rx : Model.var;
  ly : Model.var;
  ry : Model.var;
  pin_exprs : (Expr.t * Expr.t) list;
}

type built = {
  model : Model.t;
  chip_width : float;
  height_bound : float;
  items : item array;
  x : Model.var array;
  y : Model.var array;
  rot : Model.var option array;
  flex : flex_info option array;
  w_expr : Expr.t array;
  h_expr : Expr.t array;
  height : Model.var;
  seps : (int * other * sep) list;
  net_infos : net_info list;
  fixed : Rect.t list;
  linearization : linearization;
}

(* ------------------------------------------------------------------ *)
(* Item geometry helpers                                                *)
(* ------------------------------------------------------------------ *)

(* Flexible-width window [w_min, w_max] derived from the aspect bounds:
   w = sqrt (S * aspect) since h = S / w and aspect = w / h. *)
let flex_width_window area ~min_aspect ~max_aspect =
  (Float.sqrt (area *. min_aspect), Float.sqrt (area *. max_aspect))

let env_dims it =
  let l, r, b, t = it.margins in
  match it.def.Module_def.shape with
  | Module_def.Rigid { w; h } -> `Rigid (w +. l +. r, h +. b +. t)
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min, w_max = flex_width_window area ~min_aspect ~max_aspect in
    `Flexible (w_min +. l +. r, w_max +. l +. r, area /. w_max +. b +. t)

let item_min_width ?(allow_rotation = true) it =
  match env_dims it with
  | `Rigid (w, h) -> if allow_rotation then Float.min w h else w
  | `Flexible (w_min_env, _, _) -> w_min_env

let item_min_height ?(allow_rotation = true) it =
  match env_dims it with
  | `Rigid (w, h) -> if allow_rotation then Float.min w h else h
  | `Flexible (_, _, h_base_env) -> h_base_env

(* Smallest area the reserved envelope can take; used for the area cut
   W * y >= sum of occupied areas.  For flexible items the reserved area
   w_env(dw) * h_env(dw) is concave in dw, so the minimum over the window
   is attained at an endpoint. *)
let item_min_reserved_area ~linearization it =
  let l, r, b, t = it.margins in
  match it.def.Module_def.shape with
  | Module_def.Rigid { w; h } -> (w +. l +. r) *. (h +. b +. t)
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min, w_max = flex_width_window area ~min_aspect ~max_aspect in
    let h_base = area /. w_max in
    let slope =
      match linearization with
      | Tangent -> area /. (w_max *. w_max)
      | Secant ->
        if Tol.leq w_max w_min then 0.
        else area /. (w_min *. w_max)
    in
    let reserved dw =
      (w_max +. l +. r -. dw) *. (h_base +. b +. t +. (slope *. dw))
    in
    Float.min (reserved 0.) (reserved (w_max -. w_min))

(* ------------------------------------------------------------------ *)
(* Relations                                                            *)
(* ------------------------------------------------------------------ *)

let all_rels = [ Rel_left; Rel_right; Rel_below; Rel_above ]

let rels_satisfied a b =
  List.filter
    (fun r ->
      match r with
      | Rel_left -> Tol.leq (Rect.x_max a) b.Rect.x
      | Rel_right -> Tol.leq (Rect.x_max b) a.Rect.x
      | Rel_below -> Tol.leq (Rect.y_max a) b.Rect.y
      | Rel_above -> Tol.leq (Rect.y_max b) a.Rect.y)
    all_rels

let rel_of_geometry a b =
  match rels_satisfied a b with [] -> None | r :: _ -> Some r

(* The 0-1 combination that selects each relation in the paper's eq. (2):
   (x_ij, y_ij) = (0,0) left, (1,0) right, (0,1) below, (1,1) above. *)
let combo_of_rel = function
  | Rel_left -> (0, 0)
  | Rel_right -> (1, 0)
  | Rel_below -> (0, 1)
  | Rel_above -> (1, 1)

(* ------------------------------------------------------------------ *)
(* Model assembly                                                       *)
(* ------------------------------------------------------------------ *)

type obj_geom = {
  ox : Expr.t;  (* lower-left x *)
  oy : Expr.t;
  ow : Expr.t;  (* envelope width *)
  oh : Expr.t;
}

(* Emit the active form of one separation constraint with an additional
   big-M slack expression (Expr.zero for an always-active constraint). *)
let emit_rel model ~bigw ~bigh gi gj rel slack =
  let open Expr in
  match rel with
  | Rel_left ->
    (* x_i + w_i <= x_j + slack * W *)
    Model.add_constr_or_bound model (gi.ox + gi.ow) Model.Le (gj.ox + (bigw * slack))
  | Rel_right ->
    Model.add_constr_or_bound model (gj.ox + gj.ow) Model.Le (gi.ox + (bigw * slack))
  | Rel_below ->
    Model.add_constr_or_bound model (gi.oy + gi.oh) Model.Le (gj.oy + (bigh * slack))
  | Rel_above ->
    Model.add_constr_or_bound model (gj.oy + gj.oh) Model.Le (gi.oy + (bigh * slack))

(* Non-overlap of objects i and j restricted to the geometrically
   possible relations.  Returns the separation encoding used. *)
let add_separation model ~bigw ~bigh ~tag gi gj allowed =
  let open Expr in
  match allowed with
  | [] ->
    invalid_arg
      (Printf.sprintf "Formulation: no feasible relation for pair %s" tag)
  | [ r ] ->
    emit_rel model ~bigw ~bigh gi gj r Expr.zero;
    Fixed_rel r
  | [ r0; r1 ] ->
    let bin = Model.add_binary model (Printf.sprintf "s_%s" tag) in
    emit_rel model ~bigw ~bigh gi gj r0 (var bin);
    emit_rel model ~bigw ~bigh gi gj r1 (const 1. - var bin);
    Choice2 { bin; if0 = r0; if1 = r1 }
  | _ ->
    let bx = Model.add_binary model (Printf.sprintf "px_%s" tag) in
    let by = Model.add_binary model (Printf.sprintf "py_%s" tag) in
    Model.declare_pair model bx by;
    (* Slack multipliers from the paper's eq. (2). *)
    emit_rel model ~bigw ~bigh gi gj Rel_left (var bx + var by);
    emit_rel model ~bigw ~bigh gi gj Rel_right (const 1. - var bx + var by);
    emit_rel model ~bigw ~bigh gi gj Rel_below (const 1. + var bx - var by);
    emit_rel model ~bigw ~bigh gi gj Rel_above (const 2. - var bx - var by);
    (* Cut off geometrically impossible combinations. *)
    List.iter
      (fun r ->
        if not (List.mem r allowed) then
          match combo_of_rel r with
          | 0, 0 -> Model.add_constr_or_bound model (var bx + var by) Model.Ge (const 1.)
          | 1, 0 -> Model.add_constr_or_bound model (var bx - var by) Model.Le (const 0.)
          | 0, 1 -> Model.add_constr_or_bound model (var by - var bx) Model.Le (const 0.)
          | _ -> Model.add_constr_or_bound model (var bx + var by) Model.Le (const 1.))
      all_rels;
    Choice4 { bx; by }

let pin_expr gx gy gw gh side =
  let open Expr in
  match side with
  | Net.Left -> (gx, gy + (0.5 * gh))
  | Net.Right -> (gx + gw, gy + (0.5 * gh))
  | Net.Bottom -> (gx + (0.5 * gw), gy)
  | Net.Top -> (gx + (0.5 * gw), gy + gh)

(* Structural self-audit of a freshly built formulation.  The builder is
   supposed to emit a separation for every pair of objects and to declare
   every Choice4 binary pair for 4-way branching; a refactor that drops
   one produces a model that solves happily and overlaps modules.  Pure
   fp_core (raises instead of returning diagnostics) so [build] can run
   it without depending on [Fp_check]; the library-level lint reports the
   same conditions as FL001-FL003 findings. *)
let self_check (b : built) =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = Array.length b.items in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (i, other, sep) ->
      (match other with
      | Other_item j ->
        Hashtbl.replace covered (`Item (Int.min i j, Int.max i j)) ()
      | Other_fixed fi -> Hashtbl.replace covered (`Fixed (i, fi)) ());
      match sep with
      | Choice4 { bx; by } ->
        let declared =
          List.exists
            (fun (a, c) -> (a = bx && c = by) || (a = by && c = bx))
            (Model.pairs b.model)
        in
        if not declared then
          fail "Formulation.self_check: Choice4 binaries of item %d not \
                declared as a branching pair" i
      | Fixed_rel _ | Choice2 _ -> ())
    b.seps;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Hashtbl.mem covered (`Item (i, j))) then
        fail "Formulation.self_check: no separation between items %d and %d"
          i j
    done
  done;
  List.iteri
    (fun fi r ->
      for i = 0 to n - 1 do
        if not (Hashtbl.mem covered (`Fixed (i, fi))) then
          fail
            "Formulation.self_check: no separation between item %d and \
             fixed rectangle %d"
            i fi
      done;
      if
        Tol.lt r.Rect.x 0.
        || Tol.lt b.chip_width (Rect.x_max r)
        || Tol.lt r.Rect.y 0.
        || Tol.lt b.height_bound (Rect.y_max r)
      then
        fail "Formulation.self_check: fixed rectangle %d (%s) outside the \
              chip strip"
          fi (Rect.to_string r))
    b.fixed

let build ~chip_width ~height_bound ?(objective = Min_height)
    ?(allow_rotation = true) ?(linearization = Secant) ?(fixed = [])
    ?wire_context ?(net_length_bound = fun _ -> None) ?(check = false)
    item_list =
  let items = Array.of_list item_list in
  let n = Array.length items in
  let model = Model.create ~name:"floorplan_step" () in
  (* Feasibility of each item inside the strip. *)
  Array.iteri
    (fun k it ->
      if Tol.gt (item_min_width ~allow_rotation it) chip_width then
        invalid_arg
          (Printf.sprintf
             "Formulation.build: item %d (%s) wider than the chip (%g > %g)" k
             it.def.Module_def.name
             (item_min_width ~allow_rotation it)
             chip_width);
      if Tol.gt (item_min_height ~allow_rotation it) height_bound then
        invalid_arg
          (Printf.sprintf
             "Formulation.build: item %d (%s) taller than the height bound" k
             it.def.Module_def.name))
    items;
  let x = Array.make n 0 and y = Array.make n 0 in
  let rot = Array.make n None and flex = Array.make n None in
  let w_expr = Array.make n Expr.zero and h_expr = Array.make n Expr.zero in
  (* Per-item variables and dimension expressions. *)
  Array.iteri
    (fun k it ->
      let name = it.def.Module_def.name in
      x.(k) <-
        Model.add_continuous model ~ub:chip_width (Printf.sprintf "x_%s" name);
      y.(k) <-
        Model.add_continuous model ~ub:height_bound (Printf.sprintf "y_%s" name);
      match env_dims it with
      | `Rigid (we, he) ->
        if allow_rotation && not (Tol.equal we he) then begin
          let z = Model.add_binary model (Printf.sprintf "z_%s" name) in
          rot.(k) <- Some z;
          (* eq. (4): w_i = (1 - z_i) w + z_i h. *)
          w_expr.(k) <- Expr.(const we + ((he -. we) * var z));
          h_expr.(k) <- Expr.(const he + ((we -. he) * var z))
        end
        else begin
          w_expr.(k) <- Expr.const we;
          h_expr.(k) <- Expr.const he
        end
      | `Flexible (w_min_env, w_max_env, h_base_env) -> (
        match it.def.Module_def.shape with
        | Module_def.Rigid _ -> assert false
        | Module_def.Flexible { area; min_aspect; max_aspect } ->
          let w_min, w_max =
            flex_width_window area ~min_aspect ~max_aspect
          in
          let dw_ub = Float.max 0. (w_max -. w_min) in
          let slope =
            match linearization with
            | Tangent -> area /. (w_max *. w_max)
            | Secant ->
              if dw_ub <= Tol.eps then 0. else area /. (w_min *. w_max)
          in
          let dw =
            Model.add_continuous model ~ub:dw_ub (Printf.sprintf "dw_%s" name)
          in
          flex.(k) <- Some { dw_var = dw; dw_ub; w_max_env; h_base_env; slope };
          ignore w_min_env;
          (* eq. (6)/(7): w = w_max - dw, h = h(w_max) + Λ dw. *)
          w_expr.(k) <- Expr.(const w_max_env - var dw);
          h_expr.(k) <- Expr.(const h_base_env + (slope * var dw))))
    items;
  let height =
    Model.add_continuous model ~ub:height_bound "chip_height"
  in
  let geom k = { ox = Expr.var x.(k); oy = Expr.var y.(k);
                 ow = w_expr.(k); oh = h_expr.(k) } in
  let fixed_arr = Array.of_list fixed in
  let fixed_geom (r : Rect.t) =
    { ox = Expr.const r.Rect.x; oy = Expr.const r.Rect.y;
      ow = Expr.const r.Rect.w; oh = Expr.const r.Rect.h }
  in
  (* Chip bounds and height definition (eq. (3)/(5)). *)
  Array.iteri
    (fun k _ ->
      Model.add_constr_or_bound model
        Expr.(var x.(k) + w_expr.(k))
        Model.Le (Expr.const chip_width);
      Model.add_constr_or_bound model
        Expr.(var y.(k) + h_expr.(k))
        Model.Le (Expr.var height))
    items;
  (* Separations: item-item pairs. *)
  let seps = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let wi = item_min_width ~allow_rotation items.(i)
      and wj = item_min_width ~allow_rotation items.(j)
      and hi = item_min_height ~allow_rotation items.(i)
      and hj = item_min_height ~allow_rotation items.(j) in
      let allowed =
        List.filter
          (fun r ->
            match r with
            | Rel_left | Rel_right -> Tol.leq (wi +. wj) chip_width
            | Rel_below | Rel_above -> Tol.leq (hi +. hj) height_bound)
          all_rels
      in
      let tag = Printf.sprintf "i%d_i%d" i j in
      let s =
        add_separation model ~bigw:chip_width ~bigh:height_bound ~tag (geom i)
          (geom j) allowed
      in
      seps := (i, Other_item j, s) :: !seps
    done
  done;
  (* Separations: item vs fixed covering rectangle. *)
  Array.iteri
    (fun fi (r : Rect.t) ->
      for i = 0 to n - 1 do
        let wi = item_min_width ~allow_rotation items.(i)
        and hi = item_min_height ~allow_rotation items.(i) in
        let allowed =
          List.filter
            (fun rel ->
              match rel with
              | Rel_left -> Tol.leq wi r.Rect.x
              | Rel_right -> Tol.leq (Rect.x_max r +. wi) chip_width
              | Rel_below -> Tol.leq hi r.Rect.y
              | Rel_above -> Tol.leq (Rect.y_max r +. hi) height_bound)
            all_rels
        in
        let tag = Printf.sprintf "i%d_f%d" i fi in
        let s =
          add_separation model ~bigw:chip_width ~bigh:height_bound ~tag
            (geom i) (fixed_geom r) allowed
        in
        seps := (i, Other_fixed fi, s) :: !seps
      done)
    fixed_arr;
  (* Lower bounds on the chip height: every fixed rectangle's top, and the
     area bound W * y >= occupied area. *)
  let fixed_top =
    Array.fold_left (fun a r -> Float.max a (Rect.y_max r)) 0. fixed_arr
  in
  let occupied =
    Array.fold_left (fun a r -> a +. Rect.area r) 0. fixed_arr
    +. Array.fold_left
         (fun a it -> a +. item_min_reserved_area ~linearization it)
         0. items
  in
  let height_lb =
    Float.max fixed_top (occupied /. chip_width) |> Float.min height_bound
  in
  Fp_lp.Lp_problem.set_bounds (Model.problem model) height ~lb:height_lb
    ~ub:height_bound;
  (* Wirelength bounding boxes. *)
  let net_infos = ref [] in
  let lambda =
    match objective with Min_height -> 0. | Min_height_plus_wire l -> l
  in
  (match (objective, wire_context) with
  | Min_height_plus_wire _, None ->
    invalid_arg "Formulation.build: wire objective requires ~wire_context"
  | Min_height, _ | Min_height_plus_wire _, Some _ -> ());
  (match wire_context with
  | None -> ()
  | Some (nl, partial, ids) ->
    if Array.length ids <> n then
      invalid_arg "Formulation.build: wire_context ids length mismatch";
    let item_of_module = Hashtbl.create n in
    Array.iteri (fun k id -> Hashtbl.replace item_of_module id k) ids;
    List.iteri
      (fun ni net ->
        let pins =
          List.filter_map
            (fun p ->
              let id = p.Net.module_id in
              match Hashtbl.find_opt item_of_module id with
              | Some k ->
                let gw = w_expr.(k) and gh = h_expr.(k) in
                Some
                  (`Item, pin_expr (Expr.var x.(k)) (Expr.var y.(k)) gw gh
                            p.Net.side)
              | None -> (
                match Placement.find partial id with
                | Some _ ->
                  let pt =
                    Placement.pin_position partial ~module_id:id p.Net.side
                  in
                  Some
                    (`Fixed,
                     (Expr.const pt.Fp_geometry.Point.x,
                      Expr.const pt.Fp_geometry.Point.y))
                | None -> None))
            net.Net.pins
        in
        let has_item = List.exists (fun (k, _) -> k = `Item) pins in
        if has_item && List.length pins >= 2 then begin
          let mk nm =
            Model.add_continuous model ~ub:(Float.max chip_width height_bound)
              (Printf.sprintf "%s_n%d" nm ni)
          in
          let lx = mk "lx" and rx = mk "rx" and ly = mk "ly" and ry = mk "ry" in
          let pin_exprs = List.map snd pins in
          List.iter
            (fun (px, py) ->
              Model.add_constr_or_bound model (Expr.var lx) Model.Le px;
              Model.add_constr_or_bound model px Model.Le (Expr.var rx);
              Model.add_constr_or_bound model (Expr.var ly) Model.Le py;
              Model.add_constr_or_bound model py Model.Le (Expr.var ry))
            pin_exprs;
          (* Critical-net length constraint (paper section 2.2). *)
          (match net_length_bound net with
          | Some bound ->
            Model.add_constr_or_bound model
              Expr.(var rx - var lx + var ry - var ly)
              Model.Le (Expr.const bound)
          | None -> ());
          net_infos := { net; lx; rx; ly; ry; pin_exprs } :: !net_infos
        end)
      (Netlist.nets nl));
  let net_infos = List.rev !net_infos in
  (* Objective: minimize height (area proxy for fixed W), plus the
     wirelength term when requested. *)
  let wire_term =
    Expr.sum
      (List.map
         (fun ni ->
           Expr.(
             var ni.rx - var ni.lx + var ni.ry - var ni.ly))
         net_infos)
  in
  Model.set_objective model `Minimize
    Expr.(var height + (lambda * wire_term));
  let b =
    {
      model; chip_width; height_bound; items; x; y; rot; flex; w_expr; h_expr;
      height; seps = List.rev !seps; net_infos; fixed; linearization;
    }
  in
  if check then self_check b;
  b

(* ------------------------------------------------------------------ *)
(* Warm start                                                           *)
(* ------------------------------------------------------------------ *)

let assign_warm b env_of ~rotated =
  let nvars = Model.num_vars b.model in
  let sol = Array.make nvars 0. in
  let n = Array.length b.items in
  (* Position / rotation / flex variables. *)
  for k = 0 to n - 1 do
    let r = env_of k in
    sol.(b.x.(k)) <- r.Rect.x;
    sol.(b.y.(k)) <- r.Rect.y;
    (match b.rot.(k) with
    | Some z -> sol.(z) <- (if rotated k then 1. else 0.)
    | None -> ());
    match b.flex.(k) with
    | Some fi ->
      sol.(fi.dw_var) <- Tol.clamp ~lo:0. ~hi:fi.dw_ub (fi.w_max_env -. r.Rect.w)
    | None -> ()
  done;
  (* Chip height. *)
  let tops =
    List.init n (fun k -> Rect.y_max (env_of k))
    @ List.map Rect.y_max b.fixed
  in
  let height_val =
    List.fold_left Float.max
      (Fp_lp.Lp_problem.var_lb (Model.problem b.model) b.height)
      tops
  in
  sol.(b.height) <- height_val;
  (* Separation binaries, from the actual geometry. *)
  let rect_of_other = function
    | Other_item j -> env_of j
    | Other_fixed fi -> List.nth b.fixed fi
  in
  List.iter
    (fun (i, o, sep) ->
      let a = env_of i and c = rect_of_other o in
      let sat = rels_satisfied a c in
      if sat = [] then
        invalid_arg
          (Printf.sprintf
             "Formulation.assign_warm: item %d overlaps its neighbour" i);
      match sep with
      | Fixed_rel r ->
        if not (List.mem r sat) then
          invalid_arg "Formulation.assign_warm: fixed relation violated"
      | Choice2 { bin; if0; if1 } ->
        if List.mem if0 sat then sol.(bin) <- 0.
        else if List.mem if1 sat then sol.(bin) <- 1.
        else invalid_arg "Formulation.assign_warm: no encodable relation"
      | Choice4 { bx; by } ->
        let r = List.hd sat in
        let cx, cy = combo_of_rel r in
        sol.(bx) <- float_of_int cx;
        sol.(by) <- float_of_int cy)
    b.seps;
  (* Net bounding boxes from the pin expressions. *)
  List.iter
    (fun ni ->
      let xs = List.map (fun (px, _) -> Expr.eval px sol) ni.pin_exprs in
      let ys = List.map (fun (_, py) -> Expr.eval py sol) ni.pin_exprs in
      sol.(ni.lx) <- List.fold_left Float.min infinity xs;
      sol.(ni.rx) <- List.fold_left Float.max 0. xs;
      sol.(ni.ly) <- List.fold_left Float.min infinity ys;
      sol.(ni.ry) <- List.fold_left Float.max 0. ys)
    b.net_infos;
  sol

(* ------------------------------------------------------------------ *)
(* Extraction                                                           *)
(* ------------------------------------------------------------------ *)

let extract b sol =
  Array.mapi
    (fun k it ->
      let ex = sol.(b.x.(k)) and ey = sol.(b.y.(k)) in
      let ew = Expr.eval b.w_expr.(k) sol
      and eh = Expr.eval b.h_expr.(k) sol in
      let envelope = Rect.make ~x:ex ~y:ey ~w:ew ~h:eh in
      let rotated =
        match b.rot.(k) with Some z -> Tol.gt sol.(z) 0.5 | None -> false
      in
      let l, r, mb, mt = it.margins in
      match it.def.Module_def.shape with
      | Module_def.Rigid { w; h } ->
        let silicon =
          if rotated then
            (* Margins rotate with the module: (l,r,b,t) -> (b,t,l,r). *)
            Rect.make ~x:(ex +. mb) ~y:(ey +. l) ~w:h ~h:w
          else Rect.make ~x:(ex +. l) ~y:(ey +. mb) ~w ~h
        in
        ignore r;
        ignore mt;
        (envelope, silicon, rotated)
      | Module_def.Flexible { area; _ } ->
        let w_sil = Float.max Tol.eps (ew -. l -. r) in
        let h_sil = area /. w_sil in
        let silicon = Rect.make ~x:(ex +. l) ~y:(ey +. mb) ~w:w_sil ~h:h_sil in
        let envelope =
          (* Under tangent linearization the true height can exceed the
             reserved height; report the hull so downstream consumers see
             the real occupancy (the adjustment pass then legalizes). *)
          if Rect.contains_rect ~outer:envelope ~inner:silicon then envelope
          else Rect.hull envelope silicon
        in
        (envelope, silicon, rotated))
    b.items
