type t =
  | Budget_exhausted_warm_fallback
  | Raw_warm_packing
  | Net_bound_dropped of string list
  | Numerical_recovery of int
  | Retry_escalated of int
  | Deadline_truncated
  | Hook_failed of string
  | Candidate_failed of string
  | Worker_failure of string
  | Task_lost of int
  | Outline_exceeded of float
  | Engine_failed of string

let severity = function
  | Numerical_recovery _ | Task_lost _ | Hook_failed _ | Candidate_failed _
  | Worker_failure _ | Retry_escalated _ | Engine_failed _ -> 0
  | Budget_exhausted_warm_fallback | Deadline_truncated -> 1
  | Net_bound_dropped _ | Raw_warm_packing | Outline_exceeded _ -> 2

let degrades_quality t = severity t >= 1

(* Exception texts can contain anything; keep the rendering single-line
   and parenthesis-free so the whole value stays greppable. *)
let clean s =
  String.map (fun c -> if c = '\n' || c = '(' || c = ')' then ' ' else c) s

let to_string = function
  | Budget_exhausted_warm_fallback -> "budget_exhausted_warm_fallback"
  | Raw_warm_packing -> "raw_warm_packing"
  | Net_bound_dropped nets ->
    Printf.sprintf "net_bound_dropped(%s)" (String.concat "," nets)
  | Numerical_recovery n -> Printf.sprintf "numerical_recovery(%d)" n
  | Retry_escalated n -> Printf.sprintf "retry_escalated(%d)" n
  | Deadline_truncated -> "deadline_truncated"
  | Hook_failed msg -> Printf.sprintf "hook_failed(%s)" (clean msg)
  | Candidate_failed msg -> Printf.sprintf "candidate_failed(%s)" (clean msg)
  | Worker_failure msg -> Printf.sprintf "worker_failure(%s)" (clean msg)
  | Task_lost n -> Printf.sprintf "task_lost(%d)" n
  | Outline_exceeded by -> Printf.sprintf "outline_exceeded(%g)" by
  | Engine_failed msg -> Printf.sprintf "engine_failed(%s)" (clean msg)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Process exit codes.  Every [exit] in bin/, bench/ and examples/ goes
   through these constants (the SA008 lint enforces it), so the
   degradation taxonomy is the single place the exit contract lives. *)
let exit_clean = 0
let exit_error = 1
let exit_degraded = 3

let exit_code ds =
  if List.exists degrades_quality ds then exit_degraded else exit_clean
