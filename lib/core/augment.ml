module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering
module Tol = Fp_geometry.Tol
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def
module Ordering = Fp_netlist.Ordering
module Branch_bound = Fp_milp.Branch_bound
module Pool = Fp_util.Pool

let src = Logs.Src.create "fp.augment" ~doc:"successive augmentation"

module Log = (val Logs.src_log src : Logs.LOG)

type envelope_config = { pitch_h : float; pitch_v : float; share : float }

type step_stat = {
  group : int list;
  num_integer_vars : int;
  num_constraints : int;
  num_cover_rects : int;
  milp_status : Branch_bound.status;
  nodes : int;
  lp_solves : int;
  warm_hits : int;
  cold_solves : int;
  pivots : int;
  shadow_pivots : int;
  refactorizations : int;
  warm_height : float;
  step_height : float;
  step_time : float;
  candidates_evaluated : int;
}

type inspect = {
  on_model : Formulation.built -> unit;
  on_step : step_stat -> Placement.t -> unit;
}

type config = {
  chip_width : float option;
  group_size : int;
  ordering : [ `Linear | `Random of int | `Area_desc ];
  objective : Formulation.objective;
  allow_rotation : bool;
  linearization : Formulation.linearization;
  use_covering : bool;
  max_cover_rects : int option;
  envelope : envelope_config option;
  compact_each_step : bool;
  critical_net_bound : (Fp_netlist.Net.t -> float option) option;
  milp : Branch_bound.params;
  check : bool;
  inspect : inspect option;
  jobs : int;
  candidates : int;
}

let default_config =
  {
    chip_width = None;
    group_size = 4;
    ordering = `Linear;
    objective = Formulation.Min_height;
    allow_rotation = true;
    linearization = Formulation.Secant;
    use_covering = true;
    max_cover_rects = Some 8;
    envelope = None;
    compact_each_step = true;
    critical_net_bound = None;
    milp =
      {
        Branch_bound.default_params with
        Branch_bound.node_limit = 4000;
        time_limit = 20.;
        min_improvement = 1e-4;
        branch_rule = Branch_bound.First_fractional;
      };
    check = false;
    inspect = None;
    jobs = 1;
    candidates = 1;
  }

type result = {
  placement : Placement.t;
  steps : step_stat list;
  total_time : float;
  config : config;
}

let margins_of cfg nl id =
  match cfg.envelope with
  | None -> (0., 0., 0., 0.)
  | Some e ->
    let pl, pr, pb, pt = Netlist.pins_per_side nl id in
    let f pins pitch = float_of_int pins *. pitch *. e.share in
    (f pl e.pitch_v, f pr e.pitch_v, f pb e.pitch_h, f pt e.pitch_h)

let items_of_group cfg nl group =
  List.map
    (fun id ->
      { Formulation.def = Netlist.module_at nl id;
        margins = margins_of cfg nl id })
    group

let item_max_height ~allow_rotation ~linearization (it : Formulation.item) =
  let l, r, b, t = it.Formulation.margins in
  match it.Formulation.def.Module_def.shape with
  | Module_def.Rigid { w; h } ->
    let he = h +. b +. t and we = w +. l +. r in
    if allow_rotation then Float.max he we else he
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min = Float.sqrt (area *. min_aspect)
    and w_max = Float.sqrt (area *. max_aspect) in
    let h_base = area /. w_max in
    let slope =
      match linearization with
      | Formulation.Tangent -> area /. (w_max *. w_max)
      | Formulation.Secant ->
        if w_max -. w_min <= Tol.eps then 0. else area /. (w_min *. w_max)
    in
    h_base +. b +. t +. (slope *. Float.max 0. (w_max -. w_min))

(* Default chip width: a roughly square chip for the total reserved
   area, never narrower than the widest single module. *)
let derive_chip_width cfg nl =
  let items =
    items_of_group cfg nl (List.init (Netlist.num_modules nl) Fun.id)
  in
  let reserved =
    List.fold_left
      (fun a it ->
        a
        +. Formulation.item_min_reserved_area
             ~linearization:cfg.linearization it)
      0. items
  in
  let min_w =
    List.fold_left
      (fun a it ->
        Float.max a
          (Formulation.item_min_width ~allow_rotation:cfg.allow_rotation it))
      0. items
  in
  Float.max (Float.sqrt reserved) min_w

let ordering_of cfg nl =
  match cfg.ordering with
  | `Linear -> Ordering.linear nl
  | `Random seed -> Ordering.random ~seed nl
  | `Area_desc -> Ordering.by_area_desc nl

let obstacles_of cfg skyline placement =
  if cfg.use_covering then begin
    let cover = Covering.of_skyline skyline in
    match cfg.max_cover_rects with
    | Some m when List.length cover > m -> Covering.coarsen ~max_count:m cover
    | Some _ | None -> cover
  end
  else Placement.envelopes placement

(* Everything one candidate evaluation produces.  Evaluation is pure
   with respect to the partial floorplan — [Placement], [Skyline] and
   [Formulation.build] are functional — so several candidates can be
   evaluated concurrently against the same snapshot and at most one
   committed. *)
type eval = {
  e_group : int list;
  e_built : Formulation.built;
  e_num_obstacles : int;
  e_outcome : Branch_bound.outcome;
  e_warm_height : float;
  e_placement : Placement.t;
  e_skyline : Skyline.t;
}

let evaluate cfg nl ~chip_width ~skyline ~placement ~pool ~milp group =
  (* Largest modules first: their pair binaries are declared first, so
     First_fractional branching decides the big shapes early. *)
  let group =
    List.sort
      (fun a b ->
        compare
          (Module_def.area (Netlist.module_at nl b))
          (Module_def.area (Netlist.module_at nl a)))
      group
  in
  let items = Array.of_list (items_of_group cfg nl group) in
  let ids = Array.of_list group in
  let obstacles = obstacles_of cfg skyline placement in
  let height_bound =
    Skyline.max_height skyline
    +. Array.fold_left
         (fun a it ->
           a
           +. item_max_height ~allow_rotation:cfg.allow_rotation
                ~linearization:cfg.linearization it)
         0. items
    +. 1.
  in
  (* Warm start: greedy bottom-left packing on the profile of the
     obstacles actually passed to the MILP.  This must NOT be the
     placed-module skyline: coarsened covering rectangles are hulls
     that can protrude above it, and a warm placement on the lower
     profile would overlap them. *)
  let obstacle_sky =
    List.fold_left Skyline.add_rect (Skyline.create ~width:chip_width) obstacles
  in
  let warm =
    Warm_start.place_group ~skyline:obstacle_sky
      ~allow_rotation:cfg.allow_rotation ~linearization:cfg.linearization items
  in
  let warm_height = Warm_start.height_after ~skyline:obstacle_sky warm in
  let wire_context =
    match (cfg.objective, cfg.critical_net_bound) with
    | Formulation.Min_height, None -> None
    | Formulation.Min_height_plus_wire _, _ | _, Some _ ->
      (* Length bounds need the net bounding-box variables too. *)
      Some (nl, placement, ids)
  in
  let built =
    Formulation.build ~chip_width ~height_bound ~objective:cfg.objective
      ~allow_rotation:cfg.allow_rotation ~linearization:cfg.linearization
      ~fixed:obstacles ?wire_context ?net_length_bound:cfg.critical_net_bound
      ~check:cfg.check (Array.to_list items)
  in
  let warm_sol =
    (* The warm placement avoids the obstacles by construction; if
       numerics still reject it, search without an incumbent rather
       than aborting the run. *)
    match
      Formulation.assign_warm built
        (fun k -> warm.(k).Warm_start.envelope)
        ~rotated:(fun k -> warm.(k).Warm_start.rotated)
    with
    | sol -> Some sol
    | exception Invalid_argument msg ->
      Log.warn (fun f -> f "warm start unusable: %s" msg);
      None
  in
  let outcome =
    Branch_bound.solve ~params:milp ?warm:warm_sol ?pool
      built.Formulation.model
  in
  let sol =
    match (outcome.Branch_bound.best, warm_sol) with
    | Some (x, _), _ -> x
    | None, Some w ->
      Log.warn (fun f ->
          f "MILP step found no solution; falling back to warm start");
      w
    | None, None ->
      (* Last resort: trust the geometric warm placement even though
         the model rejected its encoding. *)
      Log.err (fun f -> f "MILP step failed outright; using raw warm packing");
      Formulation.assign_warm built
        (fun k -> warm.(k).Warm_start.envelope)
        ~rotated:(fun k -> warm.(k).Warm_start.rotated)
  in
  let extracted = Formulation.extract built sol in
  let placement = ref placement in
  Array.iteri
    (fun k (envelope, silicon, rotated) ->
      placement :=
        Placement.add !placement
          { Placement.module_id = ids.(k); rect = silicon; envelope; rotated })
    extracted;
  if cfg.compact_each_step then placement := Compact.vertical !placement;
  let skyline =
    Skyline.of_rects ~width:chip_width (Placement.envelopes !placement)
  in
  {
    e_group = group;
    e_built = built;
    e_num_obstacles = List.length obstacles;
    e_outcome = outcome;
    e_warm_height = warm_height;
    e_placement = !placement;
    e_skyline = skyline;
  }

let run ?(config = default_config) nl =
  let cfg = config in
  if Netlist.num_modules nl = 0 then
    invalid_arg "Augment.run: empty instance";
  if cfg.group_size < 1 then invalid_arg "Augment.run: group_size < 1";
  if cfg.jobs < 1 then invalid_arg "Augment.run: jobs < 1";
  if cfg.candidates < 1 then invalid_arg "Augment.run: candidates < 1";
  let t0 = Unix.gettimeofday () in
  let chip_width =
    match cfg.chip_width with
    | Some w -> w
    | None -> derive_chip_width cfg nl
  in
  let order = ordering_of cfg nl in
  let groups = Ordering.groups ~size:cfg.group_size order in
  let with_pool k =
    if cfg.jobs > 1 then Pool.with_pool ~jobs:cfg.jobs (fun p -> k (Some p))
    else k None
  in
  with_pool @@ fun pool ->
  let skyline = ref (Skyline.create ~width:chip_width) in
  let placement = ref (Placement.empty ~chip_width) in
  let steps = ref [] in
  let rec augment remaining =
    match remaining with
    | [] -> ()
    | _ :: _ ->
      let step_start = Unix.gettimeofday () in
      let n_cand = Int.min cfg.candidates (List.length remaining) in
      let cands =
        Array.of_list (List.filteri (fun i _ -> i < n_cand) remaining)
      in
      let evals =
        if n_cand = 1 then
          (* Single candidate: all the parallelism goes into the MILP
             itself, which shares the run-wide pool. *)
          [| evaluate cfg nl ~chip_width ~skyline:!skyline
               ~placement:!placement ~pool ~milp:cfg.milp cands.(0) |]
        else begin
          (* Several candidates: one per pool task, each MILP sequential
             inside its task — pool batches must not nest. *)
          let milp = { cfg.milp with Branch_bound.jobs = 1 } in
          let eval1 k =
            evaluate cfg nl ~chip_width ~skyline:!skyline
              ~placement:!placement ~pool:None ~milp cands.(k)
          in
          match pool with
          | Some p -> Pool.map p ~n:n_cand (fun ~worker:_ k -> eval1 k)
          | None -> Array.init n_cand eval1
        end
      in
      (* Commit the candidate with the lowest resulting skyline; ties go
         to the earliest candidate in the ordering, so the choice is
         independent of how the pool scheduled the evaluations. *)
      let best = ref 0 in
      Array.iteri
        (fun i e ->
          if
            Skyline.max_height e.e_skyline
            < Skyline.max_height evals.(!best).e_skyline
          then best := i)
        evals;
      let e = evals.(!best) in
      (* Hooks observe only the committed candidate: they run on the
         calling domain, after selection. *)
      Option.iter (fun i -> i.on_model e.e_built) cfg.inspect;
      placement := e.e_placement;
      skyline := e.e_skyline;
      let outcome = e.e_outcome in
      let stat =
        {
          group = e.e_group;
          num_integer_vars =
            Fp_milp.Model.num_integer_vars e.e_built.Formulation.model;
          num_constraints =
            Fp_milp.Model.num_constrs e.e_built.Formulation.model;
          num_cover_rects = e.e_num_obstacles;
          milp_status = outcome.Branch_bound.status;
          nodes = outcome.Branch_bound.nodes;
          lp_solves = outcome.Branch_bound.lp_solves;
          warm_hits = outcome.Branch_bound.warm_hits;
          cold_solves = outcome.Branch_bound.cold_solves;
          pivots = outcome.Branch_bound.pivots;
          shadow_pivots = outcome.Branch_bound.shadow_pivots;
          refactorizations = outcome.Branch_bound.refactorizations;
          warm_height = e.e_warm_height;
          step_height = Skyline.max_height !skyline;
          step_time = Unix.gettimeofday () -. step_start;
          candidates_evaluated = n_cand;
        }
      in
      Log.info (fun f ->
          f "step [%s]: %d ints, %d rows, %d covers, %d nodes, h=%.2f (warm %.2f)"
            (String.concat "," (List.map string_of_int stat.group))
            stat.num_integer_vars stat.num_constraints stat.num_cover_rects
            stat.nodes stat.step_height stat.warm_height);
      Option.iter (fun i -> i.on_step stat !placement) cfg.inspect;
      steps := stat :: !steps;
      augment (List.filteri (fun i _ -> i <> !best) remaining)
  in
  augment groups;
  {
    placement = !placement;
    steps = List.rev !steps;
    total_time = Unix.gettimeofday () -. t0;
    config = cfg;
  }
