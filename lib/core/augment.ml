module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering
module Tol = Fp_geometry.Tol
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def
module Ordering = Fp_netlist.Ordering
module Branch_bound = Fp_milp.Branch_bound

let src = Logs.Src.create "fp.augment" ~doc:"successive augmentation"

module Log = (val Logs.src_log src : Logs.LOG)

type envelope_config = { pitch_h : float; pitch_v : float; share : float }

type step_stat = {
  group : int list;
  num_integer_vars : int;
  num_constraints : int;
  num_cover_rects : int;
  milp_status : Branch_bound.status;
  nodes : int;
  lp_solves : int;
  warm_hits : int;
  cold_solves : int;
  pivots : int;
  shadow_pivots : int;
  refactorizations : int;
  warm_height : float;
  step_height : float;
  step_time : float;
}

type inspect = {
  on_model : Formulation.built -> unit;
  on_step : step_stat -> Placement.t -> unit;
}

type config = {
  chip_width : float option;
  group_size : int;
  ordering : [ `Linear | `Random of int | `Area_desc ];
  objective : Formulation.objective;
  allow_rotation : bool;
  linearization : Formulation.linearization;
  use_covering : bool;
  max_cover_rects : int option;
  envelope : envelope_config option;
  compact_each_step : bool;
  critical_net_bound : (Fp_netlist.Net.t -> float option) option;
  milp : Branch_bound.params;
  check : bool;
  inspect : inspect option;
}

let default_config =
  {
    chip_width = None;
    group_size = 4;
    ordering = `Linear;
    objective = Formulation.Min_height;
    allow_rotation = true;
    linearization = Formulation.Secant;
    use_covering = true;
    max_cover_rects = Some 8;
    envelope = None;
    compact_each_step = true;
    critical_net_bound = None;
    milp =
      {
        Branch_bound.default_params with
        Branch_bound.node_limit = 4000;
        time_limit = 20.;
        min_improvement = 1e-4;
        branch_rule = Branch_bound.First_fractional;
      };
    check = false;
    inspect = None;
  }

type result = {
  placement : Placement.t;
  steps : step_stat list;
  total_time : float;
  config : config;
}

let margins_of cfg nl id =
  match cfg.envelope with
  | None -> (0., 0., 0., 0.)
  | Some e ->
    let pl, pr, pb, pt = Netlist.pins_per_side nl id in
    let f pins pitch = float_of_int pins *. pitch *. e.share in
    (f pl e.pitch_v, f pr e.pitch_v, f pb e.pitch_h, f pt e.pitch_h)

let items_of_group cfg nl group =
  List.map
    (fun id ->
      { Formulation.def = Netlist.module_at nl id;
        margins = margins_of cfg nl id })
    group

let item_max_height ~allow_rotation ~linearization (it : Formulation.item) =
  let l, r, b, t = it.Formulation.margins in
  match it.Formulation.def.Module_def.shape with
  | Module_def.Rigid { w; h } ->
    let he = h +. b +. t and we = w +. l +. r in
    if allow_rotation then Float.max he we else he
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min = Float.sqrt (area *. min_aspect)
    and w_max = Float.sqrt (area *. max_aspect) in
    let h_base = area /. w_max in
    let slope =
      match linearization with
      | Formulation.Tangent -> area /. (w_max *. w_max)
      | Formulation.Secant ->
        if w_max -. w_min <= Tol.eps then 0. else area /. (w_min *. w_max)
    in
    h_base +. b +. t +. (slope *. Float.max 0. (w_max -. w_min))

(* Default chip width: a roughly square chip for the total reserved
   area, never narrower than the widest single module. *)
let derive_chip_width cfg nl =
  let items =
    items_of_group cfg nl (List.init (Netlist.num_modules nl) Fun.id)
  in
  let reserved =
    List.fold_left
      (fun a it ->
        a
        +. Formulation.item_min_reserved_area
             ~linearization:cfg.linearization it)
      0. items
  in
  let min_w =
    List.fold_left
      (fun a it ->
        Float.max a
          (Formulation.item_min_width ~allow_rotation:cfg.allow_rotation it))
      0. items
  in
  Float.max (Float.sqrt reserved) min_w

let ordering_of cfg nl =
  match cfg.ordering with
  | `Linear -> Ordering.linear nl
  | `Random seed -> Ordering.random ~seed nl
  | `Area_desc -> Ordering.by_area_desc nl

let obstacles_of cfg skyline placement =
  if cfg.use_covering then begin
    let cover = Covering.of_skyline skyline in
    match cfg.max_cover_rects with
    | Some m when List.length cover > m -> Covering.coarsen ~max_count:m cover
    | Some _ | None -> cover
  end
  else Placement.envelopes placement

let run ?(config = default_config) nl =
  let cfg = config in
  if Netlist.num_modules nl = 0 then
    invalid_arg "Augment.run: empty instance";
  if cfg.group_size < 1 then invalid_arg "Augment.run: group_size < 1";
  let t0 = Unix.gettimeofday () in
  let chip_width =
    match cfg.chip_width with
    | Some w -> w
    | None -> derive_chip_width cfg nl
  in
  let order = ordering_of cfg nl in
  let groups = Ordering.groups ~size:cfg.group_size order in
  let skyline = ref (Skyline.create ~width:chip_width) in
  let placement = ref (Placement.empty ~chip_width) in
  let steps = ref [] in
  List.iter
    (fun group ->
      let step_start = Unix.gettimeofday () in
      (* Largest modules first: their pair binaries are declared first, so
         First_fractional branching decides the big shapes early. *)
      let group =
        List.sort
          (fun a b ->
            compare
              (Module_def.area (Netlist.module_at nl b))
              (Module_def.area (Netlist.module_at nl a)))
          group
      in
      let items = Array.of_list (items_of_group cfg nl group) in
      let ids = Array.of_list group in
      let obstacles = obstacles_of cfg !skyline !placement in
      let height_bound =
        Skyline.max_height !skyline
        +. Array.fold_left
             (fun a it ->
               a
               +. item_max_height ~allow_rotation:cfg.allow_rotation
                    ~linearization:cfg.linearization it)
             0. items
        +. 1.
      in
      (* Warm start: greedy bottom-left packing on the profile of the
         obstacles actually passed to the MILP.  This must NOT be the
         placed-module skyline: coarsened covering rectangles are hulls
         that can protrude above it, and a warm placement on the lower
         profile would overlap them. *)
      let obstacle_sky =
        List.fold_left Skyline.add_rect
          (Skyline.create ~width:chip_width)
          obstacles
      in
      let warm =
        Warm_start.place_group ~skyline:obstacle_sky
          ~allow_rotation:cfg.allow_rotation
          ~linearization:cfg.linearization items
      in
      let warm_height = Warm_start.height_after ~skyline:obstacle_sky warm in
      let wire_context =
        match (cfg.objective, cfg.critical_net_bound) with
        | Formulation.Min_height, None -> None
        | Formulation.Min_height_plus_wire _, _ | _, Some _ ->
          (* Length bounds need the net bounding-box variables too. *)
          Some (nl, !placement, ids)
      in
      let built =
        Formulation.build ~chip_width ~height_bound ~objective:cfg.objective
          ~allow_rotation:cfg.allow_rotation
          ~linearization:cfg.linearization ~fixed:obstacles ?wire_context
          ?net_length_bound:cfg.critical_net_bound ~check:cfg.check
          (Array.to_list items)
      in
      Option.iter (fun i -> i.on_model built) cfg.inspect;
      let warm_sol =
        (* The warm placement avoids the obstacles by construction; if
           numerics still reject it, search without an incumbent rather
           than aborting the run. *)
        match
          Formulation.assign_warm built
            (fun k -> warm.(k).Warm_start.envelope)
            ~rotated:(fun k -> warm.(k).Warm_start.rotated)
        with
        | sol -> Some sol
        | exception Invalid_argument msg ->
          Log.warn (fun f -> f "warm start unusable: %s" msg);
          None
      in
      let outcome =
        Branch_bound.solve ~params:cfg.milp ?warm:warm_sol
          built.Formulation.model
      in
      let sol =
        match (outcome.Branch_bound.best, warm_sol) with
        | Some (x, _), _ -> x
        | None, Some w ->
          Log.warn (fun f ->
              f "MILP step found no solution; falling back to warm start");
          w
        | None, None ->
          (* Last resort: trust the geometric warm placement even though
             the model rejected its encoding. *)
          Log.err (fun f -> f "MILP step failed outright; using raw warm packing");
          Formulation.assign_warm built
            (fun k -> warm.(k).Warm_start.envelope)
            ~rotated:(fun k -> warm.(k).Warm_start.rotated)
      in
      let extracted = Formulation.extract built sol in
      Array.iteri
        (fun k (envelope, silicon, rotated) ->
          placement :=
            Placement.add !placement
              { Placement.module_id = ids.(k); rect = silicon; envelope;
                rotated })
        extracted;
      if cfg.compact_each_step then placement := Compact.vertical !placement;
      skyline :=
        Skyline.of_rects ~width:chip_width (Placement.envelopes !placement);
      let stat =
        {
          group;
          num_integer_vars = Fp_milp.Model.num_integer_vars built.Formulation.model;
          num_constraints = Fp_milp.Model.num_constrs built.Formulation.model;
          num_cover_rects = List.length obstacles;
          milp_status = outcome.Branch_bound.status;
          nodes = outcome.Branch_bound.nodes;
          lp_solves = outcome.Branch_bound.lp_solves;
          warm_hits = outcome.Branch_bound.warm_hits;
          cold_solves = outcome.Branch_bound.cold_solves;
          pivots = outcome.Branch_bound.pivots;
          shadow_pivots = outcome.Branch_bound.shadow_pivots;
          refactorizations = outcome.Branch_bound.refactorizations;
          warm_height;
          step_height = Skyline.max_height !skyline;
          step_time = Unix.gettimeofday () -. step_start;
        }
      in
      Log.info (fun f ->
          f "step [%s]: %d ints, %d rows, %d covers, %d nodes, h=%.2f (warm %.2f)"
            (String.concat "," (List.map string_of_int group))
            stat.num_integer_vars stat.num_constraints stat.num_cover_rects
            stat.nodes stat.step_height stat.warm_height);
      Option.iter (fun i -> i.on_step stat !placement) cfg.inspect;
      steps := stat :: !steps)
    groups;
  {
    placement = !placement;
    steps = List.rev !steps;
    total_time = Unix.gettimeofday () -. t0;
    config = cfg;
  }
