module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering
module Tol = Fp_geometry.Tol
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Ordering = Fp_netlist.Ordering
module Branch_bound = Fp_milp.Branch_bound
module Pool = Fp_util.Pool
module Fault = Fp_util.Fault

let src = Logs.Src.create "fp.augment" ~doc:"successive augmentation"

module Log = (val Logs.src_log src : Logs.LOG)

exception Abort

(* Fault sites: a hook raising out of its observation (the run must
   survive and record it), and a candidate MILP evaluation dying (the
   candidate is excluded, or the step retries). *)
let site_hook = Fault.register "augment.hook"
let site_candidate = Fault.register "augment.candidate_milp"

type envelope_config = { pitch_h : float; pitch_v : float; share : float }

type step_stat = {
  group : int list;
  num_integer_vars : int;
  num_constraints : int;
  num_cover_rects : int;
  milp_status : Branch_bound.status;
  nodes : int;
  lp_solves : int;
  warm_hits : int;
  cold_solves : int;
  pivots : int;
  shadow_pivots : int;
  refactorizations : int;
  cuts_added : int;
  cuts_purged : int;
  separation_time : float;
  warm_height : float;
  step_height : float;
  step_time : float;
  time_budget : float;
  candidates_evaluated : int;
  retries : int;
  degradations : Degradation.t list;
}

type inspect = {
  on_model : Formulation.built -> unit;
  on_step : step_stat -> Placement.t -> unit;
}

type config = {
  chip_width : float option;
  height_limit : float option;
  group_size : int;
  ordering : [ `Linear | `Random of int | `Area_desc ];
  objective : Formulation.objective;
  formulation : Formulation.mode;
  allow_rotation : bool;
  linearization : Formulation.linearization;
  use_covering : bool;
  max_cover_rects : int option;
  envelope : envelope_config option;
  compact_each_step : bool;
  critical_net_bound : (Fp_netlist.Net.t -> float option) option;
  milp : Branch_bound.params;
  check : bool;
  inspect : inspect option;
  jobs : int;
  candidates : int;
  run_time_limit : float option;
  max_retries : int;
  retry_escalation : float;
  checkpoint : string option;
}

let default_config =
  {
    chip_width = None;
    height_limit = None;
    group_size = 4;
    ordering = `Linear;
    objective = Formulation.Min_height;
    formulation = Formulation.Basic;
    allow_rotation = true;
    linearization = Formulation.Secant;
    use_covering = true;
    max_cover_rects = Some 8;
    envelope = None;
    compact_each_step = true;
    critical_net_bound = None;
    milp =
      {
        Branch_bound.default_params with
        Branch_bound.node_limit = 4000;
        time_limit = 20.;
        min_improvement = 1e-4;
        branch_rule = Branch_bound.First_fractional;
      };
    check = false;
    inspect = None;
    jobs = 1;
    candidates = 1;
    run_time_limit = None;
    max_retries = 2;
    retry_escalation = 4.;
    checkpoint = None;
  }

type result = {
  placement : Placement.t;
  steps : step_stat list;
  total_time : float;
  config : config;
  degradations : (int * Degradation.t) list;
  interrupted : bool;
}

(* Canonical rendering of everything in the config that shapes the
   placement trajectory, digested into the checkpoint journal.  [jobs],
   [milp.jobs] and [milp.ramp_nodes] are deliberately excluded — the
   deterministic replay makes the trajectory independent of worker
   scheduling, and resume must work across [--jobs] values.  [check],
   [inspect] and [checkpoint] are observational.  The two closure fields
   cannot be digested, only their presence can: resuming with a
   {e different} bound function or objective weight of the same shape is
   on the caller. *)
let config_digest cfg =
  let b = Buffer.create 256 in
  let p fmt = Printf.bprintf b fmt in
  (match cfg.chip_width with None -> p "w:auto;" | Some w -> p "w:%h;" w);
  (* Emitted only when set, so digests of unconstrained configs match
     the ones journals recorded before the field existed. *)
  (match cfg.height_limit with None -> () | Some h -> p "hlim:%h;" h);
  p "g:%d;" cfg.group_size;
  (match cfg.ordering with
  | `Linear -> p "ord:linear;"
  | `Random seed -> p "ord:random:%d;" seed
  | `Area_desc -> p "ord:area_desc;");
  (match cfg.objective with
  | Formulation.Min_height -> p "obj:height;"
  | Formulation.Min_height_plus_wire lambda -> p "obj:wire:%h;" lambda);
  (* Emitted only when non-default, so digests of basic-formulation
     configs match the ones journals recorded before the field existed.
     The cut knobs shape the trajectory only in [Cuts] mode, so they are
     digested only there. *)
  (match cfg.formulation with
  | Formulation.Basic -> ()
  | Formulation.Tight -> p "form:tight;"
  | Formulation.Cuts ->
    p "form:cuts:%d:%d;" cfg.milp.Branch_bound.cut_rounds
      cfg.milp.Branch_bound.cuts_per_round);
  p "rot:%b;" cfg.allow_rotation;
  p "lin:%s;"
    (match cfg.linearization with
    | Formulation.Tangent -> "tangent"
    | Formulation.Secant -> "secant");
  p "cov:%b;" cfg.use_covering;
  (match cfg.max_cover_rects with
  | None -> p "maxcov:none;"
  | Some m -> p "maxcov:%d;" m);
  (match cfg.envelope with
  | None -> p "env:none;"
  | Some e -> p "env:%h:%h:%h;" e.pitch_h e.pitch_v e.share);
  p "compact:%b;" cfg.compact_each_step;
  p "netbound:%b;" (cfg.critical_net_bound <> None);
  let m = cfg.milp in
  p "milp:%d:%h:%h:%h:%s:%b:%b:%b;" m.Branch_bound.node_limit
    m.Branch_bound.time_limit m.Branch_bound.int_tol
    m.Branch_bound.min_improvement
    (match m.Branch_bound.branch_rule with
    | Branch_bound.Most_fractional -> "mf"
    | Branch_bound.First_fractional -> "ff")
    m.Branch_bound.warm_lp m.Branch_bound.shadow_cold
    m.Branch_bound.deterministic;
  p "cand:%d;" cfg.candidates;
  (match cfg.run_time_limit with
  | None -> p "deadline:none;"
  | Some l -> p "deadline:%h;" l);
  p "retries:%d:%h;" cfg.max_retries cfg.retry_escalation;
  Digest.to_hex (Digest.string (Buffer.contents b))

let margins_of cfg nl id =
  match cfg.envelope with
  | None -> (0., 0., 0., 0.)
  | Some e ->
    let pl, pr, pb, pt = Netlist.pins_per_side nl id in
    let f pins pitch = float_of_int pins *. pitch *. e.share in
    (f pl e.pitch_v, f pr e.pitch_v, f pb e.pitch_h, f pt e.pitch_h)

let items_of_group cfg nl group =
  List.map
    (fun id ->
      { Formulation.def = Netlist.module_at nl id;
        margins = margins_of cfg nl id })
    group

let item_max_height ~allow_rotation ~linearization (it : Formulation.item) =
  let l, r, b, t = it.Formulation.margins in
  match it.Formulation.def.Module_def.shape with
  | Module_def.Rigid { w; h } ->
    let he = h +. b +. t and we = w +. l +. r in
    if allow_rotation then Float.max he we else he
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min = Float.sqrt (area *. min_aspect)
    and w_max = Float.sqrt (area *. max_aspect) in
    let h_base = area /. w_max in
    let slope =
      match linearization with
      | Formulation.Tangent -> area /. (w_max *. w_max)
      | Formulation.Secant ->
        if Tol.leq w_max w_min then 0. else area /. (w_min *. w_max)
    in
    h_base +. b +. t +. (slope *. Float.max 0. (w_max -. w_min))

(* Default chip width: a roughly square chip for the total reserved
   area, never narrower than the widest single module. *)
let derive_chip_width cfg nl =
  let items =
    items_of_group cfg nl (List.init (Netlist.num_modules nl) Fun.id)
  in
  let reserved =
    List.fold_left
      (fun a it ->
        a
        +. Formulation.item_min_reserved_area
             ~linearization:cfg.linearization it)
      0. items
  in
  let min_w =
    List.fold_left
      (fun a it ->
        Float.max a
          (Formulation.item_min_width ~allow_rotation:cfg.allow_rotation it))
      0. items
  in
  Float.max (Float.sqrt reserved) min_w

let ordering_of cfg nl =
  match cfg.ordering with
  | `Linear -> Ordering.linear nl
  | `Random seed -> Ordering.random ~seed nl
  | `Area_desc -> Ordering.by_area_desc nl

let obstacles_of cfg skyline placement =
  if cfg.use_covering then begin
    let cover = Covering.of_skyline skyline in
    match cfg.max_cover_rects with
    | Some m when List.length cover > m -> Covering.coarsen ~max_count:m cover
    | Some _ | None -> cover
  end
  else Placement.envelopes placement

(* Everything one candidate evaluation produces.  Evaluation is pure
   with respect to the partial floorplan — [Placement], [Skyline] and
   [Formulation.build] are functional — so several candidates can be
   evaluated concurrently against the same snapshot and at most one
   committed. *)
type eval = {
  e_group : int list;
  e_built : Formulation.built;
  e_num_obstacles : int;
  e_outcome : Branch_bound.outcome;
  e_warm_height : float;
  e_placement : Placement.t;
  e_skyline : Skyline.t;
  e_degradations : Degradation.t list;
}

(* Fabricated outcome for steps whose MILP never ran (deadline-truncated
   warm-only commits): all-zero effort, no incumbent. *)
let no_outcome =
  {
    Branch_bound.status = Branch_bound.No_solution; best = None; nodes = 0;
    lp_solves = 0; warm_hits = 0; cold_solves = 0; refactorizations = 0;
    pivots = 0; shadow_pivots = 0; numerical_recoveries = 0;
    cuts_added = 0; cuts_purged = 0; separation_time = 0.; tasks_lost = 0;
    root_bound = nan; elapsed = 0.;
    per_domain = [||]; frontier_tasks = 0; waves = 0;
  }

(* Silicon rectangle of a warm-start choice, mirroring
   [Formulation.extract] exactly — the direct-commit path for when even
   the warm point's MILP encoding is rejected by numerics. *)
let placed_of_choice (it : Formulation.item) (c : Warm_start.choice) =
  let l, r, mb, mt = it.Formulation.margins in
  let env = c.Warm_start.envelope in
  let silicon =
    match it.Formulation.def.Module_def.shape with
    | Module_def.Rigid { w; h } ->
      if c.Warm_start.rotated then
        (* Margins rotate with the module: (l,r,b,t) -> (b,t,l,r). *)
        Rect.make ~x:(env.Rect.x +. mb) ~y:(env.Rect.y +. l) ~w:h ~h:w
      else Rect.make ~x:(env.Rect.x +. l) ~y:(env.Rect.y +. mb) ~w ~h
    | Module_def.Flexible { area; _ } ->
      let w_sil = Float.max Tol.eps (env.Rect.w -. l -. r) in
      let h_sil = area /. w_sil in
      Rect.make ~x:(env.Rect.x +. l) ~y:(env.Rect.y +. mb) ~w:w_sil ~h:h_sil
  in
  ignore r;
  ignore mt;
  (env, silicon, c.Warm_start.rotated)

(* Net names whose configured length bound is exceeded in [placement]
   (only nets with every pin placed can be measured). *)
let nets_over_bound cfg nl placement =
  match cfg.critical_net_bound with
  | None -> []
  | Some bound_fn ->
    List.filter_map
      (fun net ->
        match bound_fn net with
        | None -> None
        | Some b -> (
          match Metrics.net_hpwl nl placement net with
          | Some len when Tol.gt len b -> Some net.Net.name
          | _ -> None))
      (Netlist.nets nl)

let evaluate cfg nl ~chip_width ~skyline ~placement ~pool ~mode group =
  (* Largest modules first: their pair binaries are declared first, so
     First_fractional branching decides the big shapes early. *)
  let group =
    List.sort
      (fun a b ->
        compare
          (Module_def.area (Netlist.module_at nl b))
          (Module_def.area (Netlist.module_at nl a)))
      group
  in
  let items = Array.of_list (items_of_group cfg nl group) in
  let ids = Array.of_list group in
  let obstacles = obstacles_of cfg skyline placement in
  let height_bound =
    let free =
      Skyline.max_height skyline
      +. Array.fold_left
           (fun a it ->
             a
             +. item_max_height ~allow_rotation:cfg.allow_rotation
                  ~linearization:cfg.linearization it)
           0. items
      +. 1.
    in
    match cfg.height_limit with
    | None -> free
    | Some h ->
      (* Fixed-outline mode: cap the chip-height variable at the outline
         height, but never below what keeps [Formulation.build]
         well-posed — every item's minimum height must fit under the
         bound, and the obstacle tops must stay inside it.  An outline
         the step genuinely cannot meet then shows up as MILP
         infeasibility (warm fallback + degradation), not as a raised
         [Invalid_argument]. *)
      let floor_h =
        Array.fold_left
          (fun a it ->
            Float.max a
              (Formulation.item_min_height ~allow_rotation:cfg.allow_rotation
                 it))
          (List.fold_left
             (fun a r -> Float.max a (Rect.y_max r))
             0. obstacles)
          items
      in
      Float.min free (Float.max h (floor_h +. 1.))
  in
  (* Warm start: greedy bottom-left packing on the profile of the
     obstacles actually passed to the MILP.  This must NOT be the
     placed-module skyline: coarsened covering rectangles are hulls
     that can protrude above it, and a warm placement on the lower
     profile would overlap them. *)
  let obstacle_sky =
    List.fold_left Skyline.add_rect (Skyline.create ~width:chip_width) obstacles
  in
  let warm =
    Warm_start.place_group ~skyline:obstacle_sky
      ~allow_rotation:cfg.allow_rotation ~linearization:cfg.linearization items
  in
  let warm_height = Warm_start.height_after ~skyline:obstacle_sky warm in
  (* Incumbent clamp (Tight / Cuts): the warm packing is a feasible
     placement of height [warm_height], so when height alone is
     optimized no solution worth finding exceeds it — shrinking the
     chip-height variable's bound to the incumbent is then free, and it
     is the single strongest input to the per-pair big-M computation:
     every vertical M is capped by the height bound, so the whole
     vertical relaxation tightens with it.  Unsafe under a wirelength
     term or critical-net bounds (the optimum may trade height up), so
     those keep the free bound.  The warm point itself stays feasible
     at equality, and the warm skyline dominates every obstacle top and
     item minimum height, so the model stays well-posed. *)
  let height_bound =
    match (cfg.formulation, cfg.objective, cfg.critical_net_bound) with
    | (Formulation.Tight | Formulation.Cuts), Formulation.Min_height, None ->
      Float.min height_bound warm_height
    | _ -> height_bound
  in
  let wire_context =
    match (cfg.objective, cfg.critical_net_bound) with
    | Formulation.Min_height, None -> None
    | Formulation.Min_height_plus_wire _, _ | _, Some _ ->
      (* Length bounds need the net bounding-box variables too. *)
      Some (nl, placement, ids)
  in
  let built =
    Formulation.build ~chip_width ~height_bound ~objective:cfg.objective
      ~formulation:cfg.formulation
      ~allow_rotation:cfg.allow_rotation ~linearization:cfg.linearization
      ~fixed:obstacles ?wire_context ?net_length_bound:cfg.critical_net_bound
      ~check:cfg.check (Array.to_list items)
  in
  let warm_sol =
    (* The warm placement avoids the obstacles by construction; if
       numerics still reject it, search without an incumbent rather
       than aborting the run. *)
    match
      Formulation.assign_warm built
        (fun k -> warm.(k).Warm_start.envelope)
        ~rotated:(fun k -> warm.(k).Warm_start.rotated)
    with
    | sol -> Some sol
    | exception Invalid_argument msg ->
      Log.warn (fun f -> f "warm start unusable: %s" msg);
      None
  in
  let degradations = ref [] in
  let degrade d = degradations := d :: !degradations in
  (* [sol = None] means "no MILP-encoded point at all": the group is
     committed geometrically from the warm choices. *)
  let outcome, sol =
    match mode with
    | `Warm_only reason ->
      degrade reason;
      (no_outcome, warm_sol)
    | `Solve milp ->
      Fault.trip site_candidate;
      let outcome =
        Branch_bound.solve ~params:milp ?warm:warm_sol ?pool
          ?cutter:(Formulation.separator built)
          ~cut_pool:built.Formulation.cut_candidates
          built.Formulation.model
      in
      if outcome.Branch_bound.numerical_recoveries > 0 then
        degrade
          (Degradation.Numerical_recovery
             outcome.Branch_bound.numerical_recoveries);
      if outcome.Branch_bound.tasks_lost > 0 then
        degrade (Degradation.Task_lost outcome.Branch_bound.tasks_lost);
      (match (outcome.Branch_bound.best, warm_sol) with
      | Some (x, _), Some w
        when outcome.Branch_bound.status <> Branch_bound.Optimal && x = w ->
        (* The budget ran out and the "incumbent" is just the warm
           packing the search was seeded with — optimization never
           improved on the heuristic. *)
        degrade Degradation.Budget_exhausted_warm_fallback;
        (outcome, Some x)
      | Some (x, _), _ -> (outcome, Some x)
      | None, Some w ->
        (match outcome.Branch_bound.status with
        | Branch_bound.No_solution ->
          Log.warn (fun f ->
              f "MILP step found no solution; falling back to warm start");
          degrade Degradation.Budget_exhausted_warm_fallback
        | _ ->
          (* The linearized model rejects every point (typically a net
             length bound no placement of this group can satisfy any
             more); the geometric packing is still sound. *)
          Log.warn (fun f ->
              f "MILP step infeasible; committing warm packing");
          degrade Degradation.Raw_warm_packing);
        (outcome, Some w)
      | None, None ->
        Log.err (fun f ->
            f "MILP step failed outright; using raw warm packing");
        degrade Degradation.Raw_warm_packing;
        (outcome, None))
  in
  let extracted =
    match sol with
    | Some sol -> Formulation.extract built sol
    | None ->
      (* Last resort: trust the geometric warm placement even though
         the model rejected its encoding. *)
      Array.mapi (fun k c -> placed_of_choice items.(k) c) warm
  in
  let pre_placement = placement in
  let placement = ref placement in
  Array.iteri
    (fun k (envelope, silicon, rotated) ->
      placement :=
        Placement.add !placement
          { Placement.module_id = ids.(k); rect = silicon; envelope; rotated })
    extracted;
  if cfg.compact_each_step then placement := Compact.vertical !placement;
  (* Surface critical nets whose bound the committed placement exceeds —
     the documented best-effort fallback, now with names attached.  Nets
     already over bound before this step were reported when it happened. *)
  (match nets_over_bound cfg nl !placement with
  | [] -> ()
  | over -> (
    let before = nets_over_bound cfg nl pre_placement in
    match List.filter (fun n -> not (List.mem n before)) over with
    | [] -> ()
    | dropped -> degrade (Degradation.Net_bound_dropped dropped)));
  let skyline =
    Skyline.of_rects ~width:chip_width (Placement.envelopes !placement)
  in
  {
    e_group = group;
    e_built = built;
    e_num_obstacles = List.length obstacles;
    e_outcome = outcome;
    e_warm_height = warm_height;
    e_placement = !placement;
    e_skyline = skyline;
    e_degradations = List.rev !degradations;
  }

let run ?(config = default_config) ?resume ?pool:shared_pool nl =
  let cfg = config in
  if Netlist.num_modules nl = 0 then
    invalid_arg "Augment.run: empty instance";
  if cfg.group_size < 1 then invalid_arg "Augment.run: group_size < 1";
  if cfg.jobs < 1 then invalid_arg "Augment.run: jobs < 1";
  if cfg.candidates < 1 then invalid_arg "Augment.run: candidates < 1";
  if cfg.max_retries < 0 then invalid_arg "Augment.run: max_retries < 0";
  if Tol.lt cfg.retry_escalation 1. then
    invalid_arg "Augment.run: retry_escalation < 1";
  let t0 = Unix.gettimeofday () in
  let run_deadline = Option.map (fun l -> t0 +. l) cfg.run_time_limit in
  let chip_width =
    match cfg.chip_width with
    | Some w -> w
    | None -> derive_chip_width cfg nl
  in
  let cfg_digest = config_digest cfg in
  let inst_digest = Journal.digest_instance nl in
  let start_placement, start_skyline, start_groups, steps_done0 =
    match resume with
    | None ->
      let order = ordering_of cfg nl in
      ( Placement.empty ~chip_width,
        Skyline.create ~width:chip_width,
        Ordering.groups ~size:cfg.group_size order,
        0 )
    | Some (j : Journal.t) ->
      if j.Journal.config_digest <> cfg_digest then
        invalid_arg
          "Augment.run: checkpoint was written under a different \
           configuration";
      if j.Journal.instance_digest <> inst_digest then
        invalid_arg "Augment.run: checkpoint belongs to a different instance";
      if j.Journal.chip_width <> chip_width then
        invalid_arg "Augment.run: checkpoint chip width mismatch";
      ( j.Journal.placement,
        Skyline.of_rects ~width:chip_width
          (Placement.envelopes j.Journal.placement),
        j.Journal.remaining,
        j.Journal.steps_done )
  in
  let write_checkpoint ~steps_done ~placement ~remaining =
    match cfg.checkpoint with
    | None -> ()
    | Some path ->
      Journal.write ~path
        { Journal.config_digest = cfg_digest; instance_digest = inst_digest;
          chip_width; steps_done; placement; remaining }
  in
  let with_pool k =
    match shared_pool with
    | Some _ ->
      (* Caller-owned pool: use it for this run, never shut it down. *)
      k shared_pool
    | None ->
      if cfg.jobs > 1 then Pool.with_pool ~jobs:cfg.jobs (fun p -> k (Some p))
      else k None
  in
  with_pool @@ fun pool ->
  let skyline = ref start_skyline in
  let placement = ref start_placement in
  let steps = ref [] in
  let step_no = ref steps_done0 in
  let run_degr = ref [] in
  let remaining = ref start_groups in
  let interrupted = ref false in
  (* Escalation ladder for a retried step: multiply the node and time
     budgets, bounded so a pathological step cannot take the run down
     with it.  The time side additionally never exceeds what is left of
     the run deadline. *)
  let escalate base attempt ~deadline_left =
    let f = cfg.retry_escalation ** float_of_int attempt in
    let node_limit =
      let n = float_of_int base.Branch_bound.node_limit *. f in
      if Tol.gt n 10_000_000. then 10_000_000 else int_of_float n
    in
    let time_limit =
      Float.min (base.Branch_bound.time_limit *. f) deadline_left
    in
    { base with Branch_bound.node_limit; time_limit }
  in
  (* Hook guard: hooks observe, they must not kill the run.  [Abort] is
     the one exception with sanctioned pass-through — it is the
     cooperative-interrupt signal. *)
  let guard_hook name f =
    try
      Fault.trip site_hook;
      f ()
    with
    | Abort -> raise Abort
    | exn ->
      let msg = name ^ ": " ^ Printexc.to_string exn in
      Log.warn (fun l -> l "inspection hook failed: %s" msg);
      run_degr := (!step_no, Degradation.Hook_failed msg) :: !run_degr
  in
  let commit ~step_start ~time_budget ~n_cand ~retries ~extra_degr
      ~new_remaining e =
    incr step_no;
    placement := e.e_placement;
    skyline := e.e_skyline;
    remaining := new_remaining;
    let degradations = e.e_degradations @ extra_degr in
    let outcome = e.e_outcome in
    let stat =
      {
        group = e.e_group;
        num_integer_vars =
          Fp_milp.Model.num_integer_vars e.e_built.Formulation.model;
        num_constraints =
          Fp_milp.Model.num_constrs e.e_built.Formulation.model;
        num_cover_rects = e.e_num_obstacles;
        milp_status = outcome.Branch_bound.status;
        nodes = outcome.Branch_bound.nodes;
        lp_solves = outcome.Branch_bound.lp_solves;
        warm_hits = outcome.Branch_bound.warm_hits;
        cold_solves = outcome.Branch_bound.cold_solves;
        pivots = outcome.Branch_bound.pivots;
        shadow_pivots = outcome.Branch_bound.shadow_pivots;
        refactorizations = outcome.Branch_bound.refactorizations;
        cuts_added = outcome.Branch_bound.cuts_added;
        cuts_purged = outcome.Branch_bound.cuts_purged;
        separation_time = outcome.Branch_bound.separation_time;
        warm_height = e.e_warm_height;
        step_height = Skyline.max_height !skyline;
        step_time = Unix.gettimeofday () -. step_start;
        time_budget;
        candidates_evaluated = n_cand;
        retries;
        degradations;
      }
    in
    Log.info (fun f ->
        f "step [%s]: %d ints, %d rows, %d covers, %d nodes, h=%.2f (warm %.2f)%s"
          (String.concat "," (List.map string_of_int stat.group))
          stat.num_integer_vars stat.num_constraints stat.num_cover_rects
          stat.nodes stat.step_height stat.warm_height
          (match degradations with
          | [] -> ""
          | ds ->
            " degraded: "
            ^ String.concat ", " (List.map Degradation.to_string ds)));
    steps := stat :: !steps;
    List.iter (fun d -> run_degr := (!step_no, d) :: !run_degr) degradations;
    (* Journal before the hooks: a hook-driven interrupt must land after
       the commit it observed, or resume would redo the step. *)
    write_checkpoint ~steps_done:!step_no ~placement:!placement
      ~remaining:new_remaining;
    (match cfg.inspect with
    | None -> ()
    | Some i ->
      guard_hook "on_model" (fun () -> i.on_model e.e_built);
      guard_hook "on_step" (fun () -> i.on_step stat !placement))
  in
  (* One attempt at the head step: evaluate up to [candidates] groups,
     pick the lowest-skyline one.  Returns the committed-or-retryable
     verdict; candidate failures are excluded from selection. *)
  let attempt_candidates ~milp =
    let n_cand = Int.min cfg.candidates (List.length !remaining) in
    let cands =
      Array.of_list (List.filteri (fun i _ -> i < n_cand) !remaining)
    in
    let eval1 ~pool ~milp k =
      try
        Ok
          (evaluate cfg nl ~chip_width ~skyline:!skyline
             ~placement:!placement ~pool ~mode:(`Solve milp) cands.(k))
      with
      | Abort -> raise Abort
      | exn -> Error (Printexc.to_string exn)
    in
    let worker_failure = ref None in
    let evals =
      if n_cand = 1 then
        (* Single candidate: all the parallelism goes into the MILP
           itself, which shares the run-wide pool. *)
        [| eval1 ~pool ~milp 0 |]
      else begin
        (* Several candidates: one per pool task, each MILP sequential
           inside its task — pool batches must not nest. *)
        let milp1 = { milp with Branch_bound.jobs = 1 } in
        match pool with
        | Some p -> (
          try Pool.map p ~n:n_cand (fun ~worker:_ k -> eval1 ~pool:None ~milp:milp1 k)
          with
          | Abort -> raise Abort
          | exn ->
            (* The pool itself failed; evaluate sequentially on the
               calling domain instead of giving up on the step. *)
            worker_failure := Some (Printexc.to_string exn);
            Array.init n_cand (eval1 ~pool:None ~milp:milp1))
        | None -> Array.init n_cand (eval1 ~pool:None ~milp:milp1)
      end
    in
    let failures = ref [] in
    let ok = ref [] in
    Array.iteri
      (fun i r ->
        match r with
        | Ok e -> ok := (i, e) :: !ok
        | Error msg ->
          Log.warn (fun f -> f "candidate %d failed: %s" i msg);
          failures := Degradation.Candidate_failed msg :: !failures)
      evals;
    let extra_degr =
      List.rev !failures
      @
      match !worker_failure with
      | None -> []
      | Some msg -> [ Degradation.Worker_failure msg ]
    in
    (* Commit the candidate with the lowest resulting skyline; ties go
       to the earliest candidate in the ordering, so the choice is
       independent of how the pool scheduled the evaluations. *)
    let best =
      List.fold_left
        (fun acc (i, e) ->
          match acc with
          | None -> Some (i, e)
          | Some (bi, be) ->
            if
              Skyline.max_height e.e_skyline
              < Skyline.max_height be.e_skyline
              || (Skyline.max_height e.e_skyline
                  = Skyline.max_height be.e_skyline
                 && i < bi)
            then Some (i, e)
            else acc)
        None (List.rev !ok)
    in
    (n_cand, extra_degr, best)
  in
  (try
     while !remaining <> [] do
       let step_start = Unix.gettimeofday () in
       let deadline_left =
         match run_deadline with
         | None -> infinity
         | Some dl -> dl -. step_start
       in
       if Tol.leq deadline_left 0. then begin
         (* Run deadline expired: the remaining groups are committed
            from their warm packings, no MILP — the engine stays
            anytime and every commit is still overlap-free. *)
         let group = List.hd !remaining in
         let e =
           evaluate cfg nl ~chip_width ~skyline:!skyline
             ~placement:!placement ~pool:None
             ~mode:(`Warm_only Degradation.Deadline_truncated) group
         in
         commit ~step_start ~time_budget:0. ~n_cand:0 ~retries:0
           ~extra_degr:[] ~new_remaining:(List.tl !remaining) e
       end
       else begin
         (* Apportion what is left of the run budget over the steps
            still to do, never exceeding the configured per-step cap. *)
         let steps_left = List.length !remaining in
         let share = deadline_left /. float_of_int steps_left in
         let base_milp =
           { cfg.milp with
             Branch_bound.time_limit =
               Float.min cfg.milp.Branch_bound.time_limit share;
             (* Node-entry interval propagation rides the strengthened
                formulations: it needs no formulation support itself, but
                gating it keeps the default [Basic] trajectory (and its
                recorded benchmarks) bit-identical. *)
             propagate = cfg.formulation <> Formulation.Basic }
         in
         let rec attempt k =
           let milp = escalate base_milp k ~deadline_left in
           let n_cand, extra_degr, best = attempt_candidates ~milp in
           let retry_degr =
             if k > 0 then [ Degradation.Retry_escalated k ] else []
           in
           match best with
           | Some (bi, e) ->
             (* Budget-type shortfalls — no incumbent at all, or an
                incumbent that never improved on the warm packing — are
                exactly what a bigger budget can fix: retry before
                settling.  Infeasibility is not retried (no budget can
                fix it; the warm fallback commits immediately). *)
             let budget_shortfall =
               (e.e_outcome.Branch_bound.best = None
               && e.e_outcome.Branch_bound.status = Branch_bound.No_solution)
               || List.mem Degradation.Budget_exhausted_warm_fallback
                    e.e_degradations
             in
             if budget_shortfall && k < cfg.max_retries then begin
               Log.info (fun f ->
                   f "step stuck at its warm start; retry %d with escalated \
                      budget"
                     (k + 1));
               attempt (k + 1)
             end
             else
               commit ~step_start
                 ~time_budget:milp.Branch_bound.time_limit ~n_cand
                 ~retries:k ~extra_degr:(retry_degr @ extra_degr)
                 ~new_remaining:
                   (List.filteri (fun i _ -> i <> bi) !remaining)
                 e
           | None ->
             if k < cfg.max_retries then begin
               Log.warn (fun f ->
                   f "every candidate failed; retry %d with escalated budget"
                     (k + 1));
               attempt (k + 1)
             end
             else begin
               (* Out of retries with nothing evaluable: commit the head
                  group geometrically so the run still terminates with a
                  feasible floorplan. *)
               let group = List.hd !remaining in
               let e =
                 evaluate cfg nl ~chip_width ~skyline:!skyline
                   ~placement:!placement ~pool:None
                   ~mode:(`Warm_only Degradation.Raw_warm_packing) group
               in
               commit ~step_start
                 ~time_budget:milp.Branch_bound.time_limit ~n_cand
                 ~retries:k ~extra_degr:(retry_degr @ extra_degr)
                 ~new_remaining:(List.tl !remaining) e
             end
         in
         attempt 0
       end
     done
   with Abort ->
     Log.info (fun f -> f "run aborted by hook after %d steps" !step_no);
     interrupted := true);
  {
    placement = !placement;
    steps = List.rev !steps;
    total_time = Unix.gettimeofday () -. t0;
    config = cfg;
    degradations = List.rev !run_degr;
    interrupted = !interrupted;
  }
