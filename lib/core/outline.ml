module Tol = Fp_geometry.Tol

type t =
  | Free
  | Max_width of float
  | Fixed of { w : float; h : float }

let width_limit = function
  | Free -> None
  | Max_width w -> Some w
  | Fixed { w; _ } -> Some w

let height_limit = function
  | Free | Max_width _ -> None
  | Fixed { h; _ } -> Some h

let excess t ~w ~h =
  match t with
  | Free -> 0.
  | Max_width wmax -> Float.max 0. (w -. wmax)
  | Fixed { w = wmax; h = hmax } ->
    Float.max 0. (Float.max (w -. wmax) (h -. hmax))

let fits t ~w ~h = Tol.leq (excess t ~w ~h) 0.

let to_string = function
  | Free -> "free"
  | Max_width w -> Printf.sprintf "max-width %g" w
  | Fixed { w; h } -> Printf.sprintf "fixed %gx%g" w h
