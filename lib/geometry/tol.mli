(** Floating-point tolerance used throughout the geometric layer.

    All module dimensions in the bundled instances are small integers stored
    as floats, so a fixed absolute tolerance is adequate; no geometric
    predicate in this library needs exact arithmetic.

    Every predicate takes an optional [?tol] (default {!eps}) and is defined
    through {!within}, so the library applies one consistent comparison
    discipline; callers with different precision needs (the solution
    certifier, LP-facing code) pass an explicit tolerance rather than
    re-deriving epsilon arithmetic. *)

val eps : float
(** Absolute tolerance for coordinate comparisons (1e-6). *)

val within : tol:float -> float -> float -> bool
(** [within ~tol a b] is [true] when [a] and [b] differ by at most [tol] —
    the primitive every other predicate is defined through. *)

val equal : ?tol:float -> float -> float -> bool
(** [equal a b] is [within ~tol a b]; [tol] defaults to {!eps}. *)

val leq : ?tol:float -> float -> float -> bool
(** [leq a b] is [a <= b + tol]. *)

val lt : ?tol:float -> float -> float -> bool
(** [lt a b] is [a < b - tol] (strictly less, beyond tolerance). *)

val geq : ?tol:float -> float -> float -> bool
(** [geq a b] is [leq b a]. *)

val gt : ?tol:float -> float -> float -> bool
(** [gt a b] is [lt b a] (strictly greater, beyond tolerance). *)

val is_zero : ?tol:float -> float -> bool
(** [is_zero a] is [equal a 0.]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the interval [[lo, hi]]. *)
