type t = { x : float; y : float; w : float; h : float }

let make ~x ~y ~w ~h =
  if Tol.lt w 0. || Tol.lt h 0. then
    invalid_arg (Printf.sprintf "Rect.make: negative extent w=%g h=%g" w h);
  { x; y; w = Float.max 0. w; h = Float.max 0. h }

let of_corners (p : Point.t) (q : Point.t) =
  let x = Float.min p.x q.x and y = Float.min p.y q.y in
  make ~x ~y ~w:(Float.abs (p.x -. q.x)) ~h:(Float.abs (p.y -. q.y))

let area t = t.w *. t.h
let x_span t = Interval.make t.x (t.x +. t.w)
let y_span t = Interval.make t.y (t.y +. t.h)
let x_max t = t.x +. t.w
let y_max t = t.y +. t.h
let center t = Point.make (t.x +. (0.5 *. t.w)) (t.y +. (0.5 *. t.h))
let lower_left t = Point.make t.x t.y
let translate ~dx ~dy t = { t with x = t.x +. dx; y = t.y +. dy }
let rotate90 t = { t with w = t.h; h = t.w }

let inflate ~left ~right ~bottom ~top t =
  let x = t.x -. left and y = t.y -. bottom in
  let w = Float.max 0. (t.w +. left +. right)
  and h = Float.max 0. (t.h +. bottom +. top) in
  { x; y; w; h }

let overlaps a b =
  Interval.overlaps (x_span a) (x_span b)
  && Interval.overlaps (y_span a) (y_span b)

let overlap_area a b =
  match
    (Interval.intersect (x_span a) (x_span b),
     Interval.intersect (y_span a) (y_span b))
  with
  | Some ix, Some iy -> Interval.length ix *. Interval.length iy
  | _ -> 0.

let contains_point t (p : Point.t) =
  Interval.contains (x_span t) p.x && Interval.contains (y_span t) p.y

let contains_rect ~outer ~inner =
  Tol.leq outer.x inner.x
  && Tol.leq outer.y inner.y
  && Tol.leq (x_max inner) (x_max outer)
  && Tol.leq (y_max inner) (y_max outer)

let intersect a b =
  match
    (Interval.intersect (x_span a) (x_span b),
     Interval.intersect (y_span a) (y_span b))
  with
  | Some ix, Some iy ->
    Some
      (make ~x:ix.Interval.lo ~y:iy.Interval.lo ~w:(Interval.length ix)
         ~h:(Interval.length iy))
  | _ -> None

let hull a b =
  let x = Float.min a.x b.x and y = Float.min a.y b.y in
  let xh = Float.max (x_max a) (x_max b)
  and yh = Float.max (y_max a) (y_max b) in
  make ~x ~y ~w:(xh -. x) ~h:(yh -. y)

let bounding_box = function
  | [] -> None
  | r :: rest -> Some (List.fold_left hull r rest)

(* Union area by coordinate compression: collect all distinct x cuts, and
   inside each vertical strip merge the y-intervals of the rectangles that
   span it.  O(n^2 log n), fine for floorplans of a few hundred modules. *)
let union_area rects =
  let rects = List.filter (fun r -> r.w > Tol.eps && r.h > Tol.eps) rects in
  match rects with
  | [] -> 0.
  | _ ->
    let xs =
      List.concat_map (fun r -> [ r.x; x_max r ]) rects
      |> List.sort_uniq compare
    in
    let strip_area x0 x1 =
      let spanning =
        List.filter (fun r -> Tol.leq r.x x0 && Tol.leq x1 (x_max r)) rects
      in
      let ys =
        List.map (fun r -> (r.y, y_max r)) spanning
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let rec merged total cur_lo cur_hi = function
        | [] -> total +. (cur_hi -. cur_lo)
        | (lo, hi) :: rest ->
          if Tol.leq lo cur_hi then
            merged total cur_lo (Float.max cur_hi hi) rest
          else merged (total +. (cur_hi -. cur_lo)) lo hi rest
      in
      let covered =
        match ys with [] -> 0. | (lo, hi) :: rest -> merged 0. lo hi rest
      in
      covered *. (x1 -. x0)
    in
    let rec sweep acc = function
      | x0 :: (x1 :: _ as rest) -> sweep (acc +. strip_area x0 x1) rest
      | [ _ ] | [] -> acc
    in
    sweep 0. xs

let side_midpoint t = function
  | `Left -> Point.make t.x (t.y +. (0.5 *. t.h))
  | `Right -> Point.make (x_max t) (t.y +. (0.5 *. t.h))
  | `Bottom -> Point.make (t.x +. (0.5 *. t.w)) t.y
  | `Top -> Point.make (t.x +. (0.5 *. t.w)) (y_max t)

let equal a b =
  Tol.equal a.x b.x && Tol.equal a.y b.y && Tol.equal a.w b.w
  && Tol.equal a.h b.h

let pp ppf t = Format.fprintf ppf "{x=%g; y=%g; w=%g; h=%g}" t.x t.y t.w t.h
let to_string t = Format.asprintf "%a" pp t
