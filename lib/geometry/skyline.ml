type segment = { x0 : float; x1 : float; h : float }
type t = { width : float; segs : segment list }

let create ~width =
  if Tol.leq width 0. then invalid_arg "Skyline.create: width must be > 0";
  { width; segs = [ { x0 = 0.; x1 = width; h = 0. } ] }

let width t = t.width
let segments t = t.segs

(* Merge adjacent segments of equal height and drop empty ones. *)
let normalize segs =
  let rec go = function
    | a :: b :: rest when Tol.equal a.h b.h ->
      go ({ x0 = a.x0; x1 = b.x1; h = a.h } :: rest)
    | a :: rest when Tol.equal a.x0 a.x1 -> go rest
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go segs

let add_rect t (r : Rect.t) =
  let rx0 = Tol.clamp ~lo:0. ~hi:t.width r.Rect.x
  and rx1 = Tol.clamp ~lo:0. ~hi:t.width (Rect.x_max r) in
  let top = Rect.y_max r in
  if Tol.geq rx0 rx1 then t
  else
    let raise_seg s =
      (* Portions of [s] outside [rx0, rx1] keep height [s.h]; the covered
         portion is raised to [max s.h top]. *)
      let lo = Float.max s.x0 rx0 and hi = Float.min s.x1 rx1 in
      if Tol.geq lo hi then [ s ]
      else
        let mid = { x0 = lo; x1 = hi; h = Float.max s.h top } in
        let before =
          if Tol.lt s.x0 lo then [ { x0 = s.x0; x1 = lo; h = s.h } ] else []
        and after =
          if Tol.lt hi s.x1 then [ { x0 = hi; x1 = s.x1; h = s.h } ] else []
        in
        before @ [ mid ] @ after
    in
    { t with segs = normalize (List.concat_map raise_seg t.segs) }

let of_rects ~width rects = List.fold_left add_rect (create ~width) rects

let height_over t ~x0 ~x1 =
  let lo = Float.max 0. x0 and hi = Float.min t.width x1 in
  List.fold_left
    (fun acc s ->
      if Tol.lt (Float.max s.x0 lo) (Float.min s.x1 hi) then
        Float.max acc s.h
      else acc)
    0. t.segs

let min_height_over t ~x0 ~x1 =
  let lo = Float.max 0. x0 and hi = Float.min t.width x1 in
  List.fold_left
    (fun acc s ->
      if Tol.lt (Float.max s.x0 lo) (Float.min s.x1 hi) then
        Float.min acc s.h
      else acc)
    infinity t.segs

let max_height t = List.fold_left (fun acc s -> Float.max acc s.h) 0. t.segs

let min_height t =
  List.fold_left (fun acc s -> Float.min acc s.h) infinity t.segs

let area_under t =
  List.fold_left (fun acc s -> acc +. (s.h *. (s.x1 -. s.x0))) 0. t.segs

let best_position t ~w =
  if Tol.lt t.width w then None
  else
    let candidates =
      List.concat_map (fun s -> [ s.x0; s.x1 -. w ]) t.segs
      |> List.filter (fun x -> Tol.geq x 0. && Tol.leq (x +. w) t.width)
      |> List.sort_uniq compare
    in
    let candidates = if candidates = [] then [ 0. ] else candidates in
    let better (bx, by) x =
      let y = height_over t ~x0:x ~x1:(x +. w) in
      if Tol.lt y by || (Tol.equal y by && Tol.lt x bx) then (x, y)
      else (bx, by)
    in
    Some (List.fold_left better (infinity, infinity) candidates)

let equal a b =
  Tol.equal a.width b.width
  && List.length a.segs = List.length b.segs
  && List.for_all2
       (fun s1 s2 ->
         Tol.equal s1.x0 s2.x0 && Tol.equal s1.x1 s2.x1
         && Tol.equal s1.h s2.h)
       a.segs b.segs

let pp ppf t =
  Format.fprintf ppf "@[<h>skyline(w=%g):" t.width;
  List.iter
    (fun s -> Format.fprintf ppf " [%g,%g)@%g" s.x0 s.x1 s.h)
    t.segs;
  Format.fprintf ppf "@]"
