(* Tolerance discipline (shared with Skyline): extrema over segment heights
   are computed with exact float comparisons — a min must pick a definite
   witness — while every *predicate* (is this segment at, above, or below a
   level?) goes through Tol with the default eps, so heights within eps of
   the local minimum collapse into the same slab instead of spawning
   sliver rectangles. *)

(* The decomposition works on the skyline's segment array.  [carve base lo hi]
   handles the sub-profile of segments with indices in [lo, hi): it cuts the
   slab between [base] and the minimum height of the range (one horizontal
   edge-cut), then recurses on each maximal run of segments strictly above
   that minimum.  Every recursion level consumes at least one segment as a
   separator, which is what bounds the rectangle count by the segment
   count. *)

let of_skyline sky =
  let segs = Array.of_list (Skyline.segments sky) in
  let rec carve base lo hi acc =
    if lo >= hi then acc
    else
      let min_h = ref infinity in
      for i = lo to hi - 1 do
        if segs.(i).Skyline.h < !min_h then min_h := segs.(i).Skyline.h
      done;
      let min_h = !min_h in
      let acc =
        if Tol.lt base min_h then
          Rect.make ~x:segs.(lo).Skyline.x0 ~y:base
            ~w:(segs.(hi - 1).Skyline.x1 -. segs.(lo).Skyline.x0)
            ~h:(min_h -. base)
          :: acc
        else acc
      in
      (* Recurse on maximal runs of segments strictly above [min_h]. *)
      let rec runs i acc =
        if i >= hi then acc
        else if Tol.leq segs.(i).Skyline.h min_h then runs (i + 1) acc
        else
          let j = ref i in
          while !j < hi && Tol.lt min_h segs.(!j).Skyline.h do incr j done;
          runs !j (carve min_h i !j acc)
      in
      runs lo acc
  in
  List.rev (carve 0. 0 (Array.length segs) [])

let of_rects ~width rects = of_skyline (Skyline.of_rects ~width rects)

let coarsen ~max_count rects =
  if max_count < 1 then invalid_arg "Covering.coarsen: max_count < 1";
  let added_area a b =
    Rect.area (Rect.hull a b) -. Rect.area a -. Rect.area b
    +. Rect.overlap_area a b
  in
  let rec shrink rects =
    let arr = Array.of_list rects in
    let n = Array.length arr in
    if n <= max_count then rects
    else begin
      let best = ref (0, 1) and best_cost = ref infinity in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let c = added_area arr.(i) arr.(j) in
          if c < !best_cost then begin
            best_cost := c;
            best := (i, j)
          end
        done
      done;
      let i, j = !best in
      let merged = Rect.hull arr.(i) arr.(j) in
      let rest =
        Array.to_list arr
        |> List.filteri (fun k _ -> k <> i && k <> j)
      in
      shrink (merged :: rest)
    end
  in
  shrink rects
