let eps = 1e-6

(* Every predicate below is defined through [within] / [leq] with an
   explicit tolerance, so the whole geometric layer shares one comparison
   discipline and callers that need a different tolerance (the certifier,
   LP-facing code) can pass their own instead of re-deriving eps
   arithmetic. *)

let within ~tol a b = Float.abs (a -. b) <= tol
let equal ?(tol = eps) a b = within ~tol a b
let leq ?(tol = eps) a b = a <= b +. tol
let lt ?(tol = eps) a b = a < b -. tol
let geq ?(tol = eps) a b = leq ~tol b a
let gt ?(tol = eps) a b = lt ~tol b a
let is_zero ?(tol = eps) a = within ~tol a 0.
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
