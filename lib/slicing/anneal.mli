(** Simulated-annealing slicing floorplanner — the Wong–Liu (DAC'86)
    baseline the paper's related-work section contrasts with.

    Search space: normalized Polish expressions ({!Polish}); neighbour
    moves M1 (swap adjacent operands), M2 (complement an operator chain),
    M3 (swap an adjacent operand/operator pair); cost: bounding-box area
    of the best realization plus an optional wirelength term; schedule:
    geometric cooling with an adaptive initial temperature.

    Deterministic for a fixed seed. *)

type config = {
  seed : int;
  cooling : float;          (** temperature ratio per stage (default 0.88) *)
  moves_per_stage : int;    (** attempted moves per temperature; scaled by
                                the module count internally *)
  stages : int;             (** maximum cooling stages (default 60) *)
  wire_weight : float;      (** weight of the HPWL term (default 0.) *)
  outline : Fp_core.Outline.t;
      (** [Free] (default) minimizes bounding-box area; [Max_width w]
          realizes for minimum height at bounded width, like the MILP's
          fixed-width chip; [Fixed] additionally penalizes height excess
          in the cost so the search is driven inside the outline *)
  time_limit : float option;
      (** wall-clock budget in seconds (default [None]); checked at each
          cooling-stage boundary, and the best plan so far is returned
          with [stats.truncated] set *)
  flex_samples : int;       (** shape samples per flexible module *)
}

val default_config : config

type stats = {
  iterations : int;
  accepted : int;
  best_cost : float;
  initial_cost : float;
  elapsed : float;
  truncated : bool;
      (** the run stopped early on its [time_limit] or an [?abort]
          signal; the returned plan is the best seen, not the schedule's
          endpoint *)
}

val run :
  ?config:config ->
  ?abort:Fp_util.Abort.t ->
  Fp_netlist.Netlist.t ->
  Fp_core.Placement.t * stats
(** Floorplan an instance.  The returned placement uses the realized
    chip width as [chip_width] and is always valid (slicing floorplans
    cannot overlap).  [abort], polled every move, stops the run
    cooperatively and returns the best plan so far (the portfolio racer
    signals it when another engine wins).  Deadline/abort checks consume
    no randomness: for a fixed seed without truncation the result is
    bit-identical across [time_limit]/[abort] settings.
    @raise Invalid_argument on an empty instance. *)
