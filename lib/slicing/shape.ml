module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Module_def = Fp_netlist.Module_def

type option_list = (float * float) list

let leaf_options ?(samples = 6) (m : Module_def.t) =
  match m.Module_def.shape with
  | Module_def.Rigid { w; h } ->
    if Tol.equal w h then [ (w, h) ] else [ (w, h); (h, w) ]
  | Module_def.Flexible { area; min_aspect; max_aspect } ->
    let w_min = Float.sqrt (area *. min_aspect)
    and w_max = Float.sqrt (area *. max_aspect) in
    if Tol.leq w_max w_min then [ (w_min, area /. w_min) ]
    else
      List.init samples (fun i ->
          let t = float_of_int i /. float_of_int (samples - 1) in
          let w = w_min +. (t *. (w_max -. w_min)) in
          (w, area /. w))

(* Tree with per-node shape curves.  Each curve entry remembers how it
   was produced so realization can walk back down. *)
type entry = { w : float; h : float; li : int; ri : int }

type tree =
  | Leaf of int * (float * float) array
  | Node of Polish.op * sized * sized

and sized = { tree : tree; curve : entry array }

(* Pareto-prune a list of entries: keep, per distinct width, the minimal
   height, and drop dominated points. *)
let prune entries =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.w b.w with 0 -> compare a.h b.h | c -> c)
      entries
  in
  let rec go acc = function
    | [] -> List.rev acc
    | e :: rest -> (
      match acc with
      | prev :: _ when Tol.geq e.h prev.h -> go acc rest
      | _ -> go (e :: acc) rest)
  in
  Array.of_list (go [] sorted)

let combine op (l : sized) (r : sized) =
  let entries = ref [] in
  Array.iteri
    (fun li le ->
      Array.iteri
        (fun ri re ->
          let w, h =
            match op with
            | Polish.V -> (le.w +. re.w, Float.max le.h re.h)
            | Polish.H -> (Float.max le.w re.w, le.h +. re.h)
          in
          entries := { w; h; li; ri } :: !entries)
        r.curve)
    l.curve;
  { tree = Node (op, l, r); curve = prune !entries }

let size expr options_of =
  if not (Polish.is_valid expr) then
    invalid_arg "Shape.size: invalid Polish expression";
  let stack = ref [] in
  List.iter
    (fun e ->
      match e with
      | Polish.Operand m ->
        let opts = Array.of_list (options_of m) in
        if Array.length opts = 0 then
          invalid_arg
            (Printf.sprintf "Shape.size: module %d has no shape options" m);
        let curve =
          prune
            (Array.to_list
               (Array.mapi (fun i (w, h) -> { w; h; li = i; ri = -1 }) opts))
        in
        stack := { tree = Leaf (m, opts); curve } :: !stack
      | Polish.Operator op -> (
        match !stack with
        | r :: l :: rest -> stack := combine op l r :: rest
        | _ -> invalid_arg "Shape.size: malformed expression"))
    (Polish.elements expr);
  match !stack with
  | [ s ] -> s
  | _ -> invalid_arg "Shape.size: malformed expression"

let frontier s = Array.to_list s.curve |> List.map (fun e -> (e.w, e.h))

let best_area_entry s =
  Array.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some b -> if Tol.lt (e.w *. e.h) (b.w *. b.h) then Some e else acc)
    None s.curve
  |> Option.get

let best_area s =
  let e = best_area_entry s in
  (e.w, e.h)

let realize ?width_limit s =
  let root =
    match width_limit with
    | None -> best_area_entry s
    | Some wl -> (
      let fitting =
        Array.to_list s.curve |> List.filter (fun e -> Tol.leq e.w wl)
      in
      match fitting with
      | [] -> best_area_entry s
      | e :: rest ->
        List.fold_left (fun b e -> if e.h < b.h then e else b) e rest)
  in
  let out = ref [] in
  (* Walk down: at each node, the chosen entry points at the child
     entries that produced it. *)
  let rec walk s (entry : entry) x y =
    match s.tree with
    | Leaf (m, opts) ->
      let w, h = opts.(entry.li) in
      let rotated =
        (* A rigid leaf offers exactly the two orientations; picking the
           second (the swap of the first) means rotation.  Flexible
           leaves sample many widths and are never "rotated". *)
        Array.length opts = 2 && entry.li = 1
        && Tol.equal w (snd opts.(0))
        && Tol.equal h (fst opts.(0))
      in
      out := (m, Rect.make ~x ~y ~w ~h, rotated) :: !out
    | Node (op, l, r) ->
      let le = l.curve.(entry.li) and re = r.curve.(entry.ri) in
      walk l le x y;
      (match op with
      | Polish.V -> walk r re (x +. le.w) y
      | Polish.H -> walk r re x (y +. le.h))
  in
  walk s root 0. 0.;
  (List.rev !out, root.w, root.h)
