module Rng = Fp_util.Rng
module Netlist = Fp_netlist.Netlist
module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Placement = Fp_core.Placement
module Metrics = Fp_core.Metrics
module Outline = Fp_core.Outline

type config = {
  seed : int;
  cooling : float;
  moves_per_stage : int;
  stages : int;
  wire_weight : float;
  outline : Outline.t;
  time_limit : float option;
  flex_samples : int;
}

let default_config =
  {
    seed = 1990;
    cooling = 0.88;
    moves_per_stage = 24;
    stages = 60;
    wire_weight = 0.;
    outline = Outline.Free;
    time_limit = None;
    flex_samples = 6;
  }

type stats = {
  iterations : int;
  accepted : int;
  best_cost : float;
  initial_cost : float;
  elapsed : float;
  truncated : bool;
}

let placement_of nl cfg expr =
  let options_of m =
    Shape.leaf_options ~samples:cfg.flex_samples (Netlist.module_at nl m)
  in
  let sized = Shape.size expr options_of in
  let rects, w, h =
    Shape.realize ?width_limit:(Outline.width_limit cfg.outline) sized
  in
  let pl =
    List.fold_left
      (fun acc (m, rect, rotated) ->
        Placement.add acc
          { Placement.module_id = m; rect; envelope = rect; rotated })
      (Placement.empty ~chip_width:w)
      rects
  in
  (pl, w, h)

let cost_of nl cfg expr =
  let pl, w, h = placement_of nl cfg expr in
  let wire = if Tol.is_zero cfg.wire_weight then 0. else Metrics.hpwl nl pl in
  let outline_penalty =
    match cfg.outline with
    | Outline.Free | Outline.Max_width _ ->
      (* Realization already caps the width; nothing left to penalize. *)
      0.
    | Outline.Fixed { w = w_max; h = h_max } ->
      (* Steep area-units penalty driving the realized height under the
         outline: one unit of height excess costs several times the
         area of a full outline row. *)
      4. *. w_max *. Float.max 0. (h -. h_max)
  in
  (w *. h) +. (cfg.wire_weight *. wire) +. outline_penalty

(* One random neighbour; returns None when the drawn move has no
   candidates (e.g. M3 on a tiny expression). *)
let neighbour rng expr =
  match Rng.int rng 3 with
  | 0 -> (
    match Polish.m1_candidates expr with
    | [] -> None
    | cands -> Some (Polish.apply_m1 expr (Rng.int rng (List.length cands))))
  | 1 ->
    let chains = Polish.num_operator_chains expr in
    if chains = 0 then None
    else Some (Polish.apply_m2 expr (Rng.int rng chains))
  | _ -> (
    match Polish.m3_candidates expr with
    | [] -> None
    | cands -> Some (Polish.apply_m3 expr (List.nth cands (Rng.int rng (List.length cands)))))

exception Truncated

let run ?(config = default_config) ?abort nl =
  let n = Netlist.num_modules nl in
  if n = 0 then invalid_arg "Anneal.run: empty instance";
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun l -> t0 +. l) config.time_limit in
  let truncated = ref false in
  let truncate () =
    truncated := true;
    raise Truncated
  in
  let rng = Rng.create config.seed in
  let expr = ref (Polish.of_modules n) in
  let cost = ref (cost_of nl config !expr) in
  let initial_cost = !cost in
  let best_expr = ref !expr and best_cost = ref !cost in
  let iterations = ref 0 and accepted = ref 0 in
  (* Initial temperature from the spread of a random-walk sample. *)
  let temp =
    let deltas = ref [] in
    let probe = ref !expr and pc = ref !cost in
    for _ = 1 to 30 do
      match neighbour rng !probe with
      | None -> ()
      | Some cand ->
        let c = cost_of nl config cand in
        deltas := Float.abs (c -. !pc) :: !deltas;
        probe := cand;
        pc := c
    done;
    match !deltas with
    | [] -> 1.
    | ds -> Float.max 1e-3 (Fp_util.Stats.mean ds *. 1.5)
  in
  let temp = ref temp in
  let moves = config.moves_per_stage * Int.max 4 n / 4 in
  (* Truncation checks consume no randomness, so runs without a deadline
     or abort signal walk exactly the same RNG stream as before the
     knobs existed. *)
  (try
     for _stage = 1 to config.stages do
       (match deadline with
       | Some dl when Tol.gt (Unix.gettimeofday ()) dl -> truncate ()
       | Some _ | None -> ());
       for _ = 1 to moves do
         (match abort with
         | Some a when Fp_util.Abort.is_set a -> truncate ()
         | Some _ | None -> ());
         incr iterations;
         match neighbour rng !expr with
         | None -> ()
         | Some cand ->
           let c = cost_of nl config cand in
           let delta = c -. !cost in
           let accept =
             delta <= 0.
             || Rng.float rng 1. < Float.exp (-.delta /. Float.max 1e-9 !temp)
           in
           if accept then begin
             incr accepted;
             expr := cand;
             cost := c;
             if c < !best_cost then begin
               best_cost := c;
               best_expr := cand
             end
           end
       done;
       temp := !temp *. config.cooling
     done
   with Truncated -> ());
  let pl, _, _ = placement_of nl config !best_expr in
  ( pl,
    {
      iterations = !iterations;
      accepted = !accepted;
      best_cost = !best_cost;
      initial_cost;
      elapsed = Unix.gettimeofday () -. t0;
      truncated = !truncated;
    } )
