module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Tol = Fp_geometry.Tol
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def
module Placement = Fp_core.Placement
module Metrics = Fp_core.Metrics
module D = Diagnostic

type reported = {
  objective : [ `Height | `Height_plus_wire of float ];
  value : float;
}

(* A real overlap must exceed [tol] in BOTH dimensions; simplex-precision
   slivers along one axis are abutments, not violations. *)
let overlaps_tol ~tol a b =
  let dx = Float.min (Rect.x_max a) (Rect.x_max b) -. Float.max a.Rect.x b.Rect.x
  and dy = Float.min (Rect.y_max a) (Rect.y_max b) -. Float.max a.Rect.y b.Rect.y in
  Tol.gt ~tol dx 0. && Tol.gt ~tol dy 0.

let inside_tol ~tol ~outer ~inner =
  Tol.geq ~tol inner.Rect.x outer.Rect.x
  && Tol.geq ~tol inner.Rect.y outer.Rect.y
  && Tol.leq ~tol (Rect.x_max inner) (Rect.x_max outer)
  && Tol.leq ~tol (Rect.y_max inner) (Rect.y_max outer)

let subject (p : Placement.placed) name =
  Printf.sprintf "module %s" (Option.value name ~default:(string_of_int p.Placement.module_id))

let placement ?(tol = Tol.eps) ?reported netlist (pl : Placement.t) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let num_modules = Netlist.num_modules netlist in
  let name_of p =
    let id = p.Placement.module_id in
    if id >= 0 && id < num_modules then
      Some (Netlist.module_at netlist id).Module_def.name
    else None
  in
  let strip =
    Rect.make ~x:0. ~y:0. ~w:pl.Placement.chip_width
      ~h:(Float.max 0. pl.Placement.height)
  in
  let placed = Array.of_list pl.Placement.placed in
  (* CT001: pairwise envelope overlap. *)
  let n = Array.length placed in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = placed.(i) and b = placed.(j) in
      if overlaps_tol ~tol a.Placement.envelope b.Placement.envelope then
        emit
          (D.make ~code:"CT001" ~severity:D.Error
             ~subject:
               (Printf.sprintf "modules %s/%s"
                  (Option.value (name_of a)
                     ~default:(string_of_int a.Placement.module_id))
                  (Option.value (name_of b)
                     ~default:(string_of_int b.Placement.module_id)))
             "envelopes overlap by %g x %g (envelopes %s and %s)"
             (Float.min
                (Rect.x_max a.Placement.envelope)
                (Rect.x_max b.Placement.envelope)
             -. Float.max a.Placement.envelope.Rect.x
                  b.Placement.envelope.Rect.x)
             (Float.min
                (Rect.y_max a.Placement.envelope)
                (Rect.y_max b.Placement.envelope)
             -. Float.max a.Placement.envelope.Rect.y
                  b.Placement.envelope.Rect.y)
             (Rect.to_string a.Placement.envelope)
             (Rect.to_string b.Placement.envelope))
    done
  done;
  let max_top = ref 0. in
  Array.iter
    (fun p ->
      let name = name_of p in
      let subj = subject p name in
      max_top := Float.max !max_top (Rect.y_max p.Placement.envelope);
      (* CT012: unknown module id — all per-module def checks need it. *)
      (match name with
      | None ->
        emit
          (D.make ~code:"CT012" ~severity:D.Error ~subject:subj
             "module id %d is not in netlist %s (which has %d modules)"
             p.Placement.module_id (Netlist.name netlist) num_modules)
      | Some _ -> ());
      (* CT002: containment in the chip strip. *)
      if not (inside_tol ~tol ~outer:strip ~inner:p.Placement.envelope) then
        emit
          (D.make ~code:"CT002" ~severity:D.Error ~subject:subj
             "envelope %s escapes the chip strip [0, %g] x [0, %g]"
             (Rect.to_string p.Placement.envelope)
             pl.Placement.chip_width pl.Placement.height);
      (* CT003: silicon inside its envelope. *)
      if
        not
          (inside_tol ~tol ~outer:p.Placement.envelope ~inner:p.Placement.rect)
      then
        emit
          (D.make ~code:"CT003" ~severity:D.Error ~subject:subj
             "silicon %s sticks out of its envelope %s"
             (Rect.to_string p.Placement.rect)
             (Rect.to_string p.Placement.envelope));
      match name with
      | None -> ()
      | Some _ -> (
        let def = Netlist.module_at netlist p.Placement.module_id in
        match def.Module_def.shape with
        | Module_def.Rigid { w; h } ->
          (* CT004: placed dimensions must match (w, h) under the
             recorded rotation flag. *)
          let ew, eh =
            if p.Placement.rotated then (h, w) else (w, h)
          in
          if
            not
              (Tol.within ~tol p.Placement.rect.Rect.w ew
              && Tol.within ~tol p.Placement.rect.Rect.h eh)
          then
            emit
              (D.make ~code:"CT004" ~severity:D.Error ~subject:subj
                 "rigid module placed as %g x %g but its definition is \
                  %g x %g%s (rotated = %b)"
                 p.Placement.rect.Rect.w p.Placement.rect.Rect.h w h
                 (if p.Placement.rotated then " (rotated)" else "")
                 p.Placement.rotated)
        | Module_def.Flexible { area; min_aspect; max_aspect } ->
          if p.Placement.rotated then
            emit
              (D.make ~code:"CT004" ~severity:D.Warning ~subject:subj
                 "flexible module carries rotated = true; rotation is \
                  meaningless for flexible modules (aspect bounds already \
                  cover it)");
          (* CT005: area conservation, relative tolerance. *)
          let got = Rect.area p.Placement.rect in
          let atol = tol *. Float.max 1. area in
          if not (Tol.within ~tol:atol got area) then
            emit
              (D.make ~code:"CT005" ~severity:D.Error ~subject:subj
                 "flexible module area not conserved: placed %g x %g = %g, \
                  prescribed %g (off by %g)"
                 p.Placement.rect.Rect.w p.Placement.rect.Rect.h got area
                 (Float.abs (got -. area)));
          (* CT006: aspect bounds, audited in the width domain where the
             feasible set is the interval [sqrt(S*b), sqrt(S*a)]. *)
          let w_lo, w_hi =
            (sqrt (area *. min_aspect), sqrt (area *. max_aspect))
          in
          let w = p.Placement.rect.Rect.w in
          if Tol.lt ~tol w w_lo || Tol.gt ~tol w w_hi then
            emit
              (D.make ~code:"CT006" ~severity:D.Error ~subject:subj
                 "flexible module width %g outside the aspect-feasible \
                  interval [%g, %g] (aspect w/h = %g, bounds [%g, %g])"
                 w w_lo w_hi
                 (w /. p.Placement.rect.Rect.h)
                 min_aspect max_aspect)))
    placed;
  (* CT011: the recorded chip height must be the max envelope top. *)
  if not (Tol.within ~tol pl.Placement.height !max_top) then
    emit
      (D.make ~code:"CT011" ~severity:D.Error ~subject:"placement"
         "recorded chip height %g but the tallest envelope tops out at %g"
         pl.Placement.height !max_top);
  (* CT010: objective recomputation. *)
  (match reported with
  | None -> ()
  | Some { objective; value } ->
    let recomputed =
      match objective with
      | `Height -> !max_top
      | `Height_plus_wire lambda ->
        !max_top +. (lambda *. Metrics.hpwl netlist pl)
    in
    let otol = tol *. Float.max 1. (Float.abs recomputed) in
    if not (Tol.within ~tol:otol recomputed value) then
      emit
        (D.make ~code:"CT010" ~severity:D.Error ~subject:"objective"
           "reported objective %g but recomputation from the geometry \
            gives %g (off by %g)"
           value recomputed
           (Float.abs (recomputed -. value))));
  List.stable_sort D.compare !acc

let covering ?(tol = Tol.eps) ~skyline ~num_placed rects =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let width = Skyline.width skyline in
  (* CT007: Theorem 2's bound — at most one covering rectangle per placed
     module. *)
  let n = List.length rects in
  if n > num_placed then
    emit
      (D.make ~code:"CT007" ~severity:D.Error ~subject:"covering"
         "%d covering rectangles for %d placed modules; Theorem 2 bounds \
          the minimal cover by the module count"
         n num_placed);
  (* CT008: each rectangle grounded in the strip and under the profile. *)
  List.iteri
    (fun i r ->
      let subj = Printf.sprintf "covering rect %d" i in
      if
        Tol.lt ~tol r.Rect.x 0.
        || Tol.gt ~tol (Rect.x_max r) width
        || Tol.lt ~tol r.Rect.y 0.
      then
        emit
          (D.make ~code:"CT008" ~severity:D.Error ~subject:subj
             "rectangle %s leaves the chip strip of width %g"
             (Rect.to_string r) width)
      else if Tol.gt ~tol r.Rect.w 0. then begin
        let ceiling =
          Skyline.min_height_over skyline ~x0:r.Rect.x ~x1:(Rect.x_max r)
        in
        if Tol.gt ~tol (Rect.y_max r) ceiling then
          emit
            (D.make ~code:"CT008" ~severity:D.Error ~subject:subj
               "rectangle %s rises above the skyline (top %g, profile \
                minimum over its span %g): it covers space no module \
                occupies"
               (Rect.to_string r) (Rect.y_max r) ceiling)
      end)
    rects;
  (* CT009: exact coverage — union area equal to the area under the
     profile.  Combined with CT008 (every rect under the profile and
     grounded at y >= 0) this forces the hole-free flat-bottom cover of
     Theorem 1: any hole or floating rectangle shows up as a deficit. *)
  let covered = Rect.union_area rects
  and target = Skyline.area_under skyline in
  let atol = tol *. Float.max 1. target in
  if not (Tol.within ~tol:atol covered target) then
    emit
      (D.make ~code:"CT009" ~severity:D.Error ~subject:"covering"
         "covering rectangles cover area %g but the region under the \
          skyline has area %g (off by %g): the cover has holes or strays \
          outside the region"
         covered target
         (Float.abs (covered -. target)));
  List.stable_sort D.compare !acc

let accepts ds = not (List.exists D.is_error ds)
