module Model = Fp_milp.Model
module Lp_problem = Fp_lp.Lp_problem
module Simplex = Fp_lp.Simplex
module D = Diagnostic

type context = {
  slack_binaries : Model.var list option;
  refine_lp : bool;
  margin : float;
  loose_factor : float;
  pair_loose_factor : float;
}

let default_context =
  { slack_binaries = None; refine_lp = true; margin = 0.25;
    loose_factor = 1e3; pair_loose_factor = 64. }

(* ------------------------------------------------------------------ *)
(* Interval arithmetic over variable bounds                             *)
(* ------------------------------------------------------------------ *)

let term_sup lb ub (c, v) = if c > 0. then c *. ub.(v) else c *. lb.(v)
let term_inf lb ub (c, v) = if c > 0. then c *. lb.(v) else c *. ub.(v)

let sum_sup lb ub terms =
  List.fold_left (fun a t -> a +. term_sup lb ub t) 0. terms

let sum_inf lb ub terms =
  List.fold_left (fun a t -> a +. term_inf lb ub t) 0. terms

let nonzero terms = List.filter (fun (c, _) -> c <> 0.) terms

(* One row viewed as [terms <= rhs]; Ge rows are negated, Eq rows yield
   both directions. *)
let le_views (row : Lp_problem.constr) =
  let neg = List.map (fun (c, v) -> (-.c, v)) in
  match row.Lp_problem.cmp with
  | Lp_problem.Le -> [ (row.Lp_problem.terms, row.Lp_problem.rhs) ]
  | Lp_problem.Ge -> [ (neg row.Lp_problem.terms, -.row.Lp_problem.rhs) ]
  | Lp_problem.Eq ->
    [ (row.Lp_problem.terms, row.Lp_problem.rhs);
      (neg row.Lp_problem.terms, -.row.Lp_problem.rhs) ]

(* Bound tightening: propagate the rows' implied bounds into copies of the
   variable bounds, so the big-M analysis sees e.g. that a row
   [x + w <= W] elsewhere caps [x] at [W - w_min].  Rows containing a
   slack binary are excluded: an undersized big-M row [x - 2 b <= 5]
   implies the perfectly valid unconditional bound [x <= 7], and using it
   would hide exactly the clipping the analysis is looking for.  A few
   passes suffice for the formulation's shallow constraint graph; never
   tightens past the opposite bound. *)
let tighten_bounds ~is_slack rows lb ub =
  let improved tol fresh old = fresh < old -. tol in
  for _pass = 1 to 3 do
    Array.iter
      (fun (row : Lp_problem.constr) ->
        if not (List.exists (fun (_, v) -> is_slack v) row.Lp_problem.terms)
        then
        List.iter
          (fun (terms, rhs) ->
            let terms = nonzero terms in
            let n_inf = ref 0 and finite_sum = ref 0. in
            List.iter
              (fun t ->
                let i = term_inf lb ub t in
                if i = neg_infinity then incr n_inf
                else finite_sum := !finite_sum +. i)
              terms;
            List.iter
              (fun ((c, v) as t) ->
                let ti = term_inf lb ub t in
                let min_rest =
                  if ti = neg_infinity then
                    if !n_inf > 1 then neg_infinity else !finite_sum
                  else if !n_inf > 0 then neg_infinity
                  else !finite_sum -. ti
                in
                if min_rest > neg_infinity then begin
                  let bound = (rhs -. min_rest) /. c in
                  let tol = 1e-9 *. Float.max 1. (Float.abs bound) in
                  if c > 0. then begin
                    if improved tol bound ub.(v) && bound >= lb.(v) then
                      ub.(v) <- bound
                  end
                  else if improved tol (-.bound) (-.lb.(v)) && bound <= ub.(v)
                  then lb.(v) <- bound
                end)
              terms)
          (le_views row))
      rows
  done

(* ------------------------------------------------------------------ *)
(* Per-variable checks: ML001 bounds, ML002 unused, ML003 unbounded obj *)
(* ------------------------------------------------------------------ *)

let var_checks m rows =
  let prob = Model.problem m in
  let n = Model.num_vars m in
  let used = Array.make n false in
  Array.iter
    (fun row ->
      List.iter
        (fun (c, v) -> if c <> 0. then used.(v) <- true)
        row.Lp_problem.terms)
    rows;
  let minimize = Model.sense m = `Minimize in
  Model.fold_vars m ~init:[] ~f:(fun acc v ->
      let name = Model.var_name m v in
      let subject = Printf.sprintf "var %s" name in
      let lb, ub = Model.var_bounds m v in
      let obj = Lp_problem.obj_coeff prob v in
      let acc =
        if lb > ub then
          D.make ~code:"ML001" ~severity:D.Error ~subject
            "infeasible bounds: lb %g > ub %g (the model cannot have any \
             solution)"
            lb ub
          :: acc
        else acc
      in
      let acc =
        if (not used.(v)) && lb <> ub then
          D.make ~code:"ML002" ~severity:D.Warning ~subject
            "appears in no constraint%s"
            (if obj <> 0. then
               " but carries an objective coefficient (it will sit at its \
                cheapest bound)"
             else " and has no objective coefficient (dead variable)")
          :: acc
        else acc
      in
      let acc =
        if (not (Model.is_integer_var m v)) && obj <> 0. then
          let runaway_low = obj > 0. = minimize in
          let unbounded =
            if runaway_low then lb = neg_infinity else ub = infinity
          in
          if unbounded then
            D.make ~code:"ML003" ~severity:D.Warning ~subject
              "continuous variable with objective coefficient %g is \
               unbounded in its improving direction (%s); only constraints \
               can keep the LP bounded"
              obj
              (if runaway_low then "lb = -inf" else "ub = +inf")
            :: acc
          else acc
        else acc
      in
      acc)

(* ------------------------------------------------------------------ *)
(* Per-row checks: ML004 infeasible, ML005 vacuous, ML007 range         *)
(* ------------------------------------------------------------------ *)

let row_subject (row : Lp_problem.constr) =
  Printf.sprintf "row %s" row.Lp_problem.cname

let row_checks m rows lb ub =
  ignore m;
  Array.fold_left
    (fun acc row ->
      let subject = row_subject row in
      let terms = nonzero row.Lp_problem.terms in
      let rhs = row.Lp_problem.rhs in
      let tol = 1e-6 *. Float.max 1. (Float.abs rhs) in
      let sup = sum_sup lb ub terms and inf = sum_inf lb ub terms in
      let infeasible, vacuous =
        match row.Lp_problem.cmp with
        | Lp_problem.Le -> (inf > rhs +. tol, sup <= rhs +. tol)
        | Lp_problem.Ge -> (sup < rhs -. tol, inf >= rhs -. tol)
        | Lp_problem.Eq ->
          ( inf > rhs +. tol || sup < rhs -. tol,
            Float.abs (sup -. rhs) <= tol && Float.abs (inf -. rhs) <= tol )
      in
      let acc =
        if infeasible then
          D.make ~code:"ML004" ~severity:D.Error ~subject
            "trivially infeasible over the variable bounds (lhs range \
             [%g, %g] vs rhs %g)"
            inf sup rhs
          :: acc
        else if vacuous then
          D.make ~code:"ML005" ~severity:D.Info ~subject
            "vacuous: satisfied by every point within the variable bounds \
             (lhs range [%g, %g] vs rhs %g)"
            inf sup rhs
          :: acc
        else acc
      in
      match terms with
      | [] -> acc
      | _ ->
        let cmax =
          List.fold_left (fun a (c, _) -> Float.max a (Float.abs c)) 0. terms
        and cmin =
          List.fold_left
            (fun a (c, _) -> Float.min a (Float.abs c))
            infinity terms
        in
        if cmin > 0. && cmax /. cmin > 1e8 then
          D.make ~code:"ML007" ~severity:D.Warning ~subject
            "coefficient dynamic range %.1e (|c| in [%g, %g]) invites \
             numerical trouble in the simplex"
            (cmax /. cmin) cmin cmax
          :: acc
        else acc)
    [] rows

(* ------------------------------------------------------------------ *)
(* ML006: duplicate / parallel rows                                     *)
(* ------------------------------------------------------------------ *)

(* Canonical key: Ge negated into Le, terms sorted by variable and scaled
   by the leading |coefficient| (Eq rows additionally sign-normalized, as
   they may be negated freely).  Rows sharing a key have proportional
   left-hand sides, so one of them is redundant. *)
let canonical_key (row : Lp_problem.constr) =
  match nonzero row.Lp_problem.terms with
  | [] -> None
  | terms ->
    let cmp, terms =
      match row.Lp_problem.cmp with
      | Lp_problem.Ge ->
        (Lp_problem.Le, List.map (fun (c, v) -> (-.c, v)) terms)
      | c -> (c, terms)
    in
    let terms = List.sort (fun (_, a) (_, b) -> Int.compare a b) terms in
    let c0 = fst (List.hd terms) in
    let scale =
      match cmp with
      | Lp_problem.Eq -> 1. /. c0 (* sign-normalize: leading coeff +1 *)
      | _ -> 1. /. Float.abs c0
    in
    let tag = match cmp with Lp_problem.Eq -> "=" | _ -> "<=" in
    Some
      (String.concat ";"
         (tag
         :: List.map
              (fun (c, v) -> Printf.sprintf "%d:%.12g" v (c *. scale))
              terms))

let duplicate_checks rows =
  let seen = Hashtbl.create 64 in
  Array.fold_left
    (fun acc row ->
      match canonical_key row with
      | None -> acc
      | Some key -> (
        match Hashtbl.find_opt seen key with
        | None ->
          Hashtbl.add seen key row;
          acc
        | Some (first : Lp_problem.constr) ->
          let identical =
            Float.abs (first.Lp_problem.rhs -. row.Lp_problem.rhs)
            <= 1e-9 *. Float.max 1. (Float.abs first.Lp_problem.rhs)
          in
          D.make ~code:"ML006" ~severity:D.Warning ~subject:(row_subject row)
            "%s row %s (%s)"
            (if identical then "exact duplicate of" else "parallel to")
            first.Lp_problem.cname
            (if identical then "drop one"
             else "same left-hand side, different rhs: the looser row is \
                   redundant")
          :: acc))
    [] rows

(* ------------------------------------------------------------------ *)
(* ML008 / ML009: big-M sizing                                          *)
(* ------------------------------------------------------------------ *)

(* Exact refinement of an interval-suspicious row: maximize the row's
   left-hand side over every OTHER row of the model, with the row's slack
   binaries pinned to their deactivating values (and integrality
   relaxed).  The LP optimum is a valid upper bound on what the big-M
   must absorb, and — unlike interval arithmetic — it sees correlations
   such as [x_i + w_i <= W], so correctly sized constants are not
   flagged. *)
let lp_sup m ~skip_row ~pinned ~lbt ~ubt terms =
  let prob = Model.problem m in
  let lp = Lp_problem.create ~name:"bigm_probe" () in
  let n = Model.num_vars m in
  for v = 0 to n - 1 do
    let lb, ub =
      if List.mem_assq v pinned then
        let x = List.assq v pinned in
        (x, x)
      else (lbt.(v), ubt.(v))
    in
    ignore (Lp_problem.add_var lp ~lb ~ub (Lp_problem.var_name prob v))
  done;
  Array.iteri
    (fun i (row : Lp_problem.constr) ->
      if i <> skip_row then
        Lp_problem.add_constr lp ~name:row.Lp_problem.cname
          row.Lp_problem.terms row.Lp_problem.cmp row.Lp_problem.rhs)
    (Lp_problem.constraints prob);
  Lp_problem.set_sense lp Lp_problem.Maximize;
  List.iter (fun (c, v) -> Lp_problem.set_obj_coeff lp v c) terms;
  Simplex.solve lp

let bigm_checks ctx m ~is_slack ~pair_of rows lbt ubt =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  (* Rows whose switches all belong to one declared disjunction pair are
     judged per pair, not per row: every direction of a Choice4 pair is
     collected here and the pair is flagged once — and only when {e all}
     its directions are over-wide, since one naturally loose direction
     (a short module against a tall strip) is expected even under exact
     per-pair coefficients. *)
  let pair_rows : (Model.var * Model.var, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun ri (row : Lp_problem.constr) ->
      if row.Lp_problem.cmp <> Lp_problem.Eq then
        List.iter
          (fun (terms, rhs) ->
            let terms = nonzero terms in
            let slack_terms, rest =
              List.partition (fun (_, v) -> is_slack v) terms
            in
            (* [avail]: how much the deactivating assignment (negative-
               coefficient switches at 1) subtracts from the lhs.
               Positive-coefficient switches relax nothing and are folded
               into [need] at their worst case (value 1). *)
            let avail =
              List.fold_left
                (fun a (c, _) -> if c < 0. then a -. c else a)
                0. slack_terms
            in
            if slack_terms <> [] && rest <> [] && avail > 0. then begin
              let owning_pair =
                match List.filter_map (fun (_, v) -> pair_of v) slack_terms with
                | [] -> None
                | p :: ps -> if List.for_all (( = ) p) ps then Some p else None
              in
              let worst_pos_slack =
                List.fold_left
                  (fun a (c, _) -> if c > 0. then a +. c else a)
                  0. slack_terms
              in
              let sup_rest = sum_sup lbt ubt rest in
              let need = sup_rest +. worst_pos_slack -. rhs in
              let tol = 1e-6 *. Float.max 1. (Float.max (Float.abs rhs) avail) in
              let subject =
                match owning_pair with
                | Some (a, b) ->
                  Printf.sprintf "%s (pair %s/%s)" (row_subject row)
                    (Model.var_name m a) (Model.var_name m b)
                | None -> row_subject row
              in
              (match owning_pair with
              | Some p when need > tol ->
                let entries =
                  match Hashtbl.find_opt pair_rows p with
                  | Some r -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.add pair_rows p r;
                    r
                in
                entries := (row.Lp_problem.cname, avail /. need) :: !entries
              | _ -> ());
              if
                need > tol && owning_pair = None
                && avail > ctx.loose_factor *. need
              then
                emit
                  (D.make ~code:"ML009" ~severity:D.Warning ~subject
                     "big-M deactivation capacity %g is %.0fx the required \
                      span %g; oversize constants degrade LP conditioning \
                      and relaxation strength"
                     avail (avail /. need) need)
              else if need > tol && avail +. tol < need then begin
                (* Interval-suspicious: the bounds alone cannot prove the
                   big-M sufficient.  Refine with the exact LP. *)
                let refined =
                  if not ctx.refine_lp then None
                  else
                    let pinned =
                      List.filter_map
                        (fun (c, v) -> if c < 0. then Some (v, 1.) else None)
                        slack_terms
                    in
                    match lp_sup m ~skip_row:ri ~pinned ~lbt ~ubt terms with
                    | Simplex.Optimal { obj; _ } -> Some (`Sup obj)
                    | Simplex.Infeasible -> Some `Unreachable
                    | Simplex.Unbounded -> Some (`Sup infinity)
                    | Simplex.Iteration_limit -> None
                in
                match refined with
                | Some `Unreachable -> () (* deactivation never arises *)
                | Some (`Sup sup) ->
                  if sup > rhs +. tol then
                    emit
                      (D.make ~code:"ML008" ~severity:D.Error ~subject
                         "big-M too small: with its switches deactivated \
                          the row still clips the feasible region by %g \
                          (LP-verified; deactivation capacity %g)"
                         (sup -. rhs) avail)
                | None ->
                  let deficit = need -. avail in
                  if deficit > ctx.margin *. need then
                    emit
                      (D.make ~code:"ML008" ~severity:D.Error ~subject
                         "big-M too small: deactivation capacity %g covers \
                          only %.0f%% of the required span %g (interval \
                          estimate)"
                         avail
                         (100. *. avail /. need)
                         need)
                  else
                    emit
                      (D.make ~code:"ML008" ~severity:D.Warning ~subject
                         "big-M possibly too small: capacity %g vs \
                          interval-estimated span %g (within the %.0f%% \
                          correlation margin; enable LP refinement for an \
                          exact verdict)"
                         avail need
                         (100. *. ctx.margin))
              end
            end)
          (le_views row))
    rows;
  (* Per-pair over-wide verdicts, deterministically ordered by pair. *)
  Hashtbl.fold (fun p entries l -> (p, !entries) :: l) pair_rows []
  |> List.sort compare
  |> List.iter (fun ((a, b), entries) ->
         let over = List.for_all (fun (_, r) -> r > ctx.pair_loose_factor) in
         if entries <> [] && over entries then begin
           let worst_row, worst =
             List.fold_left
               (fun (wn, wr) (n, r) -> if r > wr then (n, r) else (wn, wr))
               (List.hd entries) (List.tl entries)
           in
           emit
             (D.make ~code:"ML009" ~severity:D.Warning
                ~subject:
                  (Printf.sprintf "pair %s/%s" (Model.var_name m a)
                     (Model.var_name m b))
                "all %d big-M rows of this disjunction pair are over-wide \
                 (worst %.0fx the required span, row %s); per-pair \
                 coefficients from current bounds would strengthen the \
                 relaxation"
                (List.length entries) worst worst_row)
         end);
  !acc

(* ------------------------------------------------------------------ *)
(* ML010: binaries outside every declared disjunction pair              *)
(* ------------------------------------------------------------------ *)

let pair_coverage m =
  let paired = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace paired a ();
      Hashtbl.replace paired b ())
    (Model.pairs m);
  let unpaired =
    List.filter
      (fun v -> Model.is_binary m v && not (Hashtbl.mem paired v))
      (Model.integer_vars m)
  in
  match unpaired with
  | [] -> []
  | _ ->
    let shown = List.filteri (fun i _ -> i < 4) unpaired in
    [ D.make ~code:"ML010" ~severity:D.Info ~subject:"model"
        "%d binar%s not covered by any declare_pair (2-way instead of \
         4-way branching): %s%s"
        (List.length unpaired)
        (if List.length unpaired = 1 then "y is" else "ies are")
        (String.concat ", " (List.map (Model.var_name m) shown))
        (if List.length unpaired > List.length shown then ", ..." else "") ]

(* ------------------------------------------------------------------ *)

let model ?(context = default_context) m =
  let prob = Model.problem m in
  let rows = Lp_problem.constraints prob in
  let n = Model.num_vars m in
  let lb = Array.init n (Lp_problem.var_lb prob)
  and ub = Array.init n (Lp_problem.var_ub prob) in
  let base =
    var_checks m rows
    @ row_checks m rows lb ub
    @ duplicate_checks rows
    @ pair_coverage m
  in
  (* Big-M analysis on tightened copies; skip it entirely if the original
     bounds are already infeasible (garbage in, garbage out). *)
  let bounds_ok = Array.for_all2 (fun l u -> l <= u) lb ub in
  let bigm =
    if not bounds_ok then []
    else begin
      let slack_set = Hashtbl.create 16 in
      List.iter
        (fun v -> Hashtbl.replace slack_set v ())
        (match context.slack_binaries with
        | Some l -> l
        | None -> List.concat_map (fun (a, b) -> [ a; b ]) (Model.pairs m));
      let is_slack v = Hashtbl.mem slack_set v in
      let pair_owner = Hashtbl.create 16 in
      List.iter
        (fun (a, b) ->
          Hashtbl.replace pair_owner a (a, b);
          Hashtbl.replace pair_owner b (a, b))
        (Model.pairs m);
      let pair_of v = Hashtbl.find_opt pair_owner v in
      let lbt = Array.copy lb and ubt = Array.copy ub in
      tighten_bounds ~is_slack rows lbt ubt;
      if Array.for_all2 (fun l u -> l <= u) lbt ubt then
        bigm_checks context m ~is_slack ~pair_of rows lbt ubt
      else []
    end
  in
  List.stable_sort D.compare (base @ bigm)

(* ------------------------------------------------------------------ *)
(* Formulation-level structural lint                                    *)
(* ------------------------------------------------------------------ *)

module F = Fp_core.Formulation
module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol

let sep_binaries (b : F.built) =
  List.concat_map
    (fun (_, _, sep) ->
      match sep with
      | F.Fixed_rel _ -> []
      | F.Choice2 { bin; _ } -> [ bin ]
      | F.Choice4 { bx; by } -> [ bx; by ])
    b.F.seps

let structural (b : F.built) =
  let n = Array.length b.F.items in
  let item_name i = b.F.items.(i).F.def.Fp_netlist.Module_def.name in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (i, other, _) ->
      match other with
      | F.Other_item j ->
        Hashtbl.replace covered (`Item (Int.min i j, Int.max i j)) ()
      | F.Other_fixed fi -> Hashtbl.replace covered (`Fixed (i, fi)) ())
    b.F.seps;
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Hashtbl.mem covered (`Item (i, j))) then
        acc :=
          D.make ~code:"FL001" ~severity:D.Error
            ~subject:(Printf.sprintf "items %s/%s" (item_name i) (item_name j))
            "no non-overlap disjunction between items %d and %d: the MILP \
             can place them on top of each other"
            i j
          :: !acc
    done
  done;
  List.iteri
    (fun fi r ->
      for i = 0 to n - 1 do
        if not (Hashtbl.mem covered (`Fixed (i, fi))) then
          acc :=
            D.make ~code:"FL002" ~severity:D.Error
              ~subject:(Printf.sprintf "item %s/fixed %d" (item_name i) fi)
              "no separation between item %d and fixed rectangle %d: the \
               MILP can place the item inside the partial floorplan"
              i fi
            :: !acc
      done;
      if
        Tol.lt r.Rect.x 0.
        || Tol.lt b.F.chip_width (Rect.x_max r)
        || Tol.lt r.Rect.y 0.
        || Tol.lt b.F.height_bound (Rect.y_max r)
      then
        acc :=
          D.make ~code:"FL003" ~severity:D.Error
            ~subject:(Printf.sprintf "fixed %d" fi)
            "fixed rectangle %s exceeds the chip strip [0, %g] x [0, %g]"
            (Rect.to_string r) b.F.chip_width b.F.height_bound
          :: !acc)
    b.F.fixed;
  !acc

let formulation (b : F.built) =
  let context =
    { default_context with slack_binaries = Some (sep_binaries b) }
  in
  List.stable_sort D.compare (structural b @ model ~context b.F.model)
