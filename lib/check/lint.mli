(** Static analysis of MILP models before they reach the solver.

    Hand-built big-M formulations are a classic source of silent modeling
    bugs (Huchette–Dey–Vielma, "Strong mixed-integer formulations for the
    floor layout problem"): a big-M constant smaller than the span of its
    disjunct silently clips the feasible region, one a thousand times too
    large wrecks numerical conditioning, and a dropped disjunction lets
    modules overlap with no solver error.  {!model} walks a
    {!Fp_milp.Model} and emits structured {!Diagnostic.t}s for these and
    other pathologies; {!formulation} additionally audits the structural
    invariants of a floorplanning subproblem (every pair of objects must
    carry a non-overlap separation).

    The big-M analysis is sound but two-staged: cheap interval arithmetic
    over (tightened) variable bounds first; rows it cannot clear are
    re-examined with an exact LP — maximize the row's left-hand side over
    the rest of the model with the row's slack binaries pinned to their
    deactivating values — so correlated variables (e.g. [x_i + w_i <= W]
    elsewhere in the model) do not produce false positives.

    Diagnostic codes are catalogued with triggering examples in
    [docs/analysis.md]. *)

module Model = Fp_milp.Model

type context = {
  slack_binaries : Model.var list option;
      (** Binaries acting as big-M disjunct switches.  [None] (default)
          uses the binaries declared in {!Model.pairs}; the formulation
          lint passes the exact switch set recorded in
          {!Fp_core.Formulation.built.seps}, which also covers the
          single-binary [Choice2] separations. *)
  refine_lp : bool;
      (** Re-examine interval-suspicious big-M rows with an exact LP
          (default [true]).  When off, the interval verdict decides with
          {!field-margin}. *)
  margin : float;
      (** Without LP refinement, a big-M deficit is an Error only when it
          exceeds this fraction of the required span (default [0.25]) —
          interval arithmetic overestimates the span of correlated terms,
          and the margin absorbs that. *)
  loose_factor : float;
      (** A big-M is flagged as needlessly large (conditioning warning)
          when its deactivation capacity exceeds this multiple of the
          required span (default [1e3]).  Applies to rows whose switches
          belong to no declared disjunction pair; pair-owned rows use
          {!field-pair_loose_factor} instead. *)
  pair_loose_factor : float;
      (** Per-pair over-wide threshold (default [64.]): a declared
          disjunction pair is flagged (one ML009 for the pair, naming its
          worst row) only when {e every} direction row of the pair
          exceeds this multiple of its required span — a single loose
          direction is normal even under exact per-pair coefficients,
          while all four loose means the constants ignore the pair's
          actual geometry.  The [tight]/[cuts] formulations' per-pair
          big-Ms lint clean here; an oversized global-M model does not. *)
}

val default_context : context

val model : ?context:context -> Model.t -> Diagnostic.t list
(** Lint one model.  Checks (codes ML001–ML010, see docs/analysis.md):
    infeasible variable bound pairs; variables in no constraint;
    unbounded continuous variables with objective coefficients; trivially
    infeasible and vacuous rows; duplicate / parallel rows; per-row
    coefficient dynamic range; big-M constants too small to deactivate
    their disjunct or needlessly large; binaries not covered by any
    {!Model.declare_pair}. *)

val formulation : Fp_core.Formulation.built -> Diagnostic.t list
(** {!model} with the exact slack-binary set of the formulation, plus the
    structural checks (codes FL001–FL003): every item pair and every
    item–fixed-rectangle pair must carry a separation entry, and every
    fixed (covering) rectangle must lie inside the chip strip. *)
