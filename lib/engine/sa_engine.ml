module Anneal = Fp_slicing.Anneal
module Degradation = Fp_core.Degradation

let make ?(config = Anneal.default_config) () =
  let solve (ctx : Solver.context) (sc : Solver.scenario) nl =
    let t0 = Unix.gettimeofday () in
    let cfg =
      { config with
        Anneal.seed = sc.Solver.seed;
        outline = sc.Solver.outline;
        wire_weight = Option.value sc.Solver.wire_weight ~default:config.Anneal.wire_weight;
        time_limit =
          (match (Solver.deadline_left ctx, config.Anneal.time_limit) with
          | None, l -> l
          | (Some _ as left), None -> left
          | Some left, Some l -> Some (Float.min left l)) }
    in
    let pl, stats = Anneal.run ~config:cfg ~abort:ctx.Solver.abort nl in
    let degradations =
      if stats.Anneal.truncated then [ (0, Degradation.Deadline_truncated) ]
      else []
    in
    Solver.finalize ~engine:"sa" ~scenario:sc ~t0
      ~work:stats.Anneal.iterations
      ~complete:(not stats.Anneal.truncated) ~degradations
      ~detail:
        [
          ("iterations", float_of_int stats.Anneal.iterations);
          ("accepted", float_of_int stats.Anneal.accepted);
          ("best_cost", stats.Anneal.best_cost);
          ("initial_cost", stats.Anneal.initial_cost);
        ]
      nl (Some pl)
  in
  { Solver.name = "sa"; solve }
