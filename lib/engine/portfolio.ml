module Tol = Fp_geometry.Tol
module Degradation = Fp_core.Degradation
module Pool = Fp_util.Pool
module Abort = Fp_util.Abort
module Rng = Fp_util.Rng

let src = Logs.Src.create "fp.portfolio" ~doc:"solver portfolio racer"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = Best_certified | First_certified

type entry = { solver_name : string; outcome : Solver.outcome; ran : bool }

type report = {
  winner : entry option;
  entries : entry list;
  wall_time : float;
  policy : policy;
}

(* Outcome for an engine the racer never started (abort was already set
   when its task came up) or that died: no plan, zero effort. *)
let null_outcome ~engine ~degradations =
  {
    Solver.plan = None;
    stats =
      {
        Solver.engine; wall_time = 0.; work = 0; objective = infinity;
        certified = false; complete = false; degradations; detail = [];
      };
  }

let race ?(policy = Best_certified) ?jobs ~engines ~scenario nl =
  if engines = [] then invalid_arg "Portfolio.race: no engines";
  let t0 = Unix.gettimeofday () in
  let engines = Array.of_list engines in
  let n = Array.length engines in
  let jobs = Int.max 1 (Int.min n (Option.value jobs ~default:n)) in
  let abort = Abort.create () in
  let deadline =
    Option.map (fun b -> t0 +. b) scenario.Solver.time_budget
  in
  (* One context per engine, built before any task runs: a private RNG
     seeded identically for every engine (engines differ, streams must
     not depend on pool scheduling), the shared abort flag, the shared
     absolute deadline.  No engine gets the racer's pool — its workers
     are busy being the race lanes. *)
  let contexts =
    Array.map
      (fun _ ->
        {
          Solver.rng = Rng.create scenario.Solver.seed;
          pool = None;
          abort;
          deadline;
        })
      engines
  in
  let results = Array.make n None in
  let run_one i =
    let s = engines.(i) in
    let started = Unix.gettimeofday () in
    let outcome =
      try s.Solver.solve contexts.(i) scenario nl with
      | Abort.Abort -> raise Abort.Abort
      | exn ->
        let msg = Printexc.to_string exn in
        Log.warn (fun f -> f "engine %s failed: %s" s.Solver.name msg);
        let o =
          null_outcome ~engine:s.Solver.name
            ~degradations:[ (0, Degradation.Engine_failed msg) ]
        in
        { o with
          Solver.stats =
            { o.Solver.stats with
              Solver.wall_time = Unix.gettimeofday () -. started } }
    in
    results.(i) <- Some outcome;
    match policy with
    | Best_certified -> ()
    | First_certified ->
      if outcome.Solver.stats.Solver.certified then begin
        Log.info (fun f ->
            f "engine %s certified first; signalling the race" s.Solver.name);
        Abort.signal abort
      end
  in
  Pool.with_pool ~jobs (fun pool ->
      match policy with
      | Best_certified -> Pool.run pool ~n (fun ~worker:_ i -> run_one i)
      | First_certified ->
        Pool.run ~abort pool ~n (fun ~worker:_ i -> run_one i));
  let entries =
    List.init n (fun i ->
        match results.(i) with
        | Some outcome ->
          { solver_name = engines.(i).Solver.name; outcome; ran = true }
        | None ->
          (* Skipped by the abort fast-path before it started. *)
          {
            solver_name = engines.(i).Solver.name;
            outcome =
              null_outcome ~engine:engines.(i).Solver.name ~degradations:[];
            ran = false;
          })
  in
  (* Winner: lowest scenario objective among certified outcomes, ties to
     the earliest engine in the given order.  The fold keeps the first
     strictly-better entry, so the selection is a pure function of the
     per-engine results — deterministic whenever they are. *)
  let winner =
    List.fold_left
      (fun acc e ->
        if not e.outcome.Solver.stats.Solver.certified then acc
        else
          match acc with
          | None -> Some e
          | Some b ->
            if
              Tol.lt e.outcome.Solver.stats.Solver.objective
                b.outcome.Solver.stats.Solver.objective
            then Some e
            else acc)
      None entries
  in
  { winner; entries; wall_time = Unix.gettimeofday () -. t0; policy }

let degradations_of report =
  match report.winner with
  | None -> []
  | Some e -> List.map snd e.outcome.Solver.stats.Solver.degradations
