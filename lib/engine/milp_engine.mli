(** The successive-augmentation MILP pipeline as a {!Solver.t}.

    Wraps {!Fp_core.Augment.run} plus the finishing passes the CLI has
    always applied ({!Fp_core.Compact.vertical}, then
    {!Fp_core.Topology.optimize}; optional {!Fp_core.Refine}).  With a
    default scenario (free outline, no wire term, no budget) the engine
    is {e bit-identical} to calling the pipeline directly: scenario
    knobs only overlay the configuration when they are actually set.

    Scenario mapping: [Max_width w] fixes the chip width at [w];
    [Fixed {w; h}] additionally caps each step's height variable
    ([Augment.config.height_limit]); [wire_weight] switches the
    objective to [Min_height_plus_wire]; [time_budget] becomes the
    run-level deadline ([run_time_limit]); [checkpoint] is the journal
    path.  The context's abort flag is polled after every committed
    step (via an inspection hook raising {!Fp_core.Augment.Abort}), and
    the context pool, when present, is lent to the whole run. *)

val make :
  ?config:Fp_core.Augment.config ->
  ?resume:Fp_core.Journal.t ->
  ?refine:bool ->
  unit ->
  Solver.t
(** [config] defaults to {!Fp_core.Augment.default_config}; [refine]
    (default [false]) appends {!Fp_core.Refine.reinsert_top}. *)
