(** Feasibility-seeking projection floorplanner (Per-RMAP style).

    The cheap third engine of the portfolio, after PAPERS.md
    2304.06698 / 2406.03165: floorplanning is treated as a feasibility
    problem — find module positions satisfying every pairwise
    non-overlap constraint and the die half-spaces — and solved by
    iterated projections, {e superiorized} by small diminishing descent
    steps (gravity for area, net-centroid pulls for wirelength).  No
    LP, no branch-and-bound: one sweep is [O(n^2)] rectangle pushes, so
    the engine scales far past MILP sizes.

    Shapes are fixed up front (rigid modules deterministically rotated
    to landscape when rotation is allowed; flexible modules at their
    squarest legal width), which makes every projection a closed-form
    translation.  The search wraps the feasibility core in an
    outer height-shrink loop: start from the guaranteed-feasible
    bottom-left packing ({!Fp_core.Warm_start}), repeatedly shrink the
    height target geometrically and re-project from the previous
    solution, and keep the last height at which the sweeps converged.
    A [Fixed] outline skips the loop and projects straight onto the
    requested height.

    Deterministic for a fixed scenario seed (sweep order is drawn from
    the context RNG).  The warm packing means the engine {e always}
    returns a certified-valid plan; failing to reach the requested
    outline is reported as a degradation, never as a failure. *)

val solver : Solver.t
(** The engine under its portfolio name ["project"]. *)

val make :
  ?sweeps_per_height:int ->
  ?max_heights:int ->
  ?shrink:float ->
  ?allow_rotation:bool ->
  unit ->
  Solver.t
(** Tunable variant: [sweeps_per_height] (default [240]) caps the
    projection sweeps per height target, [max_heights] (default [40])
    the shrink attempts, [shrink] (default [0.97]) is the geometric
    height decay, [allow_rotation] (default [true]) permits the
    landscape normalization of rigid modules. *)
