module Augment = Fp_core.Augment
module Compact = Fp_core.Compact
module Topology = Fp_core.Topology
module Refine = Fp_core.Refine
module Outline = Fp_core.Outline
module Degradation = Fp_core.Degradation
module Abort = Fp_util.Abort

(* Overlay the scenario knobs that are actually set; an all-default
   scenario leaves the config untouched, which is what keeps the engine
   bit-identical to the pre-refactor pipeline. *)
let overlay (ctx : Solver.context) (sc : Solver.scenario)
    (cfg : Augment.config) =
  let cfg =
    match sc.Solver.outline with
    | Outline.Free -> cfg
    | Outline.Max_width w -> { cfg with Augment.chip_width = Some w }
    | Outline.Fixed { w; h } ->
      { cfg with Augment.chip_width = Some w; height_limit = Some h }
  in
  let cfg =
    match sc.Solver.wire_weight with
    | None -> cfg
    | Some lambda ->
      { cfg with
        Augment.objective =
          (if Fp_geometry.Tol.is_zero lambda then Fp_core.Formulation.Min_height
           else Fp_core.Formulation.Min_height_plus_wire lambda) }
  in
  let cfg =
    match Solver.deadline_left ctx with
    | None -> cfg
    | Some left ->
      let limit =
        match cfg.Augment.run_time_limit with
        | None -> left
        | Some l -> Float.min l left
      in
      { cfg with Augment.run_time_limit = Some limit }
  in
  match sc.Solver.checkpoint with
  | None -> cfg
  | Some path -> { cfg with Augment.checkpoint = Some path }

(* Compose the caller's inspection hooks with an abort poll: after every
   committed step (journal already written, so the run is resumable) a
   signalled flag raises the engine's own cooperative interrupt. *)
let with_abort_poll abort inspect =
  let base =
    match inspect with
    | Some i -> i
    | None ->
      { Augment.on_model = (fun _ -> ()); on_step = (fun _ _ -> ()) }
  in
  Some
    { Augment.on_model = base.Augment.on_model;
      on_step =
        (fun stat pl ->
          base.Augment.on_step stat pl;
          if Abort.is_set abort then raise Augment.Abort) }

let make ?(config = Augment.default_config) ?resume ?(refine = false) () =
  let solve (ctx : Solver.context) (sc : Solver.scenario) nl =
    let t0 = Unix.gettimeofday () in
    let cfg = overlay ctx sc config in
    let cfg =
      { cfg with Augment.inspect = with_abort_poll ctx.Solver.abort cfg.Augment.inspect }
    in
    let res = Augment.run ~config:cfg ?resume ?pool:ctx.Solver.pool nl in
    let pl =
      (* Same epilogue as the CLI's plan path: finishing passes expect a
         complete floorplan; an interrupted run reports its partial
         placement as-is. *)
      if res.Augment.interrupted then res.Augment.placement
      else begin
        let pl = Compact.vertical res.Augment.placement in
        let pl, _ =
          Topology.optimize ~linearization:cfg.Augment.linearization nl pl
        in
        if refine then fst (Refine.reinsert_top nl pl) else pl
      end
    in
    let work =
      List.fold_left (fun a s -> a + s.Augment.nodes) 0 res.Augment.steps
    in
    let pivots =
      List.fold_left (fun a s -> a + s.Augment.pivots) 0 res.Augment.steps
    in
    let lp_solves =
      List.fold_left (fun a s -> a + s.Augment.lp_solves) 0 res.Augment.steps
    in
    let cuts_added =
      List.fold_left (fun a s -> a + s.Augment.cuts_added) 0 res.Augment.steps
    in
    let cuts_purged =
      List.fold_left (fun a s -> a + s.Augment.cuts_purged) 0 res.Augment.steps
    in
    let separation_time =
      List.fold_left
        (fun a s -> a +. s.Augment.separation_time)
        0. res.Augment.steps
    in
    Solver.finalize ~engine:"milp" ~scenario:sc ~t0 ~work
      ~complete:(not res.Augment.interrupted)
      ~degradations:res.Augment.degradations
      ~detail:
        [
          ("nodes", float_of_int work);
          ("pivots", float_of_int pivots);
          ("lp_solves", float_of_int lp_solves);
          ("steps", float_of_int (List.length res.Augment.steps));
          ("cuts_added", float_of_int cuts_added);
          ("cuts_purged", float_of_int cuts_purged);
          ("separation_time_s", separation_time);
        ]
      nl (Some pl)
  in
  { Solver.name = "milp"; solve }
