module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Placement = Fp_core.Placement
module Metrics = Fp_core.Metrics
module Outline = Fp_core.Outline
module Degradation = Fp_core.Degradation

type scenario = {
  seed : int;
  outline : Outline.t;
  wire_weight : float option;
  time_budget : float option;
  checkpoint : string option;
}

let default_scenario =
  {
    seed = 1990;
    outline = Outline.Free;
    wire_weight = None;
    time_budget = None;
    checkpoint = None;
  }

type context = {
  rng : Fp_util.Rng.t;
  pool : Fp_util.Pool.t option;
  abort : Fp_util.Abort.t;
  deadline : float option;
}

let of_scenario ?pool scenario =
  {
    rng = Fp_util.Rng.create scenario.seed;
    pool;
    abort = Fp_util.Abort.create ();
    deadline =
      Option.map (fun b -> Unix.gettimeofday () +. b) scenario.time_budget;
  }

type stats = {
  engine : string;
  wall_time : float;
  work : int;
  objective : float;
  certified : bool;
  complete : bool;
  degradations : (int * Degradation.t) list;
  detail : (string * float) list;
}

type outcome = { plan : Placement.t option; stats : stats }

type t = {
  name : string;
  solve : context -> scenario -> Fp_netlist.Netlist.t -> outcome;
}

let deadline_left ctx =
  Option.map (fun dl -> Float.max 0. (dl -. Unix.gettimeofday ())) ctx.deadline

(* Content bounding box of a plan — what the outline constrains.  The
   strip ([chip_width]) can be wider than the placed content; the
   outline cares about the content. *)
let content_dims pl =
  match Rect.bounding_box (Placement.envelopes pl) with
  | None -> (0., 0.)
  | Some b -> (Rect.x_max b, Rect.y_max b)

let objective_of scenario nl pl =
  let w, h = content_dims pl in
  let base =
    match Outline.width_limit scenario.outline with
    | Some _ -> h
    | None -> w *. h
  in
  let wire =
    match scenario.wire_weight with
    | Some lambda when not (Tol.is_zero lambda) ->
      lambda *. Metrics.hpwl nl pl
    | Some _ | None -> 0.
  in
  base +. wire

let finalize ~engine ~scenario ~t0 ~work ~complete ~degradations ~detail nl
    plan =
  let wall_time = Unix.gettimeofday () -. t0 in
  match plan with
  | None ->
    {
      plan = None;
      stats =
        {
          engine; wall_time; work; objective = infinity; certified = false;
          complete = false; degradations; detail;
        };
    }
  | Some pl ->
    let all_placed = Placement.num_placed pl = Fp_netlist.Netlist.num_modules nl in
    let certified = Fp_check.Certify.accepts (Fp_check.Certify.placement nl pl) in
    let cw, ch = content_dims pl in
    let excess = Outline.excess scenario.outline ~w:cw ~h:ch in
    let degradations, fits =
      if Tol.gt excess 0. then
        (degradations @ [ (0, Degradation.Outline_exceeded excess) ], false)
      else (degradations, true)
    in
    {
      plan = Some pl;
      stats =
        {
          engine;
          wall_time;
          work;
          objective = objective_of scenario nl pl;
          certified = certified && fits && all_placed;
          complete = complete && all_placed;
          degradations;
          detail;
        };
    }
