(** The Wong–Liu slicing annealer as a {!Solver.t}.

    Scenario mapping: [seed] replaces the annealer's seed, [outline] is
    passed through verbatim (the annealer realizes at bounded width and
    penalizes height excess for [Fixed] outlines), [wire_weight] sets
    the HPWL term, and the context deadline/abort truncate the schedule
    cooperatively — the best plan seen so far is returned with a
    [Deadline_truncated] degradation.  With a default scenario the
    engine is bit-identical to calling {!Fp_slicing.Anneal.run}
    directly with the same config. *)

val make : ?config:Fp_slicing.Anneal.config -> unit -> Solver.t
(** [config] defaults to {!Fp_slicing.Anneal.default_config}; the
    scenario's [seed], [outline] and [wire_weight] overlay it at solve
    time. *)
