(** The engine-agnostic solver contract.

    Every floorplanning backend in this repository — the paper's
    successive-augmentation MILP ({!Milp_engine}), the Wong–Liu slicing
    annealer ({!Sa_engine}), and the Per-RMAP-style projection solver
    ({!Project}) — is exposed as a {!t}: a named function from an
    instance plus {e scenario} knobs to an {!outcome} carrying an
    independently certified plan and typed stats.  Callers (the CLI, the
    bench, {!Portfolio.race}) program against this record and never
    against a concrete engine.

    The split of inputs is deliberate:

    - the {!scenario} is {e what to solve} — seed, outline, wirelength
      weight, wall-clock budget, checkpoint path.  It is shared verbatim
      by every engine in a portfolio so they race on the same problem;
    - the {!context} is {e how to run} — the RNG stream, an optional
      shared {!Fp_util.Pool}, the cooperative {!Fp_util.Abort} flag and
      the absolute deadline.  It is owned by the caller, so a racer can
      hand each engine its own stream and signal all of them at once.

    Engines must be deterministic for a fixed scenario + seed when no
    deadline or abort fires; wall-clock truncation is inherently
    timing-dependent and is reported through [stats] degradations
    instead of being hidden. *)

module Outline = Fp_core.Outline
module Degradation = Fp_core.Degradation

type scenario = {
  seed : int;           (** RNG seed for stochastic engines *)
  outline : Outline.t;  (** die constraint; see {!Fp_core.Outline} *)
  wire_weight : float option;
      (** [Some w] adds [w * HPWL] to every engine's objective; [None]
          leaves each engine's configured objective untouched *)
  time_budget : float option;
      (** wall-clock budget in seconds for one engine run; a portfolio
          turns it into one shared absolute {!context.deadline} *)
  checkpoint : string option;
      (** journal path for engines that checkpoint (MILP only today);
          others ignore it *)
}

val default_scenario : scenario
(** seed 1990, free outline, no wire term, no budget, no checkpoint. *)

type context = {
  rng : Fp_util.Rng.t;
      (** the engine's private stream — callers derive one per engine
          with {!Fp_util.Rng.split} so racing engines never share *)
  pool : Fp_util.Pool.t option;
      (** shared worker pool, if the caller lends one.  An engine must
          not shut it down, and must not use it from inside another
          pool's task (no nesting) *)
  abort : Fp_util.Abort.t;
      (** cooperative cancellation; engines poll it at their safe
          points and return their best-so-far when it is set *)
  deadline : float option;
      (** absolute [Unix.gettimeofday]-scale instant to stop by —
          already combined from the scenario's [time_budget] by
          {!of_scenario} *)
}

val of_scenario : ?pool:Fp_util.Pool.t -> scenario -> context
(** Fresh context for a standalone run: a new RNG from the scenario
    seed, a new abort flag, and the deadline anchored at now +
    [time_budget]. *)

type stats = {
  engine : string;       (** the solver's [name] *)
  wall_time : float;     (** seconds spent inside [solve] *)
  work : int;
      (** engine-specific effort unit: B&B nodes for MILP, attempted
          moves for SA, projection sweeps for the projection solver *)
  objective : float;
      (** scenario objective recomputed from the returned geometry by
          {!finalize} — comparable {e across} engines: chip height when
          the outline constrains the width, bounding-box area when it
          is free, plus the scenario wire term.  [infinity] when there
          is no plan *)
  certified : bool;
      (** the plan passed {!Fp_check.Certify.placement} (the referee
          re-checks from first principles; engines cannot self-certify)
          {e and} fits the scenario outline *)
  complete : bool;
      (** every module is placed and the engine ran to its own
          completion (not truncated/interrupted) *)
  degradations : (int * Degradation.t) list;
      (** every way the run fell short of its clean path, with the
          engine-specific step index it happened at *)
  detail : (string * float) list;
      (** engine-specific numeric extras for the bench JSON (e.g.
          ["nodes"], ["accepted"], ["sweeps"]) *)
}

type outcome = {
  plan : Fp_core.Placement.t option;
      (** [None] only when the engine failed outright; a truncated
          engine still returns its best-so-far *)
  stats : stats;
}

type t = {
  name : string;  (** stable id: ["milp"], ["sa"], ["project"] *)
  solve : context -> scenario -> Fp_netlist.Netlist.t -> outcome;
}

val objective_of :
  scenario -> Fp_netlist.Netlist.t -> Fp_core.Placement.t -> float
(** The cross-engine scenario objective of a plan (see
    {!stats.objective}). *)

val finalize :
  engine:string ->
  scenario:scenario ->
  t0:float ->
  work:int ->
  complete:bool ->
  degradations:(int * Degradation.t) list ->
  detail:(string * float) list ->
  Fp_netlist.Netlist.t ->
  Fp_core.Placement.t option ->
  outcome
(** Shared epilogue every engine ends with: certify the plan with
    {!Fp_check.Certify}, measure the outline excess (recording an
    [Outline_exceeded] degradation and withholding certification when
    the plan overflows a requested outline), recompute the scenario
    objective, and stamp the wall time against [t0]. *)

val deadline_left : context -> float option
(** Seconds until the context deadline ([None] when unlimited); never
    negative. *)
