(** Race several {!Solver.t}s on one scenario and keep the best plan.

    The racer runs every selected engine concurrently, one engine per
    task on its own {!Fp_util.Pool} (created for the race, [jobs]
    clamped to the engine count), each with a private RNG stream and
    all sharing one {!Fp_util.Abort} flag and one absolute deadline
    derived from the scenario's [time_budget].

    Two policies:

    - [Best_certified] (default): every engine runs to its own
      completion (or the shared deadline) and the winner is chosen
      afterwards — the lowest {!Solver.stats.objective} among certified
      outcomes, ties broken by engine order.  Without a [time_budget]
      the whole race is deterministic for a fixed seed, {e including
      across [jobs] values}: winner selection only reads per-engine
      results that are themselves deterministic.
    - [First_certified]: the first engine to finish with a certified
      plan signals the abort flag; still-running engines wind down at
      their next safe point and engines not yet started are skipped
      ({!Fp_util.Pool.run}'s [?abort]).  Which engine "finishes first"
      is wall-clock dependent by nature — use this policy for latency,
      [Best_certified] for reproducibility.

    An engine that raises is recorded as an [Engine_failed] degradation
    on its entry and the race continues; the racer itself fails only
    when {e no} engine produced a certified plan. *)

type policy = Best_certified | First_certified

type entry = {
  solver_name : string;
  outcome : Solver.outcome;
  ran : bool;  (** [false] when the racer skipped it (abort already set) *)
}

type report = {
  winner : entry option;
      (** the chosen certified outcome; [None] when no engine certified *)
  entries : entry list;  (** in engine order, one per selected engine *)
  wall_time : float;
  policy : policy;
}

val race :
  ?policy:policy ->
  ?jobs:int ->
  engines:Solver.t list ->
  scenario:Solver.scenario ->
  Fp_netlist.Netlist.t ->
  report
(** [jobs] defaults to the engine count (each engine gets a worker);
    values beyond the engine count are clamped down, [jobs = 1] runs
    the engines sequentially in order (still honoring the policy —
    under [First_certified] a sequential race short-circuits
    deterministically).
    @raise Invalid_argument on an empty engine list. *)

val degradations_of : report -> Fp_core.Degradation.t list
(** The winning entry's degradations (empty when there is no winner) —
    the input for {!Fp_core.Degradation.exit_code} on portfolio runs.
    The exit code reflects the quality of the plan actually returned,
    not of the losing engines; their records stay visible in
    [entries] and the bench JSON. *)
