module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Tol = Fp_geometry.Tol
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Placement = Fp_core.Placement
module Outline = Fp_core.Outline
module Warm_start = Fp_core.Warm_start
module Formulation = Fp_core.Formulation
module Degradation = Fp_core.Degradation
module Rng = Fp_util.Rng
module Abort = Fp_util.Abort

(* Separation slack left between projected pairs: comfortably above the
   certifier's tolerance so a projected-feasible state never fails on a
   hairline overlap, far below any module dimension. *)
let slack = 1e-4

(* Mutable projection state: positions move, shapes are frozen at
   construction ([ws]/[hs]/[rots] never change after [of_warm]). *)
type state = {
  xs : float array;
  ys : float array;
  ws : float array;
  hs : float array;
  rots : bool array;
}

let copy_state st =
  { st with xs = Array.copy st.xs; ys = Array.copy st.ys }

let restore ~from st =
  Array.blit from.xs 0 st.xs 0 (Array.length st.xs);
  Array.blit from.ys 0 st.ys 0 (Array.length st.ys)

(* Exact silicon height for the width the warm packing chose — secant
   linearization overestimates flexible heights, so recomputing keeps
   area conservation exact for the certifier. *)
let exact_height def ~w_env ~h_env =
  match def.Module_def.shape with
  | Module_def.Rigid _ -> h_env
  | Module_def.Flexible _ -> Module_def.height_for_width def w_env

let of_warm nl choices =
  let n = Array.length choices in
  let st =
    {
      xs = Array.make n 0.;
      ys = Array.make n 0.;
      ws = Array.make n 0.;
      hs = Array.make n 0.;
      rots = Array.make n false;
    }
  in
  for i = 0 to n - 1 do
    let c = choices.(i) in
    let env = c.Warm_start.envelope in
    st.xs.(i) <- env.Rect.x;
    st.ys.(i) <- env.Rect.y;
    st.ws.(i) <- env.Rect.w;
    st.hs.(i) <-
      exact_height (Netlist.module_at nl i) ~w_env:env.Rect.w
        ~h_env:env.Rect.h;
    st.rots.(i) <- c.Warm_start.rotated
  done;
  st

let top_of st =
  let top = ref 0. in
  Array.iteri (fun i y -> top := Float.max !top (y +. st.hs.(i))) st.ys;
  !top

let placement_of w_strip st =
  let n = Array.length st.xs in
  let pl = ref (Placement.empty ~chip_width:w_strip) in
  for i = 0 to n - 1 do
    let rect =
      Rect.make ~x:st.xs.(i) ~y:st.ys.(i) ~w:st.ws.(i) ~h:st.hs.(i)
    in
    pl :=
      Placement.add !pl
        { Placement.module_id = i; rect; envelope = rect;
          rotated = st.rots.(i) }
  done;
  !pl

(* Projection onto the die box: closed-form clamp per module.  A module
   taller than the height target is pinned to the floor. *)
let project_box st ~w_strip ~height =
  let n = Array.length st.xs in
  for i = 0 to n - 1 do
    st.xs.(i) <-
      Float.min (Float.max 0. st.xs.(i)) (Float.max 0. (w_strip -. st.ws.(i)));
    st.ys.(i) <-
      Float.min (Float.max 0. st.ys.(i)) (Float.max 0. (height -. st.hs.(i)))
  done

(* Projection onto one pairwise non-overlap constraint: if the two
   rectangles interpenetrate, translate both apart along the axis of
   least penetration, half each, leaving [slack] daylight. *)
let project_pair st i j =
  let ox =
    Float.min (st.xs.(i) +. st.ws.(i)) (st.xs.(j) +. st.ws.(j))
    -. Float.max st.xs.(i) st.xs.(j)
  and oy =
    Float.min (st.ys.(i) +. st.hs.(i)) (st.ys.(j) +. st.hs.(j))
    -. Float.max st.ys.(i) st.ys.(j)
  in
  if Tol.gt ox 0. && Tol.gt oy 0. then
    if Tol.leq ox oy then begin
      let d = (ox +. slack) /. 2. in
      if Tol.leq st.xs.(i) st.xs.(j) then begin
        st.xs.(i) <- st.xs.(i) -. d;
        st.xs.(j) <- st.xs.(j) +. d
      end
      else begin
        st.xs.(i) <- st.xs.(i) +. d;
        st.xs.(j) <- st.xs.(j) -. d
      end
    end
    else begin
      let d = (oy +. slack) /. 2. in
      if Tol.leq st.ys.(i) st.ys.(j) then begin
        st.ys.(i) <- st.ys.(i) -. d;
        st.ys.(j) <- st.ys.(j) +. d
      end
      else begin
        st.ys.(i) <- st.ys.(i) +. d;
        st.ys.(j) <- st.ys.(j) -. d
      end
    end

(* Deepest remaining pairwise penetration. *)
let max_penetration st pairs =
  let v = ref 0. in
  Array.iter
    (fun (i, j) ->
      let ox =
        Float.min (st.xs.(i) +. st.ws.(i)) (st.xs.(j) +. st.ws.(j))
        -. Float.max st.xs.(i) st.xs.(j)
      and oy =
        Float.min (st.ys.(i) +. st.hs.(i)) (st.ys.(j) +. st.hs.(j))
        -. Float.max st.ys.(i) st.ys.(j)
      in
      if Tol.gt ox 0. && Tol.gt oy 0. then
        v := Float.max !v (Float.min ox oy))
    pairs;
  !v

(* Superiorization: diminishing descent perturbations between
   projection rounds — gravity (pulls the packing down, the area
   objective) and net-centroid pulls (the wirelength objective). *)
let superiorize st ~alpha ~net_members ~wire_pull =
  let n = Array.length st.xs in
  for i = 0 to n - 1 do
    st.ys.(i) <- Float.max 0. (st.ys.(i) -. alpha)
  done;
  if wire_pull then
    Array.iter
      (fun members ->
        let k = Array.length members in
        if k >= 2 then begin
          let cx = ref 0. and cy = ref 0. in
          Array.iter
            (fun m ->
              cx := !cx +. st.xs.(m) +. (st.ws.(m) /. 2.);
              cy := !cy +. st.ys.(m) +. (st.hs.(m) /. 2.))
            members;
          let cx = !cx /. float_of_int k and cy = !cy /. float_of_int k in
          let step = alpha /. 2. in
          Array.iter
            (fun m ->
              let dx = cx -. (st.xs.(m) +. (st.ws.(m) /. 2.))
              and dy = cy -. (st.ys.(m) +. (st.hs.(m) /. 2.)) in
              let clamp d = Float.min step (Float.max (-.step) (0.2 *. d)) in
              st.xs.(m) <- st.xs.(m) +. clamp dx;
              st.ys.(m) <- Float.max 0. (st.ys.(m) +. clamp dy))
            members
        end)
      net_members

(* One projection phase toward [height]: alternating superiorization /
   pairwise projections / box projection for up to [sweeps] rounds,
   stopping early when the state is projected-feasible or the
   deadline/abort fires.  Returns (sweeps spent, truncated). *)
let project_phase rng st ~w_strip ~height ~sweeps ~alpha0 ~net_members
    ~wire_pull ~abort ~deadline pairs =
  let order = Array.copy pairs in
  let alpha = ref alpha0 in
  let k = ref 0 in
  let truncated = ref false in
  let stop = ref false in
  while (not !stop) && !k < sweeps do
    if Abort.is_set abort then begin
      truncated := true;
      stop := true
    end
    else if
      match deadline with
      | Some dl -> Tol.gt (Unix.gettimeofday ()) dl
      | None -> false
    then begin
      truncated := true;
      stop := true
    end
    else if Tol.leq (max_penetration st pairs) 1e-9 && !k > 0 then
      stop := true
    else begin
      superiorize st ~alpha:!alpha ~net_members ~wire_pull;
      Rng.shuffle rng order;
      Array.iter (fun (i, j) -> project_pair st i j) order;
      project_box st ~w_strip ~height;
      alpha := !alpha *. 0.93;
      incr k
    end
  done;
  (!k, !truncated)

(* Deterministic bottom-left legalization snapping the projected state
   to an exactly feasible packing: modules in ascending projected
   (y, x, id) order keep their projected x and drop onto the skyline —
   residual penetrations vanish, tops can only come down or stay.  The
   projection phase decides the {e arrangement}; this pass restores the
   {e invariants}. *)
let legalize st ~w_strip =
  let n = Array.length st.xs in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare st.ys.(a) st.ys.(b) in
      if c <> 0 then c
      else
        let c = Float.compare st.xs.(a) st.xs.(b) in
        if c <> 0 then c else Int.compare a b)
    order;
  let sky = ref (Skyline.create ~width:w_strip) in
  Array.iter
    (fun i ->
      let w = Float.min st.ws.(i) w_strip in
      let x = Float.min (Float.max 0. st.xs.(i)) (Float.max 0. (w_strip -. w)) in
      let y = Skyline.height_over !sky ~x0:x ~x1:(x +. w) in
      st.xs.(i) <- x;
      st.ys.(i) <- y;
      sky :=
        Skyline.add_rect !sky (Rect.make ~x ~y ~w ~h:st.hs.(i)))
    order

let content_width st =
  let w = ref 0. in
  Array.iteri (fun i x -> w := Float.max !w (x +. st.ws.(i))) st.xs;
  !w

(* Candidate strip widths.  A constrained outline dictates the width
   (floored at the widest module: an impossible outline still yields a
   valid plan, and the overflow is reported as [Outline_exceeded] by
   the shared epilogue).  A free outline gets an aspect sweep around
   the square die — the projections are cheap enough to just try
   several widths and keep the smallest bounding box. *)
let strip_widths outline st =
  let widest = Array.fold_left Float.max 0. st.ws in
  match Outline.width_limit outline with
  | Some w -> [ Float.max w widest ]
  | None ->
    let total = ref 0. in
    Array.iteri (fun i w -> total := !total +. (w *. st.hs.(i))) st.ws;
    let side = Float.sqrt !total in
    List.map
      (fun f -> Float.max (f *. side) widest)
      [ 1.0; 1.06; 1.12; 1.2; 1.3 ]

let make ?(sweeps_per_height = 160) ?(max_heights = 40) ?(shrink = 0.97)
    ?(allow_rotation = true) () =
  let solve (ctx : Solver.context) (sc : Solver.scenario) nl =
    let t0 = Unix.gettimeofday () in
    let n = Netlist.num_modules nl in
    if n = 0 then invalid_arg "Project.solve: empty instance";
    let warm_items () =
      Array.init n (fun i ->
          { Formulation.def = Netlist.module_at nl i;
            margins = (0., 0., 0., 0.) })
    in
    let pairs =
      Array.of_list
        (List.concat_map
           (fun i -> List.init i (fun j -> (j, i)))
           (List.init n Fun.id))
    in
    let net_members =
      Array.of_list
        (List.map
           (fun net -> Array.of_list (Net.modules net))
           (Netlist.nets nl))
    in
    let wire_pull =
      match sc.Solver.wire_weight with
      | Some w -> not (Tol.is_zero w)
      | None -> false
    in
    let sweeps_total = ref 0 in
    let truncated = ref false in
    (* Full optimization at one strip width: a guaranteed-feasible
       bottom-left warm pack (the floor the engine can never fall
       through — everything after only translates rectangles), then the
       shrink loop of projection phases.  Returns the best state, its
       top, and the warm top at this width. *)
    let run_width w_strip =
      let st =
        of_warm nl
          (Warm_start.place_group
             ~skyline:(Skyline.create ~width:w_strip)
             ~allow_rotation ~linearization:Formulation.Secant
             (warm_items ()))
      in
      let warm_top = top_of st in
      let mean_h =
        Array.fold_left ( +. ) 0. st.hs /. float_of_int (Int.max 1 n)
      in
      let alpha0 = 0.08 *. mean_h in
      let tallest = Array.fold_left Float.max 0. st.hs in
      let h_lo =
        let area = ref 0. in
        Array.iteri (fun i w -> area := !area +. (w *. st.hs.(i))) st.ws;
        Float.max (!area /. w_strip) tallest
      in
      let best = copy_state st in
      let best_top = ref warm_top in
      (* One shrink attempt: jitter the best-so-far coordinates (an
         escape hatch from the greedy pack's local minimum), project
         toward [height], legalize, and commit when the legalized top
         improves.  Anytime by construction — a truncated phase still
         legalizes whatever arrangement it reached. *)
      let attempt ~jitter height =
        restore ~from:best st;
        if Tol.gt jitter 0. then
          for i = 0 to n - 1 do
            st.xs.(i) <-
              st.xs.(i) +. Rng.range ctx.Solver.rng ~lo:(-.jitter) ~hi:jitter;
            st.ys.(i) <-
              Float.max 0.
                (st.ys.(i)
                +. Rng.range ctx.Solver.rng ~lo:(-.jitter) ~hi:jitter)
          done;
        let k, cut =
          project_phase ctx.Solver.rng st ~w_strip ~height
            ~sweeps:sweeps_per_height ~alpha0 ~net_members ~wire_pull
            ~abort:ctx.Solver.abort ~deadline:ctx.Solver.deadline pairs
        in
        sweeps_total := !sweeps_total + k;
        if cut then truncated := true;
        legalize st ~w_strip;
        let top = top_of st in
        let improved = Tol.lt top !best_top in
        if improved then begin
          Array.blit st.xs 0 best.xs 0 n;
          Array.blit st.ys 0 best.ys 0 n;
          best_top := top
        end;
        improved
      in
      (* Non-improving attempts are retried with a growing jitter before
         giving up — the projections are cheap enough that a few escape
         attempts cost less than one MILP node. *)
      let patience = 4 in
      let jitter_of misses = float_of_int misses *. 0.35 *. mean_h in
      (match Outline.height_limit sc.Solver.outline with
      | Some h ->
        (* Fixed outline: drive the top under [h]. *)
        let attempts = ref 0 and misses = ref 0 in
        let go = ref (Tol.gt !best_top h) in
        while !go do
          incr attempts;
          if attempt ~jitter:(jitter_of !misses) h then misses := 0
          else incr misses;
          go :=
            Tol.gt !best_top h && !misses < patience
            && !attempts < max_heights
            && not !truncated
        done
      | None ->
        (* Free / width-only outline: geometric height-shrink loop from
           the warm top, keeping the last height the phases reached. *)
        let attempts = ref 0 and misses = ref 0 in
        let go = ref true in
        while !go do
          incr attempts;
          let target = Float.max h_lo (!best_top *. shrink) in
          if attempt ~jitter:(jitter_of !misses) target then misses := 0
          else incr misses;
          go :=
            !misses < patience && !attempts < max_heights
            && (not !truncated)
            && Tol.gt !best_top h_lo
        done);
      (best, !best_top, warm_top)
    in
    (* Probe pack on an effectively unbounded strip to learn the frozen
       shapes feeding the width candidates. *)
    let probe =
      of_warm nl
        (Warm_start.place_group
           ~skyline:(Skyline.create ~width:1e9)
           ~allow_rotation ~linearization:Formulation.Secant (warm_items ()))
    in
    (* Run every candidate width (one for a constrained outline, the
       aspect sweep for a free one) and keep the smallest content
       bounding box.  A deadline cut stops the sweep — later widths are
       never better than a finished earlier one plus fresh budget. *)
    let chosen =
      List.fold_left
        (fun acc w_strip ->
          if !truncated then acc
          else
            let best, top, warm_top = run_width w_strip in
            let area = content_width best *. top in
            match acc with
            | Some (_, _, _, _, best_area) when Tol.leq best_area area -> acc
            | _ -> Some (w_strip, best, top, warm_top, area))
        None
        (strip_widths sc.Solver.outline probe)
    in
    let w_strip, best, best_top, warm_top =
      match chosen with
      | Some (w, b, t, wt, _) -> (w, b, t, wt)
      | None -> assert false (* strip_widths never returns [] *)
    in
    let pl = placement_of w_strip best in
    let degradations =
      if !truncated then [ (0, Degradation.Deadline_truncated) ] else []
    in
    Solver.finalize ~engine:"project" ~scenario:sc ~t0 ~work:!sweeps_total
      ~complete:(not !truncated) ~degradations
      ~detail:
        [
          ("sweeps", float_of_int !sweeps_total);
          ("warm_height", warm_top);
          ("best_height", best_top);
          ("strip_width", w_strip);
        ]
      nl (Some pl)
  in
  { Solver.name = "project"; solve }

let solver = make ()
