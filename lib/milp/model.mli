(** Mixed 0–1 integer linear programming model.

    Wraps an {!Fp_lp.Lp_problem} with integrality marks and optional
    {e disjunction pairs} — pairs of 0–1 variables [(x_ij, y_ij)] whose four
    value combinations select one of four disjuncts, exactly the structure
    of the paper's non-overlap constraints (eq. (2)).  Declaring the pair
    lets the branch-and-bound branch four ways on the {e pair} instead of
    twice on each variable, which matches the combinatorial structure and
    roughly halves the search depth. *)

type var = Fp_lp.Lp_problem.var

type cmp = Fp_lp.Lp_problem.cmp = Le | Ge | Eq

type t

val create : ?name:string -> unit -> t

val add_continuous :
  t -> ?lb:float -> ?ub:float -> string -> var
(** Continuous variable, default bounds [0, +inf). *)

val add_binary : t -> string -> var
(** 0–1 integer variable. *)

val add_integer : t -> lb:float -> ub:float -> string -> var
(** General bounded integer variable (branched by floor/ceil splitting). *)

val add_constr : t -> ?name:string -> Expr.t -> cmp -> Expr.t -> unit
(** [add_constr t lhs cmp rhs]: constants migrate to the right-hand side. *)

val add_constr_or_bound : t -> ?name:string -> Expr.t -> cmp -> Expr.t -> unit
(** Like {!add_constr}, but a row mentioning a single variable is folded
    into that variable's bounds ({!Fp_lp.Lp_problem.tighten_bounds})
    instead of adding a row — the revised simplex then handles it for
    free instead of carrying it in the basis.  A tightening that would
    empty the interval is kept as an (infeasible) row so solvers report
    [Infeasible] normally.  Use for mechanically generated constraints
    ({!Fp_core.Formulation}); hand-written models usually want the row
    preserved for diagnostics. *)

val declare_pair : t -> var -> var -> unit
(** Mark two binaries as a disjunction pair for 4-way branching.
    @raise Invalid_argument if either variable is not binary. *)

val set_objective :
  t -> [ `Minimize | `Maximize ] -> Expr.t -> unit
(** The expression's constant term is remembered and added to reported
    objective values. *)

val problem : t -> Fp_lp.Lp_problem.t
(** The underlying LP (integrality relaxed).  The branch-and-bound mutates
    its bounds during search but always restores them. *)

val integer_vars : t -> var list
val pairs : t -> (var * var) list
val is_integer_var : t -> var -> bool

val is_binary : t -> var -> bool
(** Integer variable with bounds exactly [0, 1]. *)

val objective_constant : t -> float

(** {2 Read-only introspection}

    Static analyzers ({!Fp_check.Lint}) and serializers walk a model
    without mutating it.  Variables are visited in handle order (the
    declaration order), constraints in insertion order. *)

val iter_vars : t -> (var -> unit) -> unit
(** [iter_vars t f] applies [f] to every variable handle, continuous and
    integer alike, in declaration order. *)

val fold_vars : t -> init:'a -> f:('a -> var -> 'a) -> 'a
(** [fold_vars t ~init ~f] folds [f] over every variable handle in
    declaration order. *)

val iter_constrs : t -> (Fp_lp.Lp_problem.constr -> unit) -> unit
(** [iter_constrs t f] applies [f] to every constraint row in insertion
    order.  Rows are exposed as {!Fp_lp.Lp_problem.constr} records —
    normalized [terms cmp rhs] with constants already migrated to the
    right-hand side and duplicate variable mentions summed. *)

val fold_constrs :
  t -> init:'a -> f:('a -> Fp_lp.Lp_problem.constr -> 'a) -> 'a
(** [fold_constrs t ~init ~f] folds [f] over every constraint row in
    insertion order. *)

val var_bounds : t -> var -> float * float
(** [(lb, ub)] of a variable; [lb] may be [neg_infinity], [ub]
    [infinity]. *)

val objective_terms : t -> (float * var) list
(** Nonzero objective coefficients in declaration order (the constant
    term is {!objective_constant}). *)

val sense : t -> [ `Minimize | `Maximize ]
val num_vars : t -> int
val num_integer_vars : t -> int
val num_constrs : t -> int
val var_name : t -> var -> string

val integral : ?tol:float -> t -> float array -> bool
(** Do all integer variables take integral values at this point? *)

val round_integers : t -> float array -> float array
(** Copy of the point with every integer variable rounded to the nearest
    integer (no feasibility implication). *)
