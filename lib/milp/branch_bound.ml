module Lp_problem = Fp_lp.Lp_problem
module Revised = Fp_lp.Revised

let src = Logs.Src.create "fp.milp" ~doc:"branch-and-bound"

module Log = (val Logs.src_log src : Logs.LOG)

type branch_rule = Most_fractional | First_fractional

type params = {
  node_limit : int;
  time_limit : float;
  int_tol : float;
  min_improvement : float;
  log : bool;
  branch_rule : branch_rule;
  warm_lp : bool;
  shadow_cold : bool;
}

let default_params =
  {
    node_limit = 200_000;
    time_limit = 120.;
    int_tol = 1e-6;
    min_improvement = 1e-7;
    log = false;
    branch_rule = Most_fractional;
    warm_lp = true;
    shadow_cold = false;
  }

type status = Optimal | Feasible | Infeasible | Unbounded | No_solution

type outcome = {
  status : status;
  best : (float array * float) option;
  nodes : int;
  lp_solves : int;
  warm_hits : int;
  cold_solves : int;
  refactorizations : int;
  pivots : int;
  shadow_pivots : int;
  root_bound : float;
  elapsed : float;
}

type search = {
  model : Model.t;
  prob : Lp_problem.t;
  prm : params;
  sense_mult : float;           (* +1 minimize, -1 maximize *)
  partner : (int, int) Hashtbl.t; (* pair membership, symmetric *)
  deadline : float;
  mutable nodes : int;
  mutable lp_solves : int;
  mutable warm_hits : int;
  mutable cold_solves : int;
  mutable refactorizations : int;
  mutable pivots : int;
  mutable shadow_pivots : int;
  mutable best_m : float;       (* incumbent objective, minimized form *)
  mutable best_x : float array option;
  mutable out_of_budget : bool;
  mutable root_unbounded : bool;
  mutable bound_incomplete : bool;
      (* true when a subtree had to be abandoned without a trustworthy
         bound; demotes Optimal to Feasible *)
}

let fractionality x v =
  let f = x.(v) -. Float.round x.(v) in
  Float.abs f

(* Branch variable per the configured rule, or None when integral. *)
let pick_branch_var s x =
  match s.prm.branch_rule with
  | Most_fractional ->
    let best = ref (-1) and best_f = ref s.prm.int_tol in
    List.iter
      (fun v ->
        let f = fractionality x v in
        if f > !best_f then begin
          best_f := f;
          best := v
        end)
      (Model.integer_vars s.model);
    if !best < 0 then None else Some !best
  | First_fractional ->
    List.find_opt
      (fun v -> fractionality x v > s.prm.int_tol)
      (Model.integer_vars s.model)

let update_incumbent s x m =
  if m < s.best_m -. s.prm.min_improvement then begin
    s.best_m <- m;
    s.best_x <- Some (Array.copy x);
    if s.prm.log then
      Log.info (fun f ->
          f "incumbent %.6g after %d nodes" (s.sense_mult *. m) s.nodes)
  end

(* Explore under temporarily tightened bounds; always restores. *)
let with_bounds s settings k =
  let saved =
    List.map
      (fun (v, _, _) -> (v, Lp_problem.var_lb s.prob v, Lp_problem.var_ub s.prob v))
      settings
  in
  List.iter (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub) settings;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub)
        saved)
    k

let budget_exhausted s =
  s.nodes >= s.prm.node_limit || Unix.gettimeofday () > s.deadline

(* One LP relaxation: warm-start from the parent's optimal basis via the
   dual simplex when available (bound-only changes keep it dual
   feasible), cold otherwise.  [Revised.solve_from] falls back to a cold
   solve internally on singular or stale bases; stats.warm records which
   path actually produced the answer. *)
let solve_node_lp s parent_basis =
  s.lp_solves <- s.lp_solves + 1;
  let result, (st : Revised.stats) =
    match parent_basis with
    | Some snap when s.prm.warm_lp -> Revised.solve_from snap s.prob
    | _ -> Revised.solve s.prob
  in
  s.pivots <- s.pivots + st.primal_pivots + st.dual_pivots;
  s.refactorizations <- s.refactorizations + st.refactorizations;
  if st.warm then s.warm_hits <- s.warm_hits + 1
  else s.cold_solves <- s.cold_solves + 1;
  (* Shadow accounting: price the identical subproblem with a cold solve
     (discarding its answer) so warm and cold engines are compared on the
     same search tree.  [Revised.solve] only reads the problem, so the
     search itself is unaffected. *)
  if s.prm.shadow_cold then begin
    if st.warm then begin
      let _, (cst : Revised.stats) = Revised.solve s.prob in
      s.shadow_pivots <- s.shadow_pivots + cst.primal_pivots + cst.dual_pivots
    end
    else s.shadow_pivots <- s.shadow_pivots + st.primal_pivots + st.dual_pivots
  end;
  result

(* A stand-in LP point when the node's LP failed: every unfixed integer
   variable sits strictly between its bounds so the branching rules see
   it as fractional; fixed variables take their value. *)
let pseudo_point s =
  Array.init (Lp_problem.num_vars s.prob) (fun v ->
      let lb = Lp_problem.var_lb s.prob v and ub = Lp_problem.var_ub s.prob v in
      if ub -. lb <= s.prm.int_tol then lb
      else if lb > neg_infinity then lb +. 0.5
      else if ub < infinity then ub -. 0.5
      else 0.5)

let rec explore s ~depth ~parent_basis ~parent_bound =
  if budget_exhausted s then s.out_of_budget <- true
  else begin
    s.nodes <- s.nodes + 1;
    expand s ~depth ~parent_basis ~parent_bound
      (solve_node_lp s parent_basis)
  end

and expand s ~depth ~parent_basis ~parent_bound result =
  match result with
  | Revised.Infeasible -> ()
  | Revised.Iteration_limit ->
    (* No bound from this node's own LP, but the node is a restriction
       of its parent, so the parent's LP bound still applies: prune on
       it if possible, otherwise branch blind and keep going — only
       when the node is fully fixed must the subtree be abandoned, and
       then optimality can no longer be claimed. *)
    if parent_bound >= s.best_m -. s.prm.min_improvement then ()
    else begin
      Log.warn (fun f ->
          f "LP iteration limit at depth %d; retreating to parent bound"
            depth);
      let x = pseudo_point s in
      match pick_branch_var s x with
      | Some v -> branch s ~depth x v ~basis:parent_basis ~bound:parent_bound
      | None -> s.bound_incomplete <- true
    end
  | Revised.Unbounded ->
    if depth = 0 then s.root_unbounded <- true
    (* Deeper nodes are restrictions of the root; if the root was
       bounded this cannot happen. *)
  | Revised.Optimal { x; obj; basis } ->
    let m = s.sense_mult *. (obj +. Model.objective_constant s.model) in
    if m >= s.best_m -. s.prm.min_improvement then () (* bound prune *)
    else begin
      match pick_branch_var s x with
      | None ->
        (* Integral (within tolerance): snap and accept. *)
        let snapped = Model.round_integers s.model x in
        let m_exact =
          s.sense_mult
          *. (Lp_problem.objective_value s.prob snapped
             +. Model.objective_constant s.model)
        in
        (* Rounding can only move the objective through integer terms;
           re-check feasibility to be safe. *)
        if Lp_problem.constraint_violation s.prob snapped <= 1e-5 then
          update_incumbent s snapped m_exact
        else update_incumbent s x m
      | Some v -> branch s ~depth x v ~basis:(Some basis) ~bound:m
    end

and branch s ~depth x v ~basis ~bound =
  match Hashtbl.find_opt s.partner v with
  | Some w when fractionality x v > s.prm.int_tol
             || fractionality x w > s.prm.int_tol ->
    (* 4-way branching on the disjunction pair (v, w): each child fixes a
       combination, visiting the combination closest to the LP point
       first. *)
    let combos = [ (0., 0.); (0., 1.); (1., 0.); (1., 1.) ] in
    let dist (a, b) = Float.abs (x.(v) -. a) +. Float.abs (x.(w) -. b) in
    let ordered =
      List.sort (fun c1 c2 -> compare (dist c1) (dist c2)) combos
    in
    List.iter
      (fun (a, b) ->
        if not s.out_of_budget then
          with_bounds s
            [ (v, a, a); (w, b, b) ]
            (fun () ->
              explore s ~depth:(depth + 1) ~parent_basis:basis
                ~parent_bound:bound))
      ordered
  | _ ->
    (* Plain floor/ceil split, nearest side first. *)
    let lo = Float.floor x.(v) and hi = Float.ceil x.(v) in
    let lb = Lp_problem.var_lb s.prob v and ub = Lp_problem.var_ub s.prob v in
    let down () =
      if lo >= lb -. 1e-9 && not s.out_of_budget then
        with_bounds s [ (v, lb, lo) ] (fun () ->
            explore s ~depth:(depth + 1) ~parent_basis:basis
              ~parent_bound:bound)
    and up () =
      if hi <= ub +. 1e-9 && not s.out_of_budget then
        with_bounds s [ (v, hi, ub) ] (fun () ->
            explore s ~depth:(depth + 1) ~parent_basis:basis
              ~parent_bound:bound)
    in
    if x.(v) -. lo <= hi -. x.(v) then begin
      down ();
      up ()
    end
    else begin
      up ();
      down ()
    end

let solve ?(params = default_params) ?warm model =
  let prob = Model.problem model in
  let sense_mult =
    match Lp_problem.sense prob with
    | Lp_problem.Minimize -> 1.
    | Lp_problem.Maximize -> -1.
  in
  let partner = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace partner a b;
      Hashtbl.replace partner b a)
    (Model.pairs model);
  let start = Unix.gettimeofday () in
  let s =
    {
      model; prob; prm = params; sense_mult; partner;
      deadline = start +. params.time_limit;
      nodes = 0; lp_solves = 0;
      warm_hits = 0; cold_solves = 0; refactorizations = 0; pivots = 0;
      shadow_pivots = 0;
      best_m = infinity; best_x = None;
      out_of_budget = false; root_unbounded = false; bound_incomplete = false;
    }
  in
  (* Install the warm start if it checks out. *)
  (match warm with
  | Some x
    when Array.length x = Model.num_vars model
         && Model.integral ~tol:params.int_tol model x
         && Lp_problem.constraint_violation prob x <= 1e-5 ->
    let m =
      sense_mult
      *. (Lp_problem.objective_value prob x +. Model.objective_constant model)
    in
    s.best_m <- m;
    s.best_x <- Some (Array.copy x)
  | Some _ ->
    Log.warn (fun f -> f "warm start rejected (infeasible or non-integral)")
  | None -> ());
  let finish ~root_bound =
    let elapsed = Unix.gettimeofday () -. start in
    let best = Option.map (fun x -> (x, s.sense_mult *. s.best_m)) s.best_x in
    let status =
      if s.root_unbounded then Unbounded
      else
        match (best, s.out_of_budget || s.bound_incomplete) with
        | Some _, false -> Optimal
        | Some _, true -> Feasible
        | None, false -> Infeasible
        | None, true -> No_solution
    in
    {
      status; best; nodes = s.nodes; lp_solves = s.lp_solves;
      warm_hits = s.warm_hits; cold_solves = s.cold_solves;
      refactorizations = s.refactorizations; pivots = s.pivots;
      shadow_pivots = s.shadow_pivots; root_bound; elapsed;
    }
  in
  if budget_exhausted s then begin
    (* Exhausted before the root LP: report without solving anything, so
       nodes and lp_solves stay exact (both 0). *)
    s.out_of_budget <- true;
    finish ~root_bound:nan
  end
  else begin
    (* Root LP: solved exactly once, reused both for the reported root
       bound and as the root node of the search. *)
    let root_result = solve_node_lp s None in
    let root_bound =
      match root_result with
      | Revised.Optimal { obj; _ } ->
        (sense_mult *. obj) +. (sense_mult *. Model.objective_constant model)
      | Revised.Unbounded | Revised.Iteration_limit -> neg_infinity
      | Revised.Infeasible -> infinity
    in
    if root_bound = infinity && s.best_x = None then
      {
        status = Infeasible; best = None; nodes = 0; lp_solves = s.lp_solves;
        warm_hits = s.warm_hits; cold_solves = s.cold_solves;
        refactorizations = s.refactorizations; pivots = s.pivots;
        shadow_pivots = s.shadow_pivots; root_bound = nan;
        elapsed = Unix.gettimeofday () -. start;
      }
    else begin
      s.nodes <- s.nodes + 1;
      expand s ~depth:0 ~parent_basis:None ~parent_bound:neg_infinity
        root_result;
      finish ~root_bound:(sense_mult *. root_bound)
    end
  end
