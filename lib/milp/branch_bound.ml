module Lp_problem = Fp_lp.Lp_problem
module Revised = Fp_lp.Revised
module Pool = Fp_util.Pool
module Fault = Fp_util.Fault

let src = Logs.Src.create "fp.milp" ~doc:"branch-and-bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Fault sites: forced budget exhaustion (the anytime path — the best
   incumbent, usually the caller's warm start, is returned immediately)
   and frontier-task loss (a captured subtree's result vanishes; the
   consume loop re-runs it on the calling domain under the exact
   contract the sequential search would have given it, so determinism
   survives the loss). *)
let site_budget = Fault.register "branch_bound.budget"
let site_task_loss = Fault.register "branch_bound.task_loss"

type branch_rule = Most_fractional | First_fractional

(* A globally valid inequality [sum terms <= rhs], produced by a
   separation callback against a fractional LP point. *)
type cut = {
  cut_name : string;
  cut_terms : (float * int) list;
  cut_rhs : float;
}

type cutter = float array -> cut list

type params = {
  node_limit : int;
  time_limit : float;
  int_tol : float;
  min_improvement : float;
  log : bool;
  branch_rule : branch_rule;
  warm_lp : bool;
  shadow_cold : bool;
  jobs : int;
  deterministic : bool;
  ramp_nodes : int;
  cut_rounds : int;
  cuts_per_round : int;
  propagate : bool;
}

let default_params =
  {
    node_limit = 200_000;
    time_limit = 120.;
    int_tol = 1e-6;
    min_improvement = 1e-7;
    log = false;
    branch_rule = Most_fractional;
    warm_lp = true;
    shadow_cold = false;
    jobs = 1;
    deterministic = true;
    ramp_nodes = 32;
    cut_rounds = 4;
    cuts_per_round = 16;
    propagate = false;
  }

type status = Optimal | Feasible | Infeasible | Unbounded | No_solution

type domain_work = {
  d_nodes : int;
  d_lp_solves : int;
  d_warm_hits : int;
  d_cold_solves : int;
  d_refactorizations : int;
  d_pivots : int;
  d_shadow_pivots : int;
  d_numerical_recoveries : int;
  d_cuts_added : int;
  d_cuts_purged : int;
  d_separation_time : float;
}

type outcome = {
  status : status;
  best : (float array * float) option;
  nodes : int;
  lp_solves : int;
  warm_hits : int;
  cold_solves : int;
  refactorizations : int;
  pivots : int;
  shadow_pivots : int;
  numerical_recoveries : int;
  cuts_added : int;
  cuts_purged : int;
  separation_time : float;
  tasks_lost : int;
  root_bound : float;
  elapsed : float;
  per_domain : domain_work array;
  frontier_tasks : int;
  waves : int;
}

(* Incumbent shared across domains in free-running mode.  The atomic
   holds the minimized-form objective; the witness point sits behind a
   mutex because it is updated rarely and read once at the end. *)
type shared = {
  sh_best : float Atomic.t;
  sh_lock : Mutex.t;
  mutable sh_x : (float array * float) option;
  sh_nodes : int Atomic.t;  (* global node count toward [node_limit] *)
}

let rec publish_shared sh x m =
  let cur = Atomic.get sh.sh_best in
  if m < cur then begin
    if Atomic.compare_and_set sh.sh_best cur m then begin
      Mutex.lock sh.sh_lock;
      (match sh.sh_x with
      | Some (_, m') when m' <= m -> ()
      | _ -> sh.sh_x <- Some (Array.copy x, m));
      Mutex.unlock sh.sh_lock
    end
    else publish_shared sh x m
  end

(* A subtree handed to the pool: the accumulated variable-bound settings
   from the root (absolute values, root-first, later entries override
   earlier ones for the same variable), plus the parent's LP bound and
   basis snapshot ({!Revised.snapshot} is immutable, so sharing it across
   domains is safe — each domain refactorizes it into its own {!Basis}). *)
type task = {
  t_trail : (int * float * float) list;
  t_depth : int;
  t_basis : Revised.snapshot option;
  t_bound : float;
  t_cuts : Lp_problem.constr list;
      (* cut rows active above the captured subtree (appended by
         ancestors and still binding when the frontier was captured);
         the replaying worker re-appends them so [t_basis] matches its
         problem's row count *)
}

type search = {
  model : Model.t;
  prob : Lp_problem.t;
  prm : params;
  sense_mult : float;           (* +1 minimize, -1 maximize *)
  partner : (int, int) Hashtbl.t; (* pair membership, symmetric *)
  is_integer : int -> bool;     (* integer-variable membership, for
                                   bound snapping during propagation *)
  prop_rows : Lp_problem.constr array;
                                (* valid rows outside the LP (the lazy cut
                                   pool) that still join propagation *)
  cutter : cutter option;       (* separation callback, None = no cuts *)
  base_nrows : int;             (* rows the model owns; cut rows live above *)
  deadline : float;
  shared : shared option;       (* free-running mode only *)
  mutable node_budget : int;    (* this search stops at [nodes >= node_budget] *)
  mutable capture : (task -> unit) option;
  mutable ramp_limit : int;     (* capture instead of exploring beyond this *)
  mutable nodes : int;
  mutable lp_solves : int;
  mutable warm_hits : int;
  mutable cold_solves : int;
  mutable refactorizations : int;
  mutable pivots : int;
  mutable shadow_pivots : int;
  mutable numerical_recoveries : int;
  mutable cuts_added : int;
  mutable cuts_purged : int;
  mutable separation_time : float;
      (* node LPs that needed a recovery path: a requested warm start
         that fell back to a cold solve, or an LP that hit its own
         iteration limit and was handled via the parent-bound retreat *)
  mutable best_m : float;       (* incumbent objective, minimized form *)
  mutable best_x : float array option;
  mutable out_of_budget : bool;
  mutable root_unbounded : bool;
  mutable bound_incomplete : bool;
      (* true when a subtree had to be abandoned without a trustworthy
         bound; demotes Optimal to Feasible *)
}

let fractionality x v =
  let f = x.(v) -. Float.round x.(v) in
  Float.abs f

(* Branch variable per the configured rule, or None when integral. *)
let pick_branch_var s x =
  match s.prm.branch_rule with
  | Most_fractional ->
    let best = ref (-1) and best_f = ref s.prm.int_tol in
    List.iter
      (fun v ->
        let f = fractionality x v in
        if f > !best_f then begin
          best_f := f;
          best := v
        end)
      (Model.integer_vars s.model);
    if !best < 0 then None else Some !best
  | First_fractional ->
    List.find_opt
      (fun v -> fractionality x v > s.prm.int_tol)
      (Model.integer_vars s.model)

(* The pruning bound: the local incumbent, sharpened by the cross-domain
   incumbent in free-running mode.  Sequential and deterministic
   searches have [shared = None], where this is exactly [best_m]. *)
let cutoff s =
  match s.shared with
  | None -> s.best_m
  | Some sh -> Float.min s.best_m (Atomic.get sh.sh_best)

let update_incumbent s x m =
  if m < cutoff s -. s.prm.min_improvement then begin
    s.best_m <- m;
    s.best_x <- Some (Array.copy x);
    (match s.shared with
    | Some sh -> publish_shared sh x m
    | None -> ());
    if s.prm.log then
      Log.info (fun f ->
          f "incumbent %.6g after %d nodes" (s.sense_mult *. m) s.nodes)
  end

(* Explore under temporarily tightened bounds; always restores. *)
let with_bounds s settings k =
  let saved =
    List.map
      (fun (v, _, _) -> (v, Lp_problem.var_lb s.prob v, Lp_problem.var_ub s.prob v))
      settings
  in
  List.iter (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub) settings;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub)
        saved)
    k

let budget_exhausted s =
  s.nodes >= s.node_budget
  || (match s.shared with
     | Some sh -> Atomic.get sh.sh_nodes >= s.prm.node_limit
     | None -> false)
  || Unix.gettimeofday () > s.deadline
  || Fault.fire site_budget

(* One LP relaxation: warm-start from the parent's optimal basis via the
   dual simplex when available (bound-only changes keep it dual
   feasible), cold otherwise.  [Revised.solve_from] falls back to a cold
   solve internally on singular or stale bases; stats.warm records which
   path actually produced the answer. *)
let solve_node_lp s parent_basis =
  s.lp_solves <- s.lp_solves + 1;
  let warm_requested =
    match parent_basis with Some _ -> s.prm.warm_lp | None -> false
  in
  let result, (st : Revised.stats) =
    if warm_requested then Revised.solve_from (Option.get parent_basis) s.prob
    else Revised.solve s.prob
  in
  s.pivots <- s.pivots + st.primal_pivots + st.dual_pivots;
  s.refactorizations <- s.refactorizations + st.refactorizations;
  if st.warm then s.warm_hits <- s.warm_hits + 1
  else s.cold_solves <- s.cold_solves + 1;
  if
    (warm_requested && not st.warm)
    || (match result with Revised.Iteration_limit -> true | _ -> false)
  then s.numerical_recoveries <- s.numerical_recoveries + 1;
  (* Shadow accounting: price the identical subproblem with a cold solve
     (discarding its answer) so warm and cold engines are compared on the
     same search tree.  [Revised.solve] only reads the problem, so the
     search itself is unaffected. *)
  if s.prm.shadow_cold then begin
    if st.warm then begin
      let _, (cst : Revised.stats) = Revised.solve s.prob in
      s.shadow_pivots <- s.shadow_pivots + cst.primal_pivots + cst.dual_pivots
    end
    else s.shadow_pivots <- s.shadow_pivots + st.primal_pivots + st.dual_pivots
  end;
  result

(* A stand-in LP point when the node's LP failed: every unfixed integer
   variable sits strictly between its bounds so the branching rules see
   it as fractional; fixed variables take their value. *)
let pseudo_point s =
  Array.init (Lp_problem.num_vars s.prob) (fun v ->
      let lb = Lp_problem.var_lb s.prob v and ub = Lp_problem.var_ub s.prob v in
      if ub -. lb <= s.prm.int_tol then lb
      else if lb > neg_infinity then lb +. 0.5
      else if ub < infinity then ub -. 0.5
      else 0.5)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Slack threshold above which a node-local cut row is considered
   inactive and purged (before the basis accumulates stale rows that
   only make LU refactorization more expensive). *)
let cut_purge_tol = 1e-7

(* Cut rows currently active above the model's own rows — what a
   captured frontier task must replay before using its basis snapshot. *)
let captured_cuts s =
  let n = Lp_problem.num_constrs s.prob in
  List.init (n - s.base_nrows) (fun k ->
      Lp_problem.constr_at s.prob (s.base_nrows + k))

(* Cut rounds at one node: separate violated inequalities against the
   relaxation point, append them, and re-solve warm — the appended rows'
   logicals enter the basis ({!Revised.extend_snapshot}), so the dual
   simplex repairs the violation from the current basis instead of a
   cold solve.  Returns [None] when the cut-augmented LP is infeasible:
   cuts are globally valid, so the subtree provably holds no integer
   point.  On a numerical bail (unbounded / iteration limit) this
   round's rows are dropped and the last clean relaxation stands.  Cut
   re-solves accumulate [pivots]/[refactorizations] but are not node
   LPs: [nodes = lp_solves] stays exact. *)
let cut_rounds s x m basis =
  match s.cutter with
  | None -> Some (x, m, basis)
  | Some separate ->
    let rec loop x m basis round =
      if round >= s.prm.cut_rounds then Some (x, m, basis)
      else begin
        let t0 = Unix.gettimeofday () in
        let violated = separate x in
        s.separation_time <-
          s.separation_time +. (Unix.gettimeofday () -. t0);
        match take s.prm.cuts_per_round violated with
        | [] -> Some (x, m, basis)
        | cuts ->
          let before = Lp_problem.num_constrs s.prob in
          List.iter
            (fun c ->
              Lp_problem.add_constr s.prob ~name:c.cut_name c.cut_terms
                Lp_problem.Le c.cut_rhs)
            cuts;
          let added = Lp_problem.num_constrs s.prob - before in
          s.cuts_added <- s.cuts_added + added;
          let snap = Revised.extend_snapshot basis ~added in
          let result, (st : Revised.stats) = Revised.solve_from snap s.prob in
          s.pivots <- s.pivots + st.primal_pivots + st.dual_pivots;
          s.refactorizations <- s.refactorizations + st.refactorizations;
          if not st.warm then
            s.numerical_recoveries <- s.numerical_recoveries + 1;
          (match result with
          | Revised.Optimal { x; obj; basis } ->
            let m =
              s.sense_mult *. (obj +. Model.objective_constant s.model)
            in
            loop x m basis (round + 1)
          | Revised.Infeasible -> None
          | Revised.Unbounded | Revised.Iteration_limit ->
            Lp_problem.truncate_constrs s.prob before;
            Some (x, m, basis))
      end
    in
    loop x m basis 0

(* Purge this node's cut rows that are slack at the final relaxation
   point, so children inherit only binding cuts.  Only possible when
   every purged row's logical is basic ({!Revised.shrink_snapshot});
   otherwise the rows are kept — correct either way, purging is purely
   a basis-hygiene optimization. *)
let purge_slack_cuts s ~entry_nrows x basis =
  let n = Lp_problem.num_constrs s.prob in
  if n <= entry_nrows then basis
  else begin
    let removed = ref [] in
    for i = n - 1 downto entry_nrows do
      let row = Lp_problem.constr_at s.prob i in
      let lhs =
        List.fold_left
          (fun a (c, v) -> a +. (c *. x.(v)))
          0. row.Lp_problem.terms
      in
      if
        row.Lp_problem.cmp = Lp_problem.Le
        && row.Lp_problem.rhs -. lhs > cut_purge_tol
      then removed := i :: !removed
    done;
    match !removed with
    | [] -> basis
    | rs -> (
      match Revised.shrink_snapshot basis ~removed_rows:rs with
      | Some snap ->
        Lp_problem.remove_constrs s.prob rs;
        s.cuts_purged <- s.cuts_purged + List.length rs;
        snap
      | None -> basis)
  end

(* [trail] is the accumulated bound-setting path from the root, newest
   first; it only matters while a capture hook is installed (parallel
   ramp-up), where it lets a pending subtree be replayed on another
   domain's copy of the problem. *)
(* Node-entry bound propagation ([params.propagate], the Tight / Cuts
   formulations): run the LP's interval sweep with integer snapping
   under the branching fixings in force.  Two prunes need no LP at all —
   an emptied interval (the fixed relations are geometrically
   impossible) and an objective box bound already at the cutoff.  Both
   are sound: interval propagation only ever excludes points no feasible
   completion can take.  The surviving tightenings stay applied while
   the subtree runs (the node LP and every descendant see them) and are
   restored on exit; they are also pushed onto the trail, so captured
   tasks replay the exact bounds on a worker. *)
let propagate_node s =
  if not s.prm.propagate then `Open ([], [])
  else begin
    let restore undo =
      List.iter
        (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub)
        undo
    in
    match
      Lp_problem.propagate_bounds ~integral:s.is_integer ~extra:s.prop_rows
        s.prob
    with
    | `Infeasible undo ->
      restore undo;
      `Pruned
    | `Ok undo ->
      let lo, hi = Lp_problem.objective_interval s.prob in
      let m_lo =
        (if s.sense_mult > 0. then lo else -.hi)
        +. (s.sense_mult *. Model.objective_constant s.model)
      in
      if m_lo >= cutoff s -. s.prm.min_improvement then begin
        restore undo;
        `Pruned
      end
      else
        `Open
          ( undo,
            List.map
              (fun (v, _, _) ->
                (v, Lp_problem.var_lb s.prob v, Lp_problem.var_ub s.prob v))
              undo )
  end

let rec explore s ~depth ~trail ~parent_basis ~parent_bound =
  match s.capture with
  | Some push when s.nodes >= s.ramp_limit ->
    (* Ramp-up budget spent: hand the whole pending subtree to the pool
       instead of exploring it.  Captures happen in DFS order, so task
       order is exactly the order the sequential search would have
       visited the subtrees in. *)
    push
      { t_trail = List.rev trail; t_depth = depth; t_basis = parent_basis;
        t_bound = parent_bound; t_cuts = captured_cuts s }
  | _ ->
    if budget_exhausted s then s.out_of_budget <- true
    else begin
      match propagate_node s with
      | `Pruned -> () (* pruned without becoming a node *)
      | `Open (undo, applied) ->
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub)
              undo)
          (fun () ->
            let trail = List.rev_append applied trail in
            s.nodes <- s.nodes + 1;
            (match s.shared with
            | Some sh -> Atomic.incr sh.sh_nodes
            | None -> ());
            expand s ~depth ~trail ~parent_basis ~parent_bound
              (solve_node_lp s parent_basis))
    end

(* Node expansion.  Cut rows appended here stay while the children run
   (they are globally valid, and the children's basis snapshots expect
   them) and are truncated when the node is left — strict stack
   discipline, which is what keeps parallel replay deterministic: a
   worker re-creates exactly the ancestors' rows from the task's
   [t_cuts] and nothing else. *)
and expand s ~depth ~trail ~parent_basis ~parent_bound result =
  let entry_nrows = Lp_problem.num_constrs s.prob in
  Fun.protect
    ~finally:(fun () -> Lp_problem.truncate_constrs s.prob entry_nrows)
    (fun () ->
      expand_node s ~depth ~trail ~parent_basis ~parent_bound ~entry_nrows
        result)

and expand_node s ~depth ~trail ~parent_basis ~parent_bound ~entry_nrows
    result =
  match result with
  | Revised.Infeasible -> ()
  | Revised.Iteration_limit ->
    (* No bound from this node's own LP, but the node is a restriction
       of its parent, so the parent's LP bound still applies: prune on
       it if possible, otherwise branch blind and keep going — only
       when the node is fully fixed must the subtree be abandoned, and
       then optimality can no longer be claimed. *)
    if parent_bound >= cutoff s -. s.prm.min_improvement then ()
    else begin
      Log.warn (fun f ->
          f "LP iteration limit at depth %d; retreating to parent bound"
            depth);
      let x = pseudo_point s in
      match pick_branch_var s x with
      | Some v -> branch s ~depth ~trail x v ~basis:parent_basis ~bound:parent_bound
      | None -> s.bound_incomplete <- true
    end
  | Revised.Unbounded ->
    if depth = 0 then s.root_unbounded <- true
    (* Deeper nodes are restrictions of the root; if the root was
       bounded this cannot happen. *)
  | Revised.Optimal { x; obj; basis } ->
    let m = s.sense_mult *. (obj +. Model.objective_constant s.model) in
    if m >= cutoff s -. s.prm.min_improvement then () (* bound prune *)
    else begin
      match cut_rounds s x m basis with
      | None -> () (* cut-augmented LP infeasible: subtree holds no
                      integer point (cuts are globally valid) *)
      | Some (x, m, basis) ->
        if m >= cutoff s -. s.prm.min_improvement then
          () (* bound prune after cut tightening — where cuts pay *)
        else begin
          match pick_branch_var s x with
          | None ->
            (* Integral (within tolerance): snap and accept. *)
            let snapped = Model.round_integers s.model x in
            let m_exact =
              s.sense_mult
              *. (Lp_problem.objective_value s.prob snapped
                 +. Model.objective_constant s.model)
            in
            (* Rounding can only move the objective through integer terms;
               re-check feasibility to be safe. *)
            if Lp_problem.constraint_violation s.prob snapped <= 1e-5 then
              update_incumbent s snapped m_exact
            else update_incumbent s x m
          | Some v ->
            let basis = purge_slack_cuts s ~entry_nrows x basis in
            branch s ~depth ~trail x v ~basis:(Some basis) ~bound:m
        end
    end

and branch s ~depth ~trail x v ~basis ~bound =
  let child settings =
    with_bounds s settings (fun () ->
        explore s ~depth:(depth + 1)
          ~trail:(List.rev_append settings trail)
          ~parent_basis:basis ~parent_bound:bound)
  in
  match Hashtbl.find_opt s.partner v with
  | Some w when fractionality x v > s.prm.int_tol
             || fractionality x w > s.prm.int_tol ->
    (* 4-way branching on the disjunction pair (v, w): each child fixes a
       combination, visiting the combination closest to the LP point
       first. *)
    let combos = [ (0., 0.); (0., 1.); (1., 0.); (1., 1.) ] in
    let dist (a, b) = Float.abs (x.(v) -. a) +. Float.abs (x.(w) -. b) in
    let ordered =
      List.sort (fun c1 c2 -> compare (dist c1) (dist c2)) combos
    in
    List.iter
      (fun (a, b) ->
        if not s.out_of_budget then child [ (v, a, a); (w, b, b) ])
      ordered
  | _ ->
    (* Plain floor/ceil split, nearest side first. *)
    let lo = Float.floor x.(v) and hi = Float.ceil x.(v) in
    let lb = Lp_problem.var_lb s.prob v and ub = Lp_problem.var_ub s.prob v in
    let down () =
      if lo >= lb -. 1e-9 && not s.out_of_budget then child [ (v, lb, lo) ]
    and up () =
      if hi <= ub +. 1e-9 && not s.out_of_budget then child [ (v, hi, ub) ]
    in
    if x.(v) -. lo <= hi -. x.(v) then begin
      down ();
      up ()
    end
    else begin
      up ();
      down ()
    end

let work_of s =
  {
    d_nodes = s.nodes; d_lp_solves = s.lp_solves; d_warm_hits = s.warm_hits;
    d_cold_solves = s.cold_solves; d_refactorizations = s.refactorizations;
    d_pivots = s.pivots; d_shadow_pivots = s.shadow_pivots;
    d_numerical_recoveries = s.numerical_recoveries;
    d_cuts_added = s.cuts_added; d_cuts_purged = s.cuts_purged;
    d_separation_time = s.separation_time;
  }

let sum_work ws =
  Array.fold_left
    (fun a w ->
      {
        d_nodes = a.d_nodes + w.d_nodes;
        d_lp_solves = a.d_lp_solves + w.d_lp_solves;
        d_warm_hits = a.d_warm_hits + w.d_warm_hits;
        d_cold_solves = a.d_cold_solves + w.d_cold_solves;
        d_refactorizations = a.d_refactorizations + w.d_refactorizations;
        d_pivots = a.d_pivots + w.d_pivots;
        d_shadow_pivots = a.d_shadow_pivots + w.d_shadow_pivots;
        d_numerical_recoveries =
          a.d_numerical_recoveries + w.d_numerical_recoveries;
        d_cuts_added = a.d_cuts_added + w.d_cuts_added;
        d_cuts_purged = a.d_cuts_purged + w.d_cuts_purged;
        d_separation_time = a.d_separation_time +. w.d_separation_time;
      })
    { d_nodes = 0; d_lp_solves = 0; d_warm_hits = 0; d_cold_solves = 0;
      d_refactorizations = 0; d_pivots = 0; d_shadow_pivots = 0;
      d_numerical_recoveries = 0; d_cuts_added = 0; d_cuts_purged = 0;
      d_separation_time = 0. }
    ws

(* ------------------------------------------------------------------ *)
(* Parallel task execution                                             *)
(* ------------------------------------------------------------------ *)

(* What one subtree exploration reported, and under which contract
   (starting incumbent + node budget) it ran — the deterministic replay
   decides from the contract whether the speculation is admissible. *)
type task_result = {
  r_entry : float;
  r_budget : int;
  r_found : (float array * float) option;   (* minimized form *)
  r_nodes : int;
  r_hit_nodes : bool;
  r_hit_time : bool;
  r_bound_incomplete : bool;
}

(* Run one captured subtree on worker state [s] (its own problem copy):
   apply the trail, explore, restore the trail's variables from the root
   bounds.  Pure function of (task, entry, budget) apart from the wall
   clock and, in free-running mode, the shared incumbent. *)
let run_task s ~base_lb ~base_ub task ~entry ~budget =
  s.best_m <- entry;
  s.best_x <- None;
  s.out_of_budget <- false;
  s.bound_incomplete <- false;
  let nodes_before = s.nodes in
  s.node_budget <- s.nodes + budget;
  List.iter
    (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub)
    task.t_trail;
  (* Re-create the ancestors' cut rows so the task's basis snapshot
     matches this worker's problem; truncated again on the way out to
     keep the worker at root rows for the next task. *)
  let entry_nrows = Lp_problem.num_constrs s.prob in
  List.iter
    (fun (row : Lp_problem.constr) ->
      Lp_problem.add_constr s.prob ~name:row.Lp_problem.cname
        row.Lp_problem.terms row.Lp_problem.cmp row.Lp_problem.rhs)
    task.t_cuts;
  Fun.protect
    ~finally:(fun () ->
      Lp_problem.truncate_constrs s.prob entry_nrows;
      List.iter
        (fun (v, _, _) ->
          Lp_problem.set_bounds s.prob v ~lb:base_lb.(v) ~ub:base_ub.(v))
        task.t_trail)
    (fun () ->
      explore s ~depth:task.t_depth ~trail:[] ~parent_basis:task.t_basis
        ~parent_bound:task.t_bound);
  let nodes_used = s.nodes - nodes_before in
  {
    r_entry = entry;
    r_budget = budget;
    r_found =
      (match s.best_x with
      | Some x when s.best_m < entry -> Some (x, s.best_m)
      | _ -> None);
    r_nodes = nodes_used;
    r_hit_nodes = s.out_of_budget && nodes_used >= budget;
    r_hit_time = s.out_of_budget && nodes_used < budget;
    r_bound_incomplete = s.bound_incomplete;
  }

(* Explore the captured frontier on the pool.  [s] is the caller's
   search state, just finished with the ramp-up (its problem is back at
   root bounds); [finish] packages the outcome.

   Deterministic mode replays the sequential search exactly: subtrees
   are explored speculatively in parallel (every task of a wave entering
   with the same incumbent bound), then their results are consumed in
   DFS order; a task whose speculation contract no longer matches what
   the sequential search would have given it — an earlier subtree
   improved the incumbent, or the node budget no longer covers what it
   used — is re-explored, incumbent-stale tasks as a fresh wave and
   budget-stale tasks alone with the exact remaining budget.  With a
   good warm start incumbent improvements are rare and one wave usually
   suffices.

   Free-running mode launches every subtree once, sharing the incumbent
   and the node count through atomics — less redundant work under
   frequent incumbent traffic, but which nodes get pruned depends on
   thread timing. *)
let solve_frontier s ~pool ~jobs ~shared ~mk_search ~tasks ~finish =
  let owned_pool = ref None in
  let pool =
    match pool with
    | Some p -> p
    | None ->
      let p = Pool.create ~jobs in
      owned_pool := Some p;
      p
  in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown !owned_pool)
  @@ fun () ->
  let base_lb =
    Array.init (Lp_problem.num_vars s.prob) (Lp_problem.var_lb s.prob)
  and base_ub =
    Array.init (Lp_problem.num_vars s.prob) (Lp_problem.var_ub s.prob)
  in
  (* Worker 0 is the calling domain and reuses the ramp-up search state;
     every other worker gets its own copy of the problem.  The copies
     MUST be taken here, before any task runs: worker 0 mutates [s.prob]
     bounds while executing its tasks, so a copy taken lazily mid-wave
     could capture a sibling's branch bounds as its root. *)
  let states =
    Array.init (Pool.jobs pool) (fun w ->
        if w = 0 then s else mk_search (Lp_problem.copy s.prob))
  in
  let state_of worker = states.(worker) in
  let n = Array.length tasks in
  let results : task_result option array = Array.make n None in
  let ramp_nodes = s.nodes in
  let chain_m = ref s.best_m and chain_x = ref s.best_x in
  let consumed = ref ramp_nodes in
  let out_of_budget = ref s.out_of_budget in
  let bound_incomplete = ref s.bound_incomplete in
  let waves = ref 0 in
  let tasks_lost = ref 0 in
  let launch_wave ~from ~entry ~budget =
    incr waves;
    Pool.run pool ~n:(n - from) (fun ~worker k ->
        let i = from + k in
        if Fault.fire site_task_loss then
          (* The subtree's result vanishes (simulated worker loss); a
             stale result from an earlier wave must not survive either. *)
          results.(i) <- None
        else
          results.(i) <-
            Some (run_task (state_of worker) ~base_lb ~base_ub tasks.(i)
                    ~entry ~budget))
  in
  (* Re-run a lost subtree inline on the calling domain, under the exact
     contract the consumer needs.  Sits outside [launch_wave]'s injection
     point, so recovery cannot itself be lost. *)
  let recover i ~entry ~budget =
    incr tasks_lost;
    let r = run_task (state_of 0) ~base_lb ~base_ub tasks.(i) ~entry ~budget in
    results.(i) <- Some r;
    r
  in
  (match shared with
  | Some sh ->
    (* Free-running: one wave; the per-task budget is only a backstop,
       the real limit is the shared node counter. *)
    let budget = Int.max 0 (s.prm.node_limit - ramp_nodes) in
    launch_wave ~from:0 ~entry:!chain_m ~budget;
    Array.iteri
      (fun i r ->
        if r = None then ignore (recover i ~entry:!chain_m ~budget))
      results;
    Array.iter
      (fun r ->
        let r = Option.get r in
        consumed := !consumed + r.r_nodes;
        if r.r_hit_nodes || r.r_hit_time then out_of_budget := true;
        if r.r_bound_incomplete then bound_incomplete := true)
      results;
    if Atomic.get sh.sh_nodes >= s.prm.node_limit then out_of_budget := true;
    Mutex.lock sh.sh_lock;
    (match sh.sh_x with
    | Some (x, m) when m < !chain_m ->
      chain_m := m;
      chain_x := Some x
    | _ -> ());
    Mutex.unlock sh.sh_lock
  | None ->
    (* Deterministic replay with speculative waves. *)
    let accept r =
      consumed := !consumed + r.r_nodes;
      if r.r_bound_incomplete then bound_incomplete := true;
      match r.r_found with
      | Some (x, m) ->
        (* [run_task] only reports strict improvements over its entry
           bound, which was the chain value. *)
        chain_m := m;
        chain_x := Some x
      | None -> ()
    in
    (* If the ramp-up itself ran out of budget the sequential search
       would touch none of the captured subtrees. *)
    let i = ref 0 and stop = ref !out_of_budget in
    while !i < n && not !stop do
      let remaining = s.prm.node_limit - !consumed in
      if remaining <= 0 then begin
        (* The sequential search checks the budget before every node, so
           it would refuse to open any further subtree. *)
        out_of_budget := true;
        stop := true
      end
      else begin
        (match results.(!i) with
        | Some r when r.r_entry = !chain_m -> ()
        | _ ->
          (* Incumbent is stale (or first visit): every remaining task
             speculated on the wrong entry bound, so relaunch them all
             as one wave under the current chain value. *)
          launch_wave ~from:!i ~entry:!chain_m ~budget:remaining);
        let r =
          match results.(!i) with
          | Some r -> r
          | None ->
            (* Lost even after the relaunch: recover inline with the
               exact sequential contract, which also makes the result
               admissible by construction. *)
            recover !i ~entry:!chain_m ~budget:remaining
        in
        if r.r_hit_time then begin
          (* Wall clock ran out mid-subtree: accept what was found;
             exactness — and hence replay determinism — ends here, as it
             does for any time-limited run. *)
          accept r;
          out_of_budget := true;
          stop := true
        end
        else if r.r_hit_nodes && r.r_budget = remaining then begin
          (* Ran with the exact remaining budget and exhausted it: the
             sequential search runs out of nodes inside this very
             subtree, finding the same incumbents on the way. *)
          accept r;
          out_of_budget := true;
          stop := true
        end
        else if r.r_nodes > remaining || r.r_hit_nodes then
          (* Speculated past the real budget (or was cut off below it):
             re-run this one subtree with the exact remaining budget.
             The next iteration consumes it via one of the cases above. *)
          results.(!i) <-
            Some
              (run_task (state_of 0) ~base_lb ~base_ub tasks.(!i)
                 ~entry:!chain_m ~budget:remaining)
        else begin
          (* Admissible: byte-for-byte what the sequential search would
             have done with this subtree. *)
          accept r;
          incr i
        end
      end
    done);
  s.best_m <- !chain_m;
  s.best_x <- !chain_x;
  s.out_of_budget <- !out_of_budget;
  s.bound_incomplete <- !bound_incomplete;
  let per_domain =
    Array.map work_of states
  in
  finish ~per_domain ~waves:!waves ~tasks_lost:!tasks_lost
    ~total:(sum_work per_domain)

let solve ?(params = default_params) ?warm ?pool ?cutter ?(cut_pool = [])
    model =
  let prob = Model.problem model in
  let base_nrows = Lp_problem.num_constrs prob in
  let sense_mult =
    match Lp_problem.sense prob with
    | Lp_problem.Minimize -> 1.
    | Lp_problem.Maximize -> -1.
  in
  let partner = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace partner a b;
      Hashtbl.replace partner b a)
    (Model.pairs model);
  let is_integer =
    let a = Array.make (Lp_problem.num_vars prob) false in
    List.iter (fun v -> a.(v) <- true) (Model.integer_vars model);
    fun v -> v < Array.length a && a.(v)
  in
  let jobs =
    match pool with Some p -> Pool.jobs p | None -> Int.max 1 params.jobs
  in
  let parallel = jobs > 1 in
  let shared =
    if parallel && not params.deterministic then
      Some
        { sh_best = Atomic.make infinity; sh_lock = Mutex.create ();
          sh_x = None; sh_nodes = Atomic.make 0 }
    else None
  in
  let start = Unix.gettimeofday () in
  (* The cut pool never joins the LP, but its rows are globally valid,
     so node propagation may sweep them like any other row. *)
  let prop_rows =
    if not params.propagate then [||]
    else
      Array.of_list
        (List.map
           (fun c ->
             { Lp_problem.cname = c.cut_name; terms = c.cut_terms;
               cmp = Lp_problem.Le; rhs = c.cut_rhs })
           cut_pool)
  in
  let mk_search prob =
    {
      model; prob; prm = params; sense_mult; partner; is_integer; prop_rows;
      cutter; base_nrows;
      deadline = start +. params.time_limit;
      shared; node_budget = params.node_limit; capture = None;
      ramp_limit = max_int;
      nodes = 0; lp_solves = 0;
      warm_hits = 0; cold_solves = 0; refactorizations = 0; pivots = 0;
      shadow_pivots = 0; numerical_recoveries = 0;
      cuts_added = 0; cuts_purged = 0; separation_time = 0.;
      best_m = infinity; best_x = None;
      out_of_budget = false; root_unbounded = false; bound_incomplete = false;
    }
  in
  let s = mk_search prob in
  (* Install the warm start if it checks out. *)
  (match warm with
  | Some x
    when Array.length x = Model.num_vars model
         && Model.integral ~tol:params.int_tol model x
         && Lp_problem.constraint_violation prob x <= 1e-5 ->
    let m =
      sense_mult
      *. (Lp_problem.objective_value prob x +. Model.objective_constant model)
    in
    s.best_m <- m;
    s.best_x <- Some (Array.copy x);
    (match shared with Some sh -> publish_shared sh x m | None -> ())
  | Some _ ->
    Log.warn (fun f -> f "warm start rejected (infeasible or non-integral)")
  | None -> ());
  (* Capture hook for the parallel ramp-up: once [ramp_nodes] node LPs
     have been spent, pending subtrees are queued (in DFS order, which is
     the order the sequential search would visit them) instead of
     explored. *)
  let tasks_rev = ref [] and n_tasks = ref 0 in
  if parallel then begin
    s.capture <- Some (fun t -> tasks_rev := t :: !tasks_rev; incr n_tasks);
    s.ramp_limit <- Int.min params.ramp_nodes params.node_limit
  end;
  let finish ~root_bound ~per_domain ~frontier ~waves ~tasks_lost ~total =
    let elapsed = Unix.gettimeofday () -. start in
    let best = Option.map (fun x -> (x, s.sense_mult *. s.best_m)) s.best_x in
    let status =
      if s.root_unbounded then Unbounded
      else
        match (best, s.out_of_budget || s.bound_incomplete) with
        | Some _, false -> Optimal
        | Some _, true -> Feasible
        | None, false -> Infeasible
        | None, true -> No_solution
    in
    {
      status; best; nodes = total.d_nodes; lp_solves = total.d_lp_solves;
      warm_hits = total.d_warm_hits; cold_solves = total.d_cold_solves;
      refactorizations = total.d_refactorizations; pivots = total.d_pivots;
      shadow_pivots = total.d_shadow_pivots;
      numerical_recoveries = total.d_numerical_recoveries;
      cuts_added = total.d_cuts_added; cuts_purged = total.d_cuts_purged;
      separation_time = total.d_separation_time; tasks_lost;
      root_bound; elapsed; per_domain; frontier_tasks = frontier; waves;
    }
  in
  let seq_finish ~root_bound =
    let w = work_of s in
    finish ~root_bound ~per_domain:[| w |] ~frontier:0 ~waves:0 ~tasks_lost:0
      ~total:w
  in
  if budget_exhausted s then begin
    (* Exhausted before the root LP: report without solving anything, so
       nodes and lp_solves stay exact (both 0). *)
    s.out_of_budget <- true;
    seq_finish ~root_bound:nan
  end
  else begin
    (* Root LP: solved exactly once, reused both for the reported root
       bound and as the root node of the search. *)
    let root_result = solve_node_lp s None in
    let root_bound =
      match root_result with
      | Revised.Optimal { obj; _ } ->
        (sense_mult *. obj) +. (sense_mult *. Model.objective_constant model)
      | Revised.Unbounded | Revised.Iteration_limit -> neg_infinity
      | Revised.Infeasible -> infinity
    in
    if root_bound = infinity && s.best_x = None then begin
      let w = work_of s in
      {
        status = Infeasible; best = None; nodes = 0; lp_solves = s.lp_solves;
        warm_hits = s.warm_hits; cold_solves = s.cold_solves;
        refactorizations = s.refactorizations; pivots = s.pivots;
        shadow_pivots = s.shadow_pivots;
        numerical_recoveries = s.numerical_recoveries;
        cuts_added = s.cuts_added; cuts_purged = s.cuts_purged;
        separation_time = s.separation_time; tasks_lost = 0;
        root_bound = nan;
        elapsed = Unix.gettimeofday () -. start;
        per_domain = [| w |]; frontier_tasks = 0; waves = 0;
      }
    end
    else begin
      s.nodes <- s.nodes + 1;
      (match shared with Some sh -> Atomic.incr sh.sh_nodes | None -> ());
      expand s ~depth:0 ~trail:[] ~parent_basis:None ~parent_bound:neg_infinity
        root_result;
      s.capture <- None;
      let tasks = Array.of_list (List.rev !tasks_rev) in
      if Array.length tasks = 0 then
        (* Sequential run, or a ramp-up that exhausted the whole tree. *)
        seq_finish ~root_bound:(sense_mult *. root_bound)
      else
        solve_frontier s ~pool ~jobs ~shared ~mk_search ~tasks
          ~finish:(fun ~per_domain ~waves ~tasks_lost ~total ->
            finish ~root_bound:(sense_mult *. root_bound) ~per_domain
              ~frontier:!n_tasks ~waves ~tasks_lost ~total)
    end
  end

