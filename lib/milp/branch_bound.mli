(** Branch-and-bound solver for 0–1 mixed integer linear programs.

    This plays the role LINDO plays in the paper (section 3): an exact
    solver for the small MILP subproblems produced by successive
    augmentation.  Depth-first search over LP relaxations solved by the
    bounded-variable revised simplex {!Fp_lp.Revised}, with

    - basis warm starting: each child node re-solves from its parent's
      optimal basis via the dual simplex (branching only flips variable
      bounds, which preserves dual feasibility), with a cold solve as
      fallback on singular or stale bases;
    - 4-way branching on declared disjunction pairs (the paper's
      [(x_ij, y_ij)] "which side is module i on" variables), children
      ordered by proximity to the LP relaxation point;
    - floor/ceil branching on remaining fractional integers, nearest side
      first;
    - warm starting from a caller-supplied feasible point (the floorplan
      layer seeds it with a bottom-left skyline placement), so pruning is
      effective from the first node;
    - node- and time-budgets: when exhausted the best incumbent is
      returned with status [Feasible], mirroring how LINDO was used on a
      4-MIPS Apollo workstation;
    - optional multi-domain search ([jobs > 1]): a short sequential
      ramp-up captures the unexplored frontier, whose subtrees are then
      explored on a {!Fp_util.Pool} of domains, each with its own copy
      of the problem and its own simplex state.

    The search is deterministic given the model and parameters: with the
    default [deterministic = true] the parallel search replays the
    sequential one exactly (same incumbent, same node count, independent
    of domain scheduling), at the cost of re-exploring subtrees whose
    speculative pruning bound turned out stale.  Setting
    [deterministic = false] shares the incumbent through an atomic
    instead — faster under heavy incumbent traffic, but the set of
    pruned nodes (and, among equal-objective optima, the returned point)
    then depends on timing.  See [docs/parallel.md].

    Fault sites (for {!Fp_util.Fault}, exercised by the resilience
    tests): ["branch_bound.budget"] forces the budget check to report
    exhaustion, exercising the anytime path (best incumbent — usually
    the caller's warm start — returned as [Feasible]/[No_solution]);
    ["branch_bound.task_loss"] drops a frontier task's result, which the
    consume loop recovers by re-running the subtree inline under the
    exact sequential contract (counted in [tasks_lost]).  See
    [docs/robustness.md]. *)

type branch_rule =
  | Most_fractional
      (** branch on the integer variable farthest from integrality *)
  | First_fractional
      (** branch on the first fractional integer variable in declaration
          order — lets the modeler encode "decide the big modules first"
          by declaration order *)

type cut = {
  cut_name : string;
  cut_terms : (float * int) list;
  cut_rhs : float;
}
(** A globally valid inequality [cut_terms . x <= cut_rhs] over the
    model's structural variables.  "Globally valid" is a proof
    obligation on the producer: every integer-feasible point of the
    {e whole} model must satisfy it, because a cut appended at a node
    survives into the node's subtree and, via frontier tasks, onto
    other domains. *)

type cutter = float array -> cut list
(** Separation callback: given the node's LP-relaxation point (structural
    variables, dense), return violated valid inequalities, most violated
    first.  Must be deterministic — a pure function of the point — or
    parallel runs lose bit-identical replay.  Called up to [cut_rounds]
    times per node; the solver appends at most [cuts_per_round] of the
    returned rows per round. *)

type params = {
  node_limit : int;        (** maximum branch-and-bound nodes (default 200_000) *)
  time_limit : float;      (** seconds (default 120.) *)
  int_tol : float;         (** integrality tolerance (default 1e-6) *)
  min_improvement : float; (** required objective improvement before a node
                               survives pruning; raising it trades quality
                               for speed (default 1e-7) *)
  log : bool;              (** emit progress on [Logs] (default false) *)
  branch_rule : branch_rule;  (** default [Most_fractional] *)
  warm_lp : bool;
      (** warm-start child LPs from the parent basis (default [true]);
          [false] forces a cold solve at every node — used by the
          warm-start ablation bench *)
  shadow_cold : bool;
      (** additionally solve every node LP cold, discarding the answer
          and accumulating its pivots in [shadow_pivots] (default
          [false]).  Gives the warm-start ablation a matched-tree
          comparison: both engines priced on the identical sequence of
          subproblems, same floorplan by construction.  Roughly doubles
          node cost; never use outside benchmarking. *)
  jobs : int;
      (** number of domains to search on (default [1], fully
          sequential).  Ignored when a [pool] is passed to {!solve} —
          the pool's size wins. *)
  deterministic : bool;
      (** replay the sequential search exactly (default [true]); see the
          module header for the trade-off *)
  ramp_nodes : int;
      (** nodes explored sequentially before the frontier is handed to
          the pool (default [32]).  Larger values seed more, smaller
          tasks; only meaningful when [jobs > 1]. *)
  cut_rounds : int;
      (** maximum separation rounds per node (default [4]).  Irrelevant
          unless a [cutter] is passed to {!solve}. *)
  cuts_per_round : int;
      (** cap on rows appended per separation round (default [16]) *)
  propagate : bool;
      (** run {!Fp_lp.Lp_problem.propagate_bounds} (interval propagation
          with integer snapping) at every node before its LP (default
          [false]).  A child whose propagation empties an interval or
          whose objective box bound already meets the cutoff is pruned
          without counting as a node or solving an LP — on big-M
          disjunction models most infeasible branch combinations die
          here.  Propagated bounds ride the task trail, so parallel
          replay stays bit-identical.  Enabled by the [Tight] / [Cuts]
          formulation modes. *)
}

val default_params : params

type status =
  | Optimal       (** search completed; incumbent is proven optimal *)
  | Feasible      (** budget exhausted (or a subtree was abandoned without
                      a bound); best incumbent returned *)
  | Infeasible    (** no integer-feasible point exists *)
  | Unbounded     (** LP relaxation unbounded at the root *)
  | No_solution   (** budget exhausted before any incumbent was found *)

type domain_work = {
  d_nodes : int;
  d_lp_solves : int;
  d_warm_hits : int;
  d_cold_solves : int;
  d_refactorizations : int;
  d_pivots : int;
  d_shadow_pivots : int;
  d_numerical_recoveries : int;
  d_cuts_added : int;
  d_cuts_purged : int;
  d_separation_time : float;
}
(** Per-domain slice of the search-effort counters.  In deterministic
    mode this counts {e all} work a domain performed, including
    speculation that was later discarded by the replay — the honest
    parallel cost, not the sequential-equivalent cost. *)

type outcome = {
  status : status;
  best : (float array * float) option;
      (** incumbent point and objective (original sense, constant
          included) *)
  nodes : int;
      (** nodes whose LP relaxation was evaluated; always equal to
          [lp_solves] (cut-round re-solves are not node LPs and count
          only toward [pivots] / [refactorizations]) *)
  lp_solves : int;
  warm_hits : int;
      (** node LPs answered from the parent basis (dual-simplex path) *)
  cold_solves : int;
      (** node LPs solved from scratch, including warm-start fallbacks *)
  refactorizations : int;
      (** basis refactorizations across all node LPs *)
  pivots : int;
      (** total simplex pivots (primal + dual) across all node LPs *)
  shadow_pivots : int;
      (** pivots the cold engine spent on the same node sequence; [0]
          unless [shadow_cold] was set *)
  numerical_recoveries : int;
      (** node LPs that needed a recovery path: a requested warm start
          that fell back to a cold solve (singular or stale basis), or
          an LP that hit its own iteration limit and was handled via the
          parent-bound retreat.  Nonzero values mean the answer is still
          trustworthy but the numerics were stressed. *)
  cuts_added : int;
      (** rows appended by separation rounds across all nodes ([0]
          without a [cutter]) *)
  cuts_purged : int;
      (** appended rows removed again as slack before branching — cut
          aging that keeps the LU factorization small *)
  separation_time : float;
      (** seconds spent inside the [cutter] callback *)
  tasks_lost : int;
      (** frontier-task results that vanished (worker failure or
          injected fault) and were re-run inline; [0] in healthy runs *)
  root_bound : float;
      (** LP-relaxation bound at the root, original sense *)
  elapsed : float;
  per_domain : domain_work array;
      (** one entry per worker domain (entry [0] is the calling domain,
          which also performed the ramp-up); a single entry for
          sequential runs *)
  frontier_tasks : int;
      (** subtrees captured by the ramp-up and handed to the pool; [0]
          for sequential runs and for trees the ramp-up exhausted *)
  waves : int;
      (** speculative parallel waves launched; [1] when no task's
          pruning bound went stale, [0] for sequential runs *)
}

val solve :
  ?params:params -> ?warm:float array -> ?pool:Fp_util.Pool.t ->
  ?cutter:cutter -> ?cut_pool:cut list -> Model.t ->
  outcome
(** [solve model] runs the search.  [warm], when given, must be feasible
    and integral (checked; silently ignored otherwise — a bad warm start
    must never corrupt the search).

    [cutter], when given, runs a cut-management loop at every node that
    survives the bound prune: up to [cut_rounds] rounds of separation
    against the relaxation point, each appending at most
    [cuts_per_round] violated rows and re-solving warm from the current
    basis (see {!Fp_lp.Revised.extend_snapshot}); rows left slack at the
    final point are purged again before branching (cut aging), and the
    survivors are inherited — and eventually truncated — under strict
    stack discipline, so frontier tasks replay bit-identically on other
    domains.

    [cut_pool], when given together with [params.propagate], is a set of
    globally valid inequalities that participate in node-entry interval
    propagation {e without} ever being LP rows — the lazy pool's pruning
    power at zero pricing cost.  Typically the same candidate list the
    [cutter] separates from.

    [pool], when given, supplies the worker domains for [jobs > 1] (and
    overrides [params.jobs] with its size); otherwise a private pool is
    created and shut down around the frontier phase.  Passing a shared
    pool amortizes domain spawning across many [solve] calls — the
    successive-augmentation driver does exactly that.  The caller must
    not invoke [solve] with the same pool from two domains at once (see
    {!Fp_util.Pool.run} on nesting). *)
