module Lp_problem = Fp_lp.Lp_problem

type var = Lp_problem.var
type cmp = Lp_problem.cmp = Le | Ge | Eq

type t = {
  prob : Lp_problem.t;
  mutable ints : var list;     (* reverse insertion order *)
  int_set : (var, unit) Hashtbl.t;
  mutable pair_list : (var * var) list;
  mutable obj_const : float;
}

let create ?name () =
  {
    prob = Lp_problem.create ?name ();
    ints = [];
    int_set = Hashtbl.create 64;
    pair_list = [];
    obj_const = 0.;
  }

let add_continuous t ?(lb = 0.) ?(ub = infinity) name =
  Lp_problem.add_var t.prob ~lb ~ub name

let mark_integer t v =
  t.ints <- v :: t.ints;
  Hashtbl.replace t.int_set v ()

let add_binary t name =
  let v = Lp_problem.add_var t.prob ~lb:0. ~ub:1. name in
  mark_integer t v;
  v

let add_integer t ~lb ~ub name =
  let v = Lp_problem.add_var t.prob ~lb ~ub name in
  mark_integer t v;
  v

let is_integer_var t v = Hashtbl.mem t.int_set v

let is_binary t v =
  is_integer_var t v
  && Lp_problem.var_lb t.prob v = 0.
  && Lp_problem.var_ub t.prob v = 1.

let add_constr t ?name lhs cmp rhs =
  let diff = Expr.(lhs - rhs) in
  Lp_problem.add_constr t.prob ?name (Expr.terms diff) cmp
    (-.Expr.constant diff)

let add_constr_or_bound t ?name lhs cmp rhs =
  let diff = Expr.(lhs - rhs) in
  let as_row () =
    Lp_problem.add_constr t.prob ?name (Expr.terms diff) cmp
      (-.Expr.constant diff)
  in
  match Expr.terms diff with
  | [ (a, v) ] when a <> 0. ->
    let b = -.Expr.constant diff /. a in
    let applied =
      match (cmp, a > 0.) with
      | Le, true | Ge, false ->
        Lp_problem.tighten_bounds t.prob v ~lb:neg_infinity ~ub:b
      | Ge, true | Le, false ->
        Lp_problem.tighten_bounds t.prob v ~lb:b ~ub:infinity
      | Eq, _ -> Lp_problem.tighten_bounds t.prob v ~lb:b ~ub:b
    in
    (* An empty intersection stays a row so infeasibility is detected by
       the solver instead of raised here. *)
    if not applied then as_row ()
  | _ -> as_row ()

let declare_pair t a b =
  if not (is_binary t a && is_binary t b) then
    invalid_arg "Model.declare_pair: both variables must be binary";
  t.pair_list <- (a, b) :: t.pair_list

let set_objective t sense expr =
  (match sense with
  | `Minimize -> Lp_problem.set_sense t.prob Lp_problem.Minimize
  | `Maximize -> Lp_problem.set_sense t.prob Lp_problem.Maximize);
  t.obj_const <- Expr.constant expr;
  (* Reset all coefficients, then install the new ones. *)
  for v = 0 to Lp_problem.num_vars t.prob - 1 do
    Lp_problem.set_obj_coeff t.prob v 0.
  done;
  List.iter (fun (c, v) -> Lp_problem.set_obj_coeff t.prob v c)
    (Expr.terms expr)

let problem t = t.prob
let integer_vars t = List.rev t.ints

let var_bounds t v =
  (Lp_problem.var_lb t.prob v, Lp_problem.var_ub t.prob v)

let sense t =
  match Lp_problem.sense t.prob with
  | Lp_problem.Minimize -> `Minimize
  | Lp_problem.Maximize -> `Maximize

let iter_vars t f =
  for v = 0 to Lp_problem.num_vars t.prob - 1 do
    f v
  done

let fold_vars t ~init ~f =
  let acc = ref init in
  iter_vars t (fun v -> acc := f !acc v);
  !acc

let iter_constrs t f =
  Array.iter f (Lp_problem.constraints t.prob)

let fold_constrs t ~init ~f =
  Array.fold_left f init (Lp_problem.constraints t.prob)

let objective_terms t =
  List.rev
    (fold_vars t ~init:[] ~f:(fun acc v ->
         let c = Lp_problem.obj_coeff t.prob v in
         if c = 0. then acc else (c, v) :: acc))
let pairs t = List.rev t.pair_list
let objective_constant t = t.obj_const
let num_vars t = Lp_problem.num_vars t.prob
let num_integer_vars t = List.length t.ints
let num_constrs t = Lp_problem.num_constrs t.prob
let var_name t v = Lp_problem.var_name t.prob v

let integral ?(tol = 1e-6) t x =
  List.for_all
    (fun v -> Float.abs (x.(v) -. Float.round x.(v)) <= tol)
    t.ints

let round_integers t x =
  let y = Array.copy x in
  List.iter (fun v -> y.(v) <- Float.round y.(v)) t.ints;
  y
