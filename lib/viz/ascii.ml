module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Placement = Fp_core.Placement

let render ?(cols = 72) pl =
  let w = pl.Placement.chip_width and h = pl.Placement.height in
  if Tol.leq w 0. || Tol.leq h 0. then "(empty placement)\n"
  else begin
    let sx = float_of_int cols /. w in
    (* Terminal cells are ~2x taller than wide. *)
    let rows = Int.max 2 (int_of_float (Float.round (h *. sx /. 2.))) in
    let sy = float_of_int rows /. h in
    let grid = Array.make_matrix rows cols ' ' in
    let paint (r : Rect.t) ch =
      let c0 = int_of_float (Float.round (r.Rect.x *. sx))
      and c1 = int_of_float (Float.round (Rect.x_max r *. sx)) in
      let r0 = int_of_float (Float.round (r.Rect.y *. sy))
      and r1 = int_of_float (Float.round (Rect.y_max r *. sy)) in
      for row = Int.max 0 r0 to Int.min (rows - 1) (r1 - 1) do
        for col = Int.max 0 c0 to Int.min (cols - 1) (c1 - 1) do
          grid.(row).(col) <- ch row col
        done
      done;
      (r0, r1, c0, c1)
    in
    List.iter
      (fun p ->
        ignore (paint p.Placement.envelope (fun _ _ -> '.'));
        let label = Printf.sprintf "%02d" p.Placement.module_id in
        let r0, r1, c0, c1 = paint p.Placement.rect (fun _ _ -> '#') in
        (* Border and centered label. *)
        for col = Int.max 0 c0 to Int.min (cols - 1) (c1 - 1) do
          if r0 >= 0 && r0 < rows then grid.(r0).(col) <- '-';
          if r1 - 1 >= 0 && r1 - 1 < rows then grid.(r1 - 1).(col) <- '-'
        done;
        for row = Int.max 0 r0 to Int.min (rows - 1) (r1 - 1) do
          if c0 >= 0 && c0 < cols then grid.(row).(c0) <- '|';
          if c1 - 1 >= 0 && c1 - 1 < cols then grid.(row).(c1 - 1) <- '|'
        done;
        let mid_row = (r0 + r1) / 2 and mid_col = (c0 + c1) / 2 in
        String.iteri
          (fun i ch ->
            let col = mid_col - 1 + i in
            if mid_row >= 0 && mid_row < rows && col > c0 && col < c1 - 1
               && col >= 0 && col < cols
            then grid.(mid_row).(col) <- ch)
          label)
      pl.Placement.placed;
    let buf = Buffer.create (rows * (cols + 1)) in
    Buffer.add_string buf (Printf.sprintf "+%s+\n" (String.make cols '-'));
    (* y grows upward: print top row first. *)
    for row = rows - 1 downto 0 do
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) grid.(row);
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf (Printf.sprintf "+%s+\n" (String.make cols '-'));
    Buffer.contents buf
  end

let render_with_title ?cols ~title pl =
  Printf.sprintf "%s\n%s" title (render ?cols pl)
