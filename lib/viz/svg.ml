module Rect = Fp_geometry.Rect
module Point = Fp_geometry.Point
module Tol = Fp_geometry.Tol
module Placement = Fp_core.Placement
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def

(* A muted qualitative palette; module color cycles by id. *)
let palette =
  [| "#8dd3c7"; "#ffffb3"; "#bebada"; "#fb8072"; "#80b1d3"; "#fdb462";
     "#b3de69"; "#fccde5"; "#d9d9d9"; "#bc80bd"; "#ccebc5"; "#ffed6f" |]

let header ~width ~height =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%g\" height=\"%g\" \
     viewBox=\"0 0 %g %g\">\n\
     <rect x=\"0\" y=\"0\" width=\"%g\" height=\"%g\" fill=\"#fcfcf8\" \
     stroke=\"#222\" stroke-width=\"1\"/>\n"
    width height width height width height

(* SVG y grows downward; flip so floorplan y grows upward. *)
let rect_svg ~scale ~chip_h (r : Rect.t) ~fill ~stroke ~dash ~opacity =
  Printf.sprintf
    "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"%s\" \
     stroke=\"%s\" stroke-width=\"0.8\"%s opacity=\"%g\"/>\n"
    (r.Rect.x *. scale)
    ((chip_h -. Rect.y_max r) *. scale)
    (r.Rect.w *. scale) (r.Rect.h *. scale) fill stroke
    (if dash then " stroke-dasharray=\"3,2\"" else "")
    opacity

let label_svg ~scale ~chip_h (r : Rect.t) text =
  let c = Rect.center r in
  Printf.sprintf
    "<text x=\"%g\" y=\"%g\" font-size=\"%g\" font-family=\"monospace\" \
     text-anchor=\"middle\" dominant-baseline=\"central\" fill=\"#222\">%s</text>\n"
    (c.Point.x *. scale)
    ((chip_h -. c.Point.y) *. scale)
    (Float.min (0.5 *. r.Rect.h *. scale) 11.)
    text

let body_of_placement ?netlist ~scale pl =
  let chip_h = pl.Placement.height in
  let buf = Buffer.create 4096 in
  List.iter
    (fun p ->
      let color = palette.(p.Placement.module_id mod Array.length palette) in
      if not (Rect.equal p.Placement.envelope p.Placement.rect) then
        Buffer.add_string buf
          (rect_svg ~scale ~chip_h p.Placement.envelope ~fill:"none"
             ~stroke:"#999" ~dash:true ~opacity:1.);
      Buffer.add_string buf
        (rect_svg ~scale ~chip_h p.Placement.rect ~fill:color ~stroke:"#333"
           ~dash:false ~opacity:0.9);
      let name =
        match netlist with
        | Some nl ->
          (Netlist.module_at nl p.Placement.module_id).Module_def.name
        | None -> string_of_int p.Placement.module_id
      in
      Buffer.add_string buf (label_svg ~scale ~chip_h p.Placement.rect name))
    pl.Placement.placed;
  Buffer.contents buf

let of_placement ?(scale = 6.) ?netlist pl =
  let width = pl.Placement.chip_width *. scale
  and height = pl.Placement.height *. scale in
  header ~width ~height
  ^ body_of_placement ?netlist ~scale pl
  ^ "</svg>\n"

let of_routed ?(scale = 6.) ?netlist pl rt =
  let chip_h = pl.Placement.height in
  let width = pl.Placement.chip_width *. scale
  and height = chip_h *. scale in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (header ~width ~height);
  Buffer.add_string buf (body_of_placement ?netlist ~scale pl);
  (* Routing overlay: used channel edges, width ~ wire count. *)
  let graph = rt.Fp_route.Global_router.graph in
  Array.iteri
    (fun i (e : Fp_route.Channel_graph.edge) ->
      let usage = rt.Fp_route.Global_router.usage.(i) in
      if Tol.gt usage 0. then begin
        let a = Fp_route.Channel_graph.node_pos graph e.Fp_route.Channel_graph.a
        and b = Fp_route.Channel_graph.node_pos graph e.Fp_route.Channel_graph.b
        in
        let over = Tol.gt usage e.Fp_route.Channel_graph.capacity in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"%s\" \
              stroke-width=\"%g\" opacity=\"0.65\"/>\n"
             (a.Point.x *. scale)
             ((chip_h -. a.Point.y) *. scale)
             (b.Point.x *. scale)
             ((chip_h -. b.Point.y) *. scale)
             (if over then "#d62728" else "#1f77b4")
             (Float.min 4. (0.4 +. (0.35 *. usage))))
      end)
    (Fp_route.Channel_graph.edges graph);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save path svg =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc svg)
