(** Channel position graph over a placed floorplan — paper section 3.2.

    "Our global router is graph based.  It uses the channel position
    graph obtained from the floorplan produced by the integer programming
    step and assigns a preliminary capacity to each edge."

    We realize the channel graph as the Hanan grid induced by the silicon
    rectangle boundaries plus the chip boundary: nodes are grid
    intersections not strictly inside any module, edges join neighbouring
    nodes whose connecting segment does not cross module silicon.  Each
    edge carries a {e preliminary capacity}: the number of routing tracks
    that fit in the free gap perpendicular to the edge, at the edge's
    location, given the metal pitch for that direction. *)

type node = int

type orient = H | V

type edge = {
  a : node;
  b : node;
  length : float;
  capacity : float;  (** tracks that fit the hosting channel *)
  orient : orient;
}

type t

val build :
  ?pitch_h:float -> ?pitch_v:float -> Fp_core.Placement.t -> t
(** Build the channel graph for a placement (default pitches 1.0).
    Uses silicon rectangles as blockages; envelope margins and inter-module
    gaps are routable. *)

val num_nodes : t -> int
val num_edges : t -> int
val node_pos : t -> node -> Fp_geometry.Point.t
val edges : t -> edge array
val neighbors : t -> node -> (node * int) list
(** Adjacency: [(neighbor, edge index)] pairs. *)

val edge_at : t -> int -> edge

val pin_node : t -> Fp_core.Placement.placed -> Fp_netlist.Net.side -> node
(** Grid node hosting a module's generalized pin: the node on the given
    silicon side nearest to the side midpoint.  Always exists because
    module corners are grid points. *)

val pp_stats : Format.formatter -> t -> unit
