module Point = Fp_geometry.Point

type report = {
  base_width : float;
  base_height : float;
  extra_width : float;
  extra_height : float;
  final_width : float;
  final_height : float;
  final_area : float;
  worst_column_overflow : float;
  worst_row_overflow : float;
}

(* Group edges of one orientation by the grid line they run along and
   take, per line, the worst shortfall of channel width. *)
let shortfall_by_line rt ~orient ~pitch =
  let graph = rt.Global_router.graph in
  let table : (int, float * float) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Channel_graph.edge) ->
      if e.Channel_graph.orient = orient then begin
        let pos = Channel_graph.node_pos graph e.Channel_graph.a in
        let line_coord =
          match orient with
          | Channel_graph.V -> pos.Point.x
          | Channel_graph.H -> pos.Point.y
        in
        let key = int_of_float (Float.round (line_coord *. 1024.)) in
        let usage = rt.Global_router.usage.(i) in
        let over_tracks = Float.max 0. (usage -. e.Channel_graph.capacity) in
        let shortfall = over_tracks *. pitch in
        let cur_s, cur_o =
          Option.value (Hashtbl.find_opt table key) ~default:(0., 0.)
        in
        Hashtbl.replace table key
          (Float.max cur_s shortfall, Float.max cur_o over_tracks)
      end)
    (Channel_graph.edges graph);
  let total = ref 0. and worst = ref 0. in
  Hashtbl.iter
    (fun _ (s, o) ->
      total := !total +. s;
      if o > !worst then worst := o)
    table;
  (!total, !worst)

let compute rt ~pitch_h ~pitch_v =
  let graph = rt.Global_router.graph in
  (* Chip extent from the graph's node cloud. *)
  let base_width = ref 0. and base_height = ref 0. in
  for n = 0 to Channel_graph.num_nodes graph - 1 do
    let p = Channel_graph.node_pos graph n in
    if p.Point.x > !base_width then base_width := p.Point.x;
    if p.Point.y > !base_height then base_height := p.Point.y
  done;
  let extra_width, worst_col = shortfall_by_line rt ~orient:Channel_graph.V ~pitch:pitch_v in
  let extra_height, worst_row = shortfall_by_line rt ~orient:Channel_graph.H ~pitch:pitch_h in
  let final_width = !base_width +. extra_width
  and final_height = !base_height +. extra_height in
  {
    base_width = !base_width;
    base_height = !base_height;
    extra_width;
    extra_height;
    final_width;
    final_height;
    final_area = final_width *. final_height;
    worst_column_overflow = worst_col;
    worst_row_overflow = worst_row;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>chip %g x %g -> %g x %g (extra w %.2f, h %.2f); final area %.1f;@ \
     worst overflow: %.0f tracks (cols), %.0f tracks (rows)@]"
    r.base_width r.base_height r.final_width r.final_height r.extra_width
    r.extra_height r.final_area r.worst_column_overflow r.worst_row_overflow
