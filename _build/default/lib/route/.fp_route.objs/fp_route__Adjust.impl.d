lib/route/adjust.ml: Array Channel_graph Float Format Fp_geometry Global_router Hashtbl Option
