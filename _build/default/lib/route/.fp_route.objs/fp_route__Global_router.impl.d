lib/route/global_router.ml: Array Channel_graph Float Fp_core Fp_netlist Fp_util List Option
