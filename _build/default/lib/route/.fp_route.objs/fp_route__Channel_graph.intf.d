lib/route/channel_graph.mli: Format Fp_core Fp_geometry Fp_netlist
