lib/route/channel_graph.ml: Array Float Format Fp_core Fp_geometry Fp_netlist Fun List Option
