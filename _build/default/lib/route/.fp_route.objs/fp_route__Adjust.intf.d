lib/route/adjust.mli: Format Global_router
