lib/route/global_router.mli: Channel_graph Fp_core Fp_netlist
