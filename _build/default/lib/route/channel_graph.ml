module Rect = Fp_geometry.Rect
module Point = Fp_geometry.Point
module Tol = Fp_geometry.Tol
module Placement = Fp_core.Placement
module Net = Fp_netlist.Net

type node = int
type orient = H | V

type edge = {
  a : node;
  b : node;
  length : float;
  capacity : float;
  orient : orient;
}

type t = {
  xs : float array;
  ys : float array;
  blockages : Rect.t array;
  nodes : Point.t array;
  node_id : int array array;  (* [ix].(iy) -> node or -1 *)
  adj : (node * int) list array;
  edge_arr : edge array;
}

let num_nodes t = Array.length t.nodes
let num_edges t = Array.length t.edge_arr
let node_pos t n = t.nodes.(n)
let edges t = t.edge_arr
let neighbors t n = t.adj.(n)
let edge_at t i = t.edge_arr.(i)

(* A point strictly inside some blockage cannot host a node. *)
let inside_blockage blocks x y =
  Array.exists
    (fun (r : Rect.t) ->
      Tol.lt r.Rect.x x && Tol.lt x (Rect.x_max r)
      && Tol.lt r.Rect.y y && Tol.lt y (Rect.y_max r))
    blocks

(* A segment crosses a blockage when its interior enters the blockage's
   interior.  For axis-parallel grid segments adjacent in the Hanan grid
   it suffices to test the midpoint. *)
let segment_blocked blocks (x0, y0) (x1, y1) =
  let mx = 0.5 *. (x0 +. x1) and my = 0.5 *. (y0 +. y1) in
  inside_blockage blocks mx my

(* Free clearance around a horizontal segment in the vertical direction:
   the length of the maximal y-interval around [y] that stays outside
   every blockage over the segment's x-range, clipped to the chip. *)
let clearance_v blocks ~chip_h ~x0 ~x1 y =
  let lo = ref 0. and hi = ref chip_h in
  Array.iter
    (fun (r : Rect.t) ->
      if Tol.lt (Float.max r.Rect.x x0) (Float.min (Rect.x_max r) x1) then begin
        (* Blockage overlaps the x-range: its top below y pushes lo up;
           its bottom above y pushes hi down. *)
        if Tol.leq (Rect.y_max r) y && Rect.y_max r > !lo then
          lo := Rect.y_max r;
        if Tol.leq y r.Rect.y && r.Rect.y < !hi then hi := r.Rect.y
      end)
    blocks;
  Float.max 0. (!hi -. !lo)

let clearance_h blocks ~chip_w ~y0 ~y1 x =
  let lo = ref 0. and hi = ref chip_w in
  Array.iter
    (fun (r : Rect.t) ->
      if Tol.lt (Float.max r.Rect.y y0) (Float.min (Rect.y_max r) y1) then begin
        if Tol.leq (Rect.x_max r) x && Rect.x_max r > !lo then
          lo := Rect.x_max r;
        if Tol.leq x r.Rect.x && r.Rect.x < !hi then hi := r.Rect.x
      end)
    blocks;
  Float.max 0. (!hi -. !lo)

let build ?(pitch_h = 1.0) ?(pitch_v = 1.0) pl =
  let chip_w = pl.Placement.chip_width and chip_h = pl.Placement.height in
  let blocks = Array.of_list (Placement.rects pl) in
  let coords axis =
    let base = [ 0.; (match axis with `X -> chip_w | `Y -> chip_h) ] in
    let of_rect (r : Rect.t) =
      match axis with
      | `X -> [ r.Rect.x; Rect.x_max r ]
      | `Y -> [ r.Rect.y; Rect.y_max r ]
    in
    Array.to_list blocks
    |> List.concat_map of_rect
    |> List.append base
    |> List.filter (fun c ->
           Tol.geq c 0.
           && Tol.leq c (match axis with `X -> chip_w | `Y -> chip_h))
    |> List.sort_uniq compare
    (* Merge coordinates closer than tolerance so degenerate slivers do
       not create zero-length edges. *)
    |> List.fold_left
         (fun acc c ->
           match acc with
           | prev :: _ when Tol.equal prev c -> acc
           | _ -> c :: acc)
         []
    |> List.rev |> Array.of_list
  in
  let xs = coords `X and ys = coords `Y in
  let nx = Array.length xs and ny = Array.length ys in
  let node_id = Array.make_matrix nx ny (-1) in
  let nodes = ref [] and count = ref 0 in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      if not (inside_blockage blocks xs.(ix) ys.(iy)) then begin
        node_id.(ix).(iy) <- !count;
        nodes := Point.make xs.(ix) ys.(iy) :: !nodes;
        incr count
      end
    done
  done;
  let nodes = Array.of_list (List.rev !nodes) in
  let adj = Array.make !count [] in
  let edge_list = ref [] and ecount = ref 0 in
  let add_edge a b length capacity orient =
    edge_list := { a; b; length; capacity; orient } :: !edge_list;
    adj.(a) <- (b, !ecount) :: adj.(a);
    adj.(b) <- (a, !ecount) :: adj.(b);
    incr ecount
  in
  (* Horizontal edges. *)
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 2 do
      let a = node_id.(ix).(iy) and b = node_id.(ix + 1).(iy) in
      if a >= 0 && b >= 0 then begin
        let x0 = xs.(ix) and x1 = xs.(ix + 1) and y = ys.(iy) in
        if not (segment_blocked blocks (x0, y) (x1, y)) then begin
          let gap = clearance_v blocks ~chip_h ~x0 ~x1 y in
          let capacity = Float.max 0. (Float.round (gap /. pitch_h)) in
          add_edge a b (x1 -. x0) capacity H
        end
      end
    done
  done;
  (* Vertical edges. *)
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 2 do
      let a = node_id.(ix).(iy) and b = node_id.(ix).(iy + 1) in
      if a >= 0 && b >= 0 then begin
        let y0 = ys.(iy) and y1 = ys.(iy + 1) and x = xs.(ix) in
        if not (segment_blocked blocks (x, y0) (x, y1)) then begin
          let gap = clearance_h blocks ~chip_w ~y0 ~y1 x in
          let capacity = Float.max 0. (Float.round (gap /. pitch_v)) in
          add_edge a b (y1 -. y0) capacity V
        end
      end
    done
  done;
  {
    xs; ys; blockages = blocks; nodes; node_id; adj;
    edge_arr = Array.of_list (List.rev !edge_list);
  }

let nearest_index arr v =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Float.abs (c -. v) in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    arr;
  !best

let pin_node t (p : Placement.placed) side =
  let r = p.Placement.rect in
  (* One coordinate is pinned to the module side; the other snaps to the
     nearest grid line within the side's extent that hosts a node. *)
  let fixed_x, fixed_y, scan =
    match side with
    | Net.Left -> (Some r.Rect.x, None, `Y (r.Rect.y, Rect.y_max r))
    | Net.Right -> (Some (Rect.x_max r), None, `Y (r.Rect.y, Rect.y_max r))
    | Net.Bottom -> (None, Some r.Rect.y, `X (r.Rect.x, Rect.x_max r))
    | Net.Top -> (None, Some (Rect.y_max r), `X (r.Rect.x, Rect.x_max r))
  in
  let ix_fixed = Option.map (nearest_index t.xs) fixed_x in
  let iy_fixed = Option.map (nearest_index t.ys) fixed_y in
  let candidates =
    match scan with
    | `Y (lo, hi) ->
      let ix = Option.get ix_fixed in
      List.filter_map
        (fun iy ->
          if Tol.geq t.ys.(iy) lo && Tol.leq t.ys.(iy) hi
             && t.node_id.(ix).(iy) >= 0
          then Some (t.node_id.(ix).(iy), Float.abs (t.ys.(iy) -. (0.5 *. (lo +. hi))))
          else None)
        (List.init (Array.length t.ys) Fun.id)
    | `X (lo, hi) ->
      let iy = Option.get iy_fixed in
      List.filter_map
        (fun ix ->
          if Tol.geq t.xs.(ix) lo && Tol.leq t.xs.(ix) hi
             && t.node_id.(ix).(iy) >= 0
          then Some (t.node_id.(ix).(iy), Float.abs (t.xs.(ix) -. (0.5 *. (lo +. hi))))
          else None)
        (List.init (Array.length t.xs) Fun.id)
  in
  match
    List.sort (fun (_, d1) (_, d2) -> compare d1 d2) candidates
  with
  | (n, _) :: _ -> n
  | [] ->
    (* A module side with no free node should be impossible (corners are
       grid points outside any interior), but fall back to the global
       nearest node rather than crash. *)
    let mid = Rect.side_midpoint r
        (match side with
        | Net.Left -> `Left | Net.Right -> `Right
        | Net.Bottom -> `Bottom | Net.Top -> `Top)
    in
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i p ->
        let d = Point.manhattan p mid in
        if d < !best_d then begin
          best_d := d;
          best := i
        end)
      t.nodes;
    !best

let pp_stats ppf t =
  Format.fprintf ppf "channel graph: %d x %d grid, %d nodes, %d edges"
    (Array.length t.xs) (Array.length t.ys) (num_nodes t) (num_edges t)
