(** Channel-width adjustment and final chip area — paper section 3.2.

    "On the final step of the algorithm widths of channels are adjusted
    to accommodate results of the global routing and the final chip area
    is computed."

    The model: every vertical slice of the chip (a column of the routing
    grid) must be wide enough for the vertical wires that cross it, and
    every horizontal slice tall enough for its horizontal wires.  Where
    the global routing exceeds a channel's free cross-section, the chip
    grows by the shortfall.  Floorplans built {e with} envelopes reserved
    that space up front and need less post-hoc growth — the effect
    Table 3 demonstrates. *)

type report = {
  base_width : float;
  base_height : float;
  extra_width : float;
      (** total widening needed by over-capacity vertical channels *)
  extra_height : float;
  final_width : float;
  final_height : float;
  final_area : float;
  worst_column_overflow : float;  (** tracks, before adjustment *)
  worst_row_overflow : float;
}

val compute : Global_router.t -> pitch_h:float -> pitch_v:float -> report
(** Derive the adjusted chip dimensions from a routing result.  Pitches
    must match the ones used to build the channel graph. *)

val pp : Format.formatter -> report -> unit
