(** Global routing over the channel graph — paper section 3.2.

    "It uses the shortest path algorithm to find a route between two
    generalized pins.  It also uses a penalty function for utilization of
    a channel beyond its preliminary capacity.  Nets with the tight
    timing requirements are routed first."

    Multi-pin nets are decomposed Prim-style: each further pin connects
    to the nearest node already on the net's tree, via Dijkstra on the
    channel graph.  Two edge-cost modes reproduce the paper's two
    algorithms (Table 3):

    - [Shortest_path]: cost = geometric length;
    - [Weighted { penalty }]: cost = length × (1 + penalty × overflow)
      where overflow is how far past its preliminary capacity the edge
      would go if this wire were added. *)

type algorithm = Shortest_path | Weighted of { penalty : float }

type routed_net = {
  net : Fp_netlist.Net.t;
  edges : int list;       (** channel-graph edge indices used *)
  wirelength : float;
}

type t = {
  graph : Channel_graph.t;
  routed : routed_net list;
  usage : float array;          (** wires per edge, same index as edges *)
  total_wirelength : float;
  overflow_total : float;
      (** sum over edges of max(0, usage - capacity) *)
  max_overflow : float;
  num_failed : int;             (** nets with unreachable pins (should be 0) *)
}

val route :
  ?algorithm:algorithm ->
  ?pitch_h:float ->
  ?pitch_v:float ->
  Fp_netlist.Netlist.t ->
  Fp_core.Placement.t ->
  t
(** Route every net of the instance over the placement.  Nets are
    processed in decreasing criticality (ties: more pins first, then
    name), so timing-critical nets see uncongested channels — the
    paper's YOU89 policy. *)

val wirelength_of : t -> float
