(** Nets and pins.

    The paper assumes "the preliminary assignment of pins to sides of the
    modules is known (but without identifying exact locations of pins)"
    (section 3.2), so a pin is a module plus a side; the router models it
    as one {e generalized pin} at the midpoint of that side. *)

type side = Left | Right | Bottom | Top

type pin = { module_id : int; side : side }

type t = {
  name : string;
  pins : pin list;
  criticality : float;
      (** Timing weight in [\[0, 1\]]; nets with higher criticality are
          routed first (the paper routes "nets with tight timing
          requirements" first, citing YOU89).  [0.] means no timing
          constraint. *)
}

val make : ?criticality:float -> name:string -> pin list -> t
(** @raise Invalid_argument when fewer than two pins are given or the
    criticality is outside [\[0, 1\]]. *)

val modules : t -> int list
(** Distinct module ids on the net, ascending. *)

val degree : t -> int
(** Number of pins. *)

val side_to_string : side -> string
val side_of_string : string -> side option
val all_sides : side list
val pp : Format.formatter -> t -> unit
