(** A floorplanning problem instance: modules plus interconnections.

    Provides the derived quantities the floorplanner consumes: the
    connectivity matrix [c_ij] (number of common nets of modules [i] and
    [j], paper section 2.2), per-side pin counts (for routing envelopes),
    and total module area. *)

type t

val create : name:string -> Module_def.t list -> Net.t list -> t
(** Modules must carry ids [0 .. K-1] in order; every net pin must
    reference an existing module.  @raise Invalid_argument otherwise. *)

val name : t -> string
val num_modules : t -> int
val modules : t -> Module_def.t array
val module_at : t -> int -> Module_def.t
val nets : t -> Net.t list
val num_nets : t -> int

val total_area : t -> float
(** Sum of module areas — the denominator of the paper's chip-utilization
    figure. *)

val connectivity : t -> int -> int -> int
(** [connectivity t i j] is [c_ij], the number of nets shared by modules
    [i] and [j]. *)

val connectivity_to_set : t -> int list -> int -> int
(** Total connectivity between one module and a set of modules — the
    selection criterion for the next augmentation group (paper step (5)). *)

val module_degree : t -> int -> int
(** Total connectivity of a module to all others. *)

val pins_per_side : t -> int -> int * int * int * int
(** [(left, right, bottom, top)] pin counts of a module — drives envelope
    sizing (paper section 3.2). *)

val nets_between : t -> int -> int -> Net.t list

val validate : t -> (unit, string) Result.t
(** Structural sanity check (positive areas, pins reference valid modules,
    nets have >= 2 pins); [create] already enforces this, so this is for
    instances deserialized from text. *)

val pp_summary : Format.formatter -> t -> unit
