(** Random problem instances.

    Table 1 of the paper uses "randomly generated" problems with 15, 20
    and 25 modules alongside ami33.  This generator produces instances
    with the same gross statistics as that benchmark family: module areas
    spread over roughly an order of magnitude, a configurable share of
    flexible modules, and 2–5-pin nets with locality (nets prefer modules
    with nearby ids, which yields the clustered connectivity that makes
    connectivity-driven ordering meaningful). *)

type config = {
  num_modules : int;
  flexible_fraction : float;  (** share of modules that are flexible *)
  total_area : float;         (** module areas are scaled to sum to
                                  approximately this (rigid dimensions snap
                                  to the unit grid) *)
  nets_per_module : float;    (** expected nets = this * num_modules *)
  max_net_degree : int;       (** pins per net drawn from [2, max] *)
  critical_fraction : float;  (** share of nets given criticality 0.5–1 *)
  seed : int;
}

val default_config : config
(** 20 modules, 25 % flexible, total area 10 000, 3.5 nets per module,
    degree <= 5, 10 % critical, seed 1. *)

val generate : config -> Netlist.t
(** Deterministic in [config] (including the seed). *)
