(** Module (block) definitions.

    The paper's problem statement (section 2.2): the input is a set of
    [K_r] rigid modules with given width and height (90° rotation allowed)
    and [K_f] flexible modules with given area [S_i] and aspect-ratio
    bounds [b_i <= w_i / h_i <= a_i]. *)

type shape =
  | Rigid of { w : float; h : float }
      (** Fixed dimensions; the floorplanner may swap [w] and [h]. *)
  | Flexible of { area : float; min_aspect : float; max_aspect : float }
      (** Fixed area [w*h = area] with [min_aspect <= w/h <= max_aspect]. *)

type t = { id : int; name : string; shape : shape }
(** [id] is the dense index of the module inside its {!Netlist.t}. *)

val rigid : id:int -> name:string -> w:float -> h:float -> t
(** @raise Invalid_argument on non-positive dimensions. *)

val flexible :
  id:int -> name:string -> area:float -> min_aspect:float ->
  max_aspect:float -> t
(** @raise Invalid_argument on non-positive area or an empty aspect
    interval. *)

val area : t -> float
(** Exact for rigid modules, the prescribed [S_i] for flexible ones. *)

val is_flexible : t -> bool

val width_range : t -> float * float
(** Feasible width interval: [(w, w)] (or [(h, h)] after rotation — the
    caller handles rotation) for rigid modules;
    [(sqrt (area * min_aspect), sqrt (area * max_aspect))] for flexible
    ones, since [w = sqrt (S * aspect)] when [h = S / w]. *)

val height_for_width : t -> float -> float
(** [height_for_width m w] is the exact module height when its width is
    [w]: [h] or [w]-independent for rigid, [area / w] for flexible. *)

val pp : Format.formatter -> t -> unit
