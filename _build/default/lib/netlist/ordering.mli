(** Orderings for successive augmentation.

    The paper's Series-2 experiment compares two policies for "selecting
    the order in which modules were added to the partial floorplans":
    random, and a {e linear ordering based on connectivity} (citing Kang's
    DAC'83 linear-ordering placement work).  Both are provided here. *)

val linear : Netlist.t -> int list
(** Connectivity-driven greedy linear ordering: start from the module with
    the highest total connectivity, then repeatedly append the unplaced
    module with the highest connectivity to the already-ordered set (ties:
    higher total degree, then lower id — deterministic). *)

val random : seed:int -> Netlist.t -> int list
(** Uniform random permutation of module ids, deterministic in [seed]. *)

val by_area_desc : Netlist.t -> int list
(** Largest module first — a useful baseline for packing-quality
    ablations (not part of the paper's experiments). *)

val groups : size:int -> int list -> int list list
(** Chop an ordering into consecutive augmentation groups of [size]
    (the last group may be smaller).  @raise Invalid_argument if
    [size < 1]. *)
