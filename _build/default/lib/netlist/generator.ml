module Rng = Fp_util.Rng

type config = {
  num_modules : int;
  flexible_fraction : float;
  total_area : float;
  nets_per_module : float;
  max_net_degree : int;
  critical_fraction : float;
  seed : int;
}

let default_config =
  {
    num_modules = 20;
    flexible_fraction = 0.25;
    total_area = 10_000.;
    nets_per_module = 3.5;
    max_net_degree = 5;
    critical_fraction = 0.1;
    seed = 1;
  }

(* Raw module areas follow a log-uniform spread over one decade, then get
   scaled so they sum exactly to [total_area]. *)
let generate cfg =
  if cfg.num_modules < 2 then
    invalid_arg "Generator.generate: need at least two modules";
  let rng = Rng.create cfg.seed in
  let k = cfg.num_modules in
  let raw = Array.init k (fun _ -> Float.exp (Rng.range rng ~lo:0. ~hi:2.3)) in
  let raw_sum = Array.fold_left ( +. ) 0. raw in
  let areas = Array.map (fun a -> a /. raw_sum *. cfg.total_area) raw in
  let num_flex =
    int_of_float (Float.round (cfg.flexible_fraction *. float_of_int k))
  in
  let flex_flags = Array.init k (fun i -> i < num_flex) in
  Rng.shuffle rng flex_flags;
  let mods =
    List.init k (fun i ->
        let name = Printf.sprintf "m%02d" i in
        if flex_flags.(i) then
          (* Aspect window around square, e.g. [0.4, 2.5]. *)
          let lo = Rng.range rng ~lo:0.3 ~hi:0.6 in
          let hi = Rng.range rng ~lo:1.8 ~hi:3.0 in
          Module_def.flexible ~id:i ~name ~area:areas.(i) ~min_aspect:lo
            ~max_aspect:hi
        else begin
          (* Rigid: pick an aspect ratio, snap dims to a 1-unit grid so the
             MILP subproblems have friendly numbers. *)
          let aspect = Rng.range rng ~lo:0.4 ~hi:2.5 in
          let w = Float.max 1. (Float.round (Float.sqrt (areas.(i) *. aspect))) in
          let h = Float.max 1. (Float.round (areas.(i) /. w)) in
          Module_def.rigid ~id:i ~name ~w ~h
        end)
  in
  let num_nets =
    int_of_float (Float.round (cfg.nets_per_module *. float_of_int k))
  in
  let random_side () =
    match Rng.int rng 4 with
    | 0 -> Net.Left
    | 1 -> Net.Right
    | 2 -> Net.Bottom
    | _ -> Net.Top
  in
  let nets =
    List.init num_nets (fun n ->
        let degree = 2 + Rng.int rng (Int.max 1 (cfg.max_net_degree - 1)) in
        (* Locality: pick an anchor module, then neighbors within a window
           of ids, so connectivity clusters. *)
        let anchor = Rng.int rng k in
        let window = Int.max 3 (k / 4) in
        let members = Hashtbl.create degree in
        Hashtbl.replace members anchor ();
        let attempts = ref 0 in
        while Hashtbl.length members < degree && !attempts < 50 do
          incr attempts;
          let off = Rng.int rng (2 * window) - window in
          let m = (anchor + off + k) mod k in
          Hashtbl.replace members m ()
        done;
        let pins =
          Hashtbl.fold (fun m () acc -> m :: acc) members []
          |> List.sort compare
          |> List.map (fun m -> { Net.module_id = m; side = random_side () })
        in
        let criticality =
          if Rng.float rng 1. < cfg.critical_fraction then
            Rng.range rng ~lo:0.5 ~hi:1.
          else 0.
        in
        Net.make ~criticality ~name:(Printf.sprintf "n%03d" n) pins)
  in
  (* Hashtbl iteration order would leak into pin order; we sorted by module
     id above so the instance is deterministic. *)
  Netlist.create
    ~name:(Printf.sprintf "rand%d_s%d" k cfg.seed)
    mods nets
