let linear nl =
  let k = Netlist.num_modules nl in
  if k = 0 then []
  else begin
    let placed = Hashtbl.create k in
    let order = ref [] in
    let degree i = Netlist.module_degree nl i in
    (* Seed: max total connectivity, ties toward lower id. *)
    let seed = ref 0 in
    for i = 1 to k - 1 do
      if degree i > degree !seed then seed := i
    done;
    Hashtbl.replace placed !seed ();
    order := [ !seed ];
    for _ = 2 to k do
      let best = ref (-1) and best_gain = ref (-1) and best_deg = ref (-1) in
      let placed_list = Hashtbl.fold (fun i () acc -> i :: acc) placed [] in
      for i = 0 to k - 1 do
        if not (Hashtbl.mem placed i) then begin
          let gain = Netlist.connectivity_to_set nl placed_list i in
          let deg = degree i in
          if
            gain > !best_gain
            || (gain = !best_gain && deg > !best_deg)
            || (gain = !best_gain && deg = !best_deg && (!best < 0 || i < !best))
          then begin
            best := i;
            best_gain := gain;
            best_deg := deg
          end
        end
      done;
      Hashtbl.replace placed !best ();
      order := !best :: !order
    done;
    List.rev !order
  end

let random ~seed nl =
  let k = Netlist.num_modules nl in
  let arr = Array.init k (fun i -> i) in
  Fp_util.Rng.shuffle (Fp_util.Rng.create seed) arr;
  Array.to_list arr

let by_area_desc nl =
  let k = Netlist.num_modules nl in
  List.init k (fun i -> i)
  |> List.sort (fun i j ->
         compare
           (Module_def.area (Netlist.module_at nl j))
           (Module_def.area (Netlist.module_at nl i)))

let groups ~size order =
  if size < 1 then invalid_arg "Ordering.groups: size < 1";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 order
