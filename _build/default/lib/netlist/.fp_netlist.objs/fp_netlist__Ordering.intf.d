lib/netlist/ordering.mli: Netlist
