lib/netlist/module_def.ml: Float Format Printf
