lib/netlist/net.ml: Format List Printf
