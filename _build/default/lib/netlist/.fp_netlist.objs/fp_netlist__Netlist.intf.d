lib/netlist/netlist.mli: Format Module_def Net Result
