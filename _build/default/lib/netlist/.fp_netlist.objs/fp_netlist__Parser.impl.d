lib/netlist/parser.ml: Array Buffer Hashtbl In_channel List Module_def Net Netlist Out_channel Printf Result String
