lib/netlist/module_def.mli: Format
