lib/netlist/generator.mli: Netlist
