lib/netlist/ordering.ml: Array Fp_util Hashtbl List Module_def Netlist
