lib/netlist/netlist.ml: Array Format List Module_def Net Printf String
