lib/netlist/generator.ml: Array Float Fp_util Hashtbl Int List Module_def Net Netlist Printf
