lib/netlist/parser.mli: Netlist Result
