(** Plain-text instance format.

    {v
    # comment
    instance NAME
    module NAME rigid W H
    module NAME flexible AREA MIN_ASPECT MAX_ASPECT
    net NAME [crit=0.8] MOD:SIDE MOD:SIDE ...
    v}

    Sides are [L R B T].  Module references in nets are by name.  The
    format exists so users can feed their own instances to
    [bin/floorplanner] without writing OCaml. *)

val of_string : string -> (Netlist.t, string) Result.t
(** Parse an instance; the error carries a line number. *)

val of_file : string -> (Netlist.t, string) Result.t

val to_string : Netlist.t -> string
(** Render an instance in the same format ([of_string (to_string t)]
    round-trips). *)

val to_file : string -> Netlist.t -> unit
