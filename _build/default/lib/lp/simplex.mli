(** Two-phase primal simplex with implicit variable bounds.

    This is the replacement for the LINDO package the paper calls as a
    black box (section 3).  It is a dense full-tableau implementation of
    the bounded-variable simplex method (Chvátal, ch. 8):

    - general bounds [lo <= x <= up] are handled implicitly — nonbasic
      variables rest at either bound and may "bound-flip" without a basis
      change, so the 0–1 variables of the floorplanning MILP never cost a
      tableau row;
    - free and upper-bounded-only variables are standardized by splitting /
      mirroring;
    - phase 1 minimizes the sum of artificial variables (artificials are
      only created for rows whose slack cannot seed the basis);
    - Dantzig pricing with an automatic switch to Bland's rule after a run
      of degenerate pivots, which guarantees termination.

    The solver is deterministic: the same problem always takes the same
    pivot sequence. *)

type result =
  | Optimal of { x : float array; obj : float }
      (** [x] is indexed by {!Lp_problem.var} handles; [obj] is the
          objective of the {e original} problem (sense respected). *)
  | Infeasible
  | Unbounded
  | Iteration_limit
      (** The pivot budget was exhausted before optimality was proven. *)

type stats = {
  phase1_iters : int;
  phase2_iters : int;
  rows : int;
  cols : int;
}

val solve : ?max_iters:int -> Lp_problem.t -> result
(** Solve the LP.  [max_iters] bounds the {e total} number of pivots
    across both phases (default [50 * (rows + cols) + 2000]). *)

val solve_with_stats : ?max_iters:int -> Lp_problem.t -> result * stats

val last_stats : unit -> stats
(** Statistics of the most recent [solve] on this domain; handy for
    ablation benchmarks. *)
