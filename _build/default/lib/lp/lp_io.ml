let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

let pp_terms buf prob terms =
  let first = ref true in
  List.iter
    (fun (c, v) ->
      if c <> 0. then begin
        let sign = if c < 0. then "- " else if !first then "" else "+ " in
        let mag = Float.abs c in
        if mag = 1. then
          Buffer.add_string buf
            (Printf.sprintf "%s%s " sign (sanitize (Lp_problem.var_name prob v)))
        else
          Buffer.add_string buf
            (Printf.sprintf "%s%.12g %s " sign mag
               (sanitize (Lp_problem.var_name prob v)));
        first := false
      end)
    terms;
  if !first then Buffer.add_string buf "0 "

let to_lp_format prob =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (match Lp_problem.sense prob with
    | Lp_problem.Minimize -> "Minimize\n obj: "
    | Lp_problem.Maximize -> "Maximize\n obj: ");
  let obj_terms =
    List.init (Lp_problem.num_vars prob) (fun v ->
        (Lp_problem.obj_coeff prob v, v))
    |> List.filter (fun (c, _) -> c <> 0.)
  in
  pp_terms buf prob obj_terms;
  Buffer.add_string buf "\nSubject To\n";
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf " %s: " (sanitize c.Lp_problem.cname));
      pp_terms buf prob c.Lp_problem.terms;
      let op =
        match c.Lp_problem.cmp with
        | Lp_problem.Le -> "<="
        | Lp_problem.Ge -> ">="
        | Lp_problem.Eq -> "="
      in
      Buffer.add_string buf (Printf.sprintf "%s %.12g\n" op c.Lp_problem.rhs))
    (Lp_problem.constraints prob);
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Lp_problem.num_vars prob - 1 do
    let lb = Lp_problem.var_lb prob v and ub = Lp_problem.var_ub prob v in
    let name = sanitize (Lp_problem.var_name prob v) in
    if lb = neg_infinity && ub = infinity then
      Buffer.add_string buf (Printf.sprintf " %s free\n" name)
    else if lb = ub then
      Buffer.add_string buf (Printf.sprintf " %s = %.12g\n" name lb)
    else begin
      let lo =
        if lb = neg_infinity then "-inf" else Printf.sprintf "%.12g" lb
      and hi = if ub = infinity then "+inf" else Printf.sprintf "%.12g" ub in
      Buffer.add_string buf (Printf.sprintf " %s <= %s <= %s\n" lo name hi)
    end
  done;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let output oc prob = output_string oc (to_lp_format prob)

let save path prob =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output oc prob)
