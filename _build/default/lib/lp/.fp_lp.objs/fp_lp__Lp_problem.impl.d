lib/lp/lp_problem.ml: Array Float Hashtbl Int List Printf
