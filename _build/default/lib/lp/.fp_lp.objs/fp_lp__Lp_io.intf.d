lib/lp/lp_io.mli: Lp_problem
