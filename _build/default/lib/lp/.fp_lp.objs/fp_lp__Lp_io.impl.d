lib/lp/lp_io.ml: Array Buffer Float Fun List Lp_problem Printf String
