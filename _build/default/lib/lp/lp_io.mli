(** CPLEX-LP-format export of {!Lp_problem} models.

    The floorplanner never parses this format back; it exists so a model
    that misbehaves can be dumped and inspected (or fed to an external
    solver on a machine that has one) — the moral equivalent of the LINDO
    model files the original FORTRAN driver produced. *)

val to_lp_format : Lp_problem.t -> string
(** Render the model.  Variable and constraint names are sanitized to the
    LP-format character set; bounds sections include free and fixed
    variables. *)

val output : out_channel -> Lp_problem.t -> unit

val save : string -> Lp_problem.t -> unit
(** [save path prob] writes the model to [path]. *)
