type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Iteration_limit

type stats = {
  phase1_iters : int;
  phase2_iters : int;
  rows : int;
  cols : int;
}

let pivot_tol = 1e-9
let cost_tol = 1e-7
let feas_tol = 1e-7
let degenerate_streak_limit = 60

(* How an internal (standardized) column maps back to an original
   variable. *)
type col_origin =
  | Shifted of int * float  (* x_orig = lb + x_int *)
  | Mirrored of int * float (* x_orig = ub - x_int *)
  | Split_pos of int        (* free var, positive part *)
  | Split_neg of int        (* free var, negative part *)
  | Slack

type status = At_lower | At_upper | Basic

type tableau = {
  m : int;                      (* rows *)
  n : int;                      (* columns, artificials included *)
  a : float array array;        (* m x n, updated in place by pivots *)
  rhs0 : float array;           (* original standardized rhs, kept for debug *)
  ub : float array;             (* per-column upper bound (lower is 0) *)
  origin : col_origin array;
  cost : float array;           (* phase-2 costs on internal columns *)
  n_structural : int;           (* columns before slacks/artificials *)
  first_artificial : int;       (* = n when there are none *)
  banned : bool array;          (* columns excluded from entering *)
  basis : int array;            (* m entries *)
  stat : status array;          (* n entries *)
  xb : float array;             (* m basic values *)
  z : float array;              (* n reduced costs for the current phase *)
}

let dummy_stats = { phase1_iters = 0; phase2_iters = 0; rows = 0; cols = 0 }
let stats_ref = ref dummy_stats
let last_stats () = !stats_ref

(* ------------------------------------------------------------------ *)
(* Standardization                                                     *)
(* ------------------------------------------------------------------ *)

(* Build the standardized tableau: all internal variables in [0, ub],
   all rows equalities with rhs >= 0, slack columns appended, then one
   artificial column for every row whose slack cannot start basic. *)
let standardize prob =
  let nv = Lp_problem.num_vars prob in
  let rows = Lp_problem.constraints prob in
  let m = Array.length rows in
  (* Map each original variable to its internal columns. *)
  let origins = ref [] and ncols = ref 0 in
  let col_of_var = Array.make nv [] in
  for v = 0 to nv - 1 do
    let lb = Lp_problem.var_lb prob v and ub = Lp_problem.var_ub prob v in
    let fresh o =
      origins := o :: !origins;
      incr ncols;
      !ncols - 1
    in
    if lb > neg_infinity then begin
      let c = fresh (Shifted (v, lb)) in
      col_of_var.(v) <- [ (c, 1.) ]
    end
    else if ub < infinity then begin
      let c = fresh (Mirrored (v, ub)) in
      col_of_var.(v) <- [ (c, -1.) ]
    end
    else begin
      let p = fresh (Split_pos v) in
      let q = fresh (Split_neg v) in
      col_of_var.(v) <- [ (p, 1.); (q, -1.) ]
    end
  done;
  let n_structural = !ncols in
  let slack_cols = Array.make m (-1) in
  Array.iteri
    (fun i row ->
      match row.Lp_problem.cmp with
      | Lp_problem.Le | Lp_problem.Ge ->
        origins := Slack :: !origins;
        incr ncols;
        slack_cols.(i) <- !ncols - 1
      | Lp_problem.Eq -> ())
    rows;
  let n_before_art = !ncols in
  (* Assemble the dense row data (structural + slack) and adjusted rhs. *)
  let dense = Array.make_matrix m n_before_art 0. in
  let rhs = Array.make m 0. in
  Array.iteri
    (fun i row ->
      let shift = ref 0. in
      List.iter
        (fun (c, v) ->
          List.iter
            (fun (col, sign) ->
              dense.(i).(col) <- dense.(i).(col) +. (c *. sign))
            col_of_var.(v);
          (* Shift / mirror constants move to the rhs. *)
          let lb = Lp_problem.var_lb prob v
          and ub = Lp_problem.var_ub prob v in
          if lb > neg_infinity then shift := !shift +. (c *. lb)
          else if ub < infinity then shift := !shift +. (c *. ub))
        row.Lp_problem.terms;
      rhs.(i) <- row.Lp_problem.rhs -. !shift;
      (match row.Lp_problem.cmp with
      | Lp_problem.Le -> dense.(i).(slack_cols.(i)) <- 1.
      | Lp_problem.Ge -> dense.(i).(slack_cols.(i)) <- -1.
      | Lp_problem.Eq -> ());
      (* Normalize rhs >= 0. *)
      if rhs.(i) < 0. then begin
        rhs.(i) <- -.rhs.(i);
        for j = 0 to n_before_art - 1 do
          dense.(i).(j) <- -.dense.(i).(j)
        done
      end)
    rows;
  (* Decide initial basis per row: the slack if its coefficient is +1,
     otherwise a fresh artificial. *)
  let needs_artificial = Array.make m false in
  Array.iteri
    (fun i _ ->
      let s = slack_cols.(i) in
      if s >= 0 && dense.(i).(s) > 0.5 then ()
      else needs_artificial.(i) <- true)
    rows;
  let n_art = Array.fold_left (fun a b -> if b then a + 1 else a) 0
      needs_artificial in
  let n = n_before_art + n_art in
  let a = Array.make_matrix m n 0. in
  for i = 0 to m - 1 do
    Array.blit dense.(i) 0 a.(i) 0 n_before_art
  done;
  let basis = Array.make m (-1) in
  let next_art = ref n_before_art in
  for i = 0 to m - 1 do
    if needs_artificial.(i) then begin
      a.(i).(!next_art) <- 1.;
      basis.(i) <- !next_art;
      incr next_art
    end
    else basis.(i) <- slack_cols.(i)
  done;
  (* Column upper bounds.  Structural: from the original variable after the
     shift / mirror; slacks and artificials unbounded (artificials get
     clamped to 0 after phase 1). *)
  let ub = Array.make n infinity in
  let origin = Array.make n Slack in
  List.iteri
    (fun k o -> origin.(n_before_art - 1 - k) <- o)
    !origins;
  for j = 0 to n - 1 do
    match origin.(j) with
    | Shifted (v, lb) ->
      let u = Lp_problem.var_ub prob v in
      ub.(j) <- (if u < infinity then u -. lb else infinity)
    | Mirrored (v, ub') ->
      (* x_int = ub - x in [0, ub - lb]; lb = -inf here, so unbounded. *)
      ignore ub';
      ignore v;
      ub.(j) <- infinity
    | Split_pos _ | Split_neg _ | Slack -> ub.(j) <- infinity
  done;
  (* Phase-2 costs on internal columns (minimization). *)
  let sign = match Lp_problem.sense prob with
    | Lp_problem.Minimize -> 1.
    | Lp_problem.Maximize -> -1.
  in
  let cost = Array.make n 0. in
  for v = 0 to nv - 1 do
    let c = sign *. Lp_problem.obj_coeff prob v in
    List.iter
      (fun (col, s) -> cost.(col) <- cost.(col) +. (c *. s))
      col_of_var.(v)
  done;
  let banned = Array.make n false in
  for j = 0 to n - 1 do
    if ub.(j) <= pivot_tol then banned.(j) <- true
  done;
  let stat = Array.make n At_lower in
  Array.iter (fun b -> stat.(b) <- Basic) basis;
  let xb = Array.copy rhs in
  {
    m; n; a; rhs0 = rhs; ub; origin; cost; n_structural;
    first_artificial = n_before_art; banned; basis; stat; xb;
    z = Array.make n 0.;
  }

(* ------------------------------------------------------------------ *)
(* Core pivoting                                                       *)
(* ------------------------------------------------------------------ *)

(* Recompute the reduced-cost row z_j = c_j - c_B . (B^-1 A)_j for the
   given cost vector.  Called once per phase. *)
let price t cost =
  for j = 0 to t.n - 1 do
    t.z.(j) <- cost.(j)
  done;
  for i = 0 to t.m - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0. then begin
      let row = t.a.(i) in
      for j = 0 to t.n - 1 do
        t.z.(j) <- t.z.(j) -. (cb *. row.(j))
      done
    end
  done

(* Violation of dual feasibility for a nonbasic column, given its rest
   status; positive means the column is attractive. *)
let attraction t j =
  if t.banned.(j) then 0.
  else
    match t.stat.(j) with
    | At_lower -> -.t.z.(j)
    | At_upper -> t.z.(j)
    | Basic -> 0.

let choose_entering_dantzig t =
  let best = ref (-1) and best_v = ref cost_tol in
  for j = 0 to t.n - 1 do
    let v = attraction t j in
    if v > !best_v then begin
      best_v := v;
      best := j
    end
  done;
  !best

let choose_entering_bland t =
  let rec go j =
    if j >= t.n then -1
    else if attraction t j > cost_tol then j
    else go (j + 1)
  in
  go 0

type step =
  | Step_optimal
  | Step_unbounded
  | Step_done of bool (* degenerate? *)

(* One simplex iteration; [bland] selects the anti-cycling rule. *)
let iterate t ~bland =
  let j =
    if bland then choose_entering_bland t else choose_entering_dantzig t
  in
  if j < 0 then Step_optimal
  else begin
    let dir = match t.stat.(j) with At_lower -> 1. | _ -> -1. in
    (* Ratio test. *)
    let t_best = ref t.ub.(j) in        (* bound flip distance *)
    let leave = ref (-1) and leave_to_upper = ref false in
    for i = 0 to t.m - 1 do
      let d = dir *. t.a.(i).(j) in
      if d > pivot_tol then begin
        let limit = t.xb.(i) /. d in
        if limit < !t_best -. pivot_tol
           || (limit < !t_best +. pivot_tol
               && !leave >= 0
               && (bland && t.basis.(i) < t.basis.(!leave)))
        then begin
          t_best := Float.max 0. limit;
          leave := i;
          leave_to_upper := false
        end
      end
      else if d < -.pivot_tol && t.ub.(t.basis.(i)) < infinity then begin
        let limit = (t.ub.(t.basis.(i)) -. t.xb.(i)) /. -.d in
        if limit < !t_best -. pivot_tol
           || (limit < !t_best +. pivot_tol
               && !leave >= 0
               && (bland && t.basis.(i) < t.basis.(!leave)))
        then begin
          t_best := Float.max 0. limit;
          leave := i;
          leave_to_upper := true
        end
      end
    done;
    if !t_best = infinity then Step_unbounded
    else begin
      let step = !t_best in
      let degenerate = step <= pivot_tol in
      if !leave < 0 then begin
        (* Pure bound flip: no basis change. *)
        for i = 0 to t.m - 1 do
          t.xb.(i) <- t.xb.(i) -. (dir *. step *. t.a.(i).(j))
        done;
        t.stat.(j) <-
          (match t.stat.(j) with At_lower -> At_upper | _ -> At_lower);
        Step_done degenerate
      end
      else begin
        let r = !leave in
        let entering_value =
          (match t.stat.(j) with At_lower -> 0. | _ -> t.ub.(j))
          +. (dir *. step)
        in
        for i = 0 to t.m - 1 do
          t.xb.(i) <- t.xb.(i) -. (dir *. step *. t.a.(i).(j))
        done;
        let leaving = t.basis.(r) in
        t.stat.(leaving) <- (if !leave_to_upper then At_upper else At_lower);
        t.basis.(r) <- j;
        t.stat.(j) <- Basic;
        t.xb.(r) <- entering_value;
        (* Row reduction. *)
        let piv = t.a.(r).(j) in
        let row_r = t.a.(r) in
        if Float.abs (piv -. 1.) > 0. then
          for k = 0 to t.n - 1 do
            row_r.(k) <- row_r.(k) /. piv
          done;
        for i = 0 to t.m - 1 do
          if i <> r then begin
            let f = t.a.(i).(j) in
            if Float.abs f > 1e-12 then begin
              let row_i = t.a.(i) in
              for k = 0 to t.n - 1 do
                row_i.(k) <- row_i.(k) -. (f *. row_r.(k))
              done;
              row_i.(j) <- 0.
            end
          end
        done;
        let zj = t.z.(j) in
        if Float.abs zj > 1e-12 then
          for k = 0 to t.n - 1 do
            t.z.(k) <- t.z.(k) -. (zj *. row_r.(k))
          done;
        t.z.(j) <- 0.;
        Step_done degenerate
      end
    end
  end

type phase_outcome = Phase_optimal | Phase_unbounded | Phase_iters

let run_phase t ~budget =
  let iters = ref 0 and streak = ref 0 and bland = ref false in
  let outcome = ref Phase_optimal in
  let continue_ = ref true in
  while !continue_ do
    if !iters >= budget then begin
      outcome := Phase_iters;
      continue_ := false
    end
    else
      match iterate t ~bland:!bland with
      | Step_optimal ->
        outcome := Phase_optimal;
        continue_ := false
      | Step_unbounded ->
        outcome := Phase_unbounded;
        continue_ := false
      | Step_done degenerate ->
        incr iters;
        if degenerate then begin
          incr streak;
          if !streak > degenerate_streak_limit then bland := true
        end
        else begin
          streak := 0;
          bland := false
        end
  done;
  (!outcome, !iters)

(* Current value of a (possibly nonbasic) internal column. *)
let col_value t j =
  match t.stat.(j) with
  | Basic ->
    let rec find i = if t.basis.(i) = j then t.xb.(i) else find (i + 1) in
    find 0
  | At_lower -> 0.
  | At_upper -> t.ub.(j)

let extract t prob =
  let nv = Lp_problem.num_vars prob in
  let x = Array.make nv 0. in
  for j = 0 to t.n_structural - 1 do
    let v = col_value t j in
    match t.origin.(j) with
    | Shifted (k, lb) -> x.(k) <- x.(k) +. lb +. v
    | Mirrored (k, ub) -> x.(k) <- x.(k) +. ub -. v
    | Split_pos k -> x.(k) <- x.(k) +. v
    | Split_neg k -> x.(k) <- x.(k) -. v
    | Slack -> ()
  done;
  x

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let solve_with_stats ?max_iters prob =
  let t = standardize prob in
  let budget =
    match max_iters with
    | Some b -> b
    | None -> (50 * (t.m + t.n)) + 2000
  in
  let mk_stats p1 p2 =
    { phase1_iters = p1; phase2_iters = p2; rows = t.m; cols = t.n }
  in
  (* Phase 1: minimize the sum of artificials, if any are basic. *)
  let p1_iters = ref 0 in
  let phase1_needed = t.first_artificial < t.n in
  let phase1_ok =
    if not phase1_needed then true
    else begin
      let c1 = Array.make t.n 0. in
      for j = t.first_artificial to t.n - 1 do
        c1.(j) <- 1.
      done;
      price t c1;
      let outcome, it = run_phase t ~budget in
      p1_iters := it;
      match outcome with
      | Phase_unbounded ->
        (* Phase-1 objective is bounded below by 0; cannot happen with
           exact arithmetic.  Treat as numerical failure -> infeasible. *)
        false
      | Phase_iters -> false
      | Phase_optimal ->
        let infeas = ref 0. in
        for i = 0 to t.m - 1 do
          if t.basis.(i) >= t.first_artificial then
            infeas := !infeas +. t.xb.(i)
        done;
        for j = t.first_artificial to t.n - 1 do
          if t.stat.(j) = At_upper then infeas := !infeas +. t.ub.(j)
        done;
        !infeas <= feas_tol *. Float.max 1. (Array.fold_left ( +. ) 0. t.rhs0)
    end
  in
  if phase1_needed && not phase1_ok then begin
    stats_ref := mk_stats !p1_iters 0;
    (Infeasible, !stats_ref)
  end
  else begin
    (* Freeze artificials at 0 and never let them move again. *)
    for j = t.first_artificial to t.n - 1 do
      t.ub.(j) <- 0.;
      t.banned.(j) <- true
    done;
    price t t.cost;
    let outcome, p2_iters = run_phase t ~budget:(budget - !p1_iters) in
    stats_ref := mk_stats !p1_iters p2_iters;
    match outcome with
    | Phase_unbounded -> (Unbounded, !stats_ref)
    | Phase_iters -> (Iteration_limit, !stats_ref)
    | Phase_optimal ->
      let x = extract t prob in
      (Optimal { x; obj = Lp_problem.objective_value prob x }, !stats_ref)
  end

let solve ?max_iters prob = fst (solve_with_stats ?max_iters prob)
