lib/milp/branch_bound.mli: Model
