lib/milp/branch_bound.ml: Array Float Fp_lp Fun Hashtbl List Logs Model Option Unix
