lib/milp/model.mli: Expr Fp_lp
