lib/milp/model.ml: Array Expr Float Fp_lp Hashtbl List
