lib/milp/expr.mli: Format Fp_lp
