lib/milp/expr.ml: Array Float Format Fp_lp Hashtbl List
