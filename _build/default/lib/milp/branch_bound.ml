module Lp_problem = Fp_lp.Lp_problem
module Simplex = Fp_lp.Simplex

let src = Logs.Src.create "fp.milp" ~doc:"branch-and-bound"

module Log = (val Logs.src_log src : Logs.LOG)

type branch_rule = Most_fractional | First_fractional

type params = {
  node_limit : int;
  time_limit : float;
  int_tol : float;
  min_improvement : float;
  log : bool;
  branch_rule : branch_rule;
}

let default_params =
  {
    node_limit = 200_000;
    time_limit = 120.;
    int_tol = 1e-6;
    min_improvement = 1e-7;
    log = false;
    branch_rule = Most_fractional;
  }

type status = Optimal | Feasible | Infeasible | Unbounded | No_solution

type outcome = {
  status : status;
  best : (float array * float) option;
  nodes : int;
  lp_solves : int;
  root_bound : float;
  elapsed : float;
}

type search = {
  model : Model.t;
  prob : Lp_problem.t;
  prm : params;
  sense_mult : float;           (* +1 minimize, -1 maximize *)
  partner : (int, int) Hashtbl.t; (* pair membership, symmetric *)
  deadline : float;
  mutable nodes : int;
  mutable lp_solves : int;
  mutable best_m : float;       (* incumbent objective, minimized form *)
  mutable best_x : float array option;
  mutable out_of_budget : bool;
  mutable root_unbounded : bool;
}

let fractionality x v =
  let f = x.(v) -. Float.round x.(v) in
  Float.abs f

(* Branch variable per the configured rule, or None when integral. *)
let pick_branch_var s x =
  match s.prm.branch_rule with
  | Most_fractional ->
    let best = ref (-1) and best_f = ref s.prm.int_tol in
    List.iter
      (fun v ->
        let f = fractionality x v in
        if f > !best_f then begin
          best_f := f;
          best := v
        end)
      (Model.integer_vars s.model);
    if !best < 0 then None else Some !best
  | First_fractional ->
    List.find_opt
      (fun v -> fractionality x v > s.prm.int_tol)
      (Model.integer_vars s.model)

let update_incumbent s x m =
  if m < s.best_m -. s.prm.min_improvement then begin
    s.best_m <- m;
    s.best_x <- Some (Array.copy x);
    if s.prm.log then
      Log.info (fun f ->
          f "incumbent %.6g after %d nodes" (s.sense_mult *. m) s.nodes)
  end

(* Explore under temporarily tightened bounds; always restores. *)
let with_bounds s settings k =
  let saved =
    List.map
      (fun (v, _, _) -> (v, Lp_problem.var_lb s.prob v, Lp_problem.var_ub s.prob v))
      settings
  in
  List.iter (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub) settings;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (v, lb, ub) -> Lp_problem.set_bounds s.prob v ~lb ~ub)
        saved)
    k

let budget_exhausted s =
  s.nodes >= s.prm.node_limit || Unix.gettimeofday () > s.deadline

let rec explore s ~depth =
  if budget_exhausted s then s.out_of_budget <- true
  else begin
    s.nodes <- s.nodes + 1;
    s.lp_solves <- s.lp_solves + 1;
    match Simplex.solve s.prob with
    | Simplex.Infeasible -> ()
    | Simplex.Iteration_limit ->
      (* No trustworthy bound: conservative choice is to abandon the
         subtree; log loudly since it may cost optimality. *)
      Log.warn (fun f -> f "LP iteration limit at depth %d; subtree dropped" depth)
    | Simplex.Unbounded ->
      if depth = 0 then s.root_unbounded <- true
      (* Deeper nodes are restrictions of the root; if the root was
         bounded this cannot happen. *)
    | Simplex.Optimal { x; obj } ->
      let m = s.sense_mult *. (obj +. Model.objective_constant s.model) in
      if m >= s.best_m -. s.prm.min_improvement then () (* bound prune *)
      else begin
        match pick_branch_var s x with
        | None ->
          (* Integral (within tolerance): snap and accept. *)
          let snapped = Model.round_integers s.model x in
          let m_exact =
            s.sense_mult
            *. (Lp_problem.objective_value s.prob snapped
               +. Model.objective_constant s.model)
          in
          (* Rounding can only move the objective through integer terms;
             re-check feasibility to be safe. *)
          if Lp_problem.constraint_violation s.prob snapped <= 1e-5 then
            update_incumbent s snapped m_exact
          else update_incumbent s x m
        | Some v -> branch s ~depth x v
      end
  end

and branch s ~depth x v =
  match Hashtbl.find_opt s.partner v with
  | Some w when fractionality x v > s.prm.int_tol
             || fractionality x w > s.prm.int_tol ->
    (* 4-way branching on the disjunction pair (v, w): each child fixes a
       combination, visiting the combination closest to the LP point
       first. *)
    let combos = [ (0., 0.); (0., 1.); (1., 0.); (1., 1.) ] in
    let dist (a, b) = Float.abs (x.(v) -. a) +. Float.abs (x.(w) -. b) in
    let ordered =
      List.sort (fun c1 c2 -> compare (dist c1) (dist c2)) combos
    in
    List.iter
      (fun (a, b) ->
        if not s.out_of_budget then
          with_bounds s
            [ (v, a, a); (w, b, b) ]
            (fun () -> explore s ~depth:(depth + 1)))
      ordered
  | _ ->
    (* Plain floor/ceil split, nearest side first. *)
    let lo = Float.floor x.(v) and hi = Float.ceil x.(v) in
    let lb = Lp_problem.var_lb s.prob v and ub = Lp_problem.var_ub s.prob v in
    let down () =
      if lo >= lb -. 1e-9 && not s.out_of_budget then
        with_bounds s [ (v, lb, lo) ] (fun () -> explore s ~depth:(depth + 1))
    and up () =
      if hi <= ub +. 1e-9 && not s.out_of_budget then
        with_bounds s [ (v, hi, ub) ] (fun () -> explore s ~depth:(depth + 1))
    in
    if x.(v) -. lo <= hi -. x.(v) then begin
      down ();
      up ()
    end
    else begin
      up ();
      down ()
    end

let solve ?(params = default_params) ?warm model =
  let prob = Model.problem model in
  let sense_mult =
    match Lp_problem.sense prob with
    | Lp_problem.Minimize -> 1.
    | Lp_problem.Maximize -> -1.
  in
  let partner = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace partner a b;
      Hashtbl.replace partner b a)
    (Model.pairs model);
  let start = Unix.gettimeofday () in
  let s =
    {
      model; prob; prm = params; sense_mult; partner;
      deadline = start +. params.time_limit;
      nodes = 0; lp_solves = 0;
      best_m = infinity; best_x = None;
      out_of_budget = false; root_unbounded = false;
    }
  in
  (* Install the warm start if it checks out. *)
  (match warm with
  | Some x
    when Array.length x = Model.num_vars model
         && Model.integral ~tol:params.int_tol model x
         && Lp_problem.constraint_violation prob x <= 1e-5 ->
    let m =
      sense_mult
      *. (Lp_problem.objective_value prob x +. Model.objective_constant model)
    in
    s.best_m <- m;
    s.best_x <- Some (Array.copy x)
  | Some _ ->
    Log.warn (fun f -> f "warm start rejected (infeasible or non-integral)")
  | None -> ());
  (* Root LP once, for the reported bound. *)
  let root_bound =
    s.lp_solves <- s.lp_solves + 1;
    match Simplex.solve prob with
    | Simplex.Optimal { obj; _ } ->
      (sense_mult *. obj) +. (sense_mult *. Model.objective_constant model)
    | Simplex.Unbounded | Simplex.Iteration_limit -> neg_infinity
    | Simplex.Infeasible -> infinity
  in
  if root_bound = infinity && s.best_x = None then
    {
      status = Infeasible; best = None; nodes = 0; lp_solves = s.lp_solves;
      root_bound = nan; elapsed = Unix.gettimeofday () -. start;
    }
  else begin
    explore s ~depth:0;
    let elapsed = Unix.gettimeofday () -. start in
    let best =
      Option.map (fun x -> (x, s.sense_mult *. s.best_m)) s.best_x
    in
    let status =
      if s.root_unbounded then Unbounded
      else
        match (best, s.out_of_budget) with
        | Some _, false -> Optimal
        | Some _, true -> Feasible
        | None, false -> Infeasible
        | None, true -> No_solution
    in
    {
      status; best; nodes = s.nodes; lp_solves = s.lp_solves;
      root_bound = sense_mult *. root_bound; elapsed;
    }
  end
