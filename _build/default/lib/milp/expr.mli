(** Affine expressions over LP variables.

    A small DSL so the floorplanning formulation reads like the paper's
    equations: [Expr.(var xi + c wi <= var xj + bigm * bin xij)] instead of
    hand-assembled coefficient lists.  An expression is a linear combination
    plus a constant; constraints move the constant to the right-hand side
    automatically. *)

type t

val zero : t
val const : float -> t
val var : ?coeff:float -> Fp_lp.Lp_problem.var -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : float -> t -> t
(** Scale by a constant (written [c * e]). *)

val neg : t -> t
val sum : t list -> t

val terms : t -> (float * Fp_lp.Lp_problem.var) list
(** Variable terms with duplicates merged; zero coefficients dropped. *)

val constant : t -> float

val eval : t -> float array -> float
(** Value of the expression at a point indexed by variable handle. *)

val pp : names:(Fp_lp.Lp_problem.var -> string) -> Format.formatter -> t -> unit
