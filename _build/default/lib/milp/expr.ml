module Lp_problem = Fp_lp.Lp_problem

type t = { terms : (float * Lp_problem.var) list; k : float }

let zero = { terms = []; k = 0. }
let const k = { terms = []; k }
let var ?(coeff = 1.) v = { terms = [ (coeff, v) ]; k = 0. }
let ( + ) a b = { terms = a.terms @ b.terms; k = a.k +. b.k }

let ( * ) c e =
  { terms = List.map (fun (f, v) -> (c *. f, v)) e.terms; k = c *. e.k }

let neg e = -1. * e
let ( - ) a b = a + neg b
let sum es = List.fold_left ( + ) zero es

let terms e =
  let tbl = Hashtbl.create 16 and order = ref [] in
  List.iter
    (fun (c, v) ->
      match Hashtbl.find_opt tbl v with
      | Some acc -> Hashtbl.replace tbl v (acc +. c)
      | None ->
        Hashtbl.add tbl v c;
        order := v :: !order)
    e.terms;
  List.rev !order
  |> List.filter_map (fun v ->
         let c = Hashtbl.find tbl v in
         if c = 0. then None else Some (c, v))

let constant e = e.k

let eval e x =
  List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) e.k e.terms

let pp ~names ppf e =
  let ts = terms e in
  if ts = [] && e.k = 0. then Format.pp_print_string ppf "0"
  else begin
    List.iteri
      (fun i (c, v) ->
        if i > 0 || c < 0. then
          Format.fprintf ppf " %s " (if c < 0. then "-" else "+");
        let mag = Float.abs c in
        if mag <> 1. then Format.fprintf ppf "%g " mag;
        Format.pp_print_string ppf (names v))
      ts;
    if e.k <> 0. then
      Format.fprintf ppf " %s %g" (if e.k < 0. then "-" else "+")
        (Float.abs e.k)
  end
