(** Independent certification of floorplanner output.

    The certifier trusts nothing the optimizer computed: given only the
    problem statement (netlist + chip width) and a claimed
    {!Fp_core.Placement.t}, it re-verifies every floorplan invariant from
    first principles with {!Fp_geometry} primitives — pairwise
    non-overlap, chip-bounds containment, rotation consistency, flexible
    module area conservation and aspect bounds, and (optionally) the
    reported objective value.  {!covering} separately audits a
    covering-rectangle decomposition against the paper's Theorems 1–2:
    every rectangle must sit under the skyline on a hole-free base, and
    there can be at most as many rectangles as placed modules.

    All geometric predicates accept a symmetric tolerance [tol] (default
    {!Fp_geometry.Tol.eps}): overlaps smaller than [tol] in either
    dimension and bound violations up to [tol] are forgiven, matching the
    precision the simplex delivers.

    Diagnostic codes CT001–CT012 are catalogued with triggering examples
    in [docs/analysis.md]. *)

type reported = {
  objective : [ `Height | `Height_plus_wire of float ];
      (** What the optimizer minimized; [`Height_plus_wire lambda] is
          [height + lambda * total HPWL]. *)
  value : float;  (** The objective value the optimizer reported. *)
}

val placement :
  ?tol:float ->
  ?reported:reported ->
  Fp_netlist.Netlist.t ->
  Fp_core.Placement.t ->
  Diagnostic.t list
(** Certify a (possibly partial) placement against its netlist.  Checks
    (codes CT001–CT006 and CT010–CT012, see docs/analysis.md): envelope
    pairwise non-overlap; containment in the chip strip; silicon inside
    its envelope; rigid dimensions consistent with the [rotated] flag;
    flexible module area conservation; flexible aspect-ratio bounds;
    recorded chip height equal to the max envelope top; module ids known
    to the netlist; and, when [reported] is given, the objective value
    recomputed from the geometry. *)

val covering :
  ?tol:float ->
  skyline:Fp_geometry.Skyline.t ->
  num_placed:int ->
  Fp_geometry.Rect.t list ->
  Diagnostic.t list
(** Certify a covering-rectangle decomposition of the region under
    [skyline] (codes CT007–CT009): at most [num_placed] rectangles
    (Theorem 2's bound [n <= N]); every rectangle grounded in the strip
    and under the profile; and the rectangles' union area equal to the
    area under the profile — together these force the flat-bottom,
    hole-free cover of Theorem 1. *)

val accepts : Diagnostic.t list -> bool
(** [true] when no finding is an [Error] — warnings and infos do not
    reject a floorplan. *)
