type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
}

let make ~code ~severity ~subject fmt =
  Printf.ksprintf (fun message -> { code; severity; subject; message }) fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let errors ds = List.filter is_error ds

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> String.compare a.subject b.subject
    | c -> c)
  | c -> c

let severity_style = function
  | Error -> `Red
  | Warning -> `Yellow
  | Info -> `Cyan

let pp ppf d =
  Fmt.pf ppf "%a %s @[<h>[%s]@] %s"
    Fmt.(styled (`Fg (severity_style d.severity)) string)
    (severity_label d.severity)
    d.code d.subject d.message

(* The machine format promises one finding per line with exactly three
   [|] separators; scrub the components so that holds for any input. *)
let scrub s =
  String.map
    (fun c -> match c with '|' -> '/' | '\n' | '\r' -> ' ' | c -> c)
    s

let to_line d =
  Printf.sprintf "%s|%s|%s|%s" (scrub d.code)
    (severity_label d.severity) (scrub d.subject) (scrub d.message)

let pp_report ppf ds =
  let ds = List.stable_sort compare ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
  let e, w, i = count ds in
  Fmt.pf ppf "%d error%s, %d warning%s, %d info@." e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i
