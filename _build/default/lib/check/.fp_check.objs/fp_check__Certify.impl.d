lib/check/certify.ml: Array Diagnostic Float Fp_core Fp_geometry Fp_netlist List Option Printf
