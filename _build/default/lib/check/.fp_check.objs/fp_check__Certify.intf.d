lib/check/certify.mli: Diagnostic Fp_core Fp_geometry Fp_netlist
