lib/check/diagnostic.ml: Fmt Int List Printf String
