lib/check/lint.ml: Array Diagnostic Float Fp_core Fp_geometry Fp_lp Fp_milp Fp_netlist Hashtbl Int List Printf String
