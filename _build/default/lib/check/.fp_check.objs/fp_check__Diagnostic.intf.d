lib/check/diagnostic.mli: Fmt Format
