lib/check/lint.mli: Diagnostic Fp_core Fp_milp
