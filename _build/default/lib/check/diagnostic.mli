(** Structured findings emitted by the static analyses of [Fp_check].

    Every finding carries a stable {e code} (catalogued in
    [docs/analysis.md]), a severity, the {e subject} it is about (a
    variable, constraint row, module id, or covering rectangle), and a
    human-readable message.  Two renderings are provided:

    - {!pp} — colourised human-readable output (via [Fmt]);
    - {!to_line} — a stable one-line-per-finding machine format
      [CODE|severity|subject|message] that CI jobs can diff across runs
      (the message is guaranteed newline- and pipe-free). *)

type severity = Error | Warning | Info

type t = {
  code : string;      (** stable code, e.g. ["ML008"] — see docs/analysis.md *)
  severity : severity;
  subject : string;   (** what the finding is about, e.g. ["row c42"] *)
  message : string;
}

val make :
  code:string -> severity:severity -> subject:string ->
  ('a, unit, string, t) format4 -> 'a
(** [make ~code ~severity ~subject fmt ...] builds a finding with a
    printf-formatted message. *)

val severity_label : severity -> string
(** ["error"], ["warning"], or ["info"] — the labels used by both
    renderings. *)

val is_error : t -> bool

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val errors : t list -> t list

val compare : t -> t -> int
(** Severity-major (errors first), then code, then subject — the stable
    report order. *)

val pp : t Fmt.t
(** Human-readable, colourised when the formatter has styling enabled. *)

val to_line : t -> string
(** Machine-readable [CODE|severity|subject|message]; [|] and newlines in
    the components are replaced so the line structure is unambiguous. *)

val pp_report : Format.formatter -> t list -> unit
(** Sorted findings, one per line, followed by a summary count line. *)
