type op = H | V
type element = Operand of int | Operator of op
type t = { elems : element array; n : int }

let elements t = Array.to_list t.elems
let num_modules t = t.n

let of_modules n =
  if n < 1 then invalid_arg "Polish.of_modules: need at least one module";
  if n = 1 then { elems = [| Operand 0 |]; n }
  else begin
    let elems = ref [ Operand 0 ] in
    for i = 1 to n - 1 do
      elems := Operator V :: Operand i :: !elems
    done;
    { elems = Array.of_list (List.rev !elems); n }
  end

let is_valid t =
  let seen = Array.make t.n false in
  let rec go i operands =
    if i >= Array.length t.elems then operands = 1
    else
      match t.elems.(i) with
      | Operand m ->
        if m < 0 || m >= t.n || seen.(m) then false
        else begin
          seen.(m) <- true;
          go (i + 1) (operands + 1)
        end
      | Operator o ->
        (* Balloting: strictly more operands than operators so far. *)
        if operands < 2 then false
        else if
          (* Normalization: no two equal adjacent operators. *)
          i > 0
          &&
          match t.elems.(i - 1) with
          | Operator o' -> o = o'
          | Operand _ -> false
        then false
        else go (i + 1) (operands - 1)
  in
  go 0 0 && Array.length t.elems = (2 * t.n) - 1

(* Positions (indices into elems) of all operands, in order. *)
let operand_positions t =
  let acc = ref [] in
  Array.iteri
    (fun i e -> match e with Operand _ -> acc := i :: !acc | Operator _ -> ())
    t.elems;
  Array.of_list (List.rev !acc)

let m1_candidates t =
  let pos = operand_positions t in
  List.init
    (Array.length pos - 1)
    (fun k -> (pos.(k), pos.(k + 1)))

let apply_m1 t k =
  let pos = operand_positions t in
  if k < 0 || k + 1 >= Array.length pos then
    invalid_arg "Polish.apply_m1: operand index out of range";
  let elems = Array.copy t.elems in
  let i = pos.(k) and j = pos.(k + 1) in
  let tmp = elems.(i) in
  elems.(i) <- elems.(j);
  elems.(j) <- tmp;
  { t with elems }

(* Maximal runs of consecutive operators. *)
let operator_chains t =
  let chains = ref [] and i = ref 0 in
  let len = Array.length t.elems in
  while !i < len do
    (match t.elems.(!i) with
    | Operator _ ->
      let start = !i in
      while !i < len && (match t.elems.(!i) with Operator _ -> true | _ -> false)
      do
        incr i
      done;
      chains := (start, !i - 1) :: !chains
    | Operand _ -> incr i)
  done;
  Array.of_list (List.rev !chains)

let num_operator_chains t = Array.length (operator_chains t)

let apply_m2 t c =
  let chains = operator_chains t in
  if c < 0 || c >= Array.length chains then
    invalid_arg "Polish.apply_m2: chain index out of range";
  let lo, hi = chains.(c) in
  let elems = Array.copy t.elems in
  for i = lo to hi do
    match elems.(i) with
    | Operator H -> elems.(i) <- Operator V
    | Operator V -> elems.(i) <- Operator H
    | Operand _ -> assert false
  done;
  { t with elems }

let swap_at t p =
  let elems = Array.copy t.elems in
  let tmp = elems.(p) in
  elems.(p) <- elems.(p + 1);
  elems.(p + 1) <- tmp;
  { t with elems }

let m3_candidates t =
  let len = Array.length t.elems in
  let ok = ref [] in
  for p = 0 to len - 2 do
    let is_pair =
      match (t.elems.(p), t.elems.(p + 1)) with
      | Operand _, Operator _ | Operator _, Operand _ -> true
      | _ -> false
    in
    if is_pair then begin
      let t' = swap_at t p in
      if is_valid t' then ok := p :: !ok
    end
  done;
  List.rev !ok

let apply_m3 t p =
  if p < 0 || p + 1 >= Array.length t.elems then
    invalid_arg "Polish.apply_m3: position out of range";
  let t' = swap_at t p in
  if not (is_valid t') then
    invalid_arg "Polish.apply_m3: move breaks validity";
  t'

let pp ppf t =
  Array.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_char ppf ' ';
      match e with
      | Operand m -> Format.pp_print_int ppf m
      | Operator H -> Format.pp_print_char ppf 'H'
      | Operator V -> Format.pp_print_char ppf 'V')
    t.elems
