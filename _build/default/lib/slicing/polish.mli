(** Normalized Polish expressions for slicing floorplans.

    The baseline family the paper positions itself against (section 2.1):
    "Starting from Otten, almost all authors relied on the slicing
    structures"; Wong's DAC'86 simulated-annealing floorplanner works on
    {e normalized Polish expressions} — postfix strings over module ids
    and the cut operators [H] (horizontal cut: top/bottom) and [V]
    (vertical cut: left/right), with no two identical adjacent operators.

    This module implements the representation and Wong-Liu's three move
    types; {!Anneal} drives them. *)

type op = H | V

type element = Operand of int | Operator of op

type t
(** A normalized Polish expression over modules [0 .. n-1]. *)

val of_modules : int -> t
(** [of_modules n] is the canonical initial expression
    [0 1 V 2 V ... (n-1) V].  @raise Invalid_argument if [n < 1]. *)

val elements : t -> element list
val num_modules : t -> int

val is_valid : t -> bool
(** Balloting property, each module exactly once, normalized (no two
    equal adjacent operators). *)

val m1_candidates : t -> (int * int) list
(** Pairs of positions of {e adjacent operands} (ignoring operators in
    between none — i.e. consecutive in the operand subsequence). *)

val apply_m1 : t -> int -> t
(** [apply_m1 t i] swaps the [i]-th and [i+1]-th operands. *)

val apply_m2 : t -> int -> t
(** [apply_m2 t i] complements the [i]-th maximal operator chain
    ([H<->V] for every operator in the chain). *)

val num_operator_chains : t -> int

val m3_candidates : t -> int list
(** Positions [p] such that swapping elements [p] and [p+1] (one operand,
    one operator) keeps the expression valid and normalized. *)

val apply_m3 : t -> int -> t
(** Swap elements at positions [p] and [p+1] (must come from
    {!m3_candidates}). *)

val pp : Format.formatter -> t -> unit
