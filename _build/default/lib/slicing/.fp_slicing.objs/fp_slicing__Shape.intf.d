lib/slicing/shape.mli: Fp_geometry Fp_netlist Polish
