lib/slicing/polish.mli: Format
