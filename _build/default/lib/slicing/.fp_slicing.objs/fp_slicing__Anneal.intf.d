lib/slicing/anneal.mli: Fp_core Fp_netlist
