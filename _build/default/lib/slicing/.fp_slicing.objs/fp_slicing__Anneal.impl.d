lib/slicing/anneal.ml: Float Fp_core Fp_geometry Fp_netlist Fp_util Int List Polish Shape Unix
