lib/slicing/shape.ml: Array Float Fp_geometry Fp_netlist List Option Polish Printf
