lib/slicing/polish.ml: Array Format List
