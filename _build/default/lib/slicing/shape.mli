(** Shape curves and floorplan realization for slicing trees.

    Bottom-up sizing of a slicing floorplan (Otten / Stockmeyer): each
    subtree carries the Pareto frontier of its feasible (width, height)
    bounding boxes.  A vertical cut [V] places children side by side
    (widths add, heights max); a horizontal cut [H] stacks them (heights
    add, widths max).  Leaves offer both orientations of a rigid module,
    or sampled points of the exact hyperbola [h = S / w] of a flexible
    one — the slicing baseline gets the {e exact} shape function, unlike
    the MILP which linearizes it. *)

type option_list = (float * float) list
(** Candidate (width, height) shapes for one module. *)

val leaf_options : ?samples:int -> Fp_netlist.Module_def.t -> option_list
(** Shapes of one module: both orientations for a rigid module; [samples]
    (default 6) width samples across the aspect window for a flexible
    one. *)

type sized
(** A slicing tree annotated with shape curves. *)

val size : Polish.t -> (int -> option_list) -> sized
(** Evaluate the shape curve of the whole expression.
    @raise Invalid_argument on an invalid expression or a module with no
    shape options. *)

val frontier : sized -> (float * float) list
(** Root Pareto frontier, in increasing width. *)

val best_area : sized -> float * float
(** Root shape of minimum bounding-box area. *)

val realize :
  ?width_limit:float ->
  sized ->
  (int * Fp_geometry.Rect.t * bool) list * float * float
(** Choose a root shape — minimum area, or minimum height among shapes
    with width <= [width_limit] when given (min area if none fits) — and
    walk the tree assigning coordinates.  Returns
    [(module_id, rect, rotated)] per module plus the chip [(w, h)].
    Every module rect lies inside the chip and no two overlap. *)
