type t = { lo : float; hi : float }

let make lo hi =
  if Tol.lt hi lo then
    invalid_arg (Printf.sprintf "Interval.make: hi (%g) < lo (%g)" hi lo);
  { lo; hi = Float.max lo hi }

let length t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let contains t x = Tol.leq t.lo x && Tol.leq x t.hi
let overlaps a b = Tol.lt (Float.max a.lo b.lo) (Float.min a.hi b.hi)
let touches a b = Tol.leq (Float.max a.lo b.lo) (Float.min a.hi b.hi)

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if Tol.lt lo hi then Some { lo; hi } else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let equal a b = Tol.equal a.lo b.lo && Tol.equal a.hi b.hi
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
