lib/geometry/covering.ml: Array List Rect Skyline Tol
