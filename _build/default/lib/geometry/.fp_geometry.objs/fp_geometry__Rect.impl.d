lib/geometry/rect.ml: Float Format Interval List Point Printf Tol
