lib/geometry/rect.mli: Format Interval Point
