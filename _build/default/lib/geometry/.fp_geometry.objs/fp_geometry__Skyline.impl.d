lib/geometry/skyline.ml: Float Format List Rect Tol
