lib/geometry/interval.ml: Float Format Printf Tol
