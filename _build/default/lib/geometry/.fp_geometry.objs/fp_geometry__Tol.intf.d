lib/geometry/tol.mli:
