lib/geometry/skyline.mli: Format Rect
