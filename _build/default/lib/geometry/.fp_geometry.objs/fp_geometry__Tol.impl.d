lib/geometry/tol.ml: Float
