lib/geometry/covering.mli: Rect Skyline
