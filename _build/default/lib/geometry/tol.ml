let eps = 1e-6
let equal a b = Float.abs (a -. b) <= eps
let leq a b = a <= b +. eps
let lt a b = a < b -. eps
let geq a b = leq b a
let is_zero a = equal a 0.
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
