(** Closed 1-D intervals [\[lo, hi\]].

    Intervals are the workhorse of the skyline and channel computations: a
    rectangle is the product of an x-interval and a y-interval, and channel
    spans are intervals along one axis. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi] builds the interval [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo] beyond tolerance. *)

val length : t -> float
val mid : t -> float

val contains : t -> float -> bool
(** Membership up to {!Tol.eps}. *)

val overlaps : t -> t -> bool
(** [overlaps a b] is [true] when the intervals share a segment of positive
    length (touching endpoints do {e not} count as overlap — abutting
    modules do not conflict). *)

val touches : t -> t -> bool
(** [touches a b] is [true] when the intervals share at least one point,
    including single endpoints. *)

val intersect : t -> t -> t option
(** Common sub-interval of positive length, if any. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
