(** Skyline (upper profile) of a flat-bottom partial floorplan.

    The successive-augmentation procedure (paper section 3.1) always grows
    the floorplan from the bottom of the chip upward, so the region occupied
    by already-placed modules can be summarized by its upper profile — a
    piecewise-constant function of [x] over the chip width.  "Holes at the
    bottom of the polygon are ignored because new modules are added only
    from the open side of the chip" (paper, section 3.1); raising the
    profile with a max does exactly that.

    A skyline also powers the bottom-left placement heuristic used to seed
    the branch-and-bound with a feasible incumbent. *)

type segment = { x0 : float; x1 : float; h : float }
(** Maximal run of constant height [h] over [\[x0, x1\]]. *)

type t

val create : width:float -> t
(** Flat profile of height 0 over [\[0, width\]].
    @raise Invalid_argument if [width <= 0]. *)

val width : t -> float

val segments : t -> segment list
(** Segments in increasing-[x] order; contiguous, covering [\[0, width\]];
    adjacent segments have distinct heights. *)

val add_rect : t -> Rect.t -> t
(** Raise the profile to at least [Rect.y_max r] over the rectangle's
    x-extent (clipped to the chip width).  The rectangle's own [y] is
    irrelevant: anything beneath it is treated as filled. *)

val of_rects : width:float -> Rect.t list -> t

val height_over : t -> x0:float -> x1:float -> float
(** Maximum profile height over the (positive-length) range [\[x0, x1\]]. *)

val min_height_over : t -> x0:float -> x1:float -> float
(** Minimum profile height over the segments overlapping the
    (positive-length) range [\[x0, x1\]] clipped to the chip width;
    [infinity] when the clipped range is empty.  A rectangle with span
    [\[x0, x1\]] lies under the profile iff its top is at most this value
    — the predicate the solution certifier uses to audit covering
    rectangles (paper Theorems 1–2). *)

val max_height : t -> float
val min_height : t -> float

val area_under : t -> float
(** Integral of the profile — the area of the covered region, holes
    included. *)

val best_position : t -> w:float -> (float * float) option
(** [best_position t ~w] returns [(x, y)] for a bottom-left placement of a
    width-[w] rectangle: the leftmost position minimizing the resulting top
    [y + h_rect]... specifically [y = height_over t x (x+w)] minimized over
    candidate x, ties broken toward smaller [y] then smaller [x].  [None]
    when [w] exceeds the chip width. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
