(** Floating-point tolerance used throughout the geometric layer.

    All module dimensions in the bundled instances are small integers stored
    as floats, so a fixed absolute tolerance is adequate; no geometric
    predicate in this library needs exact arithmetic. *)

val eps : float
(** Absolute tolerance for coordinate comparisons (1e-6). *)

val equal : float -> float -> bool
(** [equal a b] is [true] when [a] and [b] differ by at most {!eps}. *)

val leq : float -> float -> bool
(** [leq a b] is [a <= b + eps]. *)

val lt : float -> float -> bool
(** [lt a b] is [a < b - eps] (strictly less, beyond tolerance). *)

val geq : float -> float -> bool
(** [geq a b] is [leq b a]. *)

val is_zero : float -> bool
(** [is_zero a] is [equal a 0.]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the interval [[lo, hi]]. *)
