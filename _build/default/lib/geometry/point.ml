type t = { x : float; y : float }

let make x y = { x; y }
let origin = { x = 0.; y = 0. }
let add p q = { x = p.x +. q.x; y = p.y +. q.y }
let sub p q = { x = p.x -. q.x; y = p.y -. q.y }
let scale k p = { x = k *. p.x; y = k *. p.y }
let equal p q = Tol.equal p.x q.x && Tol.equal p.y q.y
let manhattan p q = Float.abs (p.x -. q.x) +. Float.abs (p.y -. q.y)

let euclidean p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  Float.sqrt ((dx *. dx) +. (dy *. dy))

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y
