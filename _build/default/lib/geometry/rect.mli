(** Axis-aligned rectangles, anchored at the lower-left corner.

    The paper (section 2.2) describes a floorplan by the lower-left corner
    [(x, y)] of each module in a coordinate system whose origin is the
    lower-left corner of the chip; this module mirrors that convention. *)

type t = { x : float; y : float; w : float; h : float }

val make : x:float -> y:float -> w:float -> h:float -> t
(** @raise Invalid_argument on negative width or height. *)

val of_corners : Point.t -> Point.t -> t
(** Rectangle spanned by two opposite corners (any orientation). *)

val area : t -> float
val x_span : t -> Interval.t
val y_span : t -> Interval.t
val x_max : t -> float
val y_max : t -> float
val center : t -> Point.t
val lower_left : t -> Point.t

val translate : dx:float -> dy:float -> t -> t

val rotate90 : t -> t
(** Swap width and height, keeping the lower-left corner fixed — the 90°
    rotation the MILP model permits for rigid modules (paper eq. (4)). *)

val inflate : left:float -> right:float -> bottom:float -> top:float -> t -> t
(** Grow each side outward by the given non-negative amount; used to build
    routing envelopes. Clamps so the result never has a negative extent. *)

val overlaps : t -> t -> bool
(** [true] when the interiors intersect (abutting rectangles do not
    overlap). *)

val overlap_area : t -> t -> float
val contains_point : t -> Point.t -> bool
val contains_rect : outer:t -> inner:t -> bool
val intersect : t -> t -> t option
val hull : t -> t -> t
val bounding_box : t list -> t option
val union_area : t list -> float
(** Exact area of the union, computed by a coordinate-compression sweep;
    used to validate coverings and to measure floorplan utilization. *)

val side_midpoint : t -> [ `Left | `Right | `Bottom | `Top ] -> Point.t
(** Midpoint of one side — the position of the paper's "generalized pin"
    for that side (section 3.2). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
