(** Covering rectangles for a partial floorplan (paper section 3.1).

    Replacing the [N] already-placed modules of a partial floorplan by a set
    of [d <= N] covering rectangles is what keeps the number of integer
    variables per augmentation step roughly constant.  The paper's
    [PartitioningPolygon] procedure works bottom-up with horizontal
    edge-cuts: cut off the rectangle between the chip bottom and the lowest
    horizontal edge of the covering polygon, then recurse on what remains.

    Theorem 1: the covering polygon of [N] stacked modules has
    [n <= N + 1] horizontal edges.
    Theorem 2: the procedure produces [N* <= n - 1] rectangles.
    Corollary: [N* <= N].

    We operate on the {!Skyline} of the partial floorplan, which is exactly
    the hole-free covering polygon the paper constructs (holes at the bottom
    are ignored). *)

val of_skyline : Skyline.t -> Rect.t list
(** Decompose the region under the skyline into non-overlapping covering
    rectangles by recursive horizontal edge-cuts at the locally minimal
    height.  Segments of height 0 contribute nothing.  The result satisfies
    [List.length result <= number of skyline segments] and its union is the
    region under the profile. *)

val of_rects : width:float -> Rect.t list -> Rect.t list
(** [of_rects ~width placed] is [of_skyline (Skyline.of_rects ~width placed)]
    — the covering set for a list of placed modules. *)

val coarsen : max_count:int -> Rect.t list -> Rect.t list
(** Reduce a covering to at most [max_count] rectangles by greedily merging
    the pair of x-adjacent rectangles whose merged bounding box adds the
    least spurious area.  Merging only ever {e grows} the covered region, so
    the result still covers the partial floorplan (it may forbid some
    placements that were feasible, trading optimality for fewer integer
    variables — the "overlapping partitions" refinement the paper mentions
    trades in the same currency).
    @raise Invalid_argument if [max_count < 1]. *)
