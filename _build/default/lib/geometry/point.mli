(** 2-D points with the usual vector operations. *)

type t = { x : float; y : float }

val make : float -> float -> t
val origin : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val equal : t -> t -> bool
(** Componentwise equality up to {!Tol.eps}. *)

val manhattan : t -> t -> float
(** [manhattan p q] is the L1 distance between [p] and [q] — the metric used
    for all wirelength estimates in the floorplanner. *)

val euclidean : t -> t -> float
val pp : Format.formatter -> t -> unit
