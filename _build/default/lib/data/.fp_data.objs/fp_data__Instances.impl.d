lib/data/instances.ml: Ami33 Fp_netlist List Printf
