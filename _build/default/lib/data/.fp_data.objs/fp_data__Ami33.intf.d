lib/data/ami33.mli: Fp_netlist
