lib/data/instances.mli: Fp_netlist
