lib/data/ami33.ml: Fp_netlist Fp_util Hashtbl List Printf
