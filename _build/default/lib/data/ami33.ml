module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Rng = Fp_util.Rng

let total_module_area = 11520.
let num_modules = 33
let num_nets = 123

(* 25 rigid modules; dimensions chosen so areas span an order of
   magnitude and the grand total (with the flexible areas below) is
   exactly 11520. *)
let rigid_dims =
  [
    (38., 30.); (32., 28.); (30., 26.); (30., 24.); (28., 22.);
    (26., 22.); (26., 20.); (24., 20.); (24., 18.); (22., 18.);
    (21., 16.); (20., 16.); (18., 16.); (18., 15.); (16., 15.);
    (16., 14.); (16., 12.); (15., 12.); (14., 12.); (12., 12.);
    (12., 10.); (13., 14.); (12., 10.); (8., 8.); (14., 10.);
  ]

(* 8 flexible modules: fixed area, aspect window around square. *)
let flex_areas = [ 352.; 320.; 288.; 256.; 224.; 200.; 180.; 160. ]

let modules () =
  let rigid =
    List.mapi
      (fun i (w, h) ->
        Module_def.rigid ~id:i ~name:(Printf.sprintf "bk%02d" i) ~w ~h)
      rigid_dims
  in
  let base = List.length rigid_dims in
  let flexible =
    List.mapi
      (fun k area ->
        let id = base + k in
        Module_def.flexible ~id ~name:(Printf.sprintf "bk%02d" id) ~area
          ~min_aspect:0.5 ~max_aspect:2.0)
      flex_areas
  in
  rigid @ flexible

(* Nets: deterministic draw (fixed seed) with id-locality, matching the
   [Generator] recipe but pinned so the instance never changes. *)
let nets () =
  let rng = Rng.create 0x0a331988 in
  let side () =
    match Rng.int rng 4 with
    | 0 -> Net.Left
    | 1 -> Net.Right
    | 2 -> Net.Bottom
    | _ -> Net.Top
  in
  List.init num_nets (fun n ->
      let degree = 2 + Rng.int rng 4 in
      let anchor = Rng.int rng num_modules in
      let window = 8 in
      let members = Hashtbl.create degree in
      Hashtbl.replace members anchor ();
      let attempts = ref 0 in
      while Hashtbl.length members < degree && !attempts < 50 do
        incr attempts;
        let off = Rng.int rng (2 * window) - window in
        let m = (anchor + off + num_modules) mod num_modules in
        Hashtbl.replace members m ()
      done;
      let pins =
        Hashtbl.fold (fun m () acc -> m :: acc) members []
        |> List.sort compare
        |> List.map (fun m -> { Net.module_id = m; side = side () })
      in
      let criticality =
        if Rng.float rng 1. < 0.1 then Rng.range rng ~lo:0.5 ~hi:1. else 0.
      in
      Net.make ~criticality ~name:(Printf.sprintf "n%03d" n) pins)

let netlist () = Netlist.create ~name:"ami33" (modules ()) (nets ())
