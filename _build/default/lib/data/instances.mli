(** The instance families the paper's experiments run on.

    Table 1 uses "randomly generated" problems with 15, 20 and 25
    modules plus ami33; these constructors pin down the exact instances
    (seeds included) so every run of the benchmark harness sees the same
    problems. *)

val table1_sizes : int list
(** [15; 20; 25; 33] — the "Modules" column of Table 1. *)

val table1_instance : int -> Fp_netlist.Netlist.t
(** [table1_instance k] is the instance used for the Table-1 row with
    [k] modules: the fixed random instance for 15/20/25, the synthetic
    ami33 for 33.  @raise Invalid_argument for any other size. *)

val random_family :
  sizes:int list -> seed:int -> Fp_netlist.Netlist.t list
(** Arbitrary random families for scaling studies beyond the paper's
    sizes (used by the ablation benches). *)
