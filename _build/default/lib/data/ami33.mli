(** Synthetic stand-in for the MCNC [ami33] benchmark.

    The paper evaluates on [ami33] from the 1988 MCNC Workshop on
    Physical Design (33 modules, total module area 11520 in the paper's
    units, 123 nets).  The original MCNC file cannot be redistributed
    here, so this is a deterministic synthetic instance engineered to
    match the properties the experiments actually depend on:

    - exactly 33 modules; total module area exactly 11520;
    - 25 rigid modules (aspect ratios 0.6–1.4 at various sizes) and
      8 flexible modules (aspect windows around square), mirroring the
      mixed rigid/flexible usage of the paper's sections 2.3–2.4;
    - 123 nets of 2–5 pins with id-locality, so connectivity-driven
      linear ordering is materially better than random ordering;
    - ~10 % of nets carry a timing criticality, so the router's
      critical-first policy is exercised.

    See DESIGN.md ("Substitutions") for the fidelity argument.  Absolute
    areas are comparable to the paper's only in trend, not digit-for-digit. *)

val netlist : unit -> Fp_netlist.Netlist.t
(** Build the instance (fresh copy each call; cheap). *)

val total_module_area : float
(** 11520, the figure the paper quotes for ami33. *)

val num_modules : int
(** 33. *)

val num_nets : int
(** 123. *)
