module Generator = Fp_netlist.Generator

let table1_sizes = [ 15; 20; 25; 33 ]

let random_of k seed =
  Generator.generate
    {
      Generator.default_config with
      Generator.num_modules = k;
      (* Keep per-module average area comparable to ami33's 11520/33. *)
      total_area = 349. *. float_of_int k;
      seed;
    }

let table1_instance = function
  | 15 -> random_of 15 1015
  | 20 -> random_of 20 1020
  | 25 -> random_of 25 1025
  | 33 -> Ami33.netlist ()
  | k ->
    invalid_arg
      (Printf.sprintf "Instances.table1_instance: no Table-1 row with %d" k)

let random_family ~sizes ~seed =
  List.map (fun k -> random_of k (seed + k)) sizes
