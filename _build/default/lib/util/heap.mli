(** Mutable binary min-heap keyed by floats.

    Backs the Dijkstra searches of the global router.  Decrease-key is
    handled the lazy way (re-insert and skip stale pops), which is simpler
    and fast enough at routing-graph sizes. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** Insert a value with a priority. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry. *)

val peek : 'a t -> (float * 'a) option
