type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable n : int;
}

let create () = { keys = Array.make 16 0.; vals = Array.make 16 None; n = 0 }
let is_empty t = t.n = 0
let size t = t.n

let grow t =
  if t.n >= Array.length t.keys then begin
    let cap = 2 * Array.length t.keys in
    let keys = Array.make cap 0. and vals = Array.make cap None in
    Array.blit t.keys 0 keys 0 t.n;
    Array.blit t.vals 0 vals 0 t.n;
    t.keys <- keys;
    t.vals <- vals
  end

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.n && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  grow t;
  t.keys.(t.n) <- key;
  t.vals.(t.n) <- Some v;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let pop t =
  if t.n = 0 then None
  else begin
    let key = t.keys.(0) and v = t.vals.(0) in
    t.n <- t.n - 1;
    t.keys.(0) <- t.keys.(t.n);
    t.vals.(0) <- t.vals.(t.n);
    t.vals.(t.n) <- None;
    if t.n > 0 then sift_down t 0;
    match v with Some v -> Some (key, v) | None -> assert false
  end

let peek t =
  if t.n = 0 then None
  else match t.vals.(0) with Some v -> Some (t.keys.(0), v) | None -> assert false
