lib/util/rng.mli:
