lib/util/heap.mli:
