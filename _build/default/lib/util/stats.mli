(** Small statistics helpers for the experiment harness. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] for fewer than two samples. *)

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : (float * float) list -> fit
(** Least-squares line through [(x, y)] samples.  Used to check the
    paper's Table-1 claim that execution time grows almost linearly with
    the number of modules.  @raise Invalid_argument with fewer than two
    points or degenerate x. *)

val pp_fit : Format.formatter -> fit -> unit
