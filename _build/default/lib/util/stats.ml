let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (List.length xs)
    in
    Float.sqrt var

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let ybar = sy /. nf in
  let ss_tot =
    List.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.)) 0. pts
  in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0. pts
  in
  let r2 = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let pp_fit ppf f =
  Format.fprintf ppf "y = %.4g x %s %.4g (R^2 = %.3f)" f.slope
    (if f.intercept < 0. then "-" else "+")
    (Float.abs f.intercept) f.r2
