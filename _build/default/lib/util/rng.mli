(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic choice in the repository — random instances, random
    augmentation orderings — draws from this generator with an explicit
    seed, so instances and experiment tables are bit-reproducible across
    runs and machines.  SplitMix64 is tiny, fast, and passes BigCrush for
    the purposes of workload generation. *)

type t

val create : int -> t
(** [create seed] builds an independent stream. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val range : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val split : t -> t
(** Derive an independent child stream (advances the parent). *)
