(** SVG rendering of floorplans and routed floorplans.

    Regenerates the paper's Figure 5 (a floorplan of the ami33 chip) and
    Figure 6 (the final floorplan with routing space): modules as filled
    rectangles with their envelopes outlined, and — when a routing result
    is supplied — channel-graph edges drawn with width proportional to
    their wire usage. *)

val of_placement :
  ?scale:float ->
  ?netlist:Fp_netlist.Netlist.t ->
  Fp_core.Placement.t ->
  string
(** Standalone SVG document.  [scale] is pixels per floorplan unit
    (default 6).  When [netlist] is given, module names label the
    rectangles. *)

val of_routed :
  ?scale:float ->
  ?netlist:Fp_netlist.Netlist.t ->
  Fp_core.Placement.t ->
  Fp_route.Global_router.t ->
  string
(** Same, with the routing overlay. *)

val save : string -> string -> unit
(** [save path svg] writes the document to a file. *)
