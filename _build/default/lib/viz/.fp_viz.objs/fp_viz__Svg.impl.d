lib/viz/svg.ml: Array Buffer Float Fp_core Fp_geometry Fp_netlist Fp_route List Out_channel Printf
