lib/viz/ascii.mli: Fp_core
