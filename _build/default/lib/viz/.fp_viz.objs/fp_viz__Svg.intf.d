lib/viz/svg.mli: Fp_core Fp_netlist Fp_route
