lib/viz/ascii.ml: Array Buffer Float Fp_core Fp_geometry Int List Printf String
