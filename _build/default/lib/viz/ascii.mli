(** Terminal rendering of floorplans (paper Figures 5 and 8, in spirit).

    Each module is drawn as a box of its two-digit id; envelope area
    beyond the silicon shows as ['.'], free chip area as [' ']. *)

val render : ?cols:int -> Fp_core.Placement.t -> string
(** Render the placement scaled to roughly [cols] terminal columns
    (default 72).  The vertical scale compensates for terminal cell
    aspect ratio. *)

val render_with_title : ?cols:int -> title:string -> Fp_core.Placement.t -> string
