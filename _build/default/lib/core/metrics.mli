(** Floorplan quality metrics used throughout the paper's tables. *)

val utilization : Fp_netlist.Netlist.t -> Placement.t -> float
(** Total module (silicon) area divided by chip area
    ([chip_width * height]) — the "Area Utilisation" column of Tables 1
    and 2.  Only the areas of {e placed} modules count, so the figure is
    meaningful for partial floorplans too. *)

val utilization_bbox : Fp_netlist.Netlist.t -> Placement.t -> float
(** Same, against the tight bounding box instead of [W * height]. *)

val hpwl : Fp_netlist.Netlist.t -> Placement.t -> float
(** Half-perimeter wirelength over all nets whose pins are all placed,
    using generalized pin positions (side midpoints).  This is the "Wire
    Length" figure for the over-the-cell experiments (Table 2), where no
    explicit routes exist. *)

val net_hpwl : Fp_netlist.Netlist.t -> Placement.t -> Fp_netlist.Net.t -> float option
(** HPWL of one net; [None] when some pin's module is unplaced. *)

val placed_area : Fp_netlist.Netlist.t -> Placement.t -> float
(** Sum of silicon areas of placed modules. *)
