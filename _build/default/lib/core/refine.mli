(** Iterative improvement by optimal re-insertion.

    An extension of the paper's "adjust floorplan" step (Figure 3, step
    13): repeatedly take the module that defines the chip height, remove
    it, replace the remaining floorplan by its covering rectangles, and
    re-insert the module at its {e optimal} position by solving the
    resulting one-module MILP (tiny: a handful of integer variables after
    geometric presolve).  Stops at the first round that fails to lower
    the height.

    This reuses exactly the machinery of one successive-augmentation step
    with a group of size one, so it exercises the same formulation paths. *)

type report = {
  rounds_attempted : int;
  rounds_improved : int;
  height_before : float;
  height_after : float;
}

val reinsert_top :
  ?max_rounds:int ->
  ?milp:Fp_milp.Branch_bound.params ->
  ?linearization:Formulation.linearization ->
  ?allow_rotation:bool ->
  Fp_netlist.Netlist.t ->
  Placement.t ->
  Placement.t * report
(** Improve a complete placement (default [max_rounds] 12).  The result
    is always at least as good as the input and always valid. *)
