(** Floorplan placements — the output of the floorplanner.

    A placement records, per module, both the {e silicon} rectangle and the
    {e envelope} rectangle (silicon plus the per-side routing margins of
    paper section 3.2).  Without envelopes the two coincide.  Envelopes may
    abut but never overlap; silicon sits inside its envelope. *)

type placed = {
  module_id : int;
  rect : Fp_geometry.Rect.t;      (** silicon *)
  envelope : Fp_geometry.Rect.t;  (** silicon + routing margins *)
  rotated : bool;                 (** rigid module placed rotated 90° *)
}

type t = {
  chip_width : float;
  height : float;   (** chip height: max envelope top *)
  placed : placed list;  (** ascending [module_id]; possibly partial *)
}

val empty : chip_width:float -> t

val add : t -> placed -> t
(** Append one module (no overlap check — use {!valid} to audit).
    @raise Invalid_argument if the module id is already present. *)

val find : t -> int -> placed option
val num_placed : t -> int

val chip_area : t -> float
(** [chip_width * height]. *)

val bounding_area : t -> float
(** Area of the tight bounding box of the envelopes — what the paper calls
    the chip area when the width is not saturated. *)

val envelopes : t -> Fp_geometry.Rect.t list
val rects : t -> Fp_geometry.Rect.t list

val valid : t -> (unit, string) Result.t
(** Checks the floorplan invariants: no two envelopes overlap, every
    silicon rect lies inside its envelope, everything lies inside the
    chip [\[0, W\] x [0, height\]]. *)

val pin_position :
  t -> module_id:int -> Fp_netlist.Net.side -> Fp_geometry.Point.t
(** Position of the generalized pin of a module: the midpoint of the given
    side of its {e silicon} rectangle (paper section 3.2).
    @raise Not_found if the module is not placed. *)

val pp : Format.formatter -> t -> unit
