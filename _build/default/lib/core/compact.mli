(** Floorplan adjustment (paper Figure 3, step 13: "Adjust floorplan").

    A gravity pass: modules drop vertically onto the skyline of the
    modules below them, in ascending-[y] order, keeping their x
    positions.  This removes the dead space successive augmentation can
    leave between groups, and legalizes the small overlaps that tangent
    linearization of flexible modules can introduce (see
    {!Formulation.linearization}). *)

val vertical : Placement.t -> Placement.t
(** Drop every module as far down as its x-span allows.  The relative
    vertical order of overlapping-x modules is preserved, so the result
    is overlap-free; the chip height never increases (except from
    legalizing a tangent-linearization overlap, which can reveal height
    that was already physically there). *)

val gap_area : Placement.t -> float
(** Dead area under the skyline not covered by any envelope — a direct
    measure of how much {!vertical} can still reclaim plus intrinsic
    packing waste. *)
