lib/core/augment.mli: Formulation Fp_milp Fp_netlist Placement
