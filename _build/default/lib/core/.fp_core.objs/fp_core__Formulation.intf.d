lib/core/formulation.mli: Fp_geometry Fp_milp Fp_netlist Placement
