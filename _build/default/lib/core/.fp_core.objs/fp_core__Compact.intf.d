lib/core/compact.mli: Placement
