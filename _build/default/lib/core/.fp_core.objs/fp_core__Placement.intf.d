lib/core/placement.mli: Format Fp_geometry Fp_netlist Result
