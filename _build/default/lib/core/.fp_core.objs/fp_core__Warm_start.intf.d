lib/core/warm_start.mli: Formulation Fp_geometry
