lib/core/compact.ml: Fp_geometry List Placement
