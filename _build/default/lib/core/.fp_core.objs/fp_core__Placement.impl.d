lib/core/placement.ml: Array Float Format Fp_geometry Fp_netlist List Printf String
