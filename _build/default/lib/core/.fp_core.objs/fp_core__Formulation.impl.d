lib/core/formulation.ml: Array Float Fp_geometry Fp_lp Fp_milp Fp_netlist Hashtbl Int List Placement Printf
