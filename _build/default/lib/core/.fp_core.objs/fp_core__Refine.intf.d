lib/core/refine.mli: Formulation Fp_milp Fp_netlist Placement
