lib/core/metrics.ml: Float Fp_geometry Fp_netlist Fun List Option Placement
