lib/core/augment.ml: Array Compact Float Formulation Fp_geometry Fp_milp Fp_netlist Fun List Logs Option Placement String Unix Warm_start
