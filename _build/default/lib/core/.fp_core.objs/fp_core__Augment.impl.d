lib/core/augment.ml: Array Compact Float Formulation Fp_geometry Fp_milp Fp_netlist Fun List Logs Placement String Unix Warm_start
