lib/core/refine.ml: Array Compact Float Formulation Fp_geometry Fp_milp Fp_netlist List Placement Warm_start
