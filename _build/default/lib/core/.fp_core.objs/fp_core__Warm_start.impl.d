lib/core/warm_start.ml: Array Float Formulation Fp_geometry Fp_netlist List Printf
