lib/core/topology.mli: Formulation Fp_netlist Placement
