lib/core/topology.ml: Array Float Formulation Fp_geometry Fp_lp Fp_milp Fp_netlist List Placement Printf
