lib/core/metrics.mli: Fp_netlist Placement
