(** MILP formulation of one floorplanning (sub)problem — paper section 2.

    Builds the 0–1 mixed integer program for placing a group of {e items}
    (modules, possibly inflated into routing envelopes) into a chip strip
    of fixed width, around a set of {e fixed} rectangles (the covering
    rectangles of the partial floorplan).  Implements:

    - eq. (2)/(3): pairwise non-overlap via big-M disjunctions controlled
      by a 0–1 pair [(x_ij, y_ij)], chip bounds, minimized height [y];
    - eq. (4)/(5): optional 90° rotation of rigid modules via a 0–1 [z_i];
    - eq. (6)–(8): flexible modules with fixed area and linearized height
      [h_i = h_i(w_max) + Λ_i Δw_i] — tangent (the paper's Taylor
      expansion) or secant (conservative: the linearized height dominates
      the true hyperbola, so floorplans are overlap-free without a
      post-adjustment);
    - optional wirelength objective term: per-net half-perimeter bounding
      boxes over generalized pins (paper's "Chip Area + Wire Length"
      objective of Table 2);
    - a valid area cut [y >= occupied_area / W] that gives the LP
      relaxation a meaningful bound (big-M disjunctions alone relax to
      almost nothing);
    - geometric presolve of item-vs-fixed relations: relations that are
      impossible given the chip boundaries lose their integer variables
      (one relation left → no binaries at all, two → a single binary),
      which is what keeps subproblem integer counts low in practice. *)

module Rect = Fp_geometry.Rect
module Model = Fp_milp.Model
module Expr = Fp_milp.Expr

type linearization = Tangent | Secant

type objective =
  | Min_height
  | Min_height_plus_wire of float
      (** [lambda]: minimize [y + lambda * total HPWL]. *)

type item = {
  def : Fp_netlist.Module_def.t;
  margins : float * float * float * float;
      (** (left, right, bottom, top) envelope margins; all zero when
          envelopes are off. *)
}

val plain_item : Fp_netlist.Module_def.t -> item
(** Item with zero margins. *)

type rel = Rel_left | Rel_right | Rel_below | Rel_above
(** Position of item [i] relative to the other object [j]. *)

type sep =
  | Fixed_rel of rel
  | Choice2 of { bin : Model.var; if0 : rel; if1 : rel }
  | Choice4 of { bx : Model.var; by : Model.var }

type other = Other_item of int | Other_fixed of int

type flex_info = {
  dw_var : Model.var;
  dw_ub : float;
  w_max_env : float;   (** envelope width at [dw = 0] *)
  h_base_env : float;  (** envelope height at [dw = 0] *)
  slope : float;       (** Λ_i of eq. (7), on the envelope *)
}

type net_info = {
  net : Fp_netlist.Net.t;
  lx : Model.var;
  rx : Model.var;
  ly : Model.var;
  ry : Model.var;
  pin_exprs : (Expr.t * Expr.t) list;
}

type built = {
  model : Model.t;
  chip_width : float;
  height_bound : float;
  items : item array;
  x : Model.var array;
  y : Model.var array;
  rot : Model.var option array;
  flex : flex_info option array;
  w_expr : Expr.t array;  (** envelope width of each item *)
  h_expr : Expr.t array;  (** envelope height of each item *)
  height : Model.var;     (** chip height variable [y] *)
  seps : (int * other * sep) list;
  net_infos : net_info list;
  fixed : Rect.t list;
  linearization : linearization;
}

val build :
  chip_width:float ->
  height_bound:float ->
  ?objective:objective ->
  ?allow_rotation:bool ->
  ?linearization:linearization ->
  ?fixed:Rect.t list ->
  ?wire_context:Fp_netlist.Netlist.t * Placement.t * int array ->
  ?net_length_bound:(Fp_netlist.Net.t -> float option) ->
  ?check:bool ->
  item list ->
  built
(** [build ~chip_width ~height_bound items] assembles the model.

    [wire_context = (netlist, partial_placement, module_ids)] supplies
    what the wirelength term needs: [module_ids.(k)] is the netlist id of
    item [k]; nets touching at least one item and one other placed-or-item
    pin contribute a bounding-box term.  Required when [objective] is
    [Min_height_plus_wire].

    [net_length_bound] implements the paper's "additional constraints on
    the length of critical nets" (section 2.2): when it returns [Some b]
    for a captured net, the constraint [HPWL(net) <= b] is added — the
    MILP then refuses placements that stretch that net, independent of
    the objective.  Requires [wire_context] to capture the nets.

    [check] (default [false]) runs {!self_check} on the result before
    returning it.

    @raise Invalid_argument if an item cannot fit the strip width, if
    [height_bound] is too small for any item, or if a wire objective is
    requested without [wire_context]. *)

val self_check : built -> unit
(** Structural self-audit: every item pair and every item–fixed pair must
    carry a separation entry, every [Choice4] separation's binaries must
    be declared as a branching pair, and every fixed rectangle must lie
    inside the chip strip.  [build] establishes all of this by
    construction; the audit guards against refactors that silently drop a
    disjunction — the failure mode where the MILP happily overlaps
    modules.  @raise Failure on the first violation.  [Fp_check.Lint]
    reports the same conditions as structured diagnostics instead. *)

val item_min_width : ?allow_rotation:bool -> item -> float
(** Smallest feasible envelope width over rotation / flexing. *)

val item_min_height : ?allow_rotation:bool -> item -> float

val item_min_reserved_area : linearization:linearization -> item -> float
(** Smallest area the item's reserved envelope can take over rotation /
    flexing — a term of the valid cut [W * y >= occupied area]. *)

val rel_of_geometry :
  Rect.t -> Rect.t -> rel option
(** Relation of rectangle [a] to rectangle [b] if some non-overlap
    disjunct is satisfied (preference order: left, right, below, above);
    [None] when they overlap. *)

val assign_warm :
  built -> (int -> Rect.t) -> rotated:(int -> bool) -> float array
(** Build a full variable assignment from a concrete envelope placement
    of the items: [f k] is the placed envelope of item [k]; [rotated k]
    whether a rigid item was rotated.  Fills positions, rotation and
    flex variables, all separation binaries, net bounding boxes, and the
    chip height.  The result is suitable as a warm start for
    {!Fp_milp.Branch_bound.solve}.
    @raise Invalid_argument if some pair of placed envelopes overlaps. *)

val extract :
  built -> float array -> (Rect.t * Rect.t * bool) array
(** Per item: [(envelope, silicon, rotated)] decoded from a solution
    vector.  For tangent linearization the silicon of a flexible module
    may stick out of its reserved envelope; the returned envelope is then
    the hull of both (see DESIGN.md). *)
