module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline

let vertical pl =
  let w = pl.Placement.chip_width in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.Placement.envelope.Rect.y, a.Placement.envelope.Rect.x)
          (b.Placement.envelope.Rect.y, b.Placement.envelope.Rect.x))
      pl.Placement.placed
  in
  let sky = ref (Skyline.create ~width:w) in
  let dropped = ref (Placement.empty ~chip_width:w) in
  List.iter
    (fun p ->
      let e = p.Placement.envelope in
      let floor_y =
        Skyline.height_over !sky ~x0:e.Rect.x ~x1:(Rect.x_max e)
      in
      let dy = floor_y -. e.Rect.y in
      let p' =
        {
          p with
          Placement.envelope = Rect.translate ~dx:0. ~dy e;
          rect = Rect.translate ~dx:0. ~dy p.Placement.rect;
        }
      in
      sky := Skyline.add_rect !sky p'.Placement.envelope;
      dropped := Placement.add !dropped p')
    sorted;
  !dropped

let gap_area pl =
  let w = pl.Placement.chip_width in
  let sky = Skyline.of_rects ~width:w (Placement.envelopes pl) in
  let covered = Rect.union_area (Placement.envelopes pl) in
  Skyline.area_under sky -. covered
