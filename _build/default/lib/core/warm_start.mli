(** Bottom-left skyline placement used to seed the branch-and-bound.

    Before each MILP subproblem is solved, the group of new items is
    placed greedily on the current skyline (largest first, each at the
    position minimizing the resulting top edge).  The resulting feasible
    floorplan gives the branch-and-bound an incumbent from node one, so
    big-M subtrees that cannot beat a {e reasonable} packing are pruned
    immediately.  The paper leans on LINDO's internal heuristics for the
    same effect; with our own solver we must bring the incumbent
    ourselves. *)

type choice = {
  envelope : Fp_geometry.Rect.t;  (** placed envelope rectangle *)
  rotated : bool;                 (** rigid item placed rotated *)
}

val place_group :
  skyline:Fp_geometry.Skyline.t ->
  allow_rotation:bool ->
  linearization:Formulation.linearization ->
  Formulation.item array ->
  choice array
(** Greedy placement of the items onto (a copy of) the skyline; result is
    indexed like the input.  Rigid items try both orientations; flexible
    items try the extreme and middle widths of their window.  The
    returned envelopes never overlap each other or the region under the
    input skyline.
    @raise Invalid_argument if an item cannot fit the strip at all. *)

val height_after :
  skyline:Fp_geometry.Skyline.t -> choice array -> float
(** Chip height of the skyline after stacking the given choices — the
    warm start's objective value (sans wire term). *)
