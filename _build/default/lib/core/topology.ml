module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol
module Model = Fp_milp.Model
module Expr = Fp_milp.Expr
module Simplex = Fp_lp.Simplex
module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def

type stats = {
  num_vars : int;
  num_constraints : int;
  num_integer_vars : int;
  height_before : float;
  height_after : float;
}

type mvar = {
  p : Placement.placed;
  vx : Model.var;
  vy : Model.var;
  we : Expr.t;
  he : Expr.t;
  margins : float * float * float * float;
  flex : (Model.var * float * float * float) option;
      (* dw, w_max_env, h_base_env, slope *)
}

let margins_of (p : Placement.placed) =
  let e = p.Placement.envelope and r = p.Placement.rect in
  ( r.Rect.x -. e.Rect.x,
    Rect.x_max e -. Rect.x_max r,
    r.Rect.y -. e.Rect.y,
    Rect.y_max e -. Rect.y_max r )

let optimize ?(linearization = Formulation.Secant) nl pl =
  (match Placement.valid pl with
  | Ok () -> ()
  | Error e -> invalid_arg ("Topology.optimize: invalid input placement: " ^ e));
  Array.iter
    (fun m ->
      if Placement.find pl m.Module_def.id = None then
        invalid_arg
          (Printf.sprintf "Topology.optimize: module %d unplaced"
             m.Module_def.id))
    (Netlist.modules nl);
  let w = pl.Placement.chip_width in
  let h0 = pl.Placement.height in
  let height_bound = h0 +. Tol.eps in
  let model = Model.create ~name:"topology_lp" () in
  let mk (p : Placement.placed) =
    let def = Netlist.module_at nl p.Placement.module_id in
    let name = def.Module_def.name in
    let vx = Model.add_continuous model ~ub:w (Printf.sprintf "x_%s" name) in
    let vy =
      Model.add_continuous model ~ub:height_bound (Printf.sprintf "y_%s" name)
    in
    let ((l, r, b, t) as margins) = margins_of p in
    match def.Module_def.shape with
    | Module_def.Rigid _ ->
      (* Keep the placed orientation: the envelope dims are constants. *)
      {
        p; vx; vy; margins; flex = None;
        we = Expr.const p.Placement.envelope.Rect.w;
        he = Expr.const p.Placement.envelope.Rect.h;
      }
    | Module_def.Flexible { area; min_aspect; max_aspect } ->
      let w_min = Float.sqrt (area *. min_aspect)
      and w_max = Float.sqrt (area *. max_aspect) in
      let dw_ub = Float.max 0. (w_max -. w_min) in
      let slope =
        match linearization with
        | Formulation.Tangent -> area /. (w_max *. w_max)
        | Formulation.Secant ->
          if dw_ub <= Tol.eps then 0. else area /. (w_min *. w_max)
      in
      let w_max_env = w_max +. l +. r in
      let h_base_env = (area /. w_max) +. b +. t in
      let dw =
        Model.add_continuous model ~ub:dw_ub (Printf.sprintf "dw_%s" name)
      in
      {
        p; vx; vy; margins; flex = Some (dw, w_max_env, h_base_env, slope);
        we = Expr.(const w_max_env - var dw);
        he = Expr.(const h_base_env + (slope * var dw));
      }
  in
  let ms = Array.of_list (List.map mk pl.Placement.placed) in
  let height = Model.add_continuous model ~ub:height_bound "chip_height" in
  Array.iter
    (fun m ->
      Model.add_constr model Expr.(var m.vx + m.we) Model.Le (Expr.const w);
      Model.add_constr model Expr.(var m.vy + m.he) Model.Le (Expr.var height))
    ms;
  let n = Array.length ms in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = ms.(i).p.Placement.envelope
      and b = ms.(j).p.Placement.envelope in
      match Formulation.rel_of_geometry a b with
      | None ->
        invalid_arg "Topology.optimize: overlapping envelopes in the topology"
      | Some rel ->
        let gi = ms.(i) and gj = ms.(j) in
        let open Expr in
        (match rel with
        | Formulation.Rel_left ->
          Model.add_constr model (var gi.vx + gi.we) Model.Le (var gj.vx)
        | Formulation.Rel_right ->
          Model.add_constr model (var gj.vx + gj.we) Model.Le (var gi.vx)
        | Formulation.Rel_below ->
          Model.add_constr model (var gi.vy + gi.he) Model.Le (var gj.vy)
        | Formulation.Rel_above ->
          Model.add_constr model (var gj.vy + gj.he) Model.Le (var gi.vy))
    done
  done;
  Model.set_objective model `Minimize (Expr.var height);
  let stats_base =
    {
      num_vars = Model.num_vars model;
      num_constraints = Model.num_constrs model;
      num_integer_vars = Model.num_integer_vars model;
      height_before = h0;
      height_after = h0;
    }
  in
  match Simplex.solve (Model.problem model) with
  | Simplex.Optimal { x = sol; _ } ->
    let rebuilt = ref (Placement.empty ~chip_width:w) in
    Array.iter
      (fun m ->
        let ex = sol.(m.vx) and ey = sol.(m.vy) in
        let ew = Expr.eval m.we sol and eh = Expr.eval m.he sol in
        let envelope = Rect.make ~x:ex ~y:ey ~w:ew ~h:eh in
        let l, _r, b, _t = m.margins in
        let silicon, envelope =
          match m.flex with
          | None ->
            ( Rect.make ~x:(ex +. l) ~y:(ey +. b)
                ~w:m.p.Placement.rect.Rect.w ~h:m.p.Placement.rect.Rect.h,
              envelope )
          | Some _ ->
            let def = Netlist.module_at nl m.p.Placement.module_id in
            let area = Module_def.area def in
            let l', r', b', _ = m.margins in
            let w_sil = Float.max Tol.eps (ew -. l' -. r') in
            let h_sil = area /. w_sil in
            let silicon =
              Rect.make ~x:(ex +. l') ~y:(ey +. b') ~w:w_sil ~h:h_sil
            in
            let envelope =
              if Rect.contains_rect ~outer:envelope ~inner:silicon then
                envelope
              else Rect.hull envelope silicon
            in
            (silicon, envelope)
        in
        rebuilt :=
          Placement.add !rebuilt
            { m.p with Placement.rect = silicon; envelope })
      ms;
    (!rebuilt, { stats_base with height_after = !rebuilt.Placement.height })
  | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit ->
    (* The input point is feasible, so this is numerical bad luck; keep
       the original placement. *)
    (pl, stats_base)
