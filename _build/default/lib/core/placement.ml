module Rect = Fp_geometry.Rect
module Tol = Fp_geometry.Tol

type placed = {
  module_id : int;
  rect : Rect.t;
  envelope : Rect.t;
  rotated : bool;
}

type t = { chip_width : float; height : float; placed : placed list }

let empty ~chip_width = { chip_width; height = 0.; placed = [] }

let add t p =
  if List.exists (fun q -> q.module_id = p.module_id) t.placed then
    invalid_arg
      (Printf.sprintf "Placement.add: module %d already placed" p.module_id);
  let placed =
    List.merge
      (fun a b -> compare a.module_id b.module_id)
      t.placed [ p ]
  in
  { t with placed; height = Float.max t.height (Rect.y_max p.envelope) }

let find t id = List.find_opt (fun p -> p.module_id = id) t.placed
let num_placed t = List.length t.placed
let chip_area t = t.chip_width *. t.height

let envelopes t = List.map (fun p -> p.envelope) t.placed
let rects t = List.map (fun p -> p.rect) t.placed

let bounding_area t =
  match Rect.bounding_box (envelopes t) with
  | None -> 0.
  | Some bb -> Rect.area bb

let valid t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let arr = Array.of_list t.placed in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let p = arr.(i) in
    if not (Rect.contains_rect ~outer:p.envelope ~inner:p.rect) then
      note "module %d: silicon escapes its envelope" p.module_id;
    if
      Tol.lt p.envelope.Rect.x 0.
      || Tol.lt (t.chip_width) (Rect.x_max p.envelope)
      || Tol.lt p.envelope.Rect.y 0.
      || Tol.lt t.height (Rect.y_max p.envelope)
    then note "module %d: outside the chip" p.module_id;
    for j = i + 1 to n - 1 do
      let q = arr.(j) in
      if Rect.overlaps p.envelope q.envelope then
        note "modules %d and %d overlap (envelope overlap area %g)"
          p.module_id q.module_id
          (Rect.overlap_area p.envelope q.envelope)
    done
  done;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

let pin_position t ~module_id side =
  match find t module_id with
  | None -> raise Not_found
  | Some p ->
    let s =
      match side with
      | Fp_netlist.Net.Left -> `Left
      | Fp_netlist.Net.Right -> `Right
      | Fp_netlist.Net.Bottom -> `Bottom
      | Fp_netlist.Net.Top -> `Top
    in
    Rect.side_midpoint p.rect s

let pp ppf t =
  Format.fprintf ppf "@[<v>placement W=%g H=%g (%d modules)" t.chip_width
    t.height (num_placed t);
  List.iter
    (fun p ->
      Format.fprintf ppf "@,  #%d %a%s" p.module_id Rect.pp p.rect
        (if p.rotated then " (rot)" else ""))
    t.placed;
  Format.fprintf ppf "@]"
