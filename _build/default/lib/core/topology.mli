(** Floorplan optimization with a given topology — paper section 2.5.

    "When the mixed integer programming formulation is applied to this
    problem, it results in elimination of all integer variables": once the
    relative position of every module pair is known, exactly one
    non-overlap inequality per pair remains and the model is a pure LP.

    The topology is read off an existing placement: for each pair of
    envelopes, the satisfied relation (left / right / below / above)
    becomes a hard constraint; module positions — and the widths of
    flexible modules — are then re-optimized to minimize chip height at
    fixed width.  Because the input placement is itself feasible for the
    LP, the result can only improve (or keep) the height. *)

type stats = {
  num_vars : int;
  num_constraints : int;
  num_integer_vars : int;  (** always 0 — the section's point *)
  height_before : float;
  height_after : float;
}

val optimize :
  ?linearization:Formulation.linearization ->
  Fp_netlist.Netlist.t ->
  Placement.t ->
  Placement.t * stats
(** Re-optimize the placement.  Rigid modules keep their placed
    orientation; flexible modules may re-shape within their aspect
    window.  Envelope margins are preserved exactly as placed.
    @raise Invalid_argument if the placement is invalid (overlapping
    envelopes) or if some module of the netlist is unplaced. *)
