(* Tests for Fp_check: the model linter (ML/FL diagnostic codes), the
   independent solution certifier (CT codes), and the end-to-end property
   that the full floorplanning pipeline produces certifiable placements
   while hand-mutated counterexamples are rejected. *)

module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering
module Model = Fp_milp.Model
module Expr = Fp_milp.Expr
module Module_def = Fp_netlist.Module_def
module Netlist = Fp_netlist.Netlist
module Generator = Fp_netlist.Generator
module BB = Fp_milp.Branch_bound
module Diag = Fp_check.Diagnostic
module Lint = Fp_check.Lint
module Certify = Fp_check.Certify
open Fp_core

let rect x y w h = Rect.make ~x ~y ~w ~h

let codes ds = List.sort_uniq String.compare (List.map (fun d -> d.Diag.code) ds)
let error_codes ds = codes (Diag.errors ds)

let has_code c ds = List.exists (fun d -> d.Diag.code = c) ds

let has_error c ds =
  List.exists (fun d -> d.Diag.code = c && Diag.is_error d) ds

let check_has msg c ds = Alcotest.(check bool) msg true (has_code c ds)

let check_error msg c ds =
  Alcotest.(check bool) msg true (has_error c ds)

(* --------------------------- diagnostics ----------------------------- *)

let test_diag_to_line () =
  let d =
    Diag.make ~code:"XX001" ~severity:Diag.Warning ~subject:"a|b"
      "line1\nline2"
  in
  Alcotest.(check string) "scrubbed" "XX001|warning|a/b|line1 line2"
    (Diag.to_line d)

let test_diag_order_and_counts () =
  let mk code severity = Diag.make ~code ~severity ~subject:"s" "m" in
  let ds =
    [ mk "B" Diag.Info; mk "A" Diag.Warning; mk "C" Diag.Error ]
  in
  let sorted = List.stable_sort Diag.compare ds in
  Alcotest.(check (list string)) "errors first" [ "C"; "A"; "B" ]
    (List.map (fun d -> d.Diag.code) sorted);
  Alcotest.(check bool) "counts" true (Diag.count ds = (1, 1, 1));
  Alcotest.(check bool) "accepts iff no error" false
    (Certify.accepts ds);
  Alcotest.(check bool) "accepts warnings" true
    (Certify.accepts [ mk "A" Diag.Warning ])

(* ---------------------------- model lint ----------------------------- *)

let no_refine = { Lint.default_context with Lint.refine_lp = false }

let test_lint_clean_model () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:10. "x" in
  let y = Model.add_continuous m ~ub:10. "y" in
  Model.add_constr m Expr.(var x + var y) Model.Le (Expr.const 8.);
  Model.set_objective m `Minimize Expr.(var x + var y);
  Alcotest.(check (list string)) "no findings" [] (codes (Lint.model m))

let test_lint_unused_var () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:1. "x" in
  let _dead = Model.add_continuous m ~ub:1. "dead" in
  Model.add_constr m (Expr.var x) Model.Le (Expr.const 1.);
  check_has "ML002" "ML002" (Lint.model m)

let test_lint_unbounded_objective_var () =
  let m = Model.create () in
  let x = Model.add_continuous m ~lb:neg_infinity ~ub:10. "x" in
  Model.add_constr m (Expr.var x) Model.Le (Expr.const 5.);
  Model.set_objective m `Minimize (Expr.var x);
  (* minimizing +x with lb = -inf: improving direction is unbounded *)
  check_has "ML003" "ML003" (Lint.model m)

let test_lint_infeasible_and_vacuous_rows () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:1. "x" in
  Model.add_constr m (Expr.var x) Model.Ge (Expr.const 5.);   (* infeasible *)
  Model.add_constr m (Expr.var x) Model.Le (Expr.const 10.);  (* vacuous *)
  let ds = Lint.model m in
  check_error "ML004 is an error" "ML004" ds;
  check_has "ML005" "ML005" ds

let test_lint_duplicate_rows () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:4. "x" in
  let y = Model.add_continuous m ~ub:4. "y" in
  Model.add_constr m Expr.(var x + var y) Model.Le (Expr.const 3.);
  (* scaled copy: same halfspace *)
  Model.add_constr m Expr.(2. * (var x + var y)) Model.Le (Expr.const 6.);
  check_has "ML006" "ML006" (Lint.model m)

let test_lint_dynamic_range () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:1. "x" in
  let y = Model.add_continuous m ~ub:1. "y" in
  Model.add_constr m Expr.((1e9 * var x) + var y) Model.Le (Expr.const 1e9);
  check_has "ML007" "ML007" (Lint.model m)

(* Big-M disjunction: x <= 5 unless the switch b1 is up.  With
   x in [0, 10] the constant must be >= 5; writing 2 instead clips the
   feasible region. *)
let bigm_model ~m_const =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:10. "x" in
  let b1 = Model.add_binary m "b1" in
  let b2 = Model.add_binary m "b2" in
  Model.declare_pair m b1 b2;
  Model.add_constr m
    Expr.(var x - (m_const * var b1))
    Model.Le (Expr.const 5.);
  Model.add_constr m Expr.(var b1 + var b2) Model.Le (Expr.const 1.);
  Model.set_objective m `Minimize (Expr.var x);
  m

let test_lint_bigm_too_small () =
  let ds = Lint.model (bigm_model ~m_const:2.) in
  check_error "ML008 is an error" "ML008" ds

let test_lint_bigm_too_small_interval_fallback () =
  let ds = Lint.model ~context:no_refine (bigm_model ~m_const:2.) in
  check_error "ML008 without LP refinement" "ML008" ds

let test_lint_bigm_adequate () =
  let ds = Lint.model (bigm_model ~m_const:5.) in
  Alcotest.(check (list string)) "no ML008/ML009" []
    (List.filter (fun c -> c = "ML008" || c = "ML009") (codes ds))

let test_lint_bigm_loose () =
  let ds = Lint.model (bigm_model ~m_const:1e5) in
  check_has "ML009" "ML009" ds;
  Alcotest.(check bool) "ML009 is a warning, not an error" false
    (has_error "ML009" ds)

(* The LP refinement must clear big-Ms that interval arithmetic cannot:
   here x's bound interval is [0, 100] but another row caps x + w at 10,
   so the big-M of 10 is in fact sufficient. *)
let test_lint_bigm_correlated_not_flagged () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:100. "x" in
  let w = Model.add_continuous m ~lb:2. ~ub:4. "w" in
  let b1 = Model.add_binary m "b1" in
  let b2 = Model.add_binary m "b2" in
  Model.declare_pair m b1 b2;
  Model.add_constr m Expr.(var x + var w) Model.Le (Expr.const 10.);
  Model.add_constr m
    Expr.(var x - (10. * var b1))
    Model.Le (Expr.const 0.);
  Model.set_objective m `Minimize (Expr.var x);
  let ds = Lint.model m in
  Alcotest.(check bool) "no spurious ML008" false (has_error "ML008" ds)

let test_lint_unpaired_binary () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:1. "x" in
  let b = Model.add_binary m "lonely" in
  Model.add_constr m Expr.(var x + var b) Model.Le (Expr.const 1.);
  check_has "ML010" "ML010" (Lint.model m)

(* ------------------------- formulation lint -------------------------- *)

let rigid id name w h = Module_def.rigid ~id ~name ~w ~h

let small_built ?(fixed = []) () =
  Formulation.build ~chip_width:10. ~height_bound:30. ~fixed
    [ Formulation.plain_item (rigid 0 "a" 3. 4.);
      Formulation.plain_item (rigid 1 "b" 2. 2.);
      Formulation.plain_item (rigid 2 "c" 4. 3.) ]

let test_formulation_lint_clean () =
  let b = small_built ~fixed:[ rect 0. 0. 10. 2. ] () in
  Alcotest.(check (list string)) "no errors" [] (error_codes (Lint.formulation b))

let test_formulation_missing_item_sep () =
  let b = small_built () in
  let seps =
    List.filter
      (fun (i, other, _) ->
        not (i = 0 && other = Formulation.Other_item 1))
      b.Formulation.seps
  in
  let broken = { b with Formulation.seps } in
  check_error "FL001" "FL001" (Lint.formulation broken);
  Alcotest.check_raises "self_check raises"
    (Failure "Formulation.self_check: no separation between items 0 and 1")
    (fun () -> Formulation.self_check broken)

let test_formulation_missing_fixed_sep () =
  let b = small_built ~fixed:[ rect 0. 0. 10. 2. ] () in
  let seps =
    List.filter
      (fun (_, other, _) -> other <> Formulation.Other_fixed 0)
      b.Formulation.seps
  in
  check_error "FL002" "FL002"
    (Lint.formulation { b with Formulation.seps })

let test_formulation_fixed_outside_strip () =
  let b = small_built ~fixed:[ rect 0. 0. 10. 2. ] () in
  let broken = { b with Formulation.fixed = [ rect (-3.) 0. 10. 2. ] } in
  check_error "FL003" "FL003" (Lint.formulation broken)

let test_build_check_flag_runs_self_check () =
  (* ~check:true on an intact build must be silent. *)
  ignore
    (Formulation.build ~chip_width:10. ~height_bound:30. ~check:true
       [ Formulation.plain_item (rigid 0 "a" 3. 4.);
         Formulation.plain_item (rigid 1 "b" 2. 2.) ])

(* All ami33 flow subproblem models lint without a single error-severity
   finding (the acceptance bar for the linter's false-positive rate).
   The node budget is tiny: lint inspects the models, not the solves. *)
let test_ami33_models_lint_clean () =
  let nl = Fp_data.Ami33.netlist () in
  let errors = ref [] in
  let inspect =
    { Augment.on_model =
        (fun built ->
          errors := Diag.errors (Lint.formulation built) @ !errors);
      on_step = (fun _ _ -> ()) }
  in
  let d = Augment.default_config in
  let config =
    { d with
      Augment.check = true;
      inspect = Some inspect;
      milp = { d.Augment.milp with BB.node_limit = 40; time_limit = 3. } }
  in
  ignore (Augment.run ~config nl);
  Alcotest.(check (list string)) "no error findings on ami33" []
    (List.map Diag.to_line !errors)

(* ----------------------------- certifier ----------------------------- *)

let placed ?(rotated = false) id r =
  { Placement.module_id = id; rect = r; envelope = r; rotated }

let two_rigid_nl =
  Netlist.create ~name:"two"
    [ rigid 0 "a" 3. 4.; rigid 1 "b" 2. 2. ]
    []

let good_two_placement () =
  Placement.empty ~chip_width:10.
  |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 4.))
  |> Fun.flip Placement.add (placed 1 (rect 3. 0. 2. 2.))

let test_certify_accepts_good () =
  let ds = Certify.placement two_rigid_nl (good_two_placement ()) in
  Alcotest.(check (list string)) "clean" [] (codes ds)

let test_certify_rejects_overlap () =
  (* counterexample 1: module b nudged onto module a *)
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 4.))
    |> Fun.flip Placement.add (placed 1 (rect 2. 0. 2. 2.))
  in
  let ds = Certify.placement two_rigid_nl pl in
  check_error "CT001" "CT001" ds;
  Alcotest.(check bool) "rejected" false (Certify.accepts ds)

let test_certify_rejects_out_of_bounds () =
  (* counterexample 2: module pushed past the right chip edge *)
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 4.))
    |> Fun.flip Placement.add (placed 1 (rect 9. 0. 2. 2.))
  in
  check_error "CT002" "CT002" (Certify.placement two_rigid_nl pl)

let test_certify_silicon_outside_envelope () =
  let p =
    { Placement.module_id = 0; rect = rect 2. 0. 3. 4.;
      envelope = rect 0. 0. 3. 4.; rotated = false }
  in
  let pl = Placement.add (Placement.empty ~chip_width:10.) p in
  check_error "CT003" "CT003" (Certify.placement two_rigid_nl pl)

let test_certify_rotation_inconsistency () =
  (* placed 4x3 while the definition says 3x4 and rotated = false *)
  let pl =
    Placement.add
      (Placement.empty ~chip_width:10.)
      (placed 0 (rect 0. 0. 4. 3.))
  in
  check_error "CT004" "CT004" (Certify.placement two_rigid_nl pl);
  (* with rotated = true the same rectangle is consistent *)
  let pl_rot =
    Placement.add
      (Placement.empty ~chip_width:10.)
      (placed ~rotated:true 0 (rect 0. 0. 4. 3.))
  in
  Alcotest.(check bool) "rotated ok" false
    (has_code "CT004" (Certify.placement two_rigid_nl pl_rot))

let flex_nl =
  Netlist.create ~name:"flex"
    [ Module_def.flexible ~id:0 ~name:"f" ~area:12. ~min_aspect:0.5
        ~max_aspect:2. ]
    []

let test_certify_flexible_area_and_aspect () =
  (* 4 x 3 = 12 with aspect 4/3: fine *)
  let ok =
    Placement.add (Placement.empty ~chip_width:10.)
      (placed 0 (rect 0. 0. 4. 3.))
  in
  Alcotest.(check (list string)) "good flexible" []
    (codes (Certify.placement flex_nl ok));
  (* area broken: 4 x 4 = 16 *)
  let bad_area =
    Placement.add (Placement.empty ~chip_width:10.)
      (placed 0 (rect 0. 0. 4. 4.))
  in
  check_error "CT005" "CT005" (Certify.placement flex_nl bad_area);
  (* area kept but aspect outside [0.5, 2]: 6 x 2, aspect 3 *)
  let bad_aspect =
    Placement.add (Placement.empty ~chip_width:10.)
      (placed 0 (rect 0. 0. 6. 2.))
  in
  check_error "CT006" "CT006" (Certify.placement flex_nl bad_aspect)

let test_certify_height_and_objective () =
  let pl = good_two_placement () in
  let lying = { pl with Placement.height = 7. } in
  let ds = Certify.placement two_rigid_nl lying in
  check_error "CT011" "CT011" ds;
  let ds =
    Certify.placement
      ~reported:{ Certify.objective = `Height; value = 5.5 }
      two_rigid_nl (good_two_placement ())
  in
  check_error "CT010" "CT010" ds;
  let ds =
    Certify.placement
      ~reported:{ Certify.objective = `Height; value = 4. }
      two_rigid_nl (good_two_placement ())
  in
  Alcotest.(check bool) "correct objective accepted" true (Certify.accepts ds)

let test_certify_unknown_module () =
  let pl =
    Placement.add (Placement.empty ~chip_width:10.)
      (placed 7 (rect 0. 0. 1. 1.))
  in
  check_error "CT012" "CT012" (Certify.placement two_rigid_nl pl)

(* ------------------------- covering certifier ------------------------ *)

let sample_skyline () =
  Skyline.of_rects ~width:10.
    [ rect 0. 0. 4. 3.; rect 4. 0. 3. 5.; rect 7. 0. 3. 2. ]

let test_covering_accepts_exact_decomposition () =
  let sky = sample_skyline () in
  let cover = Covering.of_skyline sky in
  Alcotest.(check (list string)) "clean" []
    (codes (Certify.covering ~skyline:sky ~num_placed:3 cover))

let test_covering_rejects_too_many () =
  let sky = sample_skyline () in
  let cover = Covering.of_skyline sky in
  check_error "CT007" "CT007"
    (Certify.covering ~skyline:sky ~num_placed:1 cover)

let test_covering_rejects_broken_flat_bottom () =
  (* counterexample 3: lift one covering rectangle off the chip floor —
     the cover now has a hole under it (flat-bottom property broken) *)
  let sky = sample_skyline () in
  let cover = Covering.of_skyline sky in
  let lifted =
    match cover with
    | r :: rest -> { r with Rect.y = r.Rect.y +. 1. } :: rest
    | [] -> assert false
  in
  let ds = Certify.covering ~skyline:sky ~num_placed:3 lifted in
  Alcotest.(check bool) "rejected" false (Certify.accepts ds);
  Alcotest.(check bool) "hole or protrusion detected" true
    (has_error "CT008" ds || has_error "CT009" ds)

let test_covering_rejects_protruding_rect () =
  let sky = sample_skyline () in
  let cover = Covering.of_skyline sky in
  let grown =
    match cover with
    | r :: rest -> { r with Rect.h = r.Rect.h +. 2. } :: rest
    | [] -> assert false
  in
  check_error "CT008" "CT008"
    (Certify.covering ~skyline:sky ~num_placed:3 grown)

(* ------------------------ end-to-end property ------------------------ *)

(* Random instance -> full plan pipeline -> the certifier accepts every
   partial and the final placement; nudging any module into its neighbour
   makes it reject. *)
let test_random_pipeline_certifies () =
  let rng = Fp_util.Rng.create 2026 in
  List.iter
    (fun seed ->
      let nl =
        Generator.generate
          { Generator.default_config with
            Generator.num_modules = 8;
            seed }
      in
      let findings = ref [] in
      let inspect =
        { Augment.on_model = (fun _ -> ());
          on_step =
            (fun _ pl ->
              findings := Certify.placement nl pl @ !findings;
              let sky =
                Skyline.of_rects ~width:pl.Placement.chip_width
                  (Placement.envelopes pl)
              in
              findings :=
                Certify.covering ~skyline:sky
                  ~num_placed:(Placement.num_placed pl)
                  (Covering.of_skyline sky)
                @ !findings) }
      in
      let d = Augment.default_config in
      let config =
        { d with
          Augment.check = true;
          inspect = Some inspect;
          milp = { d.Augment.milp with BB.node_limit = 80; time_limit = 3. } }
      in
      let res = Augment.run ~config nl in
      let pl = Compact.vertical res.Augment.placement in
      let pl, _ = Topology.optimize nl pl in
      findings := Certify.placement nl pl @ !findings;
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d certifies" seed)
        []
        (List.map Diag.to_line (Diag.errors !findings));
      (* Mutate: slide a random module onto the one placed after it. *)
      let arr = Array.of_list pl.Placement.placed in
      if Array.length arr >= 2 then begin
        let i = Fp_util.Rng.int rng (Array.length arr - 1) in
        let victim = arr.(i) and target = arr.(i + 1) in
        let moved =
          { victim with
            Placement.rect =
              { victim.Placement.rect with
                Rect.x = target.Placement.rect.Rect.x;
                y = target.Placement.rect.Rect.y };
            envelope =
              { victim.Placement.envelope with
                Rect.x = target.Placement.envelope.Rect.x;
                y = target.Placement.envelope.Rect.y } }
        in
        arr.(i) <- moved;
        let mutated = { pl with Placement.placed = Array.to_list arr } in
        let ds = Certify.placement nl mutated in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d mutation rejected" seed)
          false (Certify.accepts ds)
      end)
    [ 11; 42; 77 ]

(* ------------------------------ suite -------------------------------- *)

let () =
  Alcotest.run "fp_check"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "to_line scrubs" `Quick test_diag_to_line;
          Alcotest.test_case "order and counts" `Quick
            test_diag_order_and_counts;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean model" `Quick test_lint_clean_model;
          Alcotest.test_case "unused var" `Quick test_lint_unused_var;
          Alcotest.test_case "unbounded objective var" `Quick
            test_lint_unbounded_objective_var;
          Alcotest.test_case "infeasible + vacuous rows" `Quick
            test_lint_infeasible_and_vacuous_rows;
          Alcotest.test_case "duplicate rows" `Quick test_lint_duplicate_rows;
          Alcotest.test_case "dynamic range" `Quick test_lint_dynamic_range;
          Alcotest.test_case "big-M too small" `Quick test_lint_bigm_too_small;
          Alcotest.test_case "big-M too small (interval)" `Quick
            test_lint_bigm_too_small_interval_fallback;
          Alcotest.test_case "big-M adequate" `Quick test_lint_bigm_adequate;
          Alcotest.test_case "big-M loose" `Quick test_lint_bigm_loose;
          Alcotest.test_case "big-M correlated (LP refine)" `Quick
            test_lint_bigm_correlated_not_flagged;
          Alcotest.test_case "unpaired binary" `Quick test_lint_unpaired_binary;
        ] );
      ( "formulation",
        [
          Alcotest.test_case "clean" `Quick test_formulation_lint_clean;
          Alcotest.test_case "missing item sep" `Quick
            test_formulation_missing_item_sep;
          Alcotest.test_case "missing fixed sep" `Quick
            test_formulation_missing_fixed_sep;
          Alcotest.test_case "fixed outside strip" `Quick
            test_formulation_fixed_outside_strip;
          Alcotest.test_case "check flag" `Quick
            test_build_check_flag_runs_self_check;
          Alcotest.test_case "ami33 models lint clean" `Slow
            test_ami33_models_lint_clean;
        ] );
      ( "certify",
        [
          Alcotest.test_case "accepts good" `Quick test_certify_accepts_good;
          Alcotest.test_case "rejects overlap" `Quick
            test_certify_rejects_overlap;
          Alcotest.test_case "rejects out of bounds" `Quick
            test_certify_rejects_out_of_bounds;
          Alcotest.test_case "silicon outside envelope" `Quick
            test_certify_silicon_outside_envelope;
          Alcotest.test_case "rotation inconsistency" `Quick
            test_certify_rotation_inconsistency;
          Alcotest.test_case "flexible area + aspect" `Quick
            test_certify_flexible_area_and_aspect;
          Alcotest.test_case "height + objective" `Quick
            test_certify_height_and_objective;
          Alcotest.test_case "unknown module" `Quick
            test_certify_unknown_module;
        ] );
      ( "covering",
        [
          Alcotest.test_case "accepts decomposition" `Quick
            test_covering_accepts_exact_decomposition;
          Alcotest.test_case "rejects too many" `Quick
            test_covering_rejects_too_many;
          Alcotest.test_case "rejects broken flat bottom" `Quick
            test_covering_rejects_broken_flat_bottom;
          Alcotest.test_case "rejects protruding rect" `Quick
            test_covering_rejects_protruding_rect;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "random pipeline certifies" `Slow
            test_random_pipeline_certifies;
        ] );
    ]
