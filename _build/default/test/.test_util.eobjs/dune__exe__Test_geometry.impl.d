test/test_geometry.ml: Alcotest Array Float Fp_geometry Fun List QCheck QCheck_alcotest
