test/test_integration.ml: Alcotest Augment Compact Filename Fp_core Fp_milp Fp_netlist Fp_route Fp_slicing Fp_viz Hashtbl List Metrics Option Placement Printf Refine String Sys Topology
