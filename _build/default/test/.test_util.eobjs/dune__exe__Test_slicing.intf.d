test/test_slicing.mli:
