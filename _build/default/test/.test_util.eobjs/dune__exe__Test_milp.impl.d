test/test_milp.ml: Alcotest Array Float Fp_lp Fp_milp List Option Printf QCheck QCheck_alcotest
