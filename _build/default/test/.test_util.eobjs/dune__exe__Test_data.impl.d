test/test_data.ml: Alcotest Array Fp_data Fp_netlist List Printf
