test/test_milp.mli:
