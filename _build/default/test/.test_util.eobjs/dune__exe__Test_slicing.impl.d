test/test_slicing.ml: Alcotest Array Format Fp_core Fp_geometry Fp_netlist Fp_slicing Fp_util Fun List Printf QCheck QCheck_alcotest
