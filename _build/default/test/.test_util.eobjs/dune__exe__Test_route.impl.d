test/test_route.ml: Alcotest Array Float Fp_core Fp_geometry Fp_netlist Fp_route Fun List Option Printf
