test/test_viz.ml: Alcotest Filename Fp_core Fp_geometry Fp_netlist Fp_route Fp_viz Fun In_channel List String Sys
