test/test_check.ml: Alcotest Array Augment Compact Formulation Fp_check Fp_core Fp_data Fp_geometry Fp_milp Fp_netlist Fp_util Fun List Placement Printf String Topology
