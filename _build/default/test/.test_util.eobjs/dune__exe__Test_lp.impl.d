test/test_lp.ml: Alcotest Array Float Fp_lp List Printf QCheck QCheck_alcotest String
