test/test_netlist.ml: Alcotest Array Float Fp_netlist Fun List Printf String
