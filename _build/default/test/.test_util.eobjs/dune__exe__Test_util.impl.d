test/test_util.ml: Alcotest Array Fp_util Fun List Option QCheck QCheck_alcotest
