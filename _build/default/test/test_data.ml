(* Tests for Fp_data: the synthetic ami33 instance and the Table-1
   instance families. *)

module Netlist = Fp_netlist.Netlist
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Parser = Fp_netlist.Parser
module Ami33 = Fp_data.Ami33
module Instances = Fp_data.Instances

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let test_ami33_module_count () =
  let nl = Ami33.netlist () in
  Alcotest.(check int) "33 modules" 33 (Netlist.num_modules nl);
  Alcotest.(check int) "matches constant" Ami33.num_modules
    (Netlist.num_modules nl)

let test_ami33_total_area () =
  (* The paper: "the benchmark ami33 (total modules area is 11520)". *)
  checkf "total area 11520" 11520. (Netlist.total_area (Ami33.netlist ()))

let test_ami33_net_count () =
  let nl = Ami33.netlist () in
  Alcotest.(check int) "123 nets" 123 (Netlist.num_nets nl);
  Alcotest.(check int) "matches constant" Ami33.num_nets (Netlist.num_nets nl)

let test_ami33_mixed_shapes () =
  let nl = Ami33.netlist () in
  let flex =
    Array.fold_left
      (fun a m -> if Module_def.is_flexible m then a + 1 else a)
      0 (Netlist.modules nl)
  in
  Alcotest.(check int) "8 flexible" 8 flex

let test_ami33_validates () =
  Alcotest.(check bool) "validates" true
    (Netlist.validate (Ami33.netlist ()) = Ok ())

let test_ami33_deterministic () =
  Alcotest.(check string) "identical across calls"
    (Parser.to_string (Ami33.netlist ()))
    (Parser.to_string (Ami33.netlist ()))

let test_ami33_has_critical_nets () =
  let crit =
    List.filter (fun n -> n.Net.criticality > 0.) (Netlist.nets (Ami33.netlist ()))
  in
  Alcotest.(check bool) "some critical nets" true (List.length crit > 0)

let test_ami33_connectivity_locality () =
  (* Locality means connectivity-driven ordering has signal: the average
     connectivity of id-adjacent modules should exceed the average over
     all pairs. *)
  let nl = Ami33.netlist () in
  let k = Netlist.num_modules nl in
  let adjacent = ref 0. and all = ref 0. and pairs = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let c = float_of_int (Netlist.connectivity nl i j) in
      all := !all +. c;
      incr pairs;
      if j = i + 1 then adjacent := !adjacent +. c
    done
  done;
  let avg_adj = !adjacent /. float_of_int (k - 1)
  and avg_all = !all /. float_of_int !pairs in
  Alcotest.(check bool) "locality present" true (avg_adj > avg_all)

let test_table1_sizes () =
  Alcotest.(check (list int)) "paper's sizes" [ 15; 20; 25; 33 ]
    Instances.table1_sizes

let test_table1_instances () =
  List.iter
    (fun k ->
      let nl = Instances.table1_instance k in
      Alcotest.(check int) (Printf.sprintf "%d modules" k) k
        (Netlist.num_modules nl);
      Alcotest.(check bool) "validates" true (Netlist.validate nl = Ok ()))
    Instances.table1_sizes

let test_table1_unknown_size () =
  Alcotest.check_raises "no such row"
    (Invalid_argument "Instances.table1_instance: no Table-1 row with 17")
    (fun () -> ignore (Instances.table1_instance 17))

let test_table1_deterministic () =
  Alcotest.(check string) "same instance each call"
    (Parser.to_string (Instances.table1_instance 20))
    (Parser.to_string (Instances.table1_instance 20))

let test_random_family () =
  let fam = Instances.random_family ~sizes:[ 6; 9 ] ~seed:5 in
  Alcotest.(check (list int)) "sizes" [ 6; 9 ]
    (List.map Netlist.num_modules fam)

let () =
  Alcotest.run "fp_data"
    [
      ( "ami33",
        [
          Alcotest.test_case "module count" `Quick test_ami33_module_count;
          Alcotest.test_case "total area" `Quick test_ami33_total_area;
          Alcotest.test_case "net count" `Quick test_ami33_net_count;
          Alcotest.test_case "mixed shapes" `Quick test_ami33_mixed_shapes;
          Alcotest.test_case "validates" `Quick test_ami33_validates;
          Alcotest.test_case "deterministic" `Quick test_ami33_deterministic;
          Alcotest.test_case "critical nets" `Quick test_ami33_has_critical_nets;
          Alcotest.test_case "connectivity locality" `Quick
            test_ami33_connectivity_locality;
        ] );
      ( "instances",
        [
          Alcotest.test_case "sizes" `Quick test_table1_sizes;
          Alcotest.test_case "instances" `Quick test_table1_instances;
          Alcotest.test_case "unknown size" `Quick test_table1_unknown_size;
          Alcotest.test_case "deterministic" `Quick test_table1_deterministic;
          Alcotest.test_case "random family" `Quick test_random_family;
        ] );
    ]
