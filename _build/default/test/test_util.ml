(* Tests for Fp_util: the deterministic RNG, the stats helpers, and the
   binary heap. *)

module Rng = Fp_util.Rng
module Stats = Fp_util.Stats
module Heap = Fp_util.Heap

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool)
    "different seeds diverge" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "0 <= v < 3.5" true (v >= 0. && v < 3.5)
  done

let test_rng_int_coverage () =
  (* All residues of a small modulus should appear. *)
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  Alcotest.(check bool)
    "child differs from parent" false
    (Rng.next_int64 parent = Rng.next_int64 child)

let test_rng_copy () =
  let a = Rng.create 13 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy resumes identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

(* ------------------------------ Stats ------------------------------ *)

let test_mean () = checkf "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean []))

let test_stddev () =
  checkf "constant stddev" 0. (Stats.stddev [ 3.; 3.; 3. ]);
  checkf "population stddev of [0;2]" 1. (Stats.stddev [ 0.; 2. ]);
  checkf "singleton" 0. (Stats.stddev [ 42. ])

let test_linear_fit_exact () =
  let fit = Stats.linear_fit [ (1., 3.); (2., 5.); (3., 7.) ] in
  checkf "slope" 2. fit.Stats.slope;
  checkf "intercept" 1. fit.Stats.intercept;
  checkf "r2" 1. fit.Stats.r2

let test_linear_fit_flat () =
  let fit = Stats.linear_fit [ (1., 4.); (2., 4.); (3., 4.) ] in
  checkf "flat slope" 0. fit.Stats.slope;
  checkf "flat r2" 1. fit.Stats.r2

let test_linear_fit_degenerate () =
  Alcotest.check_raises "same x"
    (Invalid_argument "Stats.linear_fit: degenerate x values") (fun () ->
      ignore (Stats.linear_fit [ (1., 1.); (1., 2.) ]))

(* ------------------------------ Heap ------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5.; 1.; 4.; 2.; 3. ];
  let order = List.init 5 (fun _ -> Option.get (Heap.pop h) |> snd) in
  check Alcotest.(list (float 0.)) "pops ascending" [ 1.; 2.; 3.; 4.; 5. ] order

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_duplicates () =
  let h = Heap.create () in
  Heap.push h 1. "a";
  Heap.push h 1. "b";
  Heap.push h 0. "c";
  Alcotest.(check string) "min first" "c" (snd (Option.get (Heap.pop h)));
  Alcotest.(check int) "two left" 2 (Heap.size h)

let test_heap_random_sorts =
  QCheck.Test.make ~name:"heap sorts any float list" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun floats ->
      let h = Heap.create () in
      List.iter (fun f -> Heap.push h f f) floats;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare floats)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 3. 3;
  Heap.push h 1. 1;
  Alcotest.(check int) "pop 1" 1 (snd (Option.get (Heap.pop h)));
  Heap.push h 0. 0;
  Heap.push h 2. 2;
  Alcotest.(check int) "pop 0" 0 (snd (Option.get (Heap.pop h)));
  Alcotest.(check int) "pop 2" 2 (snd (Option.get (Heap.pop h)));
  Alcotest.(check int) "pop 3" 3 (snd (Option.get (Heap.pop h)))

let () =
  Alcotest.run "fp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int coverage" `Quick test_rng_int_coverage;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
          Alcotest.test_case "linear fit flat" `Quick test_linear_fit_flat;
          Alcotest.test_case "linear fit degenerate" `Quick
            test_linear_fit_degenerate;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          QCheck_alcotest.to_alcotest test_heap_random_sorts;
        ] );
    ]
