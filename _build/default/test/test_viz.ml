(* Tests for Fp_viz: ASCII and SVG renderers. *)

module Rect = Fp_geometry.Rect
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Placement = Fp_core.Placement
module Ascii = Fp_viz.Ascii
module Svg = Fp_viz.Svg

let rect x y w h = Rect.make ~x ~y ~w ~h

let placed id r =
  { Placement.module_id = id; rect = r; envelope = r; rotated = false }

let sample_placement () =
  Placement.empty ~chip_width:10.
  |> Fun.flip Placement.add (placed 0 (rect 0. 0. 5. 4.))
  |> Fun.flip Placement.add (placed 7 (rect 5. 0. 5. 4.))

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_ascii_renders () =
  let s = Ascii.render ~cols:40 (sample_placement ()) in
  Alcotest.(check bool) "has border" true (contains "+---" s);
  Alcotest.(check bool) "labels module 00" true (contains "00" s);
  Alcotest.(check bool) "labels module 07" true (contains "07" s);
  Alcotest.(check bool) "multi-line" true
    (List.length (String.split_on_char '\n' s) > 3)

let test_ascii_empty () =
  let s = Ascii.render (Placement.empty ~chip_width:10.) in
  Alcotest.(check bool) "graceful on empty" true (String.length s > 0)

let test_ascii_envelope_dots () =
  let p =
    { Placement.module_id = 0; rect = rect 2. 2. 4. 4.;
      envelope = rect 0. 0. 8. 8.; rotated = false }
  in
  let pl = Placement.add (Placement.empty ~chip_width:8.) p in
  let s = Ascii.render ~cols:32 pl in
  Alcotest.(check bool) "envelope shown as dots" true (contains "." s)

let test_ascii_title () =
  let s = Ascii.render_with_title ~title:"Figure 5" (sample_placement ()) in
  Alcotest.(check bool) "title present" true (contains "Figure 5" s)

let test_svg_well_formed () =
  let s = Svg.of_placement (sample_placement ()) in
  Alcotest.(check bool) "opens svg" true (contains "<svg" s);
  Alcotest.(check bool) "closes svg" true (contains "</svg>" s);
  Alcotest.(check bool) "has rects" true (contains "<rect" s);
  Alcotest.(check bool) "has labels" true (contains "<text" s)

let test_svg_with_netlist_names () =
  let mods =
    [ Module_def.rigid ~id:0 ~name:"alu" ~w:5. ~h:4.;
      Module_def.rigid ~id:1 ~name:"fpu" ~w:5. ~h:4. ]
  in
  let nl = Netlist.create ~name:"named" mods [] in
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 5. 4.))
    |> Fun.flip Placement.add (placed 1 (rect 5. 0. 5. 4.))
  in
  let s = Svg.of_placement ~netlist:nl pl in
  Alcotest.(check bool) "names rendered" true
    (contains ">alu<" s && contains ">fpu<" s)

let test_svg_routed_overlay () =
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:4.;
      Module_def.rigid ~id:1 ~name:"b" ~w:4. ~h:4. ]
  in
  let nets =
    [ Net.make ~name:"n"
        [ { Net.module_id = 0; side = Net.Right };
          { Net.module_id = 1; side = Net.Left } ] ]
  in
  let nl = Netlist.create ~name:"two" mods nets in
  let pl =
    Placement.empty ~chip_width:12.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 4.))
    |> Fun.flip Placement.add (placed 1 (rect 8. 0. 4. 4.))
  in
  let rt = Fp_route.Global_router.route nl pl in
  let s = Svg.of_routed ~netlist:nl pl rt in
  Alcotest.(check bool) "has route lines" true (contains "<line" s)

let test_svg_save () =
  let path = Filename.temp_file "fp_viz" ".svg" in
  Svg.save path (Svg.of_placement (sample_placement ()));
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check bool) "saved" true (contains "<svg" content)

let () =
  Alcotest.run "fp_viz"
    [
      ( "ascii",
        [
          Alcotest.test_case "renders" `Quick test_ascii_renders;
          Alcotest.test_case "empty" `Quick test_ascii_empty;
          Alcotest.test_case "envelope dots" `Quick test_ascii_envelope_dots;
          Alcotest.test_case "title" `Quick test_ascii_title;
        ] );
      ( "svg",
        [
          Alcotest.test_case "well formed" `Quick test_svg_well_formed;
          Alcotest.test_case "netlist names" `Quick test_svg_with_netlist_names;
          Alcotest.test_case "routed overlay" `Quick test_svg_routed_overlay;
          Alcotest.test_case "save" `Quick test_svg_save;
        ] );
    ]
