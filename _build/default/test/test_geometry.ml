(* Tests for Fp_geometry: intervals, rectangles, skylines, and the
   covering-rectangle decomposition (Theorems 1 and 2 of the paper). *)

module Tol = Fp_geometry.Tol
module Point = Fp_geometry.Point
module Interval = Fp_geometry.Interval
module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg
let checkb msg = Alcotest.(check bool) msg
let rect x y w h = Rect.make ~x ~y ~w ~h

(* ----------------------------- Interval ---------------------------- *)

let test_interval_basic () =
  let i = Interval.make 1. 4. in
  checkf "length" 3. (Interval.length i);
  checkf "mid" 2.5 (Interval.mid i);
  checkb "contains endpoint" true (Interval.contains i 4.);
  checkb "not contains" false (Interval.contains i 4.5)

let test_interval_invalid () =
  Alcotest.check_raises "reversed"
    (Invalid_argument "Interval.make: hi (1) < lo (2)") (fun () ->
      ignore (Interval.make 2. 1.))

let test_interval_overlap_vs_touch () =
  let a = Interval.make 0. 2. and b = Interval.make 2. 4. in
  checkb "abutting intervals do not overlap" false (Interval.overlaps a b);
  checkb "abutting intervals touch" true (Interval.touches a b);
  let c = Interval.make 1. 3. in
  checkb "proper overlap" true (Interval.overlaps a c)

let test_interval_intersect_hull () =
  let a = Interval.make 0. 3. and b = Interval.make 2. 5. in
  (match Interval.intersect a b with
  | Some i ->
    checkf "intersect lo" 2. i.Interval.lo;
    checkf "intersect hi" 3. i.Interval.hi
  | None -> Alcotest.fail "expected intersection");
  let h = Interval.hull a b in
  checkf "hull lo" 0. h.Interval.lo;
  checkf "hull hi" 5. h.Interval.hi;
  checkb "disjoint intersect" true
    (Interval.intersect (Interval.make 0. 1.) (Interval.make 2. 3.) = None)

(* ------------------------------ Rect ------------------------------- *)

let test_rect_basic () =
  let r = rect 1. 2. 3. 4. in
  checkf "area" 12. (Rect.area r);
  checkf "x_max" 4. (Rect.x_max r);
  checkf "y_max" 6. (Rect.y_max r);
  let c = Rect.center r in
  checkf "cx" 2.5 c.Point.x;
  checkf "cy" 4. c.Point.y

let test_rect_negative () =
  Alcotest.check_raises "negative width"
    (Invalid_argument "Rect.make: negative extent w=-1 h=2") (fun () ->
      ignore (rect 0. 0. (-1.) 2.))

let test_rect_overlap () =
  let a = rect 0. 0. 2. 2. and b = rect 2. 0. 2. 2. in
  checkb "abutting rects do not overlap" false (Rect.overlaps a b);
  checkb "shifted overlap" true (Rect.overlaps a (rect 1. 1. 2. 2.));
  checkf "overlap area" 1. (Rect.overlap_area a (rect 1. 1. 2. 2.));
  checkf "no overlap area" 0. (Rect.overlap_area a b)

let test_rect_rotate () =
  let r = Rect.rotate90 (rect 1. 1. 4. 2.) in
  checkf "rotated w" 2. r.Rect.w;
  checkf "rotated h" 4. r.Rect.h;
  checkf "anchor x" 1. r.Rect.x

let test_rect_inflate () =
  let r = Rect.inflate ~left:1. ~right:2. ~bottom:3. ~top:4. (rect 5. 5. 2. 2.) in
  checkf "x" 4. r.Rect.x;
  checkf "y" 2. r.Rect.y;
  checkf "w" 5. r.Rect.w;
  checkf "h" 9. r.Rect.h

let test_rect_contains () =
  let outer = rect 0. 0. 10. 10. in
  checkb "inside" true (Rect.contains_rect ~outer ~inner:(rect 1. 1. 2. 2.));
  checkb "same" true (Rect.contains_rect ~outer ~inner:outer);
  checkb "outside" false (Rect.contains_rect ~outer ~inner:(rect 9. 9. 2. 2.))

let test_rect_union_area_disjoint () =
  checkf "disjoint union" 8.
    (Rect.union_area [ rect 0. 0. 2. 2.; rect 5. 5. 2. 2. ])

let test_rect_union_area_nested () =
  checkf "nested union" 100.
    (Rect.union_area [ rect 0. 0. 10. 10.; rect 2. 2. 3. 3. ])

let test_rect_union_area_overlap () =
  (* Two 2x2 squares overlapping in a 1x1 corner: 4 + 4 - 1. *)
  checkf "overlapping union" 7.
    (Rect.union_area [ rect 0. 0. 2. 2.; rect 1. 1. 2. 2. ])

let test_rect_side_midpoints () =
  let r = rect 0. 0. 4. 2. in
  checkb "left" true
    (Point.equal (Rect.side_midpoint r `Left) (Point.make 0. 1.));
  checkb "right" true
    (Point.equal (Rect.side_midpoint r `Right) (Point.make 4. 1.));
  checkb "bottom" true
    (Point.equal (Rect.side_midpoint r `Bottom) (Point.make 2. 0.));
  checkb "top" true
    (Point.equal (Rect.side_midpoint r `Top) (Point.make 2. 2.))

let test_bounding_box () =
  match Rect.bounding_box [ rect 1. 1. 2. 2.; rect 4. 0. 1. 5. ] with
  | Some bb ->
    checkf "bb x" 1. bb.Rect.x;
    checkf "bb y" 0. bb.Rect.y;
    checkf "bb w" 4. bb.Rect.w;
    checkf "bb h" 5. bb.Rect.h
  | None -> Alcotest.fail "expected bounding box"

(* A generator of small positive rectangles on an integer-ish grid. *)
let rect_gen =
  QCheck.Gen.(
    map
      (fun (x, y, w, h) ->
        rect (float_of_int x) (float_of_int y)
          (float_of_int (w + 1))
          (float_of_int (h + 1)))
      (quad (int_bound 20) (int_bound 20) (int_bound 8) (int_bound 8)))

let rects_arb = QCheck.make QCheck.Gen.(list_size (int_range 1 10) rect_gen)

let test_union_area_le_sum =
  QCheck.Test.make ~name:"union area <= sum of areas" ~count:300 rects_arb
    (fun rs ->
      Rect.union_area rs
      <= List.fold_left (fun a r -> a +. Rect.area r) 0. rs +. 1e-6)

let test_union_area_ge_max =
  QCheck.Test.make ~name:"union area >= max area" ~count:300 rects_arb
    (fun rs ->
      Rect.union_area rs
      >= List.fold_left (fun a r -> Float.max a (Rect.area r)) 0. rs -. 1e-6)

(* ----------------------------- Skyline ----------------------------- *)

let test_skyline_flat () =
  let s = Skyline.create ~width:10. in
  checkf "max" 0. (Skyline.max_height s);
  checkf "area" 0. (Skyline.area_under s);
  Alcotest.(check int) "one segment" 1 (List.length (Skyline.segments s))

let test_skyline_add () =
  let s = Skyline.create ~width:10. in
  let s = Skyline.add_rect s (rect 2. 0. 3. 4.) in
  checkf "max" 4. (Skyline.max_height s);
  checkf "height over rect" 4. (Skyline.height_over s ~x0:2. ~x1:5.);
  checkf "height outside" 0. (Skyline.height_over s ~x0:6. ~x1:8.);
  checkf "area" 12. (Skyline.area_under s);
  Alcotest.(check int) "three segments" 3 (List.length (Skyline.segments s))

let test_skyline_merge_equal_heights () =
  let s =
    Skyline.create ~width:10.
    |> Fun.flip Skyline.add_rect (rect 0. 0. 5. 3.)
    |> Fun.flip Skyline.add_rect (rect 5. 0. 5. 3.)
  in
  Alcotest.(check int) "merged into one segment" 1
    (List.length (Skyline.segments s))

let test_skyline_ignores_holes () =
  (* A floating rect raises the profile all the way down (holes at the
     bottom are ignored, paper section 3.1). *)
  let s = Skyline.add_rect (Skyline.create ~width:10.) (rect 0. 5. 4. 2.) in
  checkf "profile under floater" 7. (Skyline.height_over s ~x0:0. ~x1:4.);
  checkf "area counts the hole" 28. (Skyline.area_under s)

let test_skyline_lower_rect_no_effect () =
  let s =
    Skyline.create ~width:10.
    |> Fun.flip Skyline.add_rect (rect 0. 0. 4. 6.)
    |> Fun.flip Skyline.add_rect (rect 1. 0. 2. 3.)
  in
  checkf "still 6" 6. (Skyline.max_height s);
  Alcotest.(check int) "two segments" 2 (List.length (Skyline.segments s))

let test_skyline_best_position_pocket () =
  (* Towers at both ends; a width-4 pocket in the middle at height 0. *)
  let s =
    Skyline.create ~width:10.
    |> Fun.flip Skyline.add_rect (rect 0. 0. 3. 5.)
    |> Fun.flip Skyline.add_rect (rect 7. 0. 3. 5.)
  in
  match Skyline.best_position s ~w:4. with
  | Some (x, y) ->
    checkf "pocket x" 3. x;
    checkf "pocket y" 0. y
  | None -> Alcotest.fail "expected a position"

let test_skyline_best_position_too_wide () =
  let s = Skyline.create ~width:5. in
  checkb "too wide" true (Skyline.best_position s ~w:6. = None)

let test_skyline_best_position_leftmost_tie () =
  let s = Skyline.create ~width:10. in
  match Skyline.best_position s ~w:2. with
  | Some (x, y) ->
    checkf "leftmost" 0. x;
    checkf "floor" 0. y
  | None -> Alcotest.fail "expected a position"

let skyline_of_list rs = Skyline.of_rects ~width:30. rs

let grounded_rects_arb =
  (* Rectangles stacked from the floor like successive augmentation
     produces: each placed at the skyline height over its x-span. *)
  QCheck.make
    QCheck.Gen.(
      map
        (fun specs ->
          List.fold_left
            (fun (sky, acc) (x, w, h) ->
              let xf = float_of_int (x mod 22)
              and wf = float_of_int ((w mod 8) + 1)
              and hf = float_of_int ((h mod 6) + 1) in
              let y = Skyline.height_over sky ~x0:xf ~x1:(xf +. wf) in
              let r = rect xf y wf hf in
              (Skyline.add_rect sky r, r :: acc))
            (Skyline.create ~width:30., [])
            specs
          |> snd)
        (list_size (int_range 1 12) (triple nat nat nat)))

let test_skyline_area_bounds_for_grounded =
  (* The profile area dominates the union (overhang holes count toward
     the profile) and is itself dominated by the bounding slab. *)
  QCheck.Test.make ~name:"grounded stacks: union <= skyline area <= W*H"
    ~count:300 grounded_rects_arb (fun rs ->
      let sky = skyline_of_list rs in
      let a = Skyline.area_under sky in
      a >= Rect.union_area rs -. 1e-6
      && a <= (30. *. Skyline.max_height sky) +. 1e-6)

(* ----------------------------- Covering ---------------------------- *)

let test_covering_single () =
  let cover = Covering.of_rects ~width:10. [ rect 0. 0. 4. 3. ] in
  Alcotest.(check int) "one rect" 1 (List.length cover);
  checkf "same area" 12.
    (List.fold_left (fun a r -> a +. Rect.area r) 0. cover)

let test_covering_staircase () =
  (* Figure-4-like staircase: three steps. *)
  let placed =
    [ rect 0. 0. 3. 6.; rect 3. 0. 3. 4.; rect 6. 0. 4. 2. ]
  in
  let cover = Covering.of_rects ~width:10. placed in
  Alcotest.(check bool) "at most 3 covering rects" true
    (List.length cover <= 3);
  checkf "areas match" 38.
    (List.fold_left (fun a r -> a +. Rect.area r) 0. cover)

let test_covering_empty_profile () =
  Alcotest.(check int) "flat floor -> no rects" 0
    (List.length (Covering.of_rects ~width:10. []))

(* Theorem 2 + corollary: the number of covering rectangles never exceeds
   the number of modules forming the partial floorplan. *)
let test_covering_theorem2 =
  QCheck.Test.make ~name:"covering count <= module count (Thm 2)" ~count:500
    grounded_rects_arb (fun rs ->
      let sky = skyline_of_list rs in
      List.length (Covering.of_skyline sky) <= List.length rs)

let test_covering_exact_tiling =
  QCheck.Test.make ~name:"covering tiles the region under the skyline"
    ~count:300 grounded_rects_arb (fun rs ->
      let sky = skyline_of_list rs in
      let cover = Covering.of_skyline sky in
      let sum = List.fold_left (fun a r -> a +. Rect.area r) 0. cover in
      let union = Rect.union_area cover in
      (* Non-overlapping (sum = union) and covering exactly the profile
         area. *)
      Float.abs (sum -. union) < 1e-6
      && Float.abs (sum -. Skyline.area_under sky) < 1e-6)

let test_covering_no_overlap =
  QCheck.Test.make ~name:"covering rectangles are pairwise disjoint"
    ~count:300 grounded_rects_arb (fun rs ->
      let cover = Covering.of_skyline (skyline_of_list rs) in
      let arr = Array.of_list cover in
      let ok = ref true in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          if Rect.overlaps arr.(i) arr.(j) then ok := false
        done
      done;
      !ok)

let test_coarsen_bound () =
  let cover =
    Covering.of_rects ~width:20.
      [ rect 0. 0. 2. 9.; rect 2. 0. 2. 7.; rect 4. 0. 2. 5.;
        rect 6. 0. 2. 3.; rect 8. 0. 2. 1. ]
  in
  let coarse = Covering.coarsen ~max_count:2 cover in
  Alcotest.(check bool) "at most 2" true (List.length coarse <= 2)

let test_coarsen_still_covers =
  QCheck.Test.make ~name:"coarsened covering still covers the profile"
    ~count:200 grounded_rects_arb (fun rs ->
      let sky = skyline_of_list rs in
      let cover = Covering.of_skyline sky in
      let coarse = Covering.coarsen ~max_count:3 cover in
      (* Every original covering rect lies inside the union of the
         coarsened rects; test via area of union. *)
      Rect.union_area (coarse @ cover) -. Rect.union_area coarse < 1e-6)

let test_coarsen_invalid () =
  Alcotest.check_raises "max_count 0"
    (Invalid_argument "Covering.coarsen: max_count < 1") (fun () ->
      ignore (Covering.coarsen ~max_count:0 []))

let () =
  Alcotest.run "fp_geometry"
    [
      ( "interval",
        [
          Alcotest.test_case "basic" `Quick test_interval_basic;
          Alcotest.test_case "invalid" `Quick test_interval_invalid;
          Alcotest.test_case "overlap vs touch" `Quick
            test_interval_overlap_vs_touch;
          Alcotest.test_case "intersect/hull" `Quick test_interval_intersect_hull;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basic" `Quick test_rect_basic;
          Alcotest.test_case "negative" `Quick test_rect_negative;
          Alcotest.test_case "overlap" `Quick test_rect_overlap;
          Alcotest.test_case "rotate" `Quick test_rect_rotate;
          Alcotest.test_case "inflate" `Quick test_rect_inflate;
          Alcotest.test_case "contains" `Quick test_rect_contains;
          Alcotest.test_case "union area disjoint" `Quick
            test_rect_union_area_disjoint;
          Alcotest.test_case "union area nested" `Quick
            test_rect_union_area_nested;
          Alcotest.test_case "union area overlap" `Quick
            test_rect_union_area_overlap;
          Alcotest.test_case "side midpoints" `Quick test_rect_side_midpoints;
          Alcotest.test_case "bounding box" `Quick test_bounding_box;
          QCheck_alcotest.to_alcotest test_union_area_le_sum;
          QCheck_alcotest.to_alcotest test_union_area_ge_max;
        ] );
      ( "skyline",
        [
          Alcotest.test_case "flat" `Quick test_skyline_flat;
          Alcotest.test_case "add rect" `Quick test_skyline_add;
          Alcotest.test_case "merge equal heights" `Quick
            test_skyline_merge_equal_heights;
          Alcotest.test_case "ignores holes" `Quick test_skyline_ignores_holes;
          Alcotest.test_case "lower rect no effect" `Quick
            test_skyline_lower_rect_no_effect;
          Alcotest.test_case "pocket position" `Quick
            test_skyline_best_position_pocket;
          Alcotest.test_case "too wide" `Quick test_skyline_best_position_too_wide;
          Alcotest.test_case "leftmost tie" `Quick
            test_skyline_best_position_leftmost_tie;
          QCheck_alcotest.to_alcotest test_skyline_area_bounds_for_grounded;
        ] );
      ( "covering",
        [
          Alcotest.test_case "single" `Quick test_covering_single;
          Alcotest.test_case "staircase" `Quick test_covering_staircase;
          Alcotest.test_case "empty profile" `Quick test_covering_empty_profile;
          Alcotest.test_case "coarsen bound" `Quick test_coarsen_bound;
          Alcotest.test_case "coarsen invalid" `Quick test_coarsen_invalid;
          QCheck_alcotest.to_alcotest test_covering_theorem2;
          QCheck_alcotest.to_alcotest test_covering_exact_tiling;
          QCheck_alcotest.to_alcotest test_covering_no_overlap;
          QCheck_alcotest.to_alcotest test_coarsen_still_covers;
        ] );
    ]
