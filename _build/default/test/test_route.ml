(* Tests for Fp_route: the channel-position graph, the global router
   (shortest-path and weighted), and channel-width adjustment. *)

module Rect = Fp_geometry.Rect
module Point = Fp_geometry.Point
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Placement = Fp_core.Placement
module CG = Fp_route.Channel_graph
module GR = Fp_route.Global_router
module Adjust = Fp_route.Adjust

let checkf msg = Alcotest.check (Alcotest.float 1e-5) msg
let rect x y w h = Rect.make ~x ~y ~w ~h

let placed id r =
  { Placement.module_id = id; rect = r; envelope = r; rotated = false }

(* Two modules side by side with a gap between them. *)
let two_block_world () =
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:4.;
      Module_def.rigid ~id:1 ~name:"b" ~w:4. ~h:4. ]
  in
  let nets =
    [ Net.make ~name:"n0"
        [ { Net.module_id = 0; side = Net.Right };
          { Net.module_id = 1; side = Net.Left } ] ]
  in
  let nl = Netlist.create ~name:"two" mods nets in
  let pl =
    Placement.empty ~chip_width:12.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 4.))
    |> Fun.flip Placement.add (placed 1 (rect 8. 0. 4. 4.))
  in
  (nl, pl)

(* ---------------------------- channel graph ------------------------- *)

let test_graph_builds () =
  let _, pl = two_block_world () in
  let g = CG.build pl in
  Alcotest.(check bool) "nodes exist" true (CG.num_nodes g > 4);
  Alcotest.(check bool) "edges exist" true (CG.num_edges g > 4)

let test_graph_no_nodes_inside_modules () =
  let _, pl = two_block_world () in
  let g = CG.build pl in
  let inside (p : Point.t) =
    List.exists
      (fun (r : Rect.t) ->
        p.Point.x > r.Rect.x +. 1e-6
        && p.Point.x < Rect.x_max r -. 1e-6
        && p.Point.y > r.Rect.y +. 1e-6
        && p.Point.y < Rect.y_max r -. 1e-6)
      (Placement.rects pl)
  in
  for n = 0 to CG.num_nodes g - 1 do
    Alcotest.(check bool) "node outside module interiors" false
      (inside (CG.node_pos g n))
  done

let test_graph_no_edges_through_modules () =
  let _, pl = two_block_world () in
  let g = CG.build pl in
  Array.iter
    (fun (e : CG.edge) ->
      let a = CG.node_pos g e.CG.a and b = CG.node_pos g e.CG.b in
      let mid =
        Point.make (0.5 *. (a.Point.x +. b.Point.x))
          (0.5 *. (a.Point.y +. b.Point.y))
      in
      let blocked =
        List.exists
          (fun (r : Rect.t) ->
            mid.Point.x > r.Rect.x +. 1e-6
            && mid.Point.x < Rect.x_max r -. 1e-6
            && mid.Point.y > r.Rect.y +. 1e-6
            && mid.Point.y < Rect.y_max r -. 1e-6)
          (Placement.rects pl)
      in
      Alcotest.(check bool) "edge avoids silicon" false blocked)
    (CG.edges g)

let test_graph_capacity_positive_in_gap () =
  let _, pl = two_block_world () in
  let g = CG.build pl in
  (* The vertical grid line at x=6 runs through the 4-wide gap; its edges
     should have capacity ~4. *)
  let found = ref false in
  Array.iter
    (fun (e : CG.edge) ->
      if e.CG.orient = CG.V then begin
        let a = CG.node_pos g e.CG.a in
        if Float.abs (a.Point.x -. 4.) < 1e-6 then begin
          found := true;
          Alcotest.(check bool) "gap capacity >= 4" true (e.CG.capacity >= 4.)
        end
      end)
    (CG.edges g);
  Alcotest.(check bool) "saw gap edges" true !found

let test_pin_node_on_correct_side () =
  let _, pl = two_block_world () in
  let g = CG.build pl in
  let p0 = Option.get (Placement.find pl 0) in
  let n = CG.pin_node g p0 Net.Right in
  let pos = CG.node_pos g n in
  checkf "on right edge" 4. pos.Point.x;
  Alcotest.(check bool) "within side extent" true
    (pos.Point.y >= -1e-6 && pos.Point.y <= 4. +. 1e-6)

(* ------------------------------ router ------------------------------ *)

let test_route_simple_net () =
  let nl, pl = two_block_world () in
  let rt = GR.route nl pl in
  Alcotest.(check int) "no failures" 0 rt.GR.num_failed;
  Alcotest.(check int) "one net routed" 1 (List.length rt.GR.routed);
  (* Shortest route from (4, y) to (8, y'): at least the 4-wide gap. *)
  Alcotest.(check bool) "wirelength sane" true
    (rt.GR.total_wirelength >= 4. -. 1e-6 && rt.GR.total_wirelength <= 16.)

let test_route_usage_accounting () =
  let nl, pl = two_block_world () in
  let rt = GR.route nl pl in
  let used = Array.fold_left (fun a u -> a +. u) 0. rt.GR.usage in
  let edges_in_routes =
    List.fold_left (fun a r -> a + List.length r.GR.edges) 0 rt.GR.routed
  in
  checkf "usage = edges used" (float_of_int edges_in_routes) used

let test_route_multipin_tree () =
  (* Three modules, one 3-pin net: the route must form one connected tree
     touching all three pins. *)
  let mods =
    List.init 3 (fun i ->
        Module_def.rigid ~id:i ~name:(Printf.sprintf "m%d" i) ~w:2. ~h:2.)
  in
  let nets =
    [ Net.make ~name:"n"
        [ { Net.module_id = 0; side = Net.Top };
          { Net.module_id = 1; side = Net.Top };
          { Net.module_id = 2; side = Net.Top } ] ]
  in
  let nl = Netlist.create ~name:"three" mods nets in
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 2. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 4. 0. 2. 2.))
    |> Fun.flip Placement.add (placed 2 (rect 8. 0. 2. 2.))
  in
  let rt = GR.route nl pl in
  Alcotest.(check int) "routed" 1 (List.length rt.GR.routed);
  Alcotest.(check int) "no failures" 0 rt.GR.num_failed;
  (* Spanning 0..10 near the top edge costs at least ~8 (pin to pin). *)
  Alcotest.(check bool) "tree length sane" true (rt.GR.total_wirelength >= 8. -. 1e-6)

let congested_world () =
  (* A narrow 1-unit canyon between two tall modules, and many nets that
     want to cross it vertically. *)
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:5. ~h:8.;
      Module_def.rigid ~id:1 ~name:"b" ~w:5. ~h:8.;
      Module_def.rigid ~id:2 ~name:"s" ~w:2. ~h:1.;
      Module_def.rigid ~id:3 ~name:"t" ~w:2. ~h:1. ]
  in
  let nets =
    List.init 6 (fun i ->
        Net.make ~name:(Printf.sprintf "n%d" i)
          [ { Net.module_id = 2; side = Net.Top };
            { Net.module_id = 3; side = Net.Bottom } ])
  in
  let nl = Netlist.create ~name:"canyon" mods nets in
  let pl =
    Placement.empty ~chip_width:11.
    |> Fun.flip Placement.add (placed 0 (rect 0. 1. 5. 8.))
    |> Fun.flip Placement.add (placed 1 (rect 6. 1. 5. 8.))
    |> Fun.flip Placement.add (placed 2 (rect 3. 0. 2. 1.))
    |> Fun.flip Placement.add (placed 3 (rect 3. 9. 2. 1.))
  in
  (nl, pl)

let test_weighted_spreads_load () =
  let nl, pl = congested_world () in
  let plain = GR.route ~algorithm:GR.Shortest_path nl pl in
  let weighted =
    GR.route ~algorithm:(GR.Weighted { penalty = 5. }) nl pl
  in
  Alcotest.(check int) "plain no failures" 0 plain.GR.num_failed;
  Alcotest.(check int) "weighted no failures" 0 weighted.GR.num_failed;
  (* The weighted router may pay wirelength to avoid overflow; it should
     never overflow more than the oblivious one. *)
  Alcotest.(check bool) "weighted overflow <= plain overflow" true
    (weighted.GR.max_overflow <= plain.GR.max_overflow +. 1e-6)

let test_critical_nets_first () =
  (* One critical and one ordinary net competing for the same channel:
     the critical one is routed first regardless of name order. *)
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:2. ~h:2.;
      Module_def.rigid ~id:1 ~name:"b" ~w:2. ~h:2. ]
  in
  let nets =
    [ Net.make ~name:"a_plain"
        [ { Net.module_id = 0; side = Net.Right };
          { Net.module_id = 1; side = Net.Left } ];
      Net.make ~name:"z_critical" ~criticality:0.9
        [ { Net.module_id = 0; side = Net.Right };
          { Net.module_id = 1; side = Net.Left } ] ]
  in
  let nl = Netlist.create ~name:"crit" mods nets in
  let pl =
    Placement.empty ~chip_width:8.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 2. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 6. 0. 2. 2.))
  in
  let rt = GR.route nl pl in
  match rt.GR.routed with
  | first :: _ ->
    Alcotest.(check string) "critical routed first" "z_critical"
      first.GR.net.Net.name
  | [] -> Alcotest.fail "nothing routed"

let test_route_empty_netlist () =
  let mods = [ Module_def.rigid ~id:0 ~name:"a" ~w:2. ~h:2. ] in
  let nl = Netlist.create ~name:"lonely" mods [] in
  let pl = Placement.add (Placement.empty ~chip_width:4.)
      (placed 0 (rect 0. 0. 2. 2.)) in
  let rt = GR.route nl pl in
  checkf "no wire" 0. rt.GR.total_wirelength;
  Alcotest.(check int) "no routes" 0 (List.length rt.GR.routed)

let test_route_deterministic () =
  let nl, pl = congested_world () in
  let a = GR.route ~algorithm:(GR.Weighted { penalty = 2. }) nl pl in
  let b = GR.route ~algorithm:(GR.Weighted { penalty = 2. }) nl pl in
  checkf "same wirelength" a.GR.total_wirelength b.GR.total_wirelength;
  checkf "same overflow" a.GR.overflow_total b.GR.overflow_total

(* ------------------------------ adjust ------------------------------ *)

let test_adjust_no_overflow_no_growth () =
  let nl, pl = two_block_world () in
  let rt = GR.route nl pl in
  let rep = Adjust.compute rt ~pitch_h:1. ~pitch_v:1. in
  checkf "no extra width" 0. rep.Adjust.extra_width;
  checkf "no extra height" 0. rep.Adjust.extra_height;
  checkf "area = base area" (rep.Adjust.base_width *. rep.Adjust.base_height)
    rep.Adjust.final_area

let test_adjust_congestion_grows_chip () =
  let nl, pl = congested_world () in
  let rt = GR.route ~algorithm:GR.Shortest_path ~pitch_v:1. ~pitch_h:1. nl pl in
  let rep = Adjust.compute rt ~pitch_h:1. ~pitch_v:1. in
  (* Six wires through a 1-wide canyon must force the chip to grow. *)
  Alcotest.(check bool) "chip grew" true
    (rep.Adjust.final_area > (rep.Adjust.base_width *. rep.Adjust.base_height) +. 1e-6)

let test_adjust_dimensions_consistent () =
  let nl, pl = congested_world () in
  let rt = GR.route nl pl in
  let rep = Adjust.compute rt ~pitch_h:1. ~pitch_v:1. in
  checkf "final w" (rep.Adjust.base_width +. rep.Adjust.extra_width)
    rep.Adjust.final_width;
  checkf "final h" (rep.Adjust.base_height +. rep.Adjust.extra_height)
    rep.Adjust.final_height;
  checkf "area" (rep.Adjust.final_width *. rep.Adjust.final_height)
    rep.Adjust.final_area

let () =
  Alcotest.run "fp_route"
    [
      ( "channel_graph",
        [
          Alcotest.test_case "builds" `Quick test_graph_builds;
          Alcotest.test_case "no nodes inside modules" `Quick
            test_graph_no_nodes_inside_modules;
          Alcotest.test_case "no edges through modules" `Quick
            test_graph_no_edges_through_modules;
          Alcotest.test_case "gap capacity" `Quick
            test_graph_capacity_positive_in_gap;
          Alcotest.test_case "pin node" `Quick test_pin_node_on_correct_side;
        ] );
      ( "router",
        [
          Alcotest.test_case "simple net" `Quick test_route_simple_net;
          Alcotest.test_case "usage accounting" `Quick test_route_usage_accounting;
          Alcotest.test_case "multipin tree" `Quick test_route_multipin_tree;
          Alcotest.test_case "weighted spreads load" `Quick
            test_weighted_spreads_load;
          Alcotest.test_case "critical first" `Quick test_critical_nets_first;
          Alcotest.test_case "empty netlist" `Quick test_route_empty_netlist;
          Alcotest.test_case "deterministic" `Quick test_route_deterministic;
        ] );
      ( "adjust",
        [
          Alcotest.test_case "no overflow no growth" `Quick
            test_adjust_no_overflow_no_growth;
          Alcotest.test_case "congestion grows chip" `Quick
            test_adjust_congestion_grows_chip;
          Alcotest.test_case "dimensions consistent" `Quick
            test_adjust_dimensions_consistent;
        ] );
    ]
