(* Tests for Fp_netlist: module definitions, nets, instances, the
   connectivity-based linear ordering, the parser, and the generator. *)

module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Ordering = Fp_netlist.Ordering
module Parser = Fp_netlist.Parser
module Generator = Fp_netlist.Generator

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let mk_simple () =
  (* Chain connectivity: 0-1 heavy (two nets), 1-2 light, 3 isolated-ish. *)
  let mods =
    [
      Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:2.;
      Module_def.rigid ~id:1 ~name:"b" ~w:3. ~h:3.;
      Module_def.flexible ~id:2 ~name:"c" ~area:6. ~min_aspect:0.5
        ~max_aspect:2.;
      Module_def.rigid ~id:3 ~name:"d" ~w:1. ~h:1.;
    ]
  in
  let pin m s = { Net.module_id = m; side = s } in
  let nets =
    [
      Net.make ~name:"n0" [ pin 0 Net.Right; pin 1 Net.Left ];
      Net.make ~name:"n1" [ pin 0 Net.Top; pin 1 Net.Bottom ];
      Net.make ~name:"n2" ~criticality:0.9 [ pin 1 Net.Right; pin 2 Net.Left ];
      Net.make ~name:"n3" [ pin 2 Net.Top; pin 3 Net.Top ];
    ]
  in
  Netlist.create ~name:"simple" mods nets

(* --------------------------- module defs ---------------------------- *)

let test_module_area () =
  let r = Module_def.rigid ~id:0 ~name:"r" ~w:4. ~h:2. in
  checkf "rigid area" 8. (Module_def.area r);
  let f = Module_def.flexible ~id:1 ~name:"f" ~area:9. ~min_aspect:1.
      ~max_aspect:1. in
  checkf "flex area" 9. (Module_def.area f);
  Alcotest.(check bool) "flags" true
    (Module_def.is_flexible f && not (Module_def.is_flexible r))

let test_module_width_range () =
  let f = Module_def.flexible ~id:0 ~name:"f" ~area:16. ~min_aspect:0.25
      ~max_aspect:4. in
  let lo, hi = Module_def.width_range f in
  checkf "w_min" 2. lo;
  checkf "w_max" 8. hi;
  checkf "h at w=8" 2. (Module_def.height_for_width f 8.);
  checkf "h at w=2" 8. (Module_def.height_for_width f 2.)

let test_module_validation () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Module_def.rigid r: non-positive dims 0x2") (fun () ->
      ignore (Module_def.rigid ~id:0 ~name:"r" ~w:0. ~h:2.));
  Alcotest.check_raises "bad aspects"
    (Invalid_argument "Module_def.flexible f: bad aspect interval [2, 1]")
    (fun () ->
      ignore
        (Module_def.flexible ~id:0 ~name:"f" ~area:4. ~min_aspect:2.
           ~max_aspect:1.))

(* ------------------------------- nets ------------------------------- *)

let test_net_basics () =
  let n =
    Net.make ~name:"n"
      [ { Net.module_id = 2; side = Net.Left };
        { Net.module_id = 0; side = Net.Top };
        { Net.module_id = 2; side = Net.Right } ]
  in
  Alcotest.(check (list int)) "modules dedup sorted" [ 0; 2 ] (Net.modules n);
  Alcotest.(check int) "degree counts pins" 3 (Net.degree n)

let test_net_validation () =
  Alcotest.check_raises "single pin"
    (Invalid_argument "Net.make n: needs at least two pins") (fun () ->
      ignore (Net.make ~name:"n" [ { Net.module_id = 0; side = Net.Left } ]));
  Alcotest.check_raises "bad criticality"
    (Invalid_argument "Net.make n: criticality 2 outside [0,1]") (fun () ->
      ignore
        (Net.make ~name:"n" ~criticality:2.
           [ { Net.module_id = 0; side = Net.Left };
             { Net.module_id = 1; side = Net.Left } ]))

let test_side_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "side roundtrip" true
        (Net.side_of_string (Net.side_to_string s) = Some s))
    Net.all_sides;
  Alcotest.(check bool) "bad side" true (Net.side_of_string "Q" = None)

(* ------------------------------ netlist ----------------------------- *)

let test_netlist_connectivity () =
  let nl = mk_simple () in
  Alcotest.(check int) "c01 = 2 nets" 2 (Netlist.connectivity nl 0 1);
  Alcotest.(check int) "c12 = 1" 1 (Netlist.connectivity nl 1 2);
  Alcotest.(check int) "c03 = 0" 0 (Netlist.connectivity nl 0 3);
  Alcotest.(check int) "symmetric" (Netlist.connectivity nl 1 0)
    (Netlist.connectivity nl 0 1);
  Alcotest.(check int) "degree of 1" 3 (Netlist.module_degree nl 1);
  Alcotest.(check int) "to set" 3 (Netlist.connectivity_to_set nl [ 0; 2 ] 1)

let test_netlist_total_area () =
  checkf "total" (8. +. 9. +. 6. +. 1.) (Netlist.total_area (mk_simple ()))

let test_netlist_pins_per_side () =
  let nl = mk_simple () in
  let l, r, b, t = Netlist.pins_per_side nl 1 in
  Alcotest.(check (list int)) "module 1 sides" [ 1; 1; 1; 0 ] [ l; r; b; t ]

let test_netlist_nets_between () =
  let nl = mk_simple () in
  Alcotest.(check int) "two nets between 0,1" 2
    (List.length (Netlist.nets_between nl 0 1));
  Alcotest.(check int) "none between 0,3" 0
    (List.length (Netlist.nets_between nl 0 3))

let test_netlist_bad_ids () =
  let mods = [ Module_def.rigid ~id:1 ~name:"a" ~w:1. ~h:1. ] in
  Alcotest.check_raises "ids must be dense"
    (Invalid_argument "Netlist.create: module a has id 1, expected 0")
    (fun () -> ignore (Netlist.create ~name:"bad" mods []))

let test_netlist_bad_net_ref () =
  let mods = [ Module_def.rigid ~id:0 ~name:"a" ~w:1. ~h:1. ] in
  let nets =
    [ Net.make ~name:"n"
        [ { Net.module_id = 0; side = Net.Left };
          { Net.module_id = 5; side = Net.Left } ] ]
  in
  Alcotest.check_raises "net references unknown module"
    (Invalid_argument "Netlist.create: net n references module 5") (fun () ->
      ignore (Netlist.create ~name:"bad" mods nets))

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (Netlist.validate (mk_simple ()) = Ok ())

(* ----------------------------- ordering ----------------------------- *)

let is_permutation k l = List.sort_uniq compare l = List.init k Fun.id

let test_linear_ordering_permutation () =
  let nl = mk_simple () in
  Alcotest.(check bool) "permutation" true
    (is_permutation 4 (Ordering.linear nl))

let test_linear_ordering_connectivity_first () =
  let nl = mk_simple () in
  match Ordering.linear nl with
  | first :: second :: _ ->
    (* Module 1 has the highest degree (3); its strongest neighbour is 0. *)
    Alcotest.(check int) "seed is hub" 1 first;
    Alcotest.(check int) "then strongest neighbour" 0 second
  | _ -> Alcotest.fail "ordering too short"

let test_random_ordering_deterministic () =
  let nl = mk_simple () in
  Alcotest.(check (list int)) "same seed same order"
    (Ordering.random ~seed:5 nl)
    (Ordering.random ~seed:5 nl);
  Alcotest.(check bool) "permutation" true
    (is_permutation 4 (Ordering.random ~seed:5 nl))

let test_area_ordering () =
  let nl = mk_simple () in
  match Ordering.by_area_desc nl with
  | first :: _ -> Alcotest.(check int) "biggest first" 1 first
  | [] -> Alcotest.fail "empty"

let test_groups () =
  Alcotest.(check (list (list int))) "groups of 2"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Ordering.groups ~size:2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "exact" [ [ 1; 2 ] ]
    (Ordering.groups ~size:2 [ 1; 2 ]);
  Alcotest.(check (list (list int))) "empty" [] (Ordering.groups ~size:3 []);
  Alcotest.check_raises "size 0" (Invalid_argument "Ordering.groups: size < 1")
    (fun () -> ignore (Ordering.groups ~size:0 [ 1 ]))

(* ------------------------------ parser ------------------------------ *)

let sample_text =
  {|# a small instance
instance demo
module a rigid 4 2
module b flexible 6 0.5 2
module c rigid 1 1

net n0 a:R b:L
net n1 crit=0.75 b:T c:B a:L
|}

let test_parser_parses () =
  match Parser.of_string sample_text with
  | Error e -> Alcotest.fail e
  | Ok nl ->
    Alcotest.(check string) "name" "demo" (Netlist.name nl);
    Alcotest.(check int) "modules" 3 (Netlist.num_modules nl);
    Alcotest.(check int) "nets" 2 (Netlist.num_nets nl);
    checkf "flexible area" 6.
      (Module_def.area (Netlist.module_at nl 1));
    (match Netlist.nets nl with
    | [ _; n1 ] -> checkf "criticality" 0.75 n1.Net.criticality
    | _ -> Alcotest.fail "expected two nets")

let test_parser_roundtrip () =
  match Parser.of_string sample_text with
  | Error e -> Alcotest.fail e
  | Ok nl -> (
    match Parser.of_string (Parser.to_string nl) with
    | Error e -> Alcotest.fail ("roundtrip: " ^ e)
    | Ok nl2 ->
      Alcotest.(check int) "modules" (Netlist.num_modules nl)
        (Netlist.num_modules nl2);
      Alcotest.(check int) "nets" (Netlist.num_nets nl) (Netlist.num_nets nl2);
      checkf "area" (Netlist.total_area nl) (Netlist.total_area nl2);
      Alcotest.(check int) "connectivity preserved"
        (Netlist.connectivity nl 0 1)
        (Netlist.connectivity nl2 0 1))

let expect_error text fragment =
  match Parser.of_string text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
    let contains needle hay =
      let n = String.length needle and m = String.length hay in
      let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" e fragment)
      true (contains fragment e)

let test_parser_errors () =
  expect_error "module a rigid x 2" "bad width";
  expect_error "module a rigid 1 1\nmodule a rigid 1 1" "duplicate";
  expect_error "module a rigid 1 1\nnet n a:Q a:L" "bad side";
  expect_error "module a rigid 1 1\nnet n a:L b:R" "unknown module";
  expect_error "frobnicate yes" "unknown directive";
  expect_error "module a rigid 1 1\nnet n a:L" "two pins"

(* ----------------------------- generator ---------------------------- *)

let test_generator_deterministic () =
  let cfg = { Generator.default_config with Generator.num_modules = 10 } in
  let a = Generator.generate cfg and b = Generator.generate cfg in
  Alcotest.(check string) "same text" (Parser.to_string a) (Parser.to_string b)

let test_generator_properties () =
  let cfg =
    { Generator.default_config with Generator.num_modules = 15; seed = 3 }
  in
  let nl = Generator.generate cfg in
  Alcotest.(check int) "module count" 15 (Netlist.num_modules nl);
  (* Rigid dimensions snap to the unit grid, so the total is only
     approximately the configured one. *)
  Alcotest.(check bool) "total area within 15%" true
    (Float.abs (Netlist.total_area nl -. cfg.Generator.total_area)
     < 0.15 *. cfg.Generator.total_area);
  Alcotest.(check bool) "validates" true (Netlist.validate nl = Ok ());
  List.iter
    (fun net ->
      Alcotest.(check bool) "degree in [2,5]" true
        (Net.degree net >= 2 && Net.degree net <= 5))
    (Netlist.nets nl)

let test_generator_flexible_fraction () =
  let cfg =
    { Generator.default_config with
      Generator.num_modules = 20; flexible_fraction = 0.5; seed = 4 }
  in
  let nl = Generator.generate cfg in
  let flex =
    Array.fold_left
      (fun a m -> if Module_def.is_flexible m then a + 1 else a)
      0 (Netlist.modules nl)
  in
  Alcotest.(check int) "half flexible" 10 flex

let test_generator_seed_changes_instance () =
  let base = { Generator.default_config with Generator.num_modules = 12 } in
  let a = Generator.generate { base with Generator.seed = 1 } in
  let b = Generator.generate { base with Generator.seed = 2 } in
  Alcotest.(check bool) "different instances" false
    (Parser.to_string a = Parser.to_string b)

let () =
  Alcotest.run "fp_netlist"
    [
      ( "module_def",
        [
          Alcotest.test_case "area" `Quick test_module_area;
          Alcotest.test_case "width range" `Quick test_module_width_range;
          Alcotest.test_case "validation" `Quick test_module_validation;
        ] );
      ( "net",
        [
          Alcotest.test_case "basics" `Quick test_net_basics;
          Alcotest.test_case "validation" `Quick test_net_validation;
          Alcotest.test_case "side roundtrip" `Quick test_side_roundtrip;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "connectivity" `Quick test_netlist_connectivity;
          Alcotest.test_case "total area" `Quick test_netlist_total_area;
          Alcotest.test_case "pins per side" `Quick test_netlist_pins_per_side;
          Alcotest.test_case "nets between" `Quick test_netlist_nets_between;
          Alcotest.test_case "bad ids" `Quick test_netlist_bad_ids;
          Alcotest.test_case "bad net ref" `Quick test_netlist_bad_net_ref;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "linear is permutation" `Quick
            test_linear_ordering_permutation;
          Alcotest.test_case "linear follows connectivity" `Quick
            test_linear_ordering_connectivity_first;
          Alcotest.test_case "random deterministic" `Quick
            test_random_ordering_deterministic;
          Alcotest.test_case "area ordering" `Quick test_area_ordering;
          Alcotest.test_case "groups" `Quick test_groups;
        ] );
      ( "parser",
        [
          Alcotest.test_case "parses" `Quick test_parser_parses;
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "properties" `Quick test_generator_properties;
          Alcotest.test_case "flexible fraction" `Quick
            test_generator_flexible_fraction;
          Alcotest.test_case "seed changes instance" `Quick
            test_generator_seed_changes_instance;
        ] );
    ]
