(* End-to-end integration tests: the full pipeline (floorplan -> adjust ->
   topology LP -> route -> channel-width adjustment -> render) on small
   instances, cross-library invariants, and whole-flow determinism. *)

module Netlist = Fp_netlist.Netlist
module Generator = Fp_netlist.Generator
module Parser = Fp_netlist.Parser
module BB = Fp_milp.Branch_bound
module GR = Fp_route.Global_router
open Fp_core

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let small_cfg =
  {
    Augment.default_config with
    Augment.group_size = 3;
    milp = { Augment.default_config.Augment.milp with BB.node_limit = 400 };
  }

let pipeline ?(config = small_cfg) nl =
  let res = Augment.run ~config nl in
  let pl = Compact.vertical res.Augment.placement in
  let pl, _ = Topology.optimize nl pl in
  let rt = GR.route ~algorithm:(GR.Weighted { penalty = 3. }) nl pl in
  let rep = Fp_route.Adjust.compute rt ~pitch_h:1. ~pitch_v:1. in
  (pl, rt, rep)

let instance ?(k = 7) seed =
  Generator.generate
    { Generator.default_config with Generator.num_modules = k; seed }

let test_full_pipeline_runs () =
  let nl = instance 51 in
  let pl, rt, rep = pipeline nl in
  Alcotest.(check bool) "placement valid" true (Placement.valid pl = Ok ());
  Alcotest.(check int) "all routed" 0 rt.GR.num_failed;
  Alcotest.(check bool) "final area >= base area" true
    (rep.Fp_route.Adjust.final_area
     >= (rep.Fp_route.Adjust.base_width *. rep.Fp_route.Adjust.base_height)
        -. 1e-6);
  (* Renderers accept the result. *)
  Alcotest.(check bool) "ascii renders" true
    (String.length (Fp_viz.Ascii.render pl) > 0);
  Alcotest.(check bool) "svg renders" true
    (String.length (Fp_viz.Svg.of_routed ~netlist:nl pl rt) > 0)

let test_full_pipeline_deterministic () =
  let nl = instance 52 in
  let _, rt1, rep1 = pipeline nl in
  let _, rt2, rep2 = pipeline nl in
  checkf "same wirelength" rt1.GR.total_wirelength rt2.GR.total_wirelength;
  checkf "same final area" rep1.Fp_route.Adjust.final_area
    rep2.Fp_route.Adjust.final_area

let test_envelopes_reduce_final_area () =
  (* The Table-3 claim on a small instance: with envelopes the
     post-routing growth is smaller. *)
  let nl = instance ~k:8 53 in
  let _, _, rep_plain = pipeline nl in
  let config =
    { small_cfg with
      Augment.envelope = Some { Augment.pitch_h = 1.; pitch_v = 1.; share = 0.5 } }
  in
  let _, _, rep_env = pipeline ~config nl in
  let growth r =
    r.Fp_route.Adjust.final_area
    /. (r.Fp_route.Adjust.base_width *. r.Fp_route.Adjust.base_height)
  in
  Alcotest.(check bool) "envelope growth factor smaller" true
    (growth rep_env <= growth rep_plain +. 1e-6)

let test_milp_and_slicing_agree_on_instance () =
  (* Two very different floorplanners, one instance: both must produce
     complete valid floorplans whose areas are within a sane factor. *)
  let nl = instance ~k:9 54 in
  let res = Augment.run ~config:small_cfg nl in
  let milp_pl = res.Augment.placement in
  let sa_pl, _ = Fp_slicing.Anneal.run nl in
  Alcotest.(check bool) "milp valid" true (Placement.valid milp_pl = Ok ());
  Alcotest.(check bool) "sa valid" true (Placement.valid sa_pl = Ok ());
  let area pl = Placement.chip_area pl in
  Alcotest.(check bool) "areas within 3x of each other" true
    (area milp_pl /. area sa_pl < 3. && area sa_pl /. area milp_pl < 3.)

let test_instance_file_roundtrip_through_pipeline () =
  (* Write an instance to disk, read it back, floorplan it: identical
     result to floorplanning the original. *)
  let nl = instance 55 in
  let path = Filename.temp_file "fp_int" ".fp" in
  Parser.to_file path nl;
  let nl2 =
    match Parser.of_file path with
    | Ok n -> n
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  let h1 = (Augment.run ~config:small_cfg nl).Augment.placement.Placement.height in
  let h2 = (Augment.run ~config:small_cfg nl2).Augment.placement.Placement.height in
  checkf "same height from file" h1 h2

let test_critical_net_bound_respected_end_to_end () =
  (* A one-group instance where the bound is clearly feasible: the MILP
     step that places the whole chip must honour it.  (Across groups the
     bound is best-effort: an infeasible step falls back to the warm
     start — see Augment.critical_net_bound docs.) *)
  let mods =
    [ Fp_netlist.Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:4.;
      Fp_netlist.Module_def.rigid ~id:1 ~name:"b" ~w:4. ~h:4.;
      Fp_netlist.Module_def.rigid ~id:2 ~name:"c" ~w:4. ~h:4. ]
  in
  let pin m s = { Fp_netlist.Net.module_id = m; side = s } in
  let victim =
    Fp_netlist.Net.make ~name:"crit" ~criticality:0.9
      [ pin 0 Fp_netlist.Net.Right; pin 2 Fp_netlist.Net.Left ]
  in
  let nl = Netlist.create ~name:"bounded" mods [ victim ] in
  let bound = 2. in
  let config =
    { small_cfg with
      Augment.group_size = 3;
      chip_width = Some 12.;
      compact_each_step = false;
      critical_net_bound = Some (fun _ -> Some bound);
      milp =
        { small_cfg.Augment.milp with BB.node_limit = 3000 } }
  in
  let res = Augment.run ~config nl in
  let pl = res.Augment.placement in
  Alcotest.(check bool) "valid" true (Placement.valid pl = Ok ());
  match Metrics.net_hpwl nl pl victim with
  | Some l ->
    Alcotest.(check bool)
      (Printf.sprintf "victim net short (%.1f vs bound %.1f)" l bound)
      true
      (l <= bound +. 1e-5)
  | None -> Alcotest.fail "victim net unplaced"

let test_refine_after_pipeline_never_hurts () =
  let nl = instance ~k:8 57 in
  let pl, _, _ = pipeline nl in
  let pl2, _ = Refine.reinsert_top nl pl in
  Alcotest.(check bool) "refine never increases height" true
    (pl2.Placement.height <= pl.Placement.height +. 1e-6);
  Alcotest.(check bool) "still valid" true (Placement.valid pl2 = Ok ())

let test_route_tree_connectivity () =
  (* Every routed net's edges form a connected subgraph touching every
     pin node (checked with union-find). *)
  let nl = instance ~k:6 58 in
  let pl, rt, _ = pipeline nl in
  let graph = rt.GR.graph in
  List.iter
    (fun r ->
      let parent = Hashtbl.create 16 in
      let rec find x =
        match Hashtbl.find_opt parent x with
        | Some p when p <> x ->
          let root = find p in
          Hashtbl.replace parent x root;
          root
        | Some _ -> x
        | None ->
          Hashtbl.replace parent x x;
          x
      in
      let union a b = Hashtbl.replace parent (find a) (find b) in
      List.iter
        (fun ei ->
          let e = Fp_route.Channel_graph.edge_at graph ei in
          union e.Fp_route.Channel_graph.a e.Fp_route.Channel_graph.b)
        r.GR.edges;
      let pins =
        List.filter_map
          (fun p ->
            Option.map
              (fun placed ->
                Fp_route.Channel_graph.pin_node graph placed
                  p.Fp_netlist.Net.side)
              (Placement.find pl p.Fp_netlist.Net.module_id))
          r.GR.net.Fp_netlist.Net.pins
        |> List.sort_uniq compare
      in
      match pins with
      | [] | [ _ ] -> ()
      | first :: rest ->
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf "net %s connected" r.GR.net.Fp_netlist.Net.name)
              true
              (find p = find first))
          rest)
    rt.GR.routed

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "full pipeline" `Quick test_full_pipeline_runs;
          Alcotest.test_case "deterministic" `Quick
            test_full_pipeline_deterministic;
          Alcotest.test_case "envelopes reduce growth" `Quick
            test_envelopes_reduce_final_area;
          Alcotest.test_case "milp vs slicing sanity" `Quick
            test_milp_and_slicing_agree_on_instance;
          Alcotest.test_case "file roundtrip" `Quick
            test_instance_file_roundtrip_through_pipeline;
          Alcotest.test_case "critical net bound" `Quick
            test_critical_net_bound_respected_end_to_end;
          Alcotest.test_case "refine never hurts" `Quick
            test_refine_after_pipeline_never_hurts;
          Alcotest.test_case "route tree connectivity" `Quick
            test_route_tree_connectivity;
        ] );
    ]
