(* Linearizing the flexible-module shape constraint — paper Figure 1 and
   section 2.4.

     dune exec examples/flexible_demo.exe

   A flexible module has fixed area S and h = S / w: a hyperbola.  The
   paper keeps the model linear by taking the first two terms of the
   Taylor series about w_max.  This demo tabulates the true height
   against both linearizations over the width window, showing why the
   secant (our default) is the safe choice: the tangent *under*estimates
   height away from w_max, so floorplans built with it need a
   legalization pass, while the secant always reserves enough. *)

module Module_def = Fp_netlist.Module_def

let () =
  let area = 100. and min_aspect = 0.25 and max_aspect = 4. in
  let m =
    Module_def.flexible ~id:0 ~name:"flex" ~area ~min_aspect ~max_aspect
  in
  let w_min, w_max = Module_def.width_range m in
  let h_min = area /. w_max in
  let tangent_slope = area /. (w_max *. w_max) in
  let secant_slope = area /. (w_min *. w_max) in
  Printf.printf "flexible module: S = %g, aspect in [%g, %g]\n" area min_aspect
    max_aspect;
  Printf.printf "width window [%.2f, %.2f], h(w_max) = %.2f\n\n" w_min w_max
    h_min;
  Printf.printf "  Lambda (tangent) = S/w_max^2      = %.4f\n" tangent_slope;
  Printf.printf "  Lambda (secant)  = S/(w_min w_max) = %.4f\n\n" secant_slope;
  Printf.printf "%8s %10s %12s %12s %12s %12s\n" "w" "h=S/w" "tangent"
    "tan err" "secant" "sec err";
  let steps = 8 in
  for i = 0 to steps do
    let w = w_max -. (float_of_int i /. float_of_int steps *. (w_max -. w_min)) in
    let dw = w_max -. w in
    let true_h = area /. w in
    let tangent = h_min +. (tangent_slope *. dw) in
    let secant = h_min +. (secant_slope *. dw) in
    Printf.printf "%8.3f %10.3f %12.3f %+12.3f %12.3f %+12.3f\n" w true_h
      tangent (tangent -. true_h) secant (secant -. true_h)
  done;
  print_newline ();
  Printf.printf
    "tangent error is <= 0 (underestimates -> possible overlaps, fixed by\n";
  Printf.printf
    "the adjustment pass); secant error is >= 0 (conservative reservation).\n"
