(* Covering rectangles for a partial floorplan — paper Figure 4 and
   Theorems 1-2.

     dune exec examples/covering_demo.exe

   Reproduces the paper's illustration: six fixed modules form a
   hole-free polygon; horizontal edge-cuts partition it into at most six
   covering rectangles, so the next augmentation step sees at most six
   obstacles instead of six modules *plus* their dead space. *)

module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Covering = Fp_geometry.Covering
open Fp_core

let placed id r =
  { Placement.module_id = id; rect = r; envelope = r; rotated = false }

let () =
  (* Six modules stacked like the paper's Figure 4a. *)
  let modules =
    [
      Rect.make ~x:0. ~y:0. ~w:4. ~h:6.;
      Rect.make ~x:4. ~y:0. ~w:5. ~h:4.;
      Rect.make ~x:9. ~y:0. ~w:3. ~h:8.;
      Rect.make ~x:0. ~y:6. ~w:3. ~h:3.;
      Rect.make ~x:4. ~y:4. ~w:4. ~h:2.;
      Rect.make ~x:12. ~y:0. ~w:4. ~h:3.;
    ]
  in
  let width = 16. in
  Printf.printf "partial floorplan with %d fixed modules:\n\n"
    (List.length modules);
  let pl =
    List.fold_left
      (fun acc (i, r) -> Placement.add acc (placed i r))
      (Placement.empty ~chip_width:width)
      (List.mapi (fun i r -> (i, r)) modules)
  in
  print_string (Fp_viz.Ascii.render ~cols:64 pl);

  (* The covering polygon is the skyline (holes at the bottom ignored,
     because modules are only ever added from the open side). *)
  let sky = Skyline.of_rects ~width modules in
  Printf.printf "\nskyline (the covering polygon):\n";
  List.iter
    (fun s ->
      Printf.printf "  x in [%g, %g]  height %g\n" s.Skyline.x0 s.Skyline.x1
        s.Skyline.h)
    (Skyline.segments sky);

  (* Horizontal edge-cuts -> covering rectangles. *)
  let cover = Covering.of_skyline sky in
  Printf.printf "\n%d covering rectangles (Theorem 2 bound: <= %d modules):\n"
    (List.length cover) (List.length modules);
  List.iter (fun r -> Format.printf "  %a@." Rect.pp r) cover;
  assert (List.length cover <= List.length modules);

  let area_sum = List.fold_left (fun a r -> a +. Rect.area r) 0. cover in
  Printf.printf "\ncovering area %.1f = profile area %.1f (exact tiling)\n"
    area_sum (Skyline.area_under sky);

  (* The coarsened variant trades fidelity for even fewer obstacles. *)
  let coarse = Covering.coarsen ~max_count:3 cover in
  Printf.printf "coarsened to %d rectangles (adds %.1f spurious area)\n"
    (List.length coarse)
    (Rect.union_area coarse -. area_sum)
