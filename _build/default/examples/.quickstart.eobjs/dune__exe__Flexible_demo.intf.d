examples/flexible_demo.mli:
