examples/soc_instance.mli:
