examples/flexible_demo.ml: Fp_netlist Printf
