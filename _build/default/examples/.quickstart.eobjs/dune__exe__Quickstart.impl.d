examples/quickstart.ml: Augment Format Fp_core Fp_netlist Fp_viz List Metrics Placement Printf String
