examples/covering_demo.ml: Format Fp_core Fp_geometry Fp_viz List Placement Printf
