examples/fixed_topology.mli:
