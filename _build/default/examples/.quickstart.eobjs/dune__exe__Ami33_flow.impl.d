examples/ami33_flow.ml: Augment Compact Format Fp_core Fp_data Fp_milp Fp_netlist Fp_route Fp_viz List Metrics Placement Printf Refine Topology Unix
