examples/ami33_flow.mli:
