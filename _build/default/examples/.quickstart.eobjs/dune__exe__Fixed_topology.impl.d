examples/fixed_topology.ml: Fp_core Fp_geometry Fp_netlist Fp_viz Fun Metrics Placement Printf Topology
