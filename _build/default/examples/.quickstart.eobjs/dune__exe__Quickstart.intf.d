examples/quickstart.mli:
