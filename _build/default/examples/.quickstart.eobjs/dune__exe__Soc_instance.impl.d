examples/soc_instance.ml: Array Augment Compact Format Fp_core Fp_netlist Fp_slicing Fp_viz Metrics Placement Printf Sys Topology
