(* The complete paper pipeline on the ami33 benchmark:

     floorplan (successive augmentation, Figure 3 steps 1-11)
       -> adjust (compaction + known-topology LP, step 13)
       -> re-insertion refinement (extension)
       -> global routing (step 12)
       -> channel-width adjustment and final chip area

     dune exec examples/ami33_flow.exe

   Writes ami33.svg and ami33_routed.svg to the current directory. *)

module Netlist = Fp_netlist.Netlist
module BB = Fp_milp.Branch_bound
open Fp_core

let pitch = 0.35

let () =
  let nl = Fp_data.Ami33.netlist () in
  Format.printf "%a@.@." Netlist.pp_summary nl;

  (* 1. Successive augmentation with routing envelopes (around-the-cell
     technology, as in the paper's Series 3). *)
  let config =
    {
      Augment.default_config with
      Augment.envelope =
        Some { Augment.pitch_h = pitch; pitch_v = pitch; share = 0.5 };
    }
  in
  let t0 = Unix.gettimeofday () in
  let result = Augment.run ~config nl in
  Printf.printf "augmentation: %.1f s, %d steps, height %.1f\n"
    result.Augment.total_time
    (List.length result.Augment.steps)
    result.Augment.placement.Placement.height;

  (* 2. Floorplan adjustment: compaction, then the zero-integer-variable
     topology LP of section 2.5. *)
  let pl = Compact.vertical result.Augment.placement in
  let pl, tstats = Topology.optimize nl pl in
  Printf.printf "topology LP : %d vars, %d rows, %d integer vars -> height %.1f\n"
    tstats.Topology.num_vars tstats.Topology.num_constraints
    tstats.Topology.num_integer_vars pl.Placement.height;

  (* 3. Re-insertion refinement. *)
  let pl, rr = Refine.reinsert_top nl pl in
  Printf.printf "refinement  : %d/%d rounds improved -> height %.1f\n"
    rr.Refine.rounds_improved rr.Refine.rounds_attempted pl.Placement.height;
  Printf.printf "chip        : %.1f x %.1f, utilization %.1f%%\n"
    pl.Placement.chip_width pl.Placement.height
    (100. *. Metrics.utilization nl pl);

  Fp_viz.Svg.save "ami33.svg" (Fp_viz.Svg.of_placement ~netlist:nl pl);

  (* 4. Global routing: critical nets first, congestion-weighted paths. *)
  let rt =
    Fp_route.Global_router.route
      ~algorithm:(Fp_route.Global_router.Weighted { penalty = 3. })
      ~pitch_h:pitch ~pitch_v:pitch nl pl
  in
  Format.printf "routing     : %a@."
    (fun ppf g -> Fp_route.Channel_graph.pp_stats ppf g)
    rt.Fp_route.Global_router.graph;
  Printf.printf "              wirelength %.1f, overflow %.0f, failed %d\n"
    rt.Fp_route.Global_router.total_wirelength
    rt.Fp_route.Global_router.overflow_total rt.Fp_route.Global_router.num_failed;

  (* 5. Channel-width adjustment and the final area figure. *)
  let rep = Fp_route.Adjust.compute rt ~pitch_h:pitch ~pitch_v:pitch in
  Format.printf "adjusted    : %a@." Fp_route.Adjust.pp rep;

  Fp_viz.Svg.save "ami33_routed.svg" (Fp_viz.Svg.of_routed ~netlist:nl pl rt);
  Printf.printf "wrote ami33.svg and ami33_routed.svg (total %.1f s)\n"
    (Unix.gettimeofday () -. t0)
