(* Floorplan optimization with a given topology — paper section 2.5.

     dune exec examples/fixed_topology.exe

   "One of the often mentioned formulations of the floorplanning problem
   assumes that the topology of the chip is given and only shapes of the
   modules should be optimized. ... the number of integer variables for
   this formulation is equal to zero."

   We build a deliberately wasteful placement whose *topology* (who is
   left of / below whom) is nevertheless sensible, then let the pure LP
   recover the slack: positions shift and flexible modules re-shape, but
   no module ever jumps over another. *)

module Rect = Fp_geometry.Rect
module Module_def = Fp_netlist.Module_def
module Netlist = Fp_netlist.Netlist
open Fp_core

let placed id r =
  { Placement.module_id = id; rect = r; envelope = r; rotated = false }

let () =
  let mods =
    [
      Module_def.rigid ~id:0 ~name:"cpu" ~w:10. ~h:8.;
      Module_def.rigid ~id:1 ~name:"cache" ~w:8. ~h:6.;
      Module_def.flexible ~id:2 ~name:"rom" ~area:48. ~min_aspect:0.3
        ~max_aspect:3.;
      Module_def.flexible ~id:3 ~name:"io" ~area:30. ~min_aspect:0.3
        ~max_aspect:3.;
    ]
  in
  let nl = Netlist.create ~name:"soc" mods [] in

  (* A sloppy hand placement: everything is spread out, the ROM sits in
     its narrowest shape, and there is vertical slack everywhere. *)
  let sloppy =
    Placement.empty ~chip_width:20.
    |> Fun.flip Placement.add (placed 0 (Rect.make ~x:0. ~y:0. ~w:10. ~h:8.))
    |> Fun.flip Placement.add (placed 1 (Rect.make ~x:11. ~y:1. ~w:8. ~h:6.))
    (* rom at w = sqrt(48*0.3) ~ 3.79 -> h ~ 12.65: tall and thin. *)
    |> Fun.flip Placement.add
         (placed 2 (Rect.make ~x:0. ~y:10. ~w:3.8 ~h:(48. /. 3.8)))
    |> Fun.flip Placement.add (placed 3 (Rect.make ~x:6. ~y:16. ~w:10. ~h:3.))
  in
  Printf.printf "sloppy floorplan : height %.2f, utilization %.1f%%\n"
    sloppy.Placement.height
    (100. *. Metrics.utilization nl sloppy);
  print_string (Fp_viz.Ascii.render ~cols:48 sloppy);

  (* The known-topology LP: zero integer variables, exactly one
     non-overlap inequality per module pair. *)
  let optimized, stats = Topology.optimize nl sloppy in
  Printf.printf
    "\ntopology LP      : %d variables, %d constraints, %d integer vars\n"
    stats.Topology.num_vars stats.Topology.num_constraints
    stats.Topology.num_integer_vars;
  Printf.printf "optimized        : height %.2f -> %.2f, utilization %.1f%%\n"
    stats.Topology.height_before stats.Topology.height_after
    (100. *. Metrics.utilization nl optimized);
  print_string (Fp_viz.Ascii.render ~cols:48 optimized);
  match Placement.valid optimized with
  | Ok () -> print_endline "\nresult is a valid floorplan"
  | Error e -> Printf.printf "\nINVALID: %s\n" e
