(* Quickstart: describe a handful of modules, floorplan them, and print
   the result.

     dune exec examples/quickstart.exe

   This is the smallest end-to-end use of the public API: build a
   Netlist, call Augment.run, inspect the Placement. *)

module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
open Fp_core

let () =
  (* Six blocks of a toy datapath: four rigid macros and two flexible
     (synthesizable) blocks with fixed area and bounded aspect ratio. *)
  let mods =
    [
      Module_def.rigid ~id:0 ~name:"alu" ~w:8. ~h:6.;
      Module_def.rigid ~id:1 ~name:"regfile" ~w:6. ~h:6.;
      Module_def.rigid ~id:2 ~name:"mul" ~w:7. ~h:5.;
      Module_def.rigid ~id:3 ~name:"lsu" ~w:5. ~h:4.;
      Module_def.flexible ~id:4 ~name:"decode" ~area:24. ~min_aspect:0.4
        ~max_aspect:2.5;
      Module_def.flexible ~id:5 ~name:"ctrl" ~area:16. ~min_aspect:0.4
        ~max_aspect:2.5;
    ]
  in
  let pin m s = { Net.module_id = m; side = s } in
  let nets =
    [
      Net.make ~name:"operands" [ pin 1 Net.Right; pin 0 Net.Left ];
      Net.make ~name:"result" [ pin 0 Net.Right; pin 1 Net.Left ];
      Net.make ~name:"mul_bus" [ pin 0 Net.Top; pin 2 Net.Bottom ];
      Net.make ~name:"mem" ~criticality:0.8 [ pin 3 Net.Left; pin 1 Net.Bottom ];
      Net.make ~name:"dec" [ pin 4 Net.Right; pin 0 Net.Bottom; pin 1 Net.Top ];
      Net.make ~name:"ctl" [ pin 5 Net.Top; pin 4 Net.Bottom; pin 3 Net.Top ];
    ]
  in
  let nl = Netlist.create ~name:"toy_datapath" mods nets in
  Format.printf "%a@.@." Netlist.pp_summary nl;

  (* Floorplan with the default configuration (connectivity-driven
     successive augmentation, chip-area objective). *)
  let result = Augment.run nl in
  let pl = result.Augment.placement in
  Printf.printf "chip: %.1f x %.1f, utilization %.1f%%, HPWL %.1f\n"
    pl.Placement.chip_width pl.Placement.height
    (100. *. Metrics.utilization nl pl)
    (Metrics.hpwl nl pl);
  List.iter
    (fun step ->
      Printf.printf
        "  step placed [%s]: %d integer vars, %d B&B nodes, height %.1f\n"
        (String.concat ", " (List.map string_of_int step.Augment.group))
        step.Augment.num_integer_vars step.Augment.nodes
        step.Augment.step_height)
    result.Augment.steps;

  (* The floorplan is a first-class value: validate and render it. *)
  (match Placement.valid pl with
  | Ok () -> print_endline "floorplan is valid (no overlaps, inside chip)"
  | Error e -> Printf.printf "INVALID: %s\n" e);
  print_newline ();
  print_string (Fp_viz.Ascii.render ~cols:60 pl)
