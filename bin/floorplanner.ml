(* Command-line front end for the analytical floorplanner.

   Subcommands:
     plan   -- floorplan an instance and report metrics
     route  -- floorplan, globally route, and report the adjusted area
     check  -- floorplan with full model linting + solution certification
     gen    -- generate a random instance file
     show   -- print an instance summary

   plan and route also accept --lint, which runs the same checks
   alongside the normal output.

   Instances come from a file (see Fp_netlist.Parser for the format), the
   bundled synthetic ami33, or the random generator. *)

open Cmdliner
module Netlist = Fp_netlist.Netlist
module Generator = Fp_netlist.Generator
module Parser = Fp_netlist.Parser
module BB = Fp_milp.Branch_bound
module Fault = Fp_util.Fault
module Solver = Fp_engine.Solver
module Portfolio = Fp_engine.Portfolio
open Fp_core

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

(* ------------------------- instance sources ------------------------- *)

let load_instance input ami33 random seed =
  match (input, ami33, random) with
  | Some path, false, None -> (
    match Parser.of_file path with
    | Ok nl -> Ok nl
    | Error e -> Error (Printf.sprintf "cannot load %s: %s" path e))
  | None, true, None -> Ok (Fp_data.Ami33.netlist ())
  | None, false, Some k ->
    Ok (Generator.generate
          { Generator.default_config with Generator.num_modules = k; seed })
  | None, false, None ->
    Error "no instance: pass --input FILE, --ami33, or --random K"
  | _ -> Error "pass exactly one of --input, --ami33, --random"

let input_arg =
  Arg.(value & opt (some file) None
       & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Instance file to load.")

let ami33_arg =
  Arg.(value & flag
       & info [ "ami33" ] ~doc:"Use the bundled synthetic ami33 benchmark.")

let random_arg =
  Arg.(value & opt (some int) None
       & info [ "random" ] ~docv:"K"
           ~doc:"Use a random instance with $(docv) modules.")

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"N" ~doc:"Seed for --random / random ordering.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-step progress logs.")

(* --------------------------- plan options --------------------------- *)

let width_arg =
  Arg.(value & opt (some float) None
       & info [ "w"; "width" ] ~docv:"W"
           ~doc:"Chip width (default: near-square from the total area).")

let group_arg =
  Arg.(value & opt int 4
       & info [ "g"; "group" ] ~docv:"N"
           ~doc:"Modules added per augmentation step.")

let ordering_arg =
  Arg.(value & opt (enum [ ("linear", `L); ("random", `R); ("area", `A) ]) `L
       & info [ "ordering" ] ~docv:"KIND"
           ~doc:"Augmentation order: linear (connectivity), random, or area.")

let objective_arg =
  Arg.(value & opt (some float) None
       & info [ "wire" ] ~docv:"LAMBDA"
           ~doc:"Add a wirelength objective term with weight $(docv).")

let envelope_arg =
  Arg.(value & opt (some float) None
       & info [ "envelope" ] ~docv:"PITCH"
           ~doc:"Reserve routing envelopes with the given track pitch.")

let nodes_arg =
  Arg.(value & opt int 4000
       & info [ "nodes" ] ~docv:"N"
           ~doc:"Branch-and-bound node budget per augmentation step.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the MILP search (deterministic: the \
                 floorplan is identical for every $(docv)).")

let candidates_arg =
  Arg.(value & opt int 1
       & info [ "candidates" ] ~docv:"N"
           ~doc:"Candidate next groups evaluated concurrently per \
                 augmentation step; the one with the lowest skyline is \
                 committed.")

let formulation_arg =
  Arg.(value
       & opt
           (enum
              [ ("basic", Formulation.Basic); ("tight", Formulation.Tight);
                ("cuts", Formulation.Cuts) ])
           Formulation.Basic
       & info [ "formulation" ] ~docv:"MODE"
           ~doc:
             "MILP strengthening mode: $(b,basic) (the paper's global \
              big-M, the default), $(b,tight) (per-pair big-M plus the \
              static valid-inequality family in the base LP), or \
              $(b,cuts) (per-pair big-M with the inequalities separated \
              lazily as cutting planes at branch-and-bound nodes).")

let time_budget_arg =
  Arg.(value & opt (some float) None
       & info [ "time-budget" ] ~docv:"SECS"
           ~doc:"Run-level wall-clock budget: the remaining budget is \
                 apportioned over the remaining augmentation steps, and \
                 once spent the rest of the modules are committed from \
                 their warm packings (reported as degradations).")

let retries_arg =
  Arg.(value & opt int 2
       & info [ "retries" ] ~docv:"N"
           ~doc:"Escalated re-attempts for a step whose MILP found no \
                 solution.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Write a resumable journal to $(docv) after every \
                 committed augmentation step.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Continue from the journal at --checkpoint instead of \
                 starting over; the final floorplan is bit-identical to \
                 an uninterrupted run.")

let stop_after_arg =
  Arg.(value & opt (some int) None
       & info [ "stop-after" ] ~docv:"N"
           ~doc:"Interrupt the run after $(docv) committed steps (for \
                 testing checkpoint/resume; pair with --checkpoint).")

let faults_arg =
  (* The site list is rendered from [Fault.builtin] so this help text,
     the runtime registry and docs/robustness.md can never disagree. *)
  let doc =
    Printf.sprintf
      "Comma-separated fault injections, each SITE[@AFTER][xCOUNT] \
       (COUNT may be *): arm the named fault sites before the run to \
       exercise the recovery paths.  Known sites: %s."
      (String.concat "; "
         (List.map
            (fun (site, what) -> Printf.sprintf "$(b,%s) — %s" site what)
            Fault.builtin))
  in
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPECS" ~doc)

let arm_faults specs =
  match specs with
  | None -> Ok ()
  | Some s ->
    Fault.reset ();
    let specs =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (( <> ) "")
    in
    List.fold_left
      (fun acc spec ->
        Result.bind acc (fun () ->
            match Fault.parse spec with
            | Error e -> Error e
            | Ok sp ->
              if List.mem sp.Fault.site (Fault.sites ()) then
                Ok (Fault.arm sp)
              else
                Error
                  (Printf.sprintf "unknown fault site %S; known sites: %s"
                     sp.Fault.site
                     (String.concat ", " (Fault.sites ())))))
      (Ok ()) specs

let load_resume ~checkpoint ~resume =
  if not resume then Ok None
  else
    match checkpoint with
    | None -> Error "--resume requires --checkpoint FILE"
    | Some path ->
      if not (Sys.file_exists path) then
        Error (path ^ ": checkpoint not found")
      else Result.map Option.some (Journal.read ~path)

(* Wrap the inspection hooks so the run aborts cooperatively after [n]
   committed steps — the deterministic interrupt used by the
   checkpoint/resume tests. *)
let with_stop_after n inspect =
  let count = ref 0 in
  let on_model, on_step =
    match inspect with
    | Some i -> (i.Augment.on_model, i.Augment.on_step)
    | None -> ((fun _ -> ()), fun _ _ -> ())
  in
  Some
    { Augment.on_model;
      on_step =
        (fun stat pl ->
          on_step stat pl;
          incr count;
          if !count >= n then raise Augment.Abort) }

let report_degradations (res : Augment.result) =
  (match res.Augment.degradations with
  | [] -> ()
  | ds ->
    Printf.printf "degraded   : %d event%s\n" (List.length ds)
      (if List.length ds = 1 then "" else "s");
    List.iter
      (fun (step, d) ->
        Printf.printf "  step %d: %s\n" step (Degradation.to_string d))
      ds);
  if res.Augment.interrupted then
    Printf.printf "interrupted: yes (continue with --resume)\n"

(* Exit code 3: the run finished feasible but quality-degraded (warm
   fallbacks, dropped net bounds, deadline truncation).  Informational
   degradations (recoveries, retries that succeeded) stay at 0. *)
let degraded_exit (res : Augment.result) =
  Degradation.exit_code (List.map snd res.Augment.degradations)

(* Engine-layer counterpart of [report_degradations], reading the typed
   {!Solver.stats} instead of the [Augment] result. *)
let report_engine_degradations (st : Solver.stats) =
  (match st.Solver.degradations with
  | [] -> ()
  | ds ->
    Printf.printf "degraded   : %d event%s\n" (List.length ds)
      (if List.length ds = 1 then "" else "s");
    List.iter
      (fun (step, d) ->
        Printf.printf "  step %d: %s\n" step (Degradation.to_string d))
      ds);
  if not st.Solver.complete then
    if String.equal st.Solver.engine "milp" then
      Printf.printf "interrupted: yes (continue with --resume)\n"
    else Printf.printf "truncated  : yes (time budget)\n"

(* One line per raced engine in the portfolio report. *)
let report_engine_stats (st : Solver.stats) =
  Printf.printf "  %-8s : %s  objective=%.1f  time=%.2fs  work=%d%s\n"
    st.Solver.engine
    (if st.Solver.certified then "certified" else "uncertified")
    st.Solver.objective st.Solver.wall_time st.Solver.work
    (match st.Solver.degradations with
    | [] -> ""
    | ds -> Printf.sprintf "  degradations=%d" (List.length ds))

let refine_arg =
  Arg.(value & flag
       & info [ "refine" ]
           ~doc:"Run the re-insertion refinement after augmentation.")

let slicing_arg =
  Arg.(value & flag
       & info [ "slicing" ]
           ~doc:"Alias for $(b,--engine sa): use the slicing \
                 simulated-annealing baseline instead of the MILP \
                 floorplanner.")

let engine_arg =
  Arg.(value
       & opt
           (enum
              [ ("milp", `Milp); ("sa", `Sa); ("project", `Project);
                ("portfolio", `Portfolio) ])
           `Milp
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:
             "Floorplanning engine: $(b,milp) (successive-augmentation \
              MILP, the default), $(b,sa) (slicing simulated annealing), \
              $(b,project) (feasibility-seeking projections), or \
              $(b,portfolio) (race all three and keep the best certified \
              plan).")

let outline_arg =
  Arg.(value & opt (some (t2 ~sep:'x' float float)) None
       & info [ "outline" ] ~docv:"WxH"
           ~doc:
             "Fixed-outline mode: constrain the floorplan to a \
              $(docv) die.  A plan that exceeds the outline is still \
              reported, with the overshoot as a quality degradation \
              (exit 3).")

(* The engine-agnostic knob record every backend consumes.  [--outline]
   wins over [--width]; [--width] alone is the paper's half-open strip. *)
let scenario_of ~seed ~width ~outline ~wire ~time_budget ~checkpoint =
  {
    Solver.seed;
    outline =
      (match (outline, width) with
      | Some (w, h), _ -> Outline.Fixed { w; h }
      | None, Some w -> Outline.Max_width w
      | None, None -> Outline.Free);
    wire_weight = wire;
    time_budget;
    checkpoint;
  }

let svg_arg =
  Arg.(value & opt (some string) None
       & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG rendering to $(docv).")

let ascii_arg =
  Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII rendering.")

let config_of ?time_budget ?(retries = 2) ?checkpoint ?(formulation = Formulation.Basic)
    ~width ~group ~ordering ~wire ~envelope ~nodes ~seed ~jobs ~candidates () =
  let d = Augment.default_config in
  {
    d with
    Augment.chip_width = width;
    group_size = group;
    ordering =
      (match ordering with
      | `L -> `Linear
      | `R -> `Random seed
      | `A -> `Area_desc);
    objective =
      (match wire with
      | None -> Formulation.Min_height
      | Some lambda -> Formulation.Min_height_plus_wire lambda);
    formulation;
    envelope =
      Option.map
        (fun pitch -> { Augment.pitch_h = pitch; pitch_v = pitch; share = 0.5 })
        envelope;
    milp = { d.Augment.milp with BB.node_limit = nodes };
    jobs;
    candidates;
    run_time_limit = time_budget;
    max_retries = retries;
    checkpoint;
  }

(* ------------------------------ checking ----------------------------- *)

module Diag = Fp_check.Diagnostic

(* Augmentation hooks that lint every step's MILP model, certify every
   partial placement, and audit the step's covering decomposition against
   Theorems 1-2.  Findings accumulate in [findings], subjects tagged with
   the step number. *)
let checking_hooks nl findings =
  let step = ref 0 in
  let add ds =
    findings :=
      List.rev_append
        (List.map
           (fun d ->
             { d with
               Diag.subject = Printf.sprintf "step %d: %s" !step d.Diag.subject })
           ds)
        !findings
  in
  {
    Augment.on_model =
      (fun built ->
        incr step;
        add (Fp_check.Lint.formulation built));
    on_step =
      (fun _stat pl ->
        add (Fp_check.Certify.placement nl pl);
        let sky =
          Fp_geometry.Skyline.of_rects ~width:pl.Placement.chip_width
            (Placement.envelopes pl)
        in
        add
          (Fp_check.Certify.covering ~skyline:sky
             ~num_placed:(Placement.num_placed pl)
             (Fp_geometry.Covering.of_skyline sky)));
  }

(* Final-placement certification appended after compaction / topology
   optimization. *)
let certify_final nl pl findings =
  findings :=
    List.rev_append
      (List.map
         (fun d ->
           { d with Diag.subject = "final: " ^ d.Diag.subject })
         (Fp_check.Certify.placement nl pl))
      !findings

let report_findings ~machine findings =
  let ds = List.stable_sort Diag.compare findings in
  if machine then List.iter (fun d -> print_endline (Diag.to_line d)) ds
  else Fmt.pr "%a" Diag.pp_report ds;
  if List.exists Diag.is_error ds then 1 else 0

let lint_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Lint every augmentation step's MILP model, certify every \
                 partial and the final placement, and print the findings \
                 (exit 1 on any error-severity finding).")

let run_plan ?resume nl config refine =
  let t0 = Unix.gettimeofday () in
  let res = Augment.run ~config ?resume nl in
  let pl =
    (* The finishing passes expect a complete floorplan; an interrupted
       run reports its partial placement as-is (it is still valid). *)
    if res.Augment.interrupted then res.Augment.placement
    else begin
      let pl = Compact.vertical res.Augment.placement in
      let pl, _ =
        Topology.optimize ~linearization:config.Augment.linearization nl pl
      in
      if refine then fst (Refine.reinsert_top nl pl) else pl
    end
  in
  (res, pl, Unix.gettimeofday () -. t0)

let report_plan nl pl dt =
  Printf.printf "instance   : %s\n" (Netlist.name nl);
  Printf.printf "modules    : %d (%d nets)\n" (Netlist.num_modules nl)
    (Netlist.num_nets nl);
  Printf.printf "chip       : %.2f x %.2f = %.1f\n" pl.Placement.chip_width
    pl.Placement.height (Placement.chip_area pl);
  Printf.printf "utilization: %.1f%%\n" (100. *. Metrics.utilization nl pl);
  Printf.printf "wirelength : %.1f (HPWL)\n" (Metrics.hpwl nl pl);
  Printf.printf "time       : %.2f s\n" dt;
  match Placement.valid pl with
  | Ok () -> Printf.printf "validity   : ok\n"
  | Error e -> Printf.printf "validity   : BROKEN (%s)\n" e

let plan_cmd =
  let run input ami33 random seed verbose width group ordering wire envelope
      nodes formulation jobs candidates time_budget retries checkpoint resume
      stop_after faults refine slicing engine outline svg ascii lint =
    setup_logs verbose;
    match
      let ( let* ) = Result.bind in
      let* nl = load_instance input ami33 random seed in
      let* () = arm_faults faults in
      let* resume = load_resume ~checkpoint ~resume in
      Ok (nl, resume)
    with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (nl, resume) ->
      let config =
        config_of ?time_budget ~retries ?checkpoint ~formulation ~width ~group
          ~ordering ~wire ~envelope ~nodes ~seed ~jobs ~candidates ()
      in
      let findings = ref [] in
      let config =
        if lint then
          { config with
            Augment.check = true;
            inspect = Some (checking_hooks nl findings) }
        else config
      in
      let config =
        match stop_after with
        | None -> config
        | Some n ->
          { config with Augment.inspect = with_stop_after n config.Augment.inspect }
      in
      let engine = if slicing then `Sa else engine in
      let scenario =
        scenario_of ~seed ~width ~outline ~wire ~time_budget ~checkpoint
      in
      let solver_of = function
        | `Milp -> Fp_engine.Milp_engine.make ~config ?resume ~refine ()
        | `Sa -> Fp_engine.Sa_engine.make ()
        | `Project -> Fp_engine.Project.solver
      in
      (* Shared tail for every engine: metrics, degradations, renderings,
         optional lint certification, exit via the degradation ladder. *)
      let epilogue (st : Solver.stats) pl =
        report_plan nl pl st.Solver.wall_time;
        report_engine_degradations st;
        Option.iter
          (fun path ->
            Fp_viz.Svg.save path (Fp_viz.Svg.of_placement ~netlist:nl pl);
            Printf.printf "svg        : %s\n" path)
          svg;
        if ascii then print_string (Fp_viz.Ascii.render pl);
        let degraded =
          Degradation.exit_code (List.map snd st.Solver.degradations)
        in
        if lint then begin
          certify_final nl pl findings;
          match report_findings ~machine:false !findings with
          | 0 -> degraded
          | n -> n
        end
        else degraded
      in
      (match engine with
      | `Portfolio ->
        let engines = List.map solver_of [ `Milp; `Sa; `Project ] in
        let report = Portfolio.race ~engines ~scenario nl in
        List.iter
          (fun (e : Portfolio.entry) ->
            if e.Portfolio.ran then
              report_engine_stats e.Portfolio.outcome.Solver.stats
            else Printf.printf "  %-8s : skipped\n" e.Portfolio.solver_name)
          report.Portfolio.entries;
        (match report.Portfolio.winner with
        | None ->
          Printf.eprintf "error: no engine produced a certified plan\n";
          Degradation.exit_error
        | Some w ->
          Printf.printf "winner     : %s  (race %.2f s)\n"
            w.Portfolio.solver_name report.Portfolio.wall_time;
          (match w.Portfolio.outcome.Solver.plan with
          | Some pl -> epilogue w.Portfolio.outcome.Solver.stats pl
          | None -> assert false (* a certified winner carries a plan *)))
      | (`Milp | `Sa | `Project) as e -> (
        let s = solver_of e in
        let ctx = Solver.of_scenario scenario in
        let outcome = s.Solver.solve ctx scenario nl in
        match outcome.Solver.plan with
        | None ->
          Printf.eprintf "error: engine %s produced no plan\n" s.Solver.name;
          Degradation.exit_error
        | Some pl -> epilogue outcome.Solver.stats pl))
  in
  let term =
    Term.(
      const run $ input_arg $ ami33_arg $ random_arg $ seed_arg $ verbose_arg
      $ width_arg $ group_arg $ ordering_arg $ objective_arg $ envelope_arg
      $ nodes_arg $ formulation_arg $ jobs_arg $ candidates_arg
      $ time_budget_arg $ retries_arg $ checkpoint_arg $ resume_arg
      $ stop_after_arg $ faults_arg $ refine_arg $ slicing_arg $ engine_arg
      $ outline_arg $ svg_arg $ ascii_arg $ lint_arg)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Floorplan an instance by successive augmentation")
    term

let route_cmd =
  let pitch_arg =
    Arg.(value & opt float 0.35
         & info [ "pitch" ] ~docv:"P" ~doc:"Routing track pitch.")
  in
  let weighted_arg =
    Arg.(value & opt (some float) (Some 3.)
         & info [ "penalty" ] ~docv:"P"
             ~doc:"Congestion penalty (omit for plain shortest path via \
                   --penalty-off).")
  in
  let penalty_off_arg =
    Arg.(value & flag
         & info [ "penalty-off" ] ~doc:"Use the unweighted shortest path.")
  in
  let run input ami33 random seed verbose width group ordering wire envelope
      nodes formulation jobs candidates pitch penalty penalty_off svg lint =
    setup_logs verbose;
    match load_instance input ami33 random seed with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok nl ->
      let config =
        config_of ~formulation ~width ~group ~ordering ~wire ~envelope ~nodes
          ~seed ~jobs ~candidates ()
      in
      let findings = ref [] in
      let config =
        if lint then
          { config with
            Augment.check = true;
            inspect = Some (checking_hooks nl findings) }
        else config
      in
      let _, pl, dt = run_plan nl config false in
      report_plan nl pl dt;
      let algorithm =
        if penalty_off then Fp_route.Global_router.Shortest_path
        else
          Fp_route.Global_router.Weighted
            { penalty = Option.value penalty ~default:3. }
      in
      let rt =
        Fp_route.Global_router.route ~algorithm ~pitch_h:pitch ~pitch_v:pitch
          nl pl
      in
      let rep = Fp_route.Adjust.compute rt ~pitch_h:pitch ~pitch_v:pitch in
      Printf.printf "routing    : wirelength %.1f, %d nets, overflow %.0f\n"
        rt.Fp_route.Global_router.total_wirelength
        (List.length rt.Fp_route.Global_router.routed)
        rt.Fp_route.Global_router.overflow_total;
      Format.printf "adjusted   : %a@." Fp_route.Adjust.pp rep;
      Option.iter
        (fun path ->
          Fp_viz.Svg.save path (Fp_viz.Svg.of_routed ~netlist:nl pl rt);
          Printf.printf "svg        : %s\n" path)
        svg;
      if lint then begin
        certify_final nl pl findings;
        report_findings ~machine:false !findings
      end
      else 0
  in
  let term =
    Term.(
      const run $ input_arg $ ami33_arg $ random_arg $ seed_arg $ verbose_arg
      $ width_arg $ group_arg $ ordering_arg $ objective_arg $ envelope_arg
      $ nodes_arg $ formulation_arg $ jobs_arg $ candidates_arg $ pitch_arg
      $ weighted_arg $ penalty_off_arg $ svg_arg $ lint_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Floorplan, globally route, and compute the adjusted chip area")
    term

let check_cmd =
  let machine_arg =
    Arg.(value & flag
         & info [ "machine" ]
             ~doc:"Emit one finding per line in the stable \
                   CODE|severity|subject|message format (for CI diffing) \
                   instead of the human-readable report.")
  in
  let run input ami33 random seed verbose width group ordering wire envelope
      nodes formulation jobs candidates time_budget retries faults machine =
    setup_logs verbose;
    match
      let ( let* ) = Result.bind in
      let* nl = load_instance input ami33 random seed in
      let* () = arm_faults faults in
      Ok nl
    with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok nl ->
      let config =
        config_of ?time_budget ~retries ~formulation ~width ~group ~ordering
          ~wire ~envelope ~nodes ~seed ~jobs ~candidates ()
      in
      let findings = ref [] in
      let config =
        { config with
          Augment.check = true;
          inspect = Some (checking_hooks nl findings) }
      in
      let res, pl, _ = run_plan nl config false in
      certify_final nl pl findings;
      let code = report_findings ~machine !findings in
      let degraded = degraded_exit res in
      if not machine then begin
        report_degradations res;
        Printf.printf "verdict    : %s\n"
          (if code <> 0 then "INVALID"
           else if degraded <> 0 then "degraded-feasible"
           else "optimal path, certified")
      end;
      if code <> 0 then code else degraded
  in
  let term =
    Term.(
      const run $ input_arg $ ami33_arg $ random_arg $ seed_arg $ verbose_arg
      $ width_arg $ group_arg $ ordering_arg $ objective_arg $ envelope_arg
      $ nodes_arg $ formulation_arg $ jobs_arg $ candidates_arg
      $ time_budget_arg $ retries_arg $ faults_arg $ machine_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Floorplan an instance with full static and dynamic checking: \
          lint every step's MILP model, certify every partial placement \
          and covering decomposition, and certify the final floorplan.  \
          Exits 1 when any error-severity finding is produced, 3 when \
          the floorplan is feasible but quality-degraded (warm-start \
          fallbacks, dropped net bounds, deadline truncation), 0 on the \
          clean optimizing path.")
    term

let gen_cmd =
  let k_arg =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"K" ~doc:"Number of modules.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the instance here (default: stdout).")
  in
  let run k seed out =
    let nl =
      Generator.generate
        { Generator.default_config with Generator.num_modules = k; seed }
    in
    (match out with
    | Some path ->
      Parser.to_file path nl;
      Printf.printf "wrote %s\n" path
    | None -> print_string (Parser.to_string nl));
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random instance file")
    Term.(const run $ k_arg $ seed_arg $ out_arg)

let show_cmd =
  let run input ami33 random seed =
    match load_instance input ami33 random seed with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok nl ->
      Format.printf "%a@." Netlist.pp_summary nl;
      Array.iter
        (fun m -> Format.printf "  %a@." Fp_netlist.Module_def.pp m)
        (Netlist.modules nl);
      Printf.printf "nets: %d (max degree %d, %d timing-critical)\n"
        (Netlist.num_nets nl)
        (List.fold_left
           (fun a n -> Int.max a (Fp_netlist.Net.degree n))
           0 (Netlist.nets nl))
        (List.length
           (List.filter
              (fun n -> n.Fp_netlist.Net.criticality > 0.)
              (Netlist.nets nl)));
      0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print an instance summary")
    Term.(const run $ input_arg $ ami33_arg $ random_arg $ seed_arg)

let () =
  let info =
    Cmd.info "floorplanner" ~version:"1.0.0"
      ~doc:
        "Analytical floorplan design and optimization (Sutanthavibul, \
         Shragowitz and Rosen, DAC 1990)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ plan_cmd; route_cmd; check_cmd; gen_cmd; show_cmd ]))
