(* Source-invariant linter driver.

   Tree mode (no FILES): lint lib/, bin/, bench/ and examples/ under
   --root (syntactic rules + the interprocedural SA010-SA012 and the
   typestate SA013-SA017 over the whole-tree call graph), subtract the
   justification-annotated baseline, and exit non-zero when anything is
   left:

     exit 0 — clean against the baseline
     exit 1 — unbaselined findings (or an unparseable file)
     exit 2 — baseline problems: missing or unreadable baseline file,
              malformed entry, missing justification, or stale entries
              whose file:line no longer fires (drift); also a FILE
              argument that does not exist or cannot be read

   File mode (explicit FILES, used by the corpus tests and the CI
   injection check): lint each file under a forced role (default lib,
   the strictest) and print every finding; exit 1 when any fire.  A
   missing or unreadable FILE is a hard error (exit 2), never a silent
   pass: the CI self-check loops `if fp_lint $f; then fail` over
   corpus positives, and a deleted fixture must not vacuously succeed.
   The baseline is not consulted in file mode, and the cross-file
   rules see only a single-file call graph.

   Report artifacts (tree-wide, exit 0, no baseline needed):

     --effects        print per-function effect summaries for lib/
                      (committed as docs/effects-summary.md, CI-diffed)
     --typestate      print per-function protocol summaries for lib/
     --callgraph-dot  print the module-qualified call graph as Graphviz

   --sarif FILE additionally writes the findings as SARIF 2.1 (baseline
   matches become suppressions) in either lint mode.  --verbose prints
   per-pass wall-clock timings to stderr in tree mode.

   See docs/static-analysis.md for the rule catalogue. *)

module Lint = Fp_lint

let usage = "fp_lint [options] [FILES...]"

let () =
  let root = ref "." in
  let baseline = ref "" in
  let update = ref false in
  let role = ref "lib" in
  let list_rules = ref false in
  let effects = ref false in
  let typestate = ref false in
  let callgraph_dot = ref false in
  let verbose = ref false in
  let sarif = ref "" in
  let files = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE baseline file (default: ROOT/lint.baseline)" );
      ( "--update",
        Arg.Set update,
        " rewrite the baseline from the current findings (justifications \
         left as TODO)" );
      ( "--role",
        Arg.Set_string role,
        "ROLE role for explicit FILES: lib|bin|bench|examples (default: \
         lib)" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue");
      ( "--effects",
        Arg.Set effects,
        " print the inferred per-function effect summaries (lib/) and exit" );
      ( "--typestate",
        Arg.Set typestate,
        " print the inferred per-function protocol summaries (lib/) and \
         exit" );
      ( "--callgraph-dot",
        Arg.Set callgraph_dot,
        " print the whole-tree call graph as Graphviz dot and exit" );
      ( "--verbose",
        Arg.Set verbose,
        " print per-pass timings to stderr (tree mode)" );
      ( "--sarif",
        Arg.Set_string sarif,
        "FILE also write findings as SARIF 2.1 (baselined findings become \
         suppressions)" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%s  %s\n" (Lint.Finding.rule_name r)
          (Lint.Finding.rule_doc r))
      Lint.Finding.all_rules;
    exit 0
  end;
  let die code fmt = Printf.ksprintf (fun m -> prerr_endline m; exit code) fmt in
  let clock = Unix.gettimeofday in
  if !effects || !typestate || !callgraph_dot then begin
    let corpus = Lint.Driver.load_corpus ~clock ~root:!root () in
    if !effects then
      print_string (Lint.Driver.effects_report ~corpus ~root:!root ());
    if !typestate then
      print_string (Lint.Driver.typestate_report ~corpus ~root:!root ());
    if !callgraph_dot then
      print_string (Lint.Driver.callgraph_dot ~corpus ~root:!root ());
    exit 0
  end;
  let write_sarif ?(baseline = []) findings =
    if !sarif <> "" then begin
      let oc = open_out !sarif in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Lint.Sarif.render ~baseline findings))
    end
  in
  match List.rev !files with
  | _ :: _ as files ->
    (* File mode. *)
    let role =
      match !role with
      | "lib" -> Lint.Rules.Lib
      | "bin" -> Lint.Rules.Bin
      | "bench" -> Lint.Rules.Bench
      | "examples" -> Lint.Rules.Examples
      | r -> die 2 "unknown --role %S" r
    in
    List.iter
      (fun f ->
        if not (Sys.file_exists f) then
          die 2
            "fp_lint: %s: no such file — file mode lints explicit paths; a \
             missing file is an error, not a clean result"
            f
        else if Sys.is_directory f then
          die 2 "fp_lint: %s: is a directory (file mode wants .ml files)" f
        else
          match open_in_bin f with
          | ic -> close_in_noerr ic
          | exception Sys_error m -> die 2 "fp_lint: %s: unreadable: %s" f m)
      files;
    let findings =
      List.sort_uniq Lint.Finding.compare
        (List.concat_map
           (fun f -> Lint.Driver.lint_file ~role ~root:"." f)
           files)
    in
    List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
    write_sarif findings;
    exit (if findings = [] then 0 else 1)
  | [] ->
    (* Tree mode. *)
    let baseline_path =
      if !baseline <> "" then !baseline
      else Filename.concat !root "lint.baseline"
    in
    let corpus = Lint.Driver.load_corpus ~clock ~root:!root () in
    let t0 = clock () in
    let findings = Lint.Driver.lint_tree ~corpus ~root:!root () in
    let t_check = clock () -. t0 in
    if !verbose then begin
      List.iter
        (fun (name, dt) ->
          Printf.eprintf "fp_lint: pass %-16s %6.0f ms\n" name (dt *. 1000.))
        (corpus.Lint.Driver.timings @ [ ("check", t_check) ]);
      Printf.eprintf "fp_lint: total %21.0f ms\n"
        ((t_check
         +. List.fold_left
              (fun a (_, dt) -> a +. dt)
              0. corpus.Lint.Driver.timings)
        *. 1000.)
    end;
    if !update then begin
      let oc = open_out baseline_path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Lint.Baseline.render findings));
      Printf.printf "fp_lint: wrote %d entr%s to %s\n"
        (List.length findings)
        (if List.length findings = 1 then "y" else "ies")
        baseline_path;
      exit 0
    end;
    let entries =
      match Lint.Baseline.load baseline_path with
      | Ok e -> e
      | Error msg -> die 2 "fp_lint: baseline: %s" msg
    in
    write_sarif ~baseline:entries findings;
    let v = Lint.Baseline.apply entries findings in
    List.iter
      (fun f -> print_endline (Lint.Finding.to_string f))
      v.Lint.Baseline.unbaselined;
    List.iter
      (fun (e : Lint.Baseline.entry) ->
        Printf.printf
          "%s:%d stale baseline entry: %s%s %s no longer fires — remove it \
           (or the code drifted under it)\n"
          baseline_path e.e_src_line e.e_file
          (match e.e_line with Some l -> ":" ^ string_of_int l | None -> "")
          (Lint.Finding.rule_name e.e_rule))
      v.Lint.Baseline.stale;
    if v.Lint.Baseline.unbaselined <> [] then exit 1
    else if v.Lint.Baseline.stale <> [] then exit 2
    else
      Printf.printf "fp_lint: clean (%d baselined finding%s)\n"
        (List.length findings)
        (if List.length findings = 1 then "" else "s")
