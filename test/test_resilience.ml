(* Tests for the resilient solve engine: the Fault injection switchboard,
   the Degradation taxonomy, the degradation ladder inside Augment.run
   (budget fallback, raw-warm commit, retries, deadline truncation, hook
   containment), lost-task recovery, and checkpoint/resume journals. *)

module Fault = Fp_util.Fault
module Generator = Fp_netlist.Generator
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Rect = Fp_geometry.Rect
module BB = Fp_milp.Branch_bound
open Fp_core

let gen ~n ~seed =
  Generator.generate
    { Generator.default_config with Generator.num_modules = n; seed }

let small_cfg =
  { Augment.default_config with
    Augment.group_size = 3;
    milp = { Augment.default_config.Augment.milp with BB.node_limit = 600 } }

let degs_of (res : Augment.result) = List.map snd res.Augment.degradations

let contains d res = List.mem d (degs_of res)

let valid (res : Augment.result) =
  Placement.valid res.Augment.placement = Ok ()

(* Every test arms sites; never leak them into the next test. *)
let with_clean_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

(* ------------------------------- fault ------------------------------- *)

let test_fault_parse () =
  let ok s = Result.get_ok (Fault.parse s) in
  let sp = ok "a.b" in
  Alcotest.(check string) "site" "a.b" sp.Fault.site;
  Alcotest.(check int) "after" 0 sp.Fault.after;
  Alcotest.(check int) "count" 1 sp.Fault.count;
  let sp = ok "a.b@3" in
  Alcotest.(check int) "after@" 3 sp.Fault.after;
  let sp = ok "a.b@3x2" in
  Alcotest.(check int) "after@x" 3 sp.Fault.after;
  Alcotest.(check int) "count@x" 2 sp.Fault.count;
  let sp = ok "a.bx*" in
  Alcotest.(check int) "count*" max_int sp.Fault.count;
  Alcotest.(check bool) "empty site" true (Result.is_error (Fault.parse ""));
  Alcotest.(check bool) "bad after" true (Result.is_error (Fault.parse "a.b@z"));
  Alcotest.(check bool) "zero count" true
    (Result.is_error (Fault.parse "a.b@0x0"))

let test_fault_roundtrip () =
  List.iter
    (fun s ->
      let sp = Result.get_ok (Fault.parse s) in
      Alcotest.(check string) s s (Fault.to_string sp))
    [ "a.b"; "a.b@3"; "a.b@3x2"; "a.bx*" ]

let test_fault_fire_counts () =
  with_clean_faults @@ fun () ->
  let site = Fault.register "test.fire_counts" in
  Alcotest.(check bool) "registered" true (List.mem site (Fault.sites ()));
  Fault.arm (Fault.spec ~after:1 ~count:2 site);
  let fires = List.init 5 (fun _ -> Fault.fire site) in
  Alcotest.(check (list bool)) "fire pattern"
    [ false; true; true; false; false ] fires;
  Alcotest.(check int) "hits" 5 (Fault.hits site);
  Alcotest.(check int) "injections" 2 (Fault.injections site)

let test_fault_trip_and_disarm () =
  with_clean_faults @@ fun () ->
  let site = Fault.register "test.trip" in
  Fault.arm (Fault.spec site);
  Alcotest.check_raises "trips" (Fault.Injected site) (fun () ->
      Fault.trip site);
  (* count 1: self-disarmed, trip is now a no-op *)
  Fault.trip site;
  Fault.arm (Fault.spec ~count:max_int site);
  Fault.disarm site;
  Fault.trip site;
  Alcotest.(check int) "disarmed counters" 0 (Fault.hits site)

(* ---------------------------- degradation ---------------------------- *)

let test_degradation_severity () =
  let open Degradation in
  Alcotest.(check int) "numerical" 0 (severity (Numerical_recovery 2));
  Alcotest.(check int) "budget" 1 (severity Budget_exhausted_warm_fallback);
  Alcotest.(check int) "raw warm" 2 (severity Raw_warm_packing);
  Alcotest.(check bool) "task lost benign" false
    (degrades_quality (Task_lost 1));
  Alcotest.(check bool) "deadline degrades" true
    (degrades_quality Deadline_truncated);
  Alcotest.(check string) "stable rendering" "net_bound_dropped(n3,n7)"
    (to_string (Net_bound_dropped [ "n3"; "n7" ]));
  Alcotest.(check string) "retry rendering" "retry_escalated(2)"
    (to_string (Retry_escalated 2))

(* ------------------------- degradation ladder ------------------------ *)

(* Budget exhausted on every attempt: each step must fall back to its
   warm packing and say so. *)
let test_budget_warm_fallback () =
  with_clean_faults @@ fun () ->
  let nl = gen ~n:6 ~seed:41 in
  Fault.arm (Fault.spec ~count:max_int "branch_bound.budget");
  let res =
    Augment.run ~config:{ small_cfg with Augment.max_retries = 0 } nl
  in
  Alcotest.(check bool) "valid placement" true (valid res);
  Alcotest.(check bool) "fallback recorded" true
    (contains Degradation.Budget_exhausted_warm_fallback res);
  Alcotest.(check bool) "not interrupted" false res.Augment.interrupted

(* Candidate evaluation dies on every attempt: the step commits the raw
   warm packing geometrically and the run still produces a valid
   floorplan. *)
let test_raw_warm_packing () =
  with_clean_faults @@ fun () ->
  let nl = gen ~n:6 ~seed:42 in
  Fault.arm (Fault.spec ~count:max_int "augment.candidate_milp");
  let res =
    Augment.run ~config:{ small_cfg with Augment.max_retries = 0 } nl
  in
  Alcotest.(check bool) "valid placement" true (valid res);
  Alcotest.(check bool) "raw warm recorded" true
    (contains Degradation.Raw_warm_packing res);
  Alcotest.(check bool) "candidate failure recorded" true
    (List.exists
       (function Degradation.Candidate_failed _ -> true | _ -> false)
       (degs_of res))

(* A one-shot budget fault must be healed by the retry ladder: the step
   records the escalation, and the final placement matches the
   un-faulted run (the escalated budget subsumes the original). *)
let test_retry_escalation () =
  with_clean_faults @@ fun () ->
  let nl = gen ~n:6 ~seed:43 in
  let clean = Augment.run ~config:small_cfg nl in
  Fault.arm (Fault.spec "branch_bound.budget");
  let res = Augment.run ~config:small_cfg nl in
  Alcotest.(check bool) "retry recorded" true
    (List.exists
       (function Degradation.Retry_escalated _ -> true | _ -> false)
       (degs_of res));
  Alcotest.(check bool) "retries counted" true
    (List.exists (fun s -> s.Augment.retries > 0) res.Augment.steps);
  Alcotest.(check bool) "same floorplan after retry" true
    (res.Augment.placement = clean.Augment.placement)

(* An expired run deadline: every remaining group is committed from its
   warm packing, visibly. *)
let test_deadline_truncation () =
  let nl = gen ~n:6 ~seed:44 in
  let res =
    Augment.run
      ~config:{ small_cfg with Augment.run_time_limit = Some 1e-9 }
      nl
  in
  Alcotest.(check bool) "valid placement" true (valid res);
  Alcotest.(check bool) "all modules placed" true
    (Placement.num_placed res.Augment.placement = Netlist.num_modules nl);
  Alcotest.(check bool) "every step truncated" true
    (List.for_all
       (fun (s : Augment.step_stat) ->
         List.mem Degradation.Deadline_truncated s.Augment.degradations)
       res.Augment.steps)

(* LP-level faults (stalled simplex, singular warm LU) surface as
   numerical-recovery notes, not as failures. *)
let test_numerical_recovery_notes () =
  with_clean_faults @@ fun () ->
  let nl = gen ~n:6 ~seed:45 in
  Fault.arm (Fault.spec ~count:2 "revised.iteration_limit");
  let res = Augment.run ~config:small_cfg nl in
  Alcotest.(check bool) "valid placement" true (valid res);
  Alcotest.(check bool) "recovery recorded" true
    (List.exists
       (function Degradation.Numerical_recovery _ -> true | _ -> false)
       (degs_of res))

(* A crashing hook is contained as Hook_failed; Abort interrupts
   cooperatively. *)
let test_hook_containment () =
  let nl = gen ~n:6 ~seed:46 in
  let inspect =
    { Augment.on_model = (fun _ -> failwith "boom"); on_step = (fun _ _ -> ()) }
  in
  let res =
    Augment.run ~config:{ small_cfg with Augment.inspect = Some inspect } nl
  in
  Alcotest.(check bool) "run completed" false res.Augment.interrupted;
  Alcotest.(check bool) "hook failure recorded" true
    (List.exists
       (function Degradation.Hook_failed _ -> true | _ -> false)
       (degs_of res))

let test_hook_abort () =
  let nl = gen ~n:6 ~seed:46 in
  let steps_seen = ref 0 in
  let inspect =
    { Augment.on_model = (fun _ -> ());
      on_step =
        (fun _ _ ->
          incr steps_seen;
          if !steps_seen >= 1 then raise Augment.Abort) }
  in
  let res =
    Augment.run ~config:{ small_cfg with Augment.inspect = Some inspect } nl
  in
  Alcotest.(check bool) "interrupted" true res.Augment.interrupted;
  Alcotest.(check int) "stopped after one step" 1
    (List.length res.Augment.steps)

(* Lost frontier tasks are re-run inline; the floorplan is the same as
   the sequential un-faulted one. *)
let test_task_loss_recovery () =
  with_clean_faults @@ fun () ->
  let nl = gen ~n:8 ~seed:47 in
  let cfg =
    { small_cfg with
      Augment.milp = { small_cfg.Augment.milp with BB.ramp_nodes = 0 } }
  in
  let clean = Augment.run ~config:cfg nl in
  Fault.arm (Fault.spec ~count:2 "branch_bound.task_loss");
  let res = Augment.run ~config:{ cfg with Augment.jobs = 2 } nl in
  Alcotest.(check bool) "faults fired" true
    (Fault.injections "branch_bound.task_loss" > 0);
  Alcotest.(check bool) "loss recorded" true
    (List.exists
       (function Degradation.Task_lost _ -> true | _ -> false)
       (degs_of res));
  Alcotest.(check bool) "identical floorplan" true
    (res.Augment.placement = clean.Augment.placement)

(* ------------------------------ journal ------------------------------ *)

let tmp_path () = Filename.temp_file "fp_resilience" ".journal"

let test_journal_roundtrip () =
  let placed id r rotated =
    { Placement.module_id = id; rect = r; envelope = r; rotated }
  in
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (Rect.make ~x:0. ~y:0. ~w:2.5 ~h:3.) false)
    |> Fun.flip Placement.add
         (placed 1 (Rect.make ~x:2.5 ~y:0. ~w:(1. /. 3.) ~h:1.75) true)
  in
  let j =
    { Journal.config_digest = "cafe"; instance_digest = "beef";
      chip_width = 10.; steps_done = 1; placement = pl;
      remaining = [ [ 2; 3 ]; [ 4 ] ] }
  in
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Journal.write ~path j;
      let j' = Result.get_ok (Journal.read ~path) in
      Alcotest.(check bool) "identical record" true (j = j'))

let test_journal_rejects_garbage () =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "fpjournal 1\nconfig x\nnot a journal\n";
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (Result.is_error (Journal.read ~path)))

(* ---------------------------- checkpoint ----------------------------- *)

(* The headline resume guarantee: interrupt a run, resume it from its
   journal (at a different worker count, even), and the final floorplan
   is bit-identical to the uninterrupted run's. *)
let test_checkpoint_resume_bit_identical () =
  let nl = gen ~n:8 ~seed:48 in
  let path_full = tmp_path () and path_cut = tmp_path () in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path_full;
      Sys.remove path_cut)
    (fun () ->
      let full =
        Augment.run
          ~config:{ small_cfg with Augment.checkpoint = Some path_full }
          nl
      in
      let steps_seen = ref 0 in
      let interruptor =
        { Augment.on_model = (fun _ -> ());
          on_step =
            (fun _ _ ->
              incr steps_seen;
              if !steps_seen >= 2 then raise Augment.Abort) }
      in
      let cut =
        Augment.run
          ~config:
            { small_cfg with
              Augment.checkpoint = Some path_cut;
              inspect = Some interruptor }
          nl
      in
      Alcotest.(check bool) "interrupted" true cut.Augment.interrupted;
      let journal = Result.get_ok (Journal.read ~path:path_cut) in
      let resumed =
        Augment.run ~resume:journal
          ~config:
            { small_cfg with
              Augment.checkpoint = Some path_cut;
              jobs = 2 }
          nl
      in
      Alcotest.(check bool) "resumed = uninterrupted" true
        (resumed.Augment.placement = full.Augment.placement);
      (* The final journals are byte-identical too. *)
      let slurp p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "journal bytes" (slurp path_full)
        (slurp path_cut))

let test_resume_rejects_mismatch () =
  let nl = gen ~n:6 ~seed:49 in
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      ignore
        (Augment.run
           ~config:{ small_cfg with Augment.checkpoint = Some path }
           nl);
      let journal = Result.get_ok (Journal.read ~path) in
      let other_cfg = { small_cfg with Augment.group_size = 2 } in
      let rejects cfg inst =
        match Augment.run ~resume:journal ~config:cfg inst with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      Alcotest.(check bool) "config mismatch" true (rejects other_cfg nl);
      Alcotest.(check bool) "instance mismatch" true
        (rejects small_cfg (gen ~n:6 ~seed:50)))

let test_config_digest_scope () =
  let d = Augment.config_digest in
  Alcotest.(check bool) "jobs excluded" true
    (d small_cfg = d { small_cfg with Augment.jobs = 4 });
  Alcotest.(check bool) "checkpoint excluded" true
    (d small_cfg = d { small_cfg with Augment.checkpoint = Some "x" });
  Alcotest.(check bool) "group size included" true
    (d small_cfg <> d { small_cfg with Augment.group_size = 2 });
  Alcotest.(check bool) "deadline included" true
    (d small_cfg <> d { small_cfg with Augment.run_time_limit = Some 5. })

let () =
  Alcotest.run "resilience"
    [
      ( "fault",
        [
          Alcotest.test_case "parse" `Quick test_fault_parse;
          Alcotest.test_case "parse/to_string roundtrip" `Quick
            test_fault_roundtrip;
          Alcotest.test_case "fire counts" `Quick test_fault_fire_counts;
          Alcotest.test_case "trip and disarm" `Quick
            test_fault_trip_and_disarm;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "severity and rendering" `Quick
            test_degradation_severity;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "budget warm fallback" `Quick
            test_budget_warm_fallback;
          Alcotest.test_case "raw warm packing" `Quick test_raw_warm_packing;
          Alcotest.test_case "retry escalation" `Quick test_retry_escalation;
          Alcotest.test_case "deadline truncation" `Quick
            test_deadline_truncation;
          Alcotest.test_case "numerical recovery notes" `Quick
            test_numerical_recovery_notes;
          Alcotest.test_case "hook containment" `Quick test_hook_containment;
          Alcotest.test_case "hook abort" `Quick test_hook_abort;
          Alcotest.test_case "task loss recovery" `Quick
            test_task_loss_recovery;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_journal_rejects_garbage;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume bit-identical" `Quick
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "rejects mismatch" `Quick
            test_resume_rejects_mismatch;
          Alcotest.test_case "digest scope" `Quick test_config_digest_scope;
        ] );
    ]
